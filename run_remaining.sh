#!/bin/sh
# Re-run the optimizer-dependent artifacts with the fixed Harmonica stage.
set -x
for bin in table4_t1_t2 table5_t3_t4 table7_ablation_t1_t2 table8_ablation_t3_t4 \
           table9_manual_vs_isop fig6_pred_vs_truth fig7_fom_summary \
           fig8_runtime_summary extra_component_ablation; do
  cargo run --release -p isop-bench --bin "$bin" > "logs/$bin.log" 2>&1 || echo "FAILED: $bin"
  echo "DONE: $bin"
done
echo "ALL_EXPERIMENTS_DONE"
