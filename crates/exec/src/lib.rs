//! Deterministic parallel execution for the workspace's embarrassingly
//! parallel sections: the pipeline's stage-2 Adam refinements, stage-3
//! roll-out and Hyperband fidelity replicas (via `isop-core`), the async
//! batch scheduler's per-batch slot fan-out (`isop::scheduler`, which
//! keeps admission and merge serial and parallelizes only the slot
//! simulations through `par_map_indexed`), and the surrogate zoo's
//! data-parallel training engine (via `isop-ml`).
//!
//! Built on `std::thread::scope` plus an `mpsc` channel — no external
//! thread-pool crate. Determinism contract: every primitive here returns
//! or reduces results **in input order** regardless of thread count or
//! scheduling, and callers draw every random number *before* entering a
//! parallel section. `threads = 1` therefore produces bit-identical
//! outcomes to `threads = N` for a fixed seed, and the single-thread path
//! runs inline with zero spawn overhead.
//!
//! For multi-job service workloads, [`CoreBudget`] / [`CoreLease`] add a
//! global core-permit layer on top: every concurrently running pipeline
//! takes a lease and sizes its [`Parallelism`] knob from it, so nested
//! parallelism (job-level x stage-level) can never oversubscribe the
//! machine — the sum of outstanding leases is bounded by the budget total,
//! and clamping a width is bit-identity-safe because every primitive here
//! is width-independent.
//!
//! This crate is a leaf: it depends only on the vendored `serde` so both
//! `isop-core` (which re-exports it as `isop::exec` for API stability) and
//! `isop-ml` (which cannot depend on core) can consume one executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Thread-count knob for the pipeline's parallel sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Parallelism {
    /// Worker threads for parallel sections (1 = fully serial).
    pub threads: usize,
}

impl Parallelism {
    /// A knob with `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Reads the `THREADS` environment variable, falling back to serial
    /// execution when unset or unparsable. Benches use this so one harness
    /// can be timed at several widths.
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var("THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        Self::new(threads)
    }

    /// A fully serial knob — used by nested parallel sections (e.g. forest
    /// trees built inside parallel workers) to avoid spawn-on-spawn.
    #[must_use]
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// True when this knob would actually fan work out to workers.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self { threads: 1 }
    }
}

// Hand-written so configs serialized before this knob existed (no
// "parallelism" key -> Null) still deserialize, defaulting to serial.
impl Deserialize for Parallelism {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(Self::default()),
            other => {
                let obj = other
                    .as_obj()
                    .ok_or_else(|| Error::mismatch("object (Parallelism)", other))?;
                let threads = usize::from_value(Value::field(obj, "threads"))?;
                Ok(Self::new(threads))
            }
        }
    }
}

/// Why a [`RunControl`] wants its run stopped — or that it doesn't.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlState {
    /// Keep going.
    Live,
    /// [`RunControl::cancel`] was called.
    Cancelled,
    /// The deadline passed.
    Expired,
}

#[derive(Debug)]
struct ControlInner {
    cancelled: AtomicBool,
    // Mutex (not a frozen field): the engine arms a job's spec deadline on
    // a token the daemon created earlier, at batch start. Polls only
    // happen at stage boundaries, so the lock is uncontended in practice;
    // a poisoning panic elsewhere must not take the token down with it.
    deadline: Mutex<Option<Instant>>,
}

/// A cooperative cancellation/deadline token for a long-running job.
///
/// Clones share one flag, so a service thread can [`RunControl::cancel`] a
/// token whose other clone sits inside a running pipeline. The pipeline
/// polls [`RunControl::state`] **only at stage boundaries** (between
/// Harmonica, Hyperband, refinement, and roll-out) and at wave admission —
/// never inside a parallel section — so a stop is observed at a
/// deterministic point: which stages ran depends only on when the flag was
/// set relative to those serial checks, and everything a completed stage
/// recorded stays bit-identical to an uninterrupted run of that stage.
///
/// The default token (`RunControl::none()`) never stops anything and costs
/// one relaxed atomic load per check.
#[derive(Debug, Clone)]
pub struct RunControl {
    inner: Arc<ControlInner>,
}

impl RunControl {
    /// A token that never fires: no deadline, cancellable only explicitly.
    #[must_use]
    pub fn none() -> Self {
        Self {
            inner: Arc::new(ControlInner {
                cancelled: AtomicBool::new(false),
                deadline: Mutex::new(None),
            }),
        }
    }

    /// A token that expires `seconds` from now. `seconds <= 0` builds a
    /// token that is already expired at the first check — the deterministic
    /// way to exercise the deadline path in tests.
    #[must_use]
    pub fn with_deadline(seconds: f64) -> Self {
        let control = Self::none();
        control.arm_deadline(seconds);
        control
    }

    /// Arms (or re-arms) the deadline `seconds` from now on an existing
    /// token, so a creator that only knows about cancellation (the daemon)
    /// and a runner that knows the spec's deadline (the engine) can share
    /// one token. `seconds <= 0` expires the token at the next check.
    pub fn arm_deadline(&self, seconds: f64) {
        let now = Instant::now();
        let deadline = if seconds <= 0.0 {
            now
        } else {
            now + std::time::Duration::from_secs_f64(seconds)
        };
        *self
            .inner
            .deadline
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(deadline);
    }

    /// Requests a cooperative stop; the run winds down at its next stage
    /// boundary. Idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Current verdict. Cancellation wins over an elapsed deadline, so a
    /// job cancelled after expiry still reports what the caller asked for.
    #[must_use]
    pub fn state(&self) -> ControlState {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return ControlState::Cancelled;
        }
        let deadline = *self
            .inner
            .deadline
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match deadline {
            Some(deadline) if Instant::now() >= deadline => ControlState::Expired,
            _ => ControlState::Live,
        }
    }

    /// True when [`RunControl::state`] is anything but [`ControlState::Live`].
    #[must_use]
    pub fn should_stop(&self) -> bool {
        self.state() != ControlState::Live
    }
}

impl Default for RunControl {
    fn default() -> Self {
        Self::none()
    }
}

/// Shared mutable state behind a [`CoreBudget`].
#[derive(Debug)]
struct BudgetState {
    /// Permits currently free to lease.
    available: usize,
    /// High-water mark of simultaneously outstanding permits — the
    /// oversubscription regression tests assert this never exceeds the
    /// budget's total.
    peak_outstanding: usize,
}

#[derive(Debug)]
struct BudgetInner {
    total: usize,
    state: Mutex<BudgetState>,
    freed: Condvar,
}

/// A global core-permit budget shared by every concurrently running job.
///
/// When J jobs each configured for T threads run at once, naive nesting
/// spawns J x T workers and oversubscribes the machine. Instead, each job
/// takes a [`CoreLease`] before running and sizes its [`Parallelism`] knob
/// from [`CoreLease::threads`]; every `par_map_*` section of that job then
/// fans out at most `lease.threads()` workers (the coordinating caller
/// blocks on the result channel, so it contributes no compute), and the sum
/// of outstanding leases never exceeds [`CoreBudget::total`]. Clamping a
/// job's width to its lease is **bit-identity-safe**: every primitive in
/// this crate returns results in input order regardless of worker count.
///
/// Handles are cheap clones of one shared budget.
#[derive(Debug, Clone)]
pub struct CoreBudget {
    inner: Arc<BudgetInner>,
}

impl CoreBudget {
    /// A budget of `total` core permits (clamped to at least 1).
    #[must_use]
    pub fn new(total: usize) -> Self {
        let total = total.max(1);
        Self {
            inner: Arc::new(BudgetInner {
                total,
                state: Mutex::new(BudgetState {
                    available: total,
                    peak_outstanding: 0,
                }),
                freed: Condvar::new(),
            }),
        }
    }

    /// A budget sized to the host's available parallelism (at least 1).
    #[must_use]
    pub fn host() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Total permits this budget was created with.
    #[must_use]
    pub fn total(&self) -> usize {
        self.inner.total
    }

    /// Permits currently free to lease (a racy snapshot, for reporting).
    #[must_use]
    pub fn available(&self) -> usize {
        self.inner.state.lock().expect("core budget lock").available
    }

    /// High-water mark of simultaneously outstanding permits. By
    /// construction this never exceeds [`CoreBudget::total`]; the exec and
    /// engine test suites assert exactly that after concurrent runs.
    #[must_use]
    pub fn peak_outstanding(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("core budget lock")
            .peak_outstanding
    }

    /// Blocks until at least one permit is free, then leases
    /// `min(want.max(1), available)` permits. Every caller is granted at
    /// least one permit eventually (permits are returned on [`CoreLease`]
    /// drop and the wait is woken on every return), so a fleet of jobs each
    /// needing only one permit can never deadlock.
    #[must_use]
    pub fn lease(&self, want: usize) -> CoreLease {
        let want = want.max(1);
        let mut state = self.inner.state.lock().expect("core budget lock");
        while state.available == 0 {
            state = self.inner.freed.wait(state).expect("core budget lock");
        }
        let permits = want.min(state.available);
        state.available -= permits;
        let outstanding = self.inner.total - state.available;
        state.peak_outstanding = state.peak_outstanding.max(outstanding);
        drop(state);
        CoreLease {
            inner: Arc::clone(&self.inner),
            permits,
        }
    }
}

/// A leased slice of a [`CoreBudget`], returned to the pool on drop.
///
/// The holder sizes its parallel sections from [`CoreLease::threads`] (or
/// takes a ready-made knob from [`CoreLease::parallelism`]); as long as it
/// does, its fan-out plus every concurrent holder's stays within the
/// budget's total.
#[derive(Debug)]
pub struct CoreLease {
    inner: Arc<BudgetInner>,
    permits: usize,
}

impl CoreLease {
    /// Worker threads this lease entitles the holder to (always >= 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.permits
    }

    /// A [`Parallelism`] knob sized to this lease — the one value a leased
    /// pipeline should route every `par_map_*` call site through.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::new(self.permits)
    }
}

impl Drop for CoreLease {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("core budget lock");
        state.available += self.permits;
        drop(state);
        self.inner.freed.notify_all();
    }
}

/// Maps `f` over `items` on up to `threads` workers, returning results in
/// input order.
///
/// Workers claim indices from a shared atomic counter and send
/// `(index, result)` pairs over a channel; the caller reassembles them by
/// index, so the output is independent of scheduling. `f` must be pure with
/// respect to ordering (no interior mutability whose effects depend on
/// which thread runs first) — everything order-sensitive (RNG draws,
/// counters, accounting) belongs in the caller, before or after this call.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_with(threads, || (), items, |(), i, t| f(i, t))
}

/// Like [`par_map_indexed`], but gives each worker a private scratch state
/// built by `init` (one per worker, reused across every item that worker
/// claims). The training engine uses this for per-worker forward/backward
/// workspaces so hot loops stop allocating per batch.
///
/// The scratch must not carry information between items in a way that
/// changes results — each item's output has to be a pure function of
/// `(index, item)` alone, or determinism across thread counts is lost.
/// Buffers that are fully overwritten (or zeroed) per item are fine.
///
/// # Panics
///
/// Propagates a panic from `f` or `init` (the scope joins all workers
/// first).
pub fn par_map_indexed_with<S, T, R, I, F>(threads: usize, init: I, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let init = &init;
            scope.spawn(move || {
                let mut scratch = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // A send can only fail if the receiver is gone, which
                    // cannot happen while the scope borrows it.
                    let _ = tx.send((i, f(&mut scratch, i, &items[i])));
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index computed exactly once"))
        .collect()
}

/// Maps `f` over mutable `items` on up to `threads` workers, returning
/// results in input order. The mutable cousin of [`par_map_indexed`]: each
/// item is handed to exactly one worker as `&mut T`, so `f` may mutate it
/// in place (the training engine fits ensemble members this way).
///
/// Work is distributed through a mutex-guarded iterator queue (safe Rust's
/// way of handing out disjoint `&mut` items across threads); results are
/// reassembled by index, so the output order is scheduling-independent.
/// The same purity rule as [`par_map_indexed`] applies: each item's result
/// and final state must depend only on `(index, item)`.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map_mut<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(n);
    let queue = Mutex::new(items.iter_mut().enumerate());
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            scope.spawn(move || loop {
                // Claim under the lock, compute outside it: `IterMut`
                // yields `&mut T` borrowing the slice, not the guard, so
                // the lock is held only for the `next()` call.
                let claimed = queue.lock().expect("work queue poisoned").next();
                match claimed {
                    Some((i, item)) => {
                        let _ = tx.send((i, f(i, item)));
                    }
                    None => break,
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index computed exactly once"))
        .collect()
}

/// Splits `0..n` into fixed `[start, end)` ranges of `chunk` items (the
/// last may be shorter). Chunk boundaries depend only on `(n, chunk)` —
/// never on the thread count — which is what keeps chunked gradient
/// reductions bit-identical at any parallelism width.
///
/// # Panics
///
/// Panics if `chunk == 0`.
#[must_use]
pub fn fixed_chunks(n: usize, chunk: usize) -> Vec<(usize, usize)> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..n.div_ceil(chunk))
        .map(|c| (c * chunk, ((c + 1) * chunk).min(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_at_any_width() {
        let items: Vec<usize> = (0..97).collect();
        let serial = par_map_indexed(1, &items, |i, &x| i * 1000 + x * x);
        for threads in [2, 4, 8] {
            let parallel = par_map_indexed(threads, &items, |i, &x| i * 1000 + x * x);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_indexed(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_indexed(32, &[1, 2, 3], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn par_map_mut_mutates_every_item_and_orders_results() {
        let mut serial: Vec<u64> = (0..61).collect();
        let serial_out = par_map_mut(1, &mut serial, |i, x| {
            *x += 100;
            *x * i as u64
        });
        for threads in [2, 4, 8] {
            let mut items: Vec<u64> = (0..61).collect();
            let out = par_map_mut(threads, &mut items, |i, x| {
                *x += 100;
                *x * i as u64
            });
            assert_eq!(items, serial, "threads = {threads}");
            assert_eq!(out, serial_out, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_mut_handles_empty_and_singleton() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(par_map_mut(4, &mut empty, |_, x| *x).is_empty());
        let mut one = [7u32];
        assert_eq!(par_map_mut(4, &mut one, |_, x| *x + 1), vec![8]);
    }

    #[test]
    fn per_worker_scratch_does_not_change_results() {
        let items: Vec<u64> = (0..53).collect();
        // Scratch is a reused accumulator buffer, fully overwritten per item.
        let run = |threads| {
            par_map_indexed_with(
                threads,
                || vec![0u64; 8],
                &items,
                |buf, i, &x| {
                    for (k, b) in buf.iter_mut().enumerate() {
                        *b = x * k as u64 + i as u64;
                    }
                    buf.iter().sum::<u64>()
                },
            )
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn fixed_chunks_covers_range_exactly() {
        assert_eq!(fixed_chunks(0, 16), Vec::<(usize, usize)>::new());
        assert_eq!(fixed_chunks(5, 16), vec![(0, 5)]);
        assert_eq!(fixed_chunks(32, 16), vec![(0, 16), (16, 32)]);
        assert_eq!(fixed_chunks(33, 16), vec![(0, 16), (16, 32), (32, 33)]);
        // Boundaries depend only on (n, chunk) — asserted by construction,
        // but keep an explicit seam check for the contract.
        let ranges = fixed_chunks(103, 8);
        let mut covered = 0;
        for (lo, hi) in ranges {
            assert_eq!(lo, covered);
            assert!(hi > lo);
            covered = hi;
        }
        assert_eq!(covered, 103);
    }

    /// Telemetry recording from inside `par_map_indexed` workers: counter
    /// increments are commutative atomic adds and span stats fold under one
    /// registry lock, so 1-thread and 4-thread sweeps over the same items
    /// report identical counter totals and span counts.
    #[test]
    fn telemetry_totals_identical_across_widths() {
        use isop_telemetry::{Counter, Telemetry};
        let items: Vec<u64> = (0..113).collect();
        let reports: Vec<_> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let tele = Telemetry::enabled();
                let out = par_map_indexed(threads, &items, |_, &x| {
                    let _g = isop_telemetry::span!(tele, "exec.worker");
                    tele.incr(Counter::SurrogatePredict);
                    tele.add(Counter::SurrogatePredictBatchRows, x);
                    x * 2
                });
                assert_eq!(out.len(), items.len());
                tele.run_report()
            })
            .collect();
        let (serial, parallel) = (&reports[0], &reports[1]);
        assert_eq!(serial.counters, parallel.counters);
        assert_eq!(serial.counter("surrogate.predict"), 113);
        assert_eq!(
            serial.counter("surrogate.predict_batch_rows"),
            (0..113).sum::<u64>()
        );
        assert_eq!(serial.span("exec.worker").expect("span").count, 113);
        assert_eq!(parallel.span("exec.worker").expect("span").count, 113);
    }

    #[test]
    fn parallelism_knob_clamps_and_reads_env() {
        assert_eq!(Parallelism::new(0).threads, 1);
        assert_eq!(Parallelism::default().threads, 1);
        assert_eq!(Parallelism::serial().threads, 1);
        assert!(!Parallelism::serial().is_parallel());
        assert!(Parallelism::new(2).is_parallel());
        // from_env falls back to serial when THREADS is unset/garbage; the
        // suite does not set the variable, so only the fallback is asserted
        // (mutating the environment would race with other tests).
        assert!(Parallelism::from_env().threads >= 1);
    }

    #[test]
    fn core_budget_clamps_grants_to_availability() {
        let budget = CoreBudget::new(4);
        assert_eq!(budget.total(), 4);
        assert_eq!(budget.available(), 4);
        let l1 = budget.lease(3);
        assert_eq!(l1.threads(), 3);
        assert_eq!(budget.available(), 1);
        // More than remains: clamped to what is free, never blocking while
        // at least one permit is available.
        let l2 = budget.lease(5);
        assert_eq!(l2.threads(), 1);
        assert_eq!(budget.available(), 0);
        drop(l1);
        assert_eq!(budget.available(), 3);
        let l3 = budget.lease(16);
        assert_eq!(l3.threads(), 3);
        assert_eq!(l3.parallelism(), Parallelism::new(3));
        drop(l3);
        drop(l2);
        assert_eq!(budget.available(), 4);
        assert_eq!(budget.peak_outstanding(), 4);
        // Degenerate inputs clamp to one permit.
        assert_eq!(CoreBudget::new(0).total(), 1);
        assert_eq!(CoreBudget::new(2).lease(0).threads(), 1);
        assert!(CoreBudget::host().total() >= 1);
    }

    /// The executor-oversubscription regression test: 8 concurrent "jobs",
    /// each asking for 4 threads against a 3-permit budget, each running a
    /// nested `par_map_indexed` sized from its lease. The number of
    /// simultaneously *active workers* (observed from inside the closures)
    /// must never exceed the budget total — before the lease API, this
    /// workload would fan out up to 8 x 4 = 32 workers.
    #[test]
    fn leased_nested_parallelism_never_exceeds_the_core_budget() {
        let budget = CoreBudget::new(3);
        let active = AtomicUsize::new(0);
        let peak_active = AtomicUsize::new(0);
        let outputs: Vec<Vec<usize>> = {
            let jobs: Vec<usize> = (0..8).collect();
            // Run the jobs on dedicated threads (not through par_map, whose
            // width is what is under test) so all 8 contend for leases.
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .iter()
                    .map(|&job| {
                        let budget = budget.clone();
                        let active = &active;
                        let peak_active = &peak_active;
                        scope.spawn(move || {
                            let lease = budget.lease(4);
                            let items: Vec<usize> = (0..32).collect();
                            par_map_indexed(lease.threads(), &items, |i, &x| {
                                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                                peak_active.fetch_max(now, Ordering::SeqCst);
                                // Hold the slot long enough for overlap to be
                                // observable if the cap were broken.
                                std::hint::black_box((0..500).sum::<usize>());
                                active.fetch_sub(1, Ordering::SeqCst);
                                i + x + job
                            })
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };
        for (job, out) in outputs.iter().enumerate() {
            let expect: Vec<usize> = (0..32).map(|i| 2 * i + job).collect();
            assert_eq!(out, &expect, "job {job} result corrupted");
        }
        assert!(
            budget.peak_outstanding() <= budget.total(),
            "budget oversubscribed: {} permits outstanding of {}",
            budget.peak_outstanding(),
            budget.total()
        );
        assert!(
            peak_active.load(Ordering::SeqCst) <= budget.total(),
            "observed {} active workers over the {}-core budget",
            peak_active.load(Ordering::SeqCst),
            budget.total()
        );
        assert_eq!(budget.available(), budget.total(), "permits leaked");
    }

    /// Clamping a job's width to whatever its lease granted cannot change
    /// results: the primitives reassemble by index, so any width produces
    /// the serial output bit for bit.
    #[test]
    fn lease_width_does_not_change_results() {
        let items: Vec<u64> = (0..101).collect();
        let serial = par_map_indexed(1, &items, |i, &x| x * 31 + i as u64);
        let budget = CoreBudget::new(4);
        for want in [1, 2, 4, 16] {
            let lease = budget.lease(want);
            let leased = par_map_indexed(lease.threads(), &items, |i, &x| x * 31 + i as u64);
            assert_eq!(leased, serial, "want = {want}");
        }
    }

    #[test]
    fn run_control_reports_cancel_and_deadline() {
        let live = RunControl::none();
        assert_eq!(live.state(), ControlState::Live);
        assert!(!live.should_stop());

        let cancelled = RunControl::none();
        let clone = cancelled.clone();
        clone.cancel();
        assert_eq!(cancelled.state(), ControlState::Cancelled);
        assert!(cancelled.should_stop());

        let expired = RunControl::with_deadline(0.0);
        assert_eq!(expired.state(), ControlState::Expired);
        let generous = RunControl::with_deadline(3600.0);
        assert_eq!(generous.state(), ControlState::Live);
        // Cancellation wins over an elapsed deadline.
        expired.cancel();
        assert_eq!(expired.state(), ControlState::Cancelled);
        assert_eq!(RunControl::default().state(), ControlState::Live);
    }

    #[test]
    fn parallelism_deserializes_missing_as_default() {
        use serde::json::Value;
        use serde::Deserialize;
        assert_eq!(
            Parallelism::from_value(&Value::Null).unwrap(),
            Parallelism::default()
        );
        let v = Value::parse("{\"threads\": 4}").unwrap();
        assert_eq!(Parallelism::from_value(&v).unwrap().threads, 4);
    }
}
