//! Deterministic parallel execution for the workspace's embarrassingly
//! parallel sections: the pipeline's stage-2 Adam refinements, stage-3
//! roll-out and Hyperband fidelity replicas (via `isop-core`), the async
//! batch scheduler's per-batch slot fan-out (`isop::scheduler`, which
//! keeps admission and merge serial and parallelizes only the slot
//! simulations through `par_map_indexed`), and the surrogate zoo's
//! data-parallel training engine (via `isop-ml`).
//!
//! Built on `std::thread::scope` plus an `mpsc` channel — no external
//! thread-pool crate. Determinism contract: every primitive here returns
//! or reduces results **in input order** regardless of thread count or
//! scheduling, and callers draw every random number *before* entering a
//! parallel section. `threads = 1` therefore produces bit-identical
//! outcomes to `threads = N` for a fixed seed, and the single-thread path
//! runs inline with zero spawn overhead.
//!
//! This crate is a leaf: it depends only on the vendored `serde` so both
//! `isop-core` (which re-exports it as `isop::exec` for API stability) and
//! `isop-ml` (which cannot depend on core) can consume one executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Thread-count knob for the pipeline's parallel sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Parallelism {
    /// Worker threads for parallel sections (1 = fully serial).
    pub threads: usize,
}

impl Parallelism {
    /// A knob with `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Reads the `THREADS` environment variable, falling back to serial
    /// execution when unset or unparsable. Benches use this so one harness
    /// can be timed at several widths.
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var("THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        Self::new(threads)
    }

    /// A fully serial knob — used by nested parallel sections (e.g. forest
    /// trees built inside parallel workers) to avoid spawn-on-spawn.
    #[must_use]
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// True when this knob would actually fan work out to workers.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self { threads: 1 }
    }
}

// Hand-written so configs serialized before this knob existed (no
// "parallelism" key -> Null) still deserialize, defaulting to serial.
impl Deserialize for Parallelism {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(Self::default()),
            other => {
                let obj = other
                    .as_obj()
                    .ok_or_else(|| Error::mismatch("object (Parallelism)", other))?;
                let threads = usize::from_value(Value::field(obj, "threads"))?;
                Ok(Self::new(threads))
            }
        }
    }
}

/// Maps `f` over `items` on up to `threads` workers, returning results in
/// input order.
///
/// Workers claim indices from a shared atomic counter and send
/// `(index, result)` pairs over a channel; the caller reassembles them by
/// index, so the output is independent of scheduling. `f` must be pure with
/// respect to ordering (no interior mutability whose effects depend on
/// which thread runs first) — everything order-sensitive (RNG draws,
/// counters, accounting) belongs in the caller, before or after this call.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_with(threads, || (), items, |(), i, t| f(i, t))
}

/// Like [`par_map_indexed`], but gives each worker a private scratch state
/// built by `init` (one per worker, reused across every item that worker
/// claims). The training engine uses this for per-worker forward/backward
/// workspaces so hot loops stop allocating per batch.
///
/// The scratch must not carry information between items in a way that
/// changes results — each item's output has to be a pure function of
/// `(index, item)` alone, or determinism across thread counts is lost.
/// Buffers that are fully overwritten (or zeroed) per item are fine.
///
/// # Panics
///
/// Propagates a panic from `f` or `init` (the scope joins all workers
/// first).
pub fn par_map_indexed_with<S, T, R, I, F>(threads: usize, init: I, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let init = &init;
            scope.spawn(move || {
                let mut scratch = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // A send can only fail if the receiver is gone, which
                    // cannot happen while the scope borrows it.
                    let _ = tx.send((i, f(&mut scratch, i, &items[i])));
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index computed exactly once"))
        .collect()
}

/// Maps `f` over mutable `items` on up to `threads` workers, returning
/// results in input order. The mutable cousin of [`par_map_indexed`]: each
/// item is handed to exactly one worker as `&mut T`, so `f` may mutate it
/// in place (the training engine fits ensemble members this way).
///
/// Work is distributed through a mutex-guarded iterator queue (safe Rust's
/// way of handing out disjoint `&mut` items across threads); results are
/// reassembled by index, so the output order is scheduling-independent.
/// The same purity rule as [`par_map_indexed`] applies: each item's result
/// and final state must depend only on `(index, item)`.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map_mut<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(n);
    let queue = Mutex::new(items.iter_mut().enumerate());
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            scope.spawn(move || loop {
                // Claim under the lock, compute outside it: `IterMut`
                // yields `&mut T` borrowing the slice, not the guard, so
                // the lock is held only for the `next()` call.
                let claimed = queue.lock().expect("work queue poisoned").next();
                match claimed {
                    Some((i, item)) => {
                        let _ = tx.send((i, f(i, item)));
                    }
                    None => break,
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index computed exactly once"))
        .collect()
}

/// Splits `0..n` into fixed `[start, end)` ranges of `chunk` items (the
/// last may be shorter). Chunk boundaries depend only on `(n, chunk)` —
/// never on the thread count — which is what keeps chunked gradient
/// reductions bit-identical at any parallelism width.
///
/// # Panics
///
/// Panics if `chunk == 0`.
#[must_use]
pub fn fixed_chunks(n: usize, chunk: usize) -> Vec<(usize, usize)> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..n.div_ceil(chunk))
        .map(|c| (c * chunk, ((c + 1) * chunk).min(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_at_any_width() {
        let items: Vec<usize> = (0..97).collect();
        let serial = par_map_indexed(1, &items, |i, &x| i * 1000 + x * x);
        for threads in [2, 4, 8] {
            let parallel = par_map_indexed(threads, &items, |i, &x| i * 1000 + x * x);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_indexed(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_indexed(32, &[1, 2, 3], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn par_map_mut_mutates_every_item_and_orders_results() {
        let mut serial: Vec<u64> = (0..61).collect();
        let serial_out = par_map_mut(1, &mut serial, |i, x| {
            *x += 100;
            *x * i as u64
        });
        for threads in [2, 4, 8] {
            let mut items: Vec<u64> = (0..61).collect();
            let out = par_map_mut(threads, &mut items, |i, x| {
                *x += 100;
                *x * i as u64
            });
            assert_eq!(items, serial, "threads = {threads}");
            assert_eq!(out, serial_out, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_mut_handles_empty_and_singleton() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(par_map_mut(4, &mut empty, |_, x| *x).is_empty());
        let mut one = [7u32];
        assert_eq!(par_map_mut(4, &mut one, |_, x| *x + 1), vec![8]);
    }

    #[test]
    fn per_worker_scratch_does_not_change_results() {
        let items: Vec<u64> = (0..53).collect();
        // Scratch is a reused accumulator buffer, fully overwritten per item.
        let run = |threads| {
            par_map_indexed_with(
                threads,
                || vec![0u64; 8],
                &items,
                |buf, i, &x| {
                    for (k, b) in buf.iter_mut().enumerate() {
                        *b = x * k as u64 + i as u64;
                    }
                    buf.iter().sum::<u64>()
                },
            )
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn fixed_chunks_covers_range_exactly() {
        assert_eq!(fixed_chunks(0, 16), Vec::<(usize, usize)>::new());
        assert_eq!(fixed_chunks(5, 16), vec![(0, 5)]);
        assert_eq!(fixed_chunks(32, 16), vec![(0, 16), (16, 32)]);
        assert_eq!(fixed_chunks(33, 16), vec![(0, 16), (16, 32), (32, 33)]);
        // Boundaries depend only on (n, chunk) — asserted by construction,
        // but keep an explicit seam check for the contract.
        let ranges = fixed_chunks(103, 8);
        let mut covered = 0;
        for (lo, hi) in ranges {
            assert_eq!(lo, covered);
            assert!(hi > lo);
            covered = hi;
        }
        assert_eq!(covered, 103);
    }

    /// Telemetry recording from inside `par_map_indexed` workers: counter
    /// increments are commutative atomic adds and span stats fold under one
    /// registry lock, so 1-thread and 4-thread sweeps over the same items
    /// report identical counter totals and span counts.
    #[test]
    fn telemetry_totals_identical_across_widths() {
        use isop_telemetry::{Counter, Telemetry};
        let items: Vec<u64> = (0..113).collect();
        let reports: Vec<_> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let tele = Telemetry::enabled();
                let out = par_map_indexed(threads, &items, |_, &x| {
                    let _g = isop_telemetry::span!(tele, "exec.worker");
                    tele.incr(Counter::SurrogatePredict);
                    tele.add(Counter::SurrogatePredictBatchRows, x);
                    x * 2
                });
                assert_eq!(out.len(), items.len());
                tele.run_report()
            })
            .collect();
        let (serial, parallel) = (&reports[0], &reports[1]);
        assert_eq!(serial.counters, parallel.counters);
        assert_eq!(serial.counter("surrogate.predict"), 113);
        assert_eq!(
            serial.counter("surrogate.predict_batch_rows"),
            (0..113).sum::<u64>()
        );
        assert_eq!(serial.span("exec.worker").expect("span").count, 113);
        assert_eq!(parallel.span("exec.worker").expect("span").count, 113);
    }

    #[test]
    fn parallelism_knob_clamps_and_reads_env() {
        assert_eq!(Parallelism::new(0).threads, 1);
        assert_eq!(Parallelism::default().threads, 1);
        assert_eq!(Parallelism::serial().threads, 1);
        assert!(!Parallelism::serial().is_parallel());
        assert!(Parallelism::new(2).is_parallel());
        // from_env falls back to serial when THREADS is unset/garbage; the
        // suite does not set the variable, so only the fallback is asserted
        // (mutating the environment would race with other tests).
        assert!(Parallelism::from_env().threads >= 1);
    }

    #[test]
    fn parallelism_deserializes_missing_as_default() {
        use serde::json::Value;
        use serde::Deserialize;
        assert_eq!(
            Parallelism::from_value(&Value::Null).unwrap(),
            Parallelism::default()
        );
        let v = Value::parse("{\"threads\": 4}").unwrap();
        assert_eq!(Parallelism::from_value(&v).unwrap().threads, 4);
    }
}
