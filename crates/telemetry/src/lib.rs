//! # isop-telemetry — structured observability for the ISOP+ pipeline
//!
//! The optimizer's three stages (Harmonica global search, Adam local
//! refinement, EM roll-out) are ranked in the paper by their *evaluation
//! budget*: how many surrogate inferences, Lasso solves, and — above all —
//! charged EM-simulator seconds a run consumes. This crate gives those
//! quantities a first-class, thread-safe collection surface:
//!
//! * [`Telemetry`] — a cheap clonable handle. A *disabled* handle (the
//!   default) carries no allocation and every recording call is a single
//!   branch on `Option`, so instrumented code paths cost nothing in
//!   production runs that don't ask for a report.
//! * [`Counter`] — the typed counters the paper's tables account by:
//!   EM simulations attempted/succeeded/failed, surrogate `predict` /
//!   `predict_batch` calls and batch rows, Harmonica Lasso solves,
//!   Hyperband rung promotions/prunes, Adam refinement steps. Counter
//!   increments are commutative `u64` additions, so totals are
//!   **bit-identical at any worker-thread count** even though the
//!   pipeline's parallel sections interleave arbitrarily.
//! * [`span!`] / [`Telemetry::span`] — RAII wall-clock spans aggregated
//!   per label (count / total / min / max). Timings are real wall-clock
//!   and therefore *not* deterministic; consumers that diff runs (the CI
//!   bench gate) compare counters exactly and timings with a margin.
//! * [`RunReport`] — the machine-readable snapshot serialized to
//!   `results/run_report.json` by `isop --report` and to `BENCH_ci.json`
//!   by the CI bench-smoke job, via the vendored `serde_json`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Typed counters for the quantities the paper ranks methods by.
///
/// Each variant maps to a stable dotted label (see [`Counter::name`]) used
/// in [`RunReport`] JSON and in the CI threshold file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// EM simulations attempted (valid or not).
    EmSimAttempted,
    /// EM simulations that produced a result.
    EmSimSucceeded,
    /// EM simulations rejected (invalid geometry).
    EmSimFailed,
    /// EM wall-clock batches charged at roll-out (batches of up to three
    /// parallel runs, each costing one `nominal_seconds()`).
    EmBatchesCharged,
    /// Single-design surrogate `predict` calls.
    SurrogatePredict,
    /// Surrogate `predict_batch` calls.
    SurrogatePredictBatch,
    /// Total rows across all `predict_batch` calls.
    SurrogatePredictBatchRows,
    /// Single-design surrogate input-Jacobian evaluations.
    SurrogateJacobian,
    /// Surrogate `jacobian_batch` calls.
    SurrogateJacobianBatch,
    /// Total rows across all `jacobian_batch` calls.
    SurrogateJacobianBatchRows,
    /// Harmonica PSR Lasso solves.
    HarmonicaLassoSolves,
    /// Harmonica restriction stages completed.
    HarmonicaStages,
    /// Configurations promoted to the next Hyperband rung.
    HyperbandPromotions,
    /// Configurations pruned at a Hyperband rung.
    HyperbandPrunes,
    /// Adam refinement steps taken in the local stage.
    AdamSteps,
    /// Roll-out designs served from the deterministic EM-result cache
    /// (the simulation was elided; its counters are replayed and its
    /// wall-clock lands in the seconds-saved ledger).
    EmCacheHits,
    /// Roll-out designs the EM-result cache could not serve. A *disabled*
    /// cache counts every probe as a miss, so the bench gate catches a
    /// cache outage as a miss-count regression.
    EmCacheMisses,
    /// Harmonica-stage surrogate predictions served from the
    /// bitstring-keyed prediction memo.
    SurrogateMemoHits,
    /// Harmonica-stage memo probes that fell through to the surrogate
    /// (a disabled memo counts every probe here).
    SurrogateMemoMisses,
    /// Work units dispatched to the data-parallel training engine: minibatch
    /// gradient chunks (MLP/CNN), bootstrap trees (forest), boosting-stage
    /// row chunks, and ensemble members. Deterministic for a fixed config —
    /// chunk boundaries never depend on the thread count.
    TrainChunks,
    /// Roll-out retry attempts: EM simulations re-issued after a
    /// *transient* failure (license contention, mesh non-convergence,
    /// timeout). Deterministic for a fixed fault seed at any thread width;
    /// cache hits bypass the retry path and never tick this.
    EmRetries,
    /// Transient EM failure events observed at roll-out (each one either
    /// precedes a retry or exhausts the retry budget).
    EmFailuresTransient,
    /// Roll-out designs abandoned for good: a permanent simulator failure
    /// (invalid geometry or an unsolvable mesh) or an exhausted retry
    /// budget. Each one makes the roll-out draw a top-up candidate when
    /// the surrogate-ranked pool still has one.
    EmFailuresPermanent,
    /// Backup designs drawn from the surplus surrogate-ranked pool after a
    /// permanent roll-out failure, so the accurate simulator still sees
    /// `cand_num` successful evaluations whenever the pool allows.
    EmToppedUp,
    /// Live EM batches formed by the async roll-out scheduler (batches that
    /// actually ran fresh simulations; cache-hit replays never tick this).
    EmSchedBatches,
    /// Unused slots across all live scheduler batches: a batch of 3 with
    /// only 2 flights ready contributes one slack slot. The async scheduler
    /// exists to drive this toward zero.
    EmSchedSlackSlots,
    /// Live scheduler batches whose flights span more than one roll-out job
    /// (retry chains riding with fresh candidates, or candidates from
    /// different trials sharing a batch under interleaved experiment cells).
    EmSchedInterleaved,
    /// Persistent-store shard files read from disk (each shard is loaded
    /// lazily at most once per process, on the first probe that hashes to
    /// it).
    StoreShardLoads,
    /// Valid records parsed from persistent-store shards.
    StoreRecordsLoaded,
    /// Records appended to the persistent store and flushed to disk.
    StoreRecordsWritten,
    /// Corrupt persistent-store records skipped at load: a checksum
    /// mismatch costs the one record, a torn tail costs only the tail —
    /// never the run.
    StoreRecordsSkipped,
    /// Evaluation-cache hits served from a persistent-store record written
    /// by a *previous* process — the cross-run reuse the store exists for.
    StoreCrossJobHits,
    /// Surrogate models served from the persistent registry instead of
    /// retrained (each one elides every `ml.fit.*` span of that model).
    StoreModelHits,
    /// Registry probes that fell through to a cold fit (the fitted model
    /// is then recorded for future runs).
    StoreModelMisses,
    /// Jobs the multi-job engine ran to completion (every admitted job
    /// completes — a degraded or failed roll-out still counts, its
    /// resolution lands in the per-job report).
    EngineJobsCompleted,
    /// Admission waves the engine executed. Wave composition is a pure
    /// function of the queue and the fairness weights, so this is exact at
    /// any core-permit width.
    EngineWaves,
    /// Streaming-admission epochs the daemon executed (each epoch freezes
    /// its queue, then runs it through the engine verbatim).
    DaemonEpochs,
    /// Requests the daemon parsed off its socket (well-formed or not).
    DaemonRequests,
    /// Job submissions the daemon admitted into an epoch queue.
    DaemonJobsSubmitted,
    /// Jobs resolved as `cancelled` — withdrawn before their wave ran.
    DaemonJobsCancelled,
    /// Jobs resolved as `deadline_expired` at a wave-admission or stage
    /// boundary.
    DaemonJobsExpired,
    /// Finished jobs replayed verbatim from the journal after a restart
    /// (their results are never recomputed).
    DaemonJobsReplayed,
    /// Submissions refused because the tenant's rolling charged-EM-seconds
    /// budget was exhausted.
    QuotaRefusals,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 43] = [
        Counter::EmSimAttempted,
        Counter::EmSimSucceeded,
        Counter::EmSimFailed,
        Counter::EmBatchesCharged,
        Counter::SurrogatePredict,
        Counter::SurrogatePredictBatch,
        Counter::SurrogatePredictBatchRows,
        Counter::SurrogateJacobian,
        Counter::SurrogateJacobianBatch,
        Counter::SurrogateJacobianBatchRows,
        Counter::HarmonicaLassoSolves,
        Counter::HarmonicaStages,
        Counter::HyperbandPromotions,
        Counter::HyperbandPrunes,
        Counter::AdamSteps,
        Counter::EmCacheHits,
        Counter::EmCacheMisses,
        Counter::SurrogateMemoHits,
        Counter::SurrogateMemoMisses,
        Counter::TrainChunks,
        Counter::EmRetries,
        Counter::EmFailuresTransient,
        Counter::EmFailuresPermanent,
        Counter::EmToppedUp,
        Counter::EmSchedBatches,
        Counter::EmSchedSlackSlots,
        Counter::EmSchedInterleaved,
        Counter::StoreShardLoads,
        Counter::StoreRecordsLoaded,
        Counter::StoreRecordsWritten,
        Counter::StoreRecordsSkipped,
        Counter::StoreCrossJobHits,
        Counter::StoreModelHits,
        Counter::StoreModelMisses,
        Counter::EngineJobsCompleted,
        Counter::EngineWaves,
        Counter::DaemonEpochs,
        Counter::DaemonRequests,
        Counter::DaemonJobsSubmitted,
        Counter::DaemonJobsCancelled,
        Counter::DaemonJobsExpired,
        Counter::DaemonJobsReplayed,
        Counter::QuotaRefusals,
    ];

    /// Stable dotted label used in reports and threshold files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::EmSimAttempted => "em.sim.attempted",
            Counter::EmSimSucceeded => "em.sim.succeeded",
            Counter::EmSimFailed => "em.sim.failed",
            Counter::EmBatchesCharged => "em.batches_charged",
            Counter::SurrogatePredict => "surrogate.predict",
            Counter::SurrogatePredictBatch => "surrogate.predict_batch",
            Counter::SurrogatePredictBatchRows => "surrogate.predict_batch_rows",
            Counter::SurrogateJacobian => "surrogate.jacobian",
            Counter::SurrogateJacobianBatch => "surrogate.jacobian_batch",
            Counter::SurrogateJacobianBatchRows => "surrogate.jacobian_batch_rows",
            Counter::HarmonicaLassoSolves => "harmonica.lasso_solves",
            Counter::HarmonicaStages => "harmonica.stages",
            Counter::HyperbandPromotions => "hyperband.promotions",
            Counter::HyperbandPrunes => "hyperband.prunes",
            Counter::AdamSteps => "adam.steps",
            Counter::EmCacheHits => "em.cache.hits",
            Counter::EmCacheMisses => "em.cache.misses",
            Counter::SurrogateMemoHits => "surrogate.memo_hits",
            Counter::SurrogateMemoMisses => "surrogate.memo_misses",
            Counter::TrainChunks => "train.chunks",
            Counter::EmRetries => "em.retries",
            Counter::EmFailuresTransient => "em.failures_transient",
            Counter::EmFailuresPermanent => "em.failures_permanent",
            Counter::EmToppedUp => "em.topped_up",
            Counter::EmSchedBatches => "em.sched.batches",
            Counter::EmSchedSlackSlots => "em.sched.slack_slots",
            Counter::EmSchedInterleaved => "em.sched.interleaved",
            Counter::StoreShardLoads => "store.shard_loads",
            Counter::StoreRecordsLoaded => "store.records_loaded",
            Counter::StoreRecordsWritten => "store.records_written",
            Counter::StoreRecordsSkipped => "store.records_skipped",
            Counter::StoreCrossJobHits => "store.cross_job_hits",
            Counter::StoreModelHits => "store.model_hits",
            Counter::StoreModelMisses => "store.model_misses",
            Counter::EngineJobsCompleted => "engine.jobs_completed",
            Counter::EngineWaves => "engine.waves",
            Counter::DaemonEpochs => "daemon.epochs",
            Counter::DaemonRequests => "daemon.requests",
            Counter::DaemonJobsSubmitted => "daemon.submitted",
            Counter::DaemonJobsCancelled => "daemon.cancelled",
            Counter::DaemonJobsExpired => "daemon.expired",
            Counter::DaemonJobsReplayed => "daemon.replayed",
            Counter::QuotaRefusals => "quota.refusals",
        }
    }

    fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|&c| c == self)
            .expect("every counter is listed in ALL")
    }
}

/// Aggregated wall-clock statistics for one span label.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SpanStat {
    count: u64,
    total_seconds: f64,
    min_seconds: f64,
    max_seconds: f64,
}

impl SpanStat {
    fn record(&mut self, seconds: f64) {
        self.count += 1;
        self.total_seconds += seconds;
        self.min_seconds = self.min_seconds.min(seconds);
        self.max_seconds = self.max_seconds.max(seconds);
    }

    fn new(seconds: f64) -> Self {
        Self {
            count: 1,
            total_seconds: seconds,
            min_seconds: seconds,
            max_seconds: seconds,
        }
    }
}

/// Shared collection state behind an enabled [`Telemetry`] handle.
#[derive(Debug)]
struct Inner {
    counters: [AtomicU64; Counter::ALL.len()],
    /// Charged EM seconds (the paper's headline cost). Written only from
    /// the serial accounting section of the pipeline, so plain f64
    /// accumulation under a mutex stays deterministic.
    em_seconds: Mutex<f64>,
    /// EM seconds the evaluation cache elided: batches whose every member
    /// was a cache hit land here instead of `em_seconds`. The two ledgers
    /// partition the same logical charge — `charged + saved` is invariant
    /// under toggling the cache.
    em_seconds_saved: Mutex<f64>,
    spans: Mutex<BTreeMap<&'static str, SpanStat>>,
}

impl Inner {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            em_seconds: Mutex::new(0.0),
            em_seconds_saved: Mutex::new(0.0),
            spans: Mutex::new(BTreeMap::new()),
        }
    }
}

/// A cheap clonable telemetry handle.
///
/// Clones share the same registry, so a handle can be cloned into worker
/// threads, the EM simulator, and the surrogate wrapper and all recordings
/// land in one place. The default handle is **disabled**: it holds no
/// allocation and every recording method returns after one branch.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A collecting handle.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner::new())),
        }
    }

    /// A no-op handle (same as `Telemetry::default()`).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increments `counter` by one.
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Increments `counter` by `n`.
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of `counter` (0 when disabled).
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.counters[counter.index()].load(Ordering::Relaxed))
    }

    /// Adds `seconds` to the charged-EM-seconds ledger.
    pub fn charge_em_seconds(&self, seconds: f64) {
        if let Some(inner) = &self.inner {
            *inner
                .em_seconds
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) += seconds;
        }
    }

    /// Total charged EM seconds so far (0 when disabled).
    #[must_use]
    pub fn em_seconds(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |i| {
            *i.em_seconds
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
    }

    /// Adds `seconds` to the seconds-saved ledger: EM wall-clock that
    /// *would* have been charged had the evaluation cache not already held
    /// the result.
    pub fn save_em_seconds(&self, seconds: f64) {
        if let Some(inner) = &self.inner {
            *inner
                .em_seconds_saved
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) += seconds;
        }
    }

    /// Total EM seconds elided by cache hits so far (0 when disabled).
    #[must_use]
    pub fn em_seconds_saved(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |i| {
            *i.em_seconds_saved
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
    }

    /// Starts a wall-clock span; elapsed time is recorded under `label`
    /// when the returned guard drops. On a disabled handle the guard is
    /// inert and the clock is never read.
    #[must_use = "binding the guard to `_` drops it immediately and records a zero-length span"]
    pub fn span(&self, label: &'static str) -> SpanGuard {
        SpanGuard {
            active: self
                .inner
                .as_ref()
                .map(|inner| (Arc::clone(inner), label, Instant::now())),
        }
    }

    /// Snapshot of everything recorded so far as a [`RunReport`] with
    /// neutral metadata; callers fill in the run-specific fields
    /// (task/space/seed/threads/outcome).
    #[must_use]
    pub fn run_report(&self) -> RunReport {
        let mut report = RunReport::empty();
        report.em_seconds_charged = self.em_seconds();
        report.em_seconds_saved = self.em_seconds_saved();
        report.counters = Counter::ALL
            .iter()
            .map(|&c| CounterEntry {
                name: c.name().to_string(),
                value: self.counter(c),
            })
            .collect();
        if let Some(inner) = &self.inner {
            let spans = inner
                .spans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            report.spans = spans
                .iter()
                .map(|(label, s)| SpanEntry {
                    name: (*label).to_string(),
                    count: s.count,
                    total_seconds: s.total_seconds,
                    min_seconds: s.min_seconds,
                    max_seconds: s.max_seconds,
                })
                .collect();
        }
        report
    }
}

/// RAII guard recording a wall-clock span on drop. Created by
/// [`Telemetry::span`] or the [`span!`] macro.
#[derive(Debug)]
#[must_use = "binding the guard to `_` drops it immediately and records a zero-length span"]
pub struct SpanGuard {
    active: Option<(Arc<Inner>, &'static str, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, label, start)) = self.active.take() {
            let seconds = start.elapsed().as_secs_f64();
            // A panicking worker must not poison the whole registry: span
            // stats are self-consistent per entry, so recover the guard.
            let mut spans = inner
                .spans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            spans
                .entry(label)
                .and_modify(|s| s.record(seconds))
                .or_insert_with(|| SpanStat::new(seconds));
        }
    }
}

/// Opens a telemetry span: `let _guard = span!(tele, "harmonica.lasso");`.
///
/// Sugar over [`Telemetry::span`]; exists so instrumentation sites read as
/// declarations rather than method plumbing.
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $label:expr) => {
        $telemetry.span($label)
    };
}

// ---------------------------------------------------------------------------
// Machine-readable run report
// ---------------------------------------------------------------------------

/// One counter in a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Stable dotted label (see [`Counter::name`]).
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// Aggregated statistics for one span label in a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEntry {
    /// Span label (e.g. `"pipeline.rollout"`).
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Summed wall-clock, seconds.
    pub total_seconds: f64,
    /// Shortest single span, seconds.
    pub min_seconds: f64,
    /// Longest single span, seconds.
    pub max_seconds: f64,
}

/// The machine-readable outcome of an instrumented run: counters (exact,
/// deterministic at any thread width), per-label span timings (wall-clock),
/// charged EM seconds, and run metadata filled by the caller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Report format version; bump on breaking layout changes.
    pub schema_version: u32,
    /// Task label (e.g. `"T1"`), empty when not applicable.
    pub task: String,
    /// Space label (e.g. `"s1"`), empty when not applicable.
    pub space: String,
    /// Job id the report belongs to (multi-job engine runs tag every
    /// per-job report), empty for standalone runs.
    pub job: String,
    /// Tenant the job was admitted under, empty for standalone runs. The
    /// `isop report --aggregate` dashboard folds reports by this field.
    pub tenant: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Worker-thread width the run used.
    pub threads: usize,
    /// Whether the best verified design satisfied every constraint.
    pub success: bool,
    /// How the EM roll-out resolved: `"full"` when every requested slot was
    /// filled by a successful simulation, `"degraded"` when permanent
    /// failures left the roll-out short of `cand_num` even after top-up,
    /// `"all_simulations_failed"` when no simulation succeeded at all, and
    /// empty when not applicable (non-pipeline reports).
    pub resolution: String,
    /// Valid surrogate samples consumed.
    pub samples_seen: u64,
    /// Invalid encodings encountered.
    pub invalid_seen: u64,
    /// Real algorithm wall-clock, seconds.
    pub algorithm_seconds: f64,
    /// Simulated EM wall-clock charged at roll-out, seconds.
    pub em_seconds_charged: f64,
    /// Simulated EM wall-clock elided by evaluation-cache hits, seconds.
    /// `em_seconds_charged + em_seconds_saved` is invariant under toggling
    /// the cache for a fixed seed.
    pub em_seconds_saved: f64,
    /// Every typed counter, in [`Counter::ALL`] order.
    pub counters: Vec<CounterEntry>,
    /// Per-label span statistics, sorted by label.
    pub spans: Vec<SpanEntry>,
}

impl RunReport {
    /// Current schema version. v4: per-job `job` / `tenant` tags and the
    /// `engine.*` counters.
    pub const SCHEMA_VERSION: u32 = 4;

    /// A report with zeroed metrics and empty metadata.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            schema_version: Self::SCHEMA_VERSION,
            task: String::new(),
            space: String::new(),
            job: String::new(),
            tenant: String::new(),
            seed: 0,
            threads: 1,
            success: false,
            resolution: String::new(),
            samples_seen: 0,
            invalid_seen: 0,
            algorithm_seconds: 0.0,
            em_seconds_charged: 0.0,
            em_seconds_saved: 0.0,
            counters: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Looks up a counter value by label (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Looks up a span entry by label.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&SpanEntry> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Total recorded seconds for a span label (0 when absent) — the
    /// "stage timing" consumers read instead of re-measuring.
    #[must_use]
    pub fn span_seconds(&self, name: &str) -> f64 {
        self.span(name).map_or(0.0, |s| s.total_seconds)
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (the vendored writer never fails).
    pub fn to_json(&self) -> Result<String, serde::json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON or a shape mismatch.
    pub fn from_json(text: &str) -> Result<Self, serde::json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tele = Telemetry::disabled();
        tele.incr(Counter::SurrogatePredict);
        tele.add(Counter::AdamSteps, 50);
        tele.charge_em_seconds(15.0);
        {
            let _g = span!(tele, "noop");
        }
        assert!(!tele.is_enabled());
        assert_eq!(tele.counter(Counter::SurrogatePredict), 0);
        assert_eq!(tele.counter(Counter::AdamSteps), 0);
        assert_eq!(tele.em_seconds(), 0.0);
        let report = tele.run_report();
        assert!(report.spans.is_empty());
        assert!(report.counters.iter().all(|c| c.value == 0));
    }

    #[test]
    fn counters_accumulate_and_expose_names() {
        let tele = Telemetry::enabled();
        tele.incr(Counter::EmSimAttempted);
        tele.incr(Counter::EmSimAttempted);
        tele.add(Counter::SurrogatePredictBatchRows, 7);
        assert_eq!(tele.counter(Counter::EmSimAttempted), 2);
        let report = tele.run_report();
        assert_eq!(report.counter("em.sim.attempted"), 2);
        assert_eq!(report.counter("surrogate.predict_batch_rows"), 7);
        assert_eq!(report.counter("no.such.counter"), 0);
        assert_eq!(report.counters.len(), Counter::ALL.len());
    }

    #[test]
    fn clones_share_one_registry() {
        let tele = Telemetry::enabled();
        let other = tele.clone();
        other.incr(Counter::HarmonicaLassoSolves);
        tele.incr(Counter::HarmonicaLassoSolves);
        assert_eq!(tele.counter(Counter::HarmonicaLassoSolves), 2);
    }

    #[test]
    fn spans_aggregate_count_total_min_max() {
        let tele = Telemetry::enabled();
        for _ in 0..3 {
            let _g = tele.span("work");
        }
        let report = tele.run_report();
        let s = report.span("work").expect("recorded");
        assert_eq!(s.count, 3);
        assert!(s.total_seconds >= 0.0);
        assert!(s.min_seconds <= s.max_seconds);
        assert!(s.total_seconds >= s.max_seconds);
        assert_eq!(report.span_seconds("work"), s.total_seconds);
        assert!(report.span("absent").is_none());
    }

    #[test]
    fn concurrent_span_and_counter_writers_are_safe() {
        let tele = Telemetry::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = tele.clone();
                scope.spawn(move || {
                    for _ in 0..250 {
                        let _g = t.span("worker");
                        t.incr(Counter::AdamSteps);
                    }
                });
            }
        });
        assert_eq!(tele.counter(Counter::AdamSteps), 1000);
        let report = tele.run_report();
        assert_eq!(report.span("worker").expect("recorded").count, 1000);
    }

    #[test]
    fn em_ledger_accumulates() {
        let tele = Telemetry::enabled();
        tele.charge_em_seconds(15.0);
        tele.charge_em_seconds(0.5);
        assert!((tele.em_seconds() - 15.5).abs() < 1e-12);
        assert!((tele.run_report().em_seconds_charged - 15.5).abs() < 1e-12);
    }

    #[test]
    fn saved_ledger_is_separate_from_charged() {
        let tele = Telemetry::enabled();
        tele.charge_em_seconds(15.0);
        tele.save_em_seconds(30.0);
        tele.save_em_seconds(15.0);
        assert!((tele.em_seconds() - 15.0).abs() < 1e-12);
        assert!((tele.em_seconds_saved() - 45.0).abs() < 1e-12);
        let report = tele.run_report();
        assert!((report.em_seconds_charged - 15.0).abs() < 1e-12);
        assert!((report.em_seconds_saved - 45.0).abs() < 1e-12);
        // Disabled handles ignore the saved ledger too.
        let off = Telemetry::disabled();
        off.save_em_seconds(1.0);
        assert_eq!(off.em_seconds_saved(), 0.0);
    }

    #[test]
    fn cache_counters_have_stable_labels() {
        assert_eq!(Counter::EmCacheHits.name(), "em.cache.hits");
        assert_eq!(Counter::EmCacheMisses.name(), "em.cache.misses");
        assert_eq!(Counter::SurrogateMemoHits.name(), "surrogate.memo_hits");
        assert_eq!(Counter::SurrogateMemoMisses.name(), "surrogate.memo_misses");
        let tele = Telemetry::enabled();
        tele.add(Counter::EmCacheHits, 3);
        tele.incr(Counter::EmCacheMisses);
        assert_eq!(tele.run_report().counter("em.cache.hits"), 3);
        assert_eq!(tele.run_report().counter("em.cache.misses"), 1);
    }

    #[test]
    fn fault_counters_have_stable_labels() {
        assert_eq!(Counter::EmRetries.name(), "em.retries");
        assert_eq!(Counter::EmFailuresTransient.name(), "em.failures_transient");
        assert_eq!(Counter::EmFailuresPermanent.name(), "em.failures_permanent");
        assert_eq!(Counter::EmToppedUp.name(), "em.topped_up");
        let tele = Telemetry::enabled();
        tele.add(Counter::EmRetries, 2);
        tele.incr(Counter::EmFailuresTransient);
        tele.incr(Counter::EmFailuresPermanent);
        tele.incr(Counter::EmToppedUp);
        let report = tele.run_report();
        assert_eq!(report.counter("em.retries"), 2);
        assert_eq!(report.counter("em.failures_transient"), 1);
        assert_eq!(report.counter("em.failures_permanent"), 1);
        assert_eq!(report.counter("em.topped_up"), 1);
    }

    #[test]
    fn scheduler_counters_have_stable_labels() {
        assert_eq!(Counter::EmSchedBatches.name(), "em.sched.batches");
        assert_eq!(Counter::EmSchedSlackSlots.name(), "em.sched.slack_slots");
        assert_eq!(Counter::EmSchedInterleaved.name(), "em.sched.interleaved");
        let tele = Telemetry::enabled();
        tele.add(Counter::EmSchedBatches, 4);
        tele.incr(Counter::EmSchedSlackSlots);
        tele.incr(Counter::EmSchedInterleaved);
        let report = tele.run_report();
        assert_eq!(report.counter("em.sched.batches"), 4);
        assert_eq!(report.counter("em.sched.slack_slots"), 1);
        assert_eq!(report.counter("em.sched.interleaved"), 1);
    }

    #[test]
    fn store_counters_have_stable_labels() {
        assert_eq!(Counter::StoreShardLoads.name(), "store.shard_loads");
        assert_eq!(Counter::StoreRecordsLoaded.name(), "store.records_loaded");
        assert_eq!(Counter::StoreRecordsWritten.name(), "store.records_written");
        assert_eq!(Counter::StoreRecordsSkipped.name(), "store.records_skipped");
        assert_eq!(Counter::StoreCrossJobHits.name(), "store.cross_job_hits");
        assert_eq!(Counter::StoreModelHits.name(), "store.model_hits");
        assert_eq!(Counter::StoreModelMisses.name(), "store.model_misses");
        let tele = Telemetry::enabled();
        tele.incr(Counter::StoreShardLoads);
        tele.add(Counter::StoreRecordsLoaded, 5);
        tele.incr(Counter::StoreCrossJobHits);
        let report = tele.run_report();
        assert_eq!(report.counter("store.shard_loads"), 1);
        assert_eq!(report.counter("store.records_loaded"), 5);
        assert_eq!(report.counter("store.cross_job_hits"), 1);
    }

    #[test]
    fn engine_counters_have_stable_labels() {
        assert_eq!(Counter::EngineJobsCompleted.name(), "engine.jobs_completed");
        assert_eq!(Counter::EngineWaves.name(), "engine.waves");
        let tele = Telemetry::enabled();
        tele.add(Counter::EngineJobsCompleted, 4);
        tele.incr(Counter::EngineWaves);
        let report = tele.run_report();
        assert_eq!(report.counter("engine.jobs_completed"), 4);
        assert_eq!(report.counter("engine.waves"), 1);
    }

    #[test]
    fn daemon_counters_have_stable_labels() {
        assert_eq!(Counter::DaemonEpochs.name(), "daemon.epochs");
        assert_eq!(Counter::DaemonRequests.name(), "daemon.requests");
        assert_eq!(Counter::DaemonJobsSubmitted.name(), "daemon.submitted");
        assert_eq!(Counter::DaemonJobsCancelled.name(), "daemon.cancelled");
        assert_eq!(Counter::DaemonJobsExpired.name(), "daemon.expired");
        assert_eq!(Counter::DaemonJobsReplayed.name(), "daemon.replayed");
        assert_eq!(Counter::QuotaRefusals.name(), "quota.refusals");
        let tele = Telemetry::enabled();
        tele.incr(Counter::DaemonEpochs);
        tele.add(Counter::DaemonJobsSubmitted, 3);
        tele.incr(Counter::QuotaRefusals);
        let report = tele.run_report();
        assert_eq!(report.counter("daemon.epochs"), 1);
        assert_eq!(report.counter("daemon.submitted"), 3);
        assert_eq!(report.counter("quota.refusals"), 1);
    }

    /// A worker panicking while holding a ledger or span lock must not turn
    /// every later recording into a poison panic — fatal for a daemon that
    /// outlives individual jobs.
    #[test]
    fn poisoned_ledger_and_span_locks_recover() {
        let tele = Telemetry::enabled();
        tele.charge_em_seconds(2.0);
        {
            let _g = tele.span("daemon.poison");
        }
        let inner = Arc::clone(tele.inner.as_ref().expect("enabled"));
        let _ = std::thread::spawn(move || {
            let _ledger = inner.em_seconds.lock().expect("first lock is clean");
            let _saved = inner.em_seconds_saved.lock().expect("first lock is clean");
            let _spans = inner.spans.lock().expect("first lock is clean");
            panic!("poison every registry lock");
        })
        .join();
        tele.charge_em_seconds(4.0);
        tele.save_em_seconds(0.5);
        {
            let _g = tele.span("daemon.poison");
        }
        assert_eq!(tele.em_seconds(), 6.0);
        assert_eq!(tele.em_seconds_saved(), 0.5);
        let report = tele.run_report();
        assert_eq!(
            report.span("daemon.poison").expect("span survives").count,
            2
        );
    }

    #[test]
    fn run_report_carries_job_and_tenant_tags() {
        let mut report = Telemetry::enabled().run_report();
        assert!(report.job.is_empty() && report.tenant.is_empty());
        report.job = "job-7".to_string();
        report.tenant = "team-si".to_string();
        let back = RunReport::from_json(&report.to_json().expect("serializes")).expect("parses");
        assert_eq!(back.job, "job-7");
        assert_eq!(back.tenant, "team-si");
    }

    #[test]
    fn run_report_serde_round_trip() {
        let tele = Telemetry::enabled();
        tele.incr(Counter::EmSimSucceeded);
        tele.add(Counter::HyperbandPrunes, 12);
        tele.charge_em_seconds(15.166_666_666_666_666);
        {
            let _g = tele.span("pipeline.rollout");
        }
        let mut report = tele.run_report();
        report.task = "T1".to_string();
        report.space = "s1".to_string();
        report.seed = 42;
        report.threads = 4;
        report.success = true;
        report.resolution = "full".to_string();
        report.samples_seen = 900;
        report.algorithm_seconds = 1.25;

        let json = report.to_json().expect("serializes");
        let back = RunReport::from_json(&json).expect("parses");
        assert_eq!(back, report);
        assert_eq!(back.schema_version, RunReport::SCHEMA_VERSION);
        assert_eq!(back.resolution, "full");
        assert_eq!(back.counter("hyperband.prunes"), 12);
        assert_eq!(back.span("pipeline.rollout").expect("kept").count, 1);
    }

    #[test]
    fn every_counter_has_a_unique_name() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate counter label");
    }
}
