//! Simulated annealing over bitstrings — the paper's own SA baseline.
//!
//! Implemented exactly as Section IV-A describes: start from a random valid
//! solution, propose neighbours by flipping a few random bits, always accept
//! improvements, and accept regressions with probability
//! `exp((cost - new_cost) / T)` compared against a uniform draw in `[0, 1)`,
//! with the temperature decaying **linearly** over the iteration budget.

use crate::budget::Budget;
use crate::harmonica::BinarySample;
use crate::objective::BinaryObjective;
use crate::space::BinarySpace;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Simulated-annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Iteration budget (each iteration proposes one neighbour).
    pub iterations: usize,
    /// Initial temperature.
    pub initial_temp: f64,
    /// Maximum bits flipped per proposal (uniform in `1..=max_flips`).
    pub max_flips: usize,
    /// Resampling attempts when a proposal is invalid.
    pub max_resample: usize,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            iterations: 20_000,
            initial_temp: 1.0,
            max_flips: 3,
            max_resample: 16_384,
        }
    }
}

/// Outcome of an SA run.
#[derive(Debug, Clone)]
pub struct SaResult {
    /// Best sample found.
    pub best: Option<BinarySample>,
    /// Valid samples observed, in order.
    pub history: Vec<BinarySample>,
    /// Iterations executed.
    pub iterations_run: usize,
}

/// Runs simulated annealing on `obj` within `space`.
pub fn run(
    obj: &mut dyn BinaryObjective,
    space: &BinarySpace,
    cfg: &SaConfig,
    budget: &mut Budget,
    rng: &mut StdRng,
) -> SaResult {
    assert_eq!(space.n_bits(), obj.n_bits(), "space/objective bit mismatch");
    let mut history = Vec::new();

    // Initial valid solution.
    let mut current: Option<(Vec<bool>, f64)> = None;
    for _ in 0..cfg.max_resample {
        let bits = space.sample(rng);
        if let Some(v) = obj.eval(&bits) {
            budget.record_samples(1);
            history.push(BinarySample {
                bits: bits.clone(),
                value: v,
            });
            current = Some((bits, v));
            break;
        }
    }
    let Some((mut cur_bits, mut cur_val)) = current else {
        return SaResult {
            best: None,
            history,
            iterations_run: 0,
        };
    };
    let mut best = BinarySample {
        bits: cur_bits.clone(),
        value: cur_val,
    };

    let free_bits: Vec<usize> = (0..space.n_bits())
        .filter(|&i| space.restriction(i).is_none())
        .collect();
    if free_bits.is_empty() {
        return SaResult {
            best: Some(best),
            history,
            iterations_run: 0,
        };
    }

    let mut iterations_run = 0;
    for iter in 0..cfg.iterations {
        if budget.exhausted() {
            break;
        }
        iterations_run = iter + 1;
        // Linear temperature decay, floored slightly above zero.
        let temp = (cfg.initial_temp * (1.0 - iter as f64 / cfg.iterations as f64)).max(1e-9);

        // Propose a valid neighbour.
        let mut proposal: Option<(Vec<bool>, f64)> = None;
        for _ in 0..cfg.max_resample {
            let mut cand = cur_bits.clone();
            let flips = rng.gen_range(1..=cfg.max_flips.max(1));
            for _ in 0..flips {
                let b = free_bits[rng.gen_range(0..free_bits.len())];
                cand[b] = !cand[b];
            }
            if let Some(v) = obj.eval(&cand) {
                budget.record_samples(1);
                proposal = Some((cand, v));
                break;
            }
        }
        let Some((cand, cand_val)) = proposal else {
            continue;
        };
        history.push(BinarySample {
            bits: cand.clone(),
            value: cand_val,
        });

        let accept = if cand_val <= cur_val {
            true
        } else {
            let p = ((cur_val - cand_val) / temp).exp();
            rng.gen::<f64>() < p
        };
        if accept {
            cur_bits = cand;
            cur_val = cand_val;
            if cur_val < best.value {
                best = BinarySample {
                    bits: cur_bits.clone(),
                    value: cur_val,
                };
            }
        }
    }

    SaResult {
        best: Some(best),
        history,
        iterations_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::BinaryFn;
    use rand::SeedableRng;

    /// Objective: number of bits differing from a hidden target pattern.
    fn hamming_objective(n: usize, target_seed: u64) -> (impl BinaryObjective, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(target_seed);
        let target: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let t = target.clone();
        (
            BinaryFn::new(n, move |b: &[bool]| {
                Some(b.iter().zip(&t).filter(|(a, b)| a != b).count() as f64)
            }),
            target,
        )
    }

    #[test]
    fn solves_hamming_distance() {
        let (mut obj, target) = hamming_objective(24, 5);
        let cfg = SaConfig {
            iterations: 8000,
            ..SaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let mut rng = StdRng::seed_from_u64(1);
        let res = run(
            &mut obj,
            &BinarySpace::free(24),
            &cfg,
            &mut budget,
            &mut rng,
        );
        let best = res.best.expect("found something");
        assert_eq!(best.value, 0.0, "should reach the target exactly");
        assert_eq!(best.bits, target);
    }

    #[test]
    fn respects_fixed_bits() {
        let (mut obj, _) = hamming_objective(12, 9);
        let mut space = BinarySpace::free(12);
        space.fix(0, true);
        space.fix(7, false);
        let cfg = SaConfig {
            iterations: 500,
            ..SaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let mut rng = StdRng::seed_from_u64(2);
        let res = run(&mut obj, &space, &cfg, &mut budget, &mut rng);
        for s in &res.history {
            assert!(s.bits[0]);
            assert!(!s.bits[7]);
        }
    }

    #[test]
    fn budget_limits_iterations() {
        let (mut obj, _) = hamming_objective(16, 3);
        let cfg = SaConfig {
            iterations: 100_000,
            ..SaConfig::default()
        };
        let mut budget = Budget::unlimited().with_samples(500);
        let mut rng = StdRng::seed_from_u64(3);
        let res = run(
            &mut obj,
            &BinarySpace::free(16),
            &cfg,
            &mut budget,
            &mut rng,
        );
        assert!(res.iterations_run < 100_000);
        assert!(budget.samples() >= 500);
    }

    #[test]
    fn handles_invalid_regions() {
        // Invalid whenever bit 2 is set: SA must still optimize the rest.
        let mut obj = BinaryFn::new(8, |b: &[bool]| {
            if b[2] {
                None
            } else {
                Some(b.iter().filter(|&&x| x).count() as f64)
            }
        });
        let cfg = SaConfig {
            iterations: 2000,
            ..SaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let mut rng = StdRng::seed_from_u64(4);
        let res = run(&mut obj, &BinarySpace::free(8), &cfg, &mut budget, &mut rng);
        let best = res.best.expect("found");
        assert_eq!(best.value, 0.0);
        assert!(res.history.iter().all(|s| !s.bits[2]));
    }

    #[test]
    fn best_is_minimum_of_history() {
        let (mut obj, _) = hamming_objective(16, 11);
        let cfg = SaConfig {
            iterations: 1000,
            ..SaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let mut rng = StdRng::seed_from_u64(5);
        let res = run(
            &mut obj,
            &BinarySpace::free(16),
            &cfg,
            &mut budget,
            &mut rng,
        );
        let min = res
            .history
            .iter()
            .map(|s| s.value)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(res.best.unwrap().value, min);
    }
}
