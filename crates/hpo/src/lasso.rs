//! Lasso regression by cyclic coordinate descent with soft-thresholding.
//!
//! This is the polynomial-sparse-recovery (PSR) workhorse inside Harmonica:
//! given parity features of the sampled bitstrings, the L1 penalty recovers
//! the few Fourier coefficients that explain the objective (Stobbe & Krause,
//! AISTATS'12; Hazan et al., ICLR'18).

/// Result of a Lasso fit.
#[derive(Debug, Clone, PartialEq)]
pub struct LassoFit {
    /// Coefficients, one per feature column.
    pub coefficients: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
    /// Iterations used.
    pub iterations: usize,
}

impl LassoFit {
    /// Indices of the `k` largest-magnitude nonzero coefficients, sorted by
    /// magnitude descending. NaN coefficients rank after every finite one
    /// (same [`nan_last`](crate::order::nan_last) total order as the rest
    /// of the ranking paths) instead of panicking the comparator.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.coefficients.len())
            .filter(|&i| self.coefficients[i] != 0.0)
            .collect();
        // Ascending on -|c| is descending on |c|; -|NaN| is NaN and lands
        // last under the total order.
        idx.sort_by(|&a, &b| {
            crate::order::nan_last(-self.coefficients[a].abs(), -self.coefficients[b].abs())
        });
        idx.truncate(k);
        idx
    }
}

/// Fits `min ||y - X w - b||^2 / (2n) + lambda ||w||_1` by cyclic coordinate
/// descent.
///
/// `x` is row-major `n x d`. Columns are used as-is (parity features are
/// already `{-1, +1}`-normalized). Converges when the largest coefficient
/// update falls below `tol`.
///
/// # Panics
///
/// Panics if `x.len() != n * d`, `y.len() != n`, or `n == 0`.
pub fn lasso_coordinate_descent(
    x: &[f64],
    y: &[f64],
    n: usize,
    d: usize,
    lambda: f64,
    max_iter: usize,
    tol: f64,
) -> LassoFit {
    lasso_coordinate_descent_traced(
        x,
        y,
        n,
        d,
        lambda,
        max_iter,
        tol,
        &isop_telemetry::Telemetry::disabled(),
    )
}

/// [`lasso_coordinate_descent`] recording a `harmonica.lasso` span and a
/// [`Counter::HarmonicaLassoSolves`](isop_telemetry::Counter) tick on
/// `telemetry` — the PSR accounting surface the run report aggregates.
///
/// # Panics
///
/// Panics if `x.len() != n * d`, `y.len() != n`, or `n == 0`.
#[allow(clippy::too_many_arguments)]
pub fn lasso_coordinate_descent_traced(
    x: &[f64],
    y: &[f64],
    n: usize,
    d: usize,
    lambda: f64,
    max_iter: usize,
    tol: f64,
    telemetry: &isop_telemetry::Telemetry,
) -> LassoFit {
    let _span = isop_telemetry::span!(telemetry, "harmonica.lasso");
    telemetry.incr(isop_telemetry::Counter::HarmonicaLassoSolves);
    assert_eq!(x.len(), n * d, "feature matrix shape mismatch");
    assert_eq!(y.len(), n, "target length mismatch");
    assert!(n > 0, "need at least one sample");

    // Transpose once into a column-major layout: each coordinate update
    // then streams one contiguous column instead of a stride-`d` walk
    // through the row-major input — the O(n·d)-strided pass this kernel
    // used to pay per update.
    let mut cols = vec![0.0f64; n * d];
    for row in 0..n {
        for j in 0..d {
            cols[j * n + row] = x[row * d + j];
        }
    }

    // Precompute the column self-inner-products: z_j = <x_j, x_j> / n.
    // Row accumulation order matches the update loops below, so the same
    // value falls out whichever layout computed it.
    let mut col_norm = vec![0.0f64; d];
    for (j, z) in col_norm.iter_mut().enumerate() {
        let col = &cols[j * n..(j + 1) * n];
        *z = col.iter().map(|v| v * v).sum::<f64>() / n as f64;
    }

    let mut w = vec![0.0f64; d];
    let y_mean = y.iter().sum::<f64>() / n as f64;
    let mut intercept = y_mean;

    // Residual r_i = y_i - intercept - sum_j x_ij w_j.
    let mut resid: Vec<f64> = y.iter().map(|v| v - intercept).collect();

    // Active-set cycling: after one full sweep, restrict sweeps to the
    // coordinates currently in the support (w_j != 0). When an active-only
    // sweep stagnates, run a full sweep to let new coordinates enter; the
    // solve only converges when a *full* sweep stagnates, so the optimality
    // conditions are checked over every coordinate.
    let mut iterations = 0;
    let mut sweep_all = true;
    for iter in 0..max_iter {
        iterations = iter + 1;
        let full = sweep_all;
        let mut max_delta = 0.0f64;
        for j in 0..d {
            if col_norm[j] == 0.0 || (!full && w[j] == 0.0) {
                continue;
            }
            let col = &cols[j * n..(j + 1) * n];
            // rho = (1/n) * sum_i x_ij (r_i + x_ij w_j)
            let wj = w[j];
            let mut rho = 0.0;
            for (xij, r) in col.iter().zip(resid.iter()) {
                rho += xij * (r + xij * wj);
            }
            rho /= n as f64;
            let w_new = soft_threshold(rho, lambda) / col_norm[j];
            let delta = w_new - wj;
            if delta != 0.0 {
                for (xij, r) in col.iter().zip(resid.iter_mut()) {
                    *r -= xij * delta;
                }
                w[j] = w_new;
                max_delta = max_delta.max(delta.abs());
            }
        }
        // Refresh intercept to the residual mean.
        let r_mean = resid.iter().sum::<f64>() / n as f64;
        if r_mean.abs() > 0.0 {
            intercept += r_mean;
            for r in &mut resid {
                *r -= r_mean;
            }
            max_delta = max_delta.max(r_mean.abs());
        }
        if full {
            if max_delta < tol {
                break;
            }
            sweep_all = false;
        } else if max_delta < tol {
            sweep_all = true;
        }
    }

    LassoFit {
        coefficients: w,
        intercept,
        iterations,
    }
}

#[inline]
fn soft_threshold(v: f64, lambda: f64) -> f64 {
    if v > lambda {
        v - lambda
    } else if v < -lambda {
        v + lambda
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// Random {-1, +1} design matrix.
    fn sign_matrix(n: usize, d: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * d)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect()
    }

    #[test]
    fn soft_threshold_basics() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }

    #[test]
    fn recovers_sparse_signal() {
        // y depends on columns 3 and 17 only; Lasso must find exactly those.
        let (n, d) = (120, 40);
        let x = sign_matrix(n, d, 0);
        let y: Vec<f64> = (0..n)
            .map(|i| 2.0 * x[i * d + 3] - 1.5 * x[i * d + 17] + 0.7)
            .collect();
        let fit = lasso_coordinate_descent(&x, &y, n, d, 0.05, 500, 1e-8);
        let top = fit.top_k(2);
        assert_eq!(
            {
                let mut t = top.clone();
                t.sort_unstable();
                t
            },
            vec![3, 17],
            "coefficients: {:?}",
            fit.top_k(5)
        );
        assert!((fit.coefficients[3] - 2.0).abs() < 0.2);
        assert!((fit.coefficients[17] + 1.5).abs() < 0.2);
        assert!((fit.intercept - 0.7).abs() < 0.2);
    }

    #[test]
    fn heavy_lambda_zeroes_everything() {
        let (n, d) = (50, 10);
        let x = sign_matrix(n, d, 1);
        let y: Vec<f64> = (0..n).map(|i| x[i * d] * 0.1).collect();
        let fit = lasso_coordinate_descent(&x, &y, n, d, 10.0, 200, 1e-8);
        assert!(fit.coefficients.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn zero_lambda_interpolates_well() {
        let (n, d) = (200, 5);
        let x = sign_matrix(n, d, 2);
        let y: Vec<f64> = (0..n)
            .map(|i| (0..d).map(|j| (j as f64 + 1.0) * x[i * d + j]).sum())
            .collect();
        let fit = lasso_coordinate_descent(&x, &y, n, d, 0.0, 2000, 1e-12);
        for j in 0..d {
            assert!(
                (fit.coefficients[j] - (j as f64 + 1.0)).abs() < 1e-6,
                "w[{j}] = {}",
                fit.coefficients[j]
            );
        }
    }

    #[test]
    fn noise_robustness() {
        let (n, d) = (300, 60);
        let x = sign_matrix(n, d, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let y: Vec<f64> = (0..n)
            .map(|i| 3.0 * x[i * d + 7] + 0.1 * (rng.gen::<f64>() - 0.5))
            .collect();
        let fit = lasso_coordinate_descent(&x, &y, n, d, 0.08, 500, 1e-8);
        assert_eq!(fit.top_k(1), vec![7]);
    }

    #[test]
    fn traced_fit_matches_untraced_and_counts_solves() {
        use isop_telemetry::{Counter, Telemetry};
        let (n, d) = (60, 8);
        let x = sign_matrix(n, d, 5);
        let y: Vec<f64> = (0..n).map(|i| 1.5 * x[i * d + 2]).collect();
        let plain = lasso_coordinate_descent(&x, &y, n, d, 0.05, 200, 1e-8);
        let tele = Telemetry::enabled();
        let traced = lasso_coordinate_descent_traced(&x, &y, n, d, 0.05, 200, 1e-8, &tele);
        assert_eq!(plain, traced, "tracing must not change the fit");
        assert_eq!(tele.counter(Counter::HarmonicaLassoSolves), 1);
        assert_eq!(
            tele.run_report()
                .span("harmonica.lasso")
                .expect("span")
                .count,
            1
        );
    }

    #[test]
    fn top_k_orders_by_magnitude() {
        let fit = LassoFit {
            coefficients: vec![0.1, -3.0, 0.0, 2.0],
            intercept: 0.0,
            iterations: 1,
        };
        assert_eq!(fit.top_k(2), vec![1, 3]);
        assert_eq!(fit.top_k(10), vec![1, 3, 0]);
    }

    /// The seed code sorted with `partial_cmp(..).expect("finite
    /// coefficients")` and panicked on any NaN coefficient (a divergent
    /// solve, e.g. NaN targets, produces them). NaNs must rank last.
    #[test]
    fn top_k_ranks_nan_coefficients_last_without_panicking() {
        let fit = LassoFit {
            coefficients: vec![f64::NAN, 2.0, -5.0, 0.0, f64::NAN],
            intercept: 0.0,
            iterations: 1,
        };
        assert_eq!(fit.top_k(2), vec![2, 1]);
        let all = fit.top_k(10);
        assert_eq!(&all[..2], &[2, 1]);
        assert_eq!(all.len(), 4, "NaN coefficients stay eligible, rank last");
        assert!(fit.coefficients[all[2]].is_nan());
        assert!(fit.coefficients[all[3]].is_nan());

        // End-to-end: a fit against NaN targets must not panic top_k.
        let (n, dd) = (30, 6);
        let x = sign_matrix(n, dd, 9);
        let y = vec![f64::NAN; n];
        let fit = lasso_coordinate_descent(&x, &y, n, dd, 0.05, 50, 1e-8);
        let _ = fit.top_k(3);
    }
}
