//! Hyperband: bandit-based configuration selection through adaptive resource
//! allocation and early stopping (Li et al., JMLR'17).
//!
//! Hyperband hedges over the exploration/exploitation trade-off by running
//! several successive-halving brackets with different initial configuration
//! counts `n` for a shared budget. ISOP+ uses it at the end of the global
//! stage to pick the `p` gradient-descent seeds out of the Harmonica-reduced
//! space — the paper reports it outperforms naive random sampling there.

use crate::order::nan_last;
use isop_telemetry::{Counter, Telemetry};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Hyperband control parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperbandConfig {
    /// Maximum resource `R` allocatable to a single configuration.
    pub max_resource: f64,
    /// Halving factor `eta` (canonically 3).
    pub eta: f64,
}

impl Default for HyperbandConfig {
    fn default() -> Self {
        Self {
            max_resource: 27.0,
            eta: 3.0,
        }
    }
}

/// A configuration with its final evaluated loss and the resource it was
/// granted.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranked<C> {
    /// The configuration.
    pub config: C,
    /// Loss at the largest resource it reached (lower is better).
    pub loss: f64,
    /// The resource it was last evaluated at.
    pub resource: f64,
}

/// Runs Hyperband.
///
/// * `sample` draws a fresh random configuration;
/// * `eval(rng, config, resource)` returns the loss of `config` when
///   granted `resource` units (lower is better). The run RNG is lent to the
///   hook so stochastic fidelity schemes (e.g. random neighbourhood probes)
///   draw from the same deterministic stream as the sampler.
///
/// Returns every configuration that survived to the end of its bracket,
/// sorted by loss ascending; `NaN` losses rank last.
///
/// # Panics
///
/// Panics if `eta <= 1` or `max_resource < 1`.
pub fn run<C: Clone>(
    cfg: &HyperbandConfig,
    rng: &mut StdRng,
    sample: impl FnMut(&mut StdRng) -> C,
    eval: impl FnMut(&mut StdRng, &C, f64) -> f64,
) -> Vec<Ranked<C>> {
    run_traced(cfg, rng, &Telemetry::disabled(), sample, eval)
}

/// [`run`] with telemetry: records a `hyperband.rung` span per successive
/// halving rung and counts configurations promoted to the next rung vs
/// pruned at it.
pub fn run_traced<C: Clone>(
    cfg: &HyperbandConfig,
    rng: &mut StdRng,
    telemetry: &Telemetry,
    mut sample: impl FnMut(&mut StdRng) -> C,
    mut eval: impl FnMut(&mut StdRng, &C, f64) -> f64,
) -> Vec<Ranked<C>> {
    assert!(cfg.eta > 1.0, "eta must exceed 1");
    assert!(cfg.max_resource >= 1.0, "max_resource must be >= 1");
    let s_max = (cfg.max_resource.ln() / cfg.eta.ln()).floor() as i32;
    let b = (s_max as f64 + 1.0) * cfg.max_resource;

    let mut finalists: Vec<Ranked<C>> = Vec::new();
    for s in (0..=s_max).rev() {
        let n = ((b / cfg.max_resource) * cfg.eta.powi(s) / (s as f64 + 1.0)).ceil() as usize;
        let r = cfg.max_resource * cfg.eta.powi(-s);

        // Successive halving on n configs starting at resource r.
        let mut pool: Vec<C> = (0..n.max(1)).map(|_| sample(rng)).collect();
        let mut last: Vec<Ranked<C>> = Vec::new();
        for i in 0..=s {
            let _span = isop_telemetry::span!(telemetry, "hyperband.rung");
            let r_i = r * cfg.eta.powi(i);
            let mut scored: Vec<Ranked<C>> = pool
                .iter()
                .map(|c| Ranked {
                    config: c.clone(),
                    loss: eval(rng, c, r_i),
                    resource: r_i,
                })
                .collect();
            scored.sort_by(|a, b| nan_last(a.loss, b.loss));
            let keep = ((pool.len() as f64) / cfg.eta).floor() as usize;
            last = scored;
            if i < s {
                let promoted = keep.max(1).min(last.len());
                telemetry.add(Counter::HyperbandPromotions, promoted as u64);
                telemetry.add(Counter::HyperbandPrunes, (last.len() - promoted) as u64);
                pool = last
                    .iter()
                    .take(promoted)
                    .map(|r| r.config.clone())
                    .collect();
            }
        }
        finalists.extend(last.into_iter().take(1.max(n / 4)));
    }
    finalists.sort_by(|a, b| nan_last(a.loss, b.loss));
    finalists
}

/// Plain successive halving (one Hyperband bracket): `n` configurations,
/// halving by `eta` each rung until one remains or `rungs` are exhausted.
pub fn successive_halving<C: Clone>(
    n: usize,
    rungs: usize,
    eta: f64,
    base_resource: f64,
    rng: &mut StdRng,
    mut sample: impl FnMut(&mut StdRng) -> C,
    mut eval: impl FnMut(&mut StdRng, &C, f64) -> f64,
) -> Vec<Ranked<C>> {
    assert!(n > 0 && eta > 1.0);
    let mut pool: Vec<C> = (0..n).map(|_| sample(rng)).collect();
    let mut scored: Vec<Ranked<C>> = Vec::new();
    for i in 0..rungs.max(1) {
        let r_i = base_resource * eta.powi(i as i32);
        scored = pool
            .iter()
            .map(|c| Ranked {
                config: c.clone(),
                loss: eval(rng, c, r_i),
                resource: r_i,
            })
            .collect();
        scored.sort_by(|a, b| nan_last(a.loss, b.loss));
        let keep = ((pool.len() as f64) / eta).floor().max(1.0) as usize;
        if i + 1 < rungs {
            pool = scored.iter().take(keep).map(|r| r.config.clone()).collect();
        }
        if pool.len() <= 1 {
            break;
        }
    }
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn finds_good_configuration_on_noisy_quadratic() {
        // Config = a scalar in [0, 1]; true loss = (x - 0.7)^2, noisier at
        // small resource (this is the scenario hyperband is built for).
        let mut rng = StdRng::seed_from_u64(1);
        let mut noise_rng = StdRng::seed_from_u64(2);
        let results = run(
            &HyperbandConfig::default(),
            &mut rng,
            |r| r.gen::<f64>(),
            |_, &x, resource| {
                let noise = (noise_rng.gen::<f64>() - 0.5) / resource.sqrt();
                (x - 0.7) * (x - 0.7) + 0.3 * noise
            },
        );
        assert!(!results.is_empty());
        let best = results[0].config;
        assert!((best - 0.7).abs() < 0.2, "best = {best}");
    }

    #[test]
    fn results_sorted_ascending() {
        let mut rng = StdRng::seed_from_u64(3);
        let results = run(
            &HyperbandConfig::default(),
            &mut rng,
            |r| r.gen::<f64>(),
            |_, &x, _| x,
        );
        for w in results.windows(2) {
            assert!(w[0].loss <= w[1].loss);
        }
    }

    #[test]
    fn bracket_resources_do_not_exceed_max() {
        let cfg = HyperbandConfig {
            max_resource: 9.0,
            eta: 3.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut max_seen = 0.0f64;
        let _ = run(
            &cfg,
            &mut rng,
            |r| r.gen::<f64>(),
            |_, _, resource| {
                max_seen = max_seen.max(resource);
                0.0
            },
        );
        assert!(max_seen <= 9.0 + 1e-9, "resource overshoot: {max_seen}");
    }

    /// Tracing is observation-only (same draws, same ranking) and the
    /// promotion/prune counters partition every non-final rung's pool.
    #[test]
    fn traced_run_matches_plain_run_and_counts_rungs() {
        use isop_telemetry::Telemetry;
        let cfg = HyperbandConfig {
            max_resource: 9.0,
            eta: 3.0,
        };
        let mut rng_a = StdRng::seed_from_u64(8);
        let plain = run(&cfg, &mut rng_a, |r| r.gen::<f64>(), |_, &x, _| x);
        let tele = Telemetry::enabled();
        let mut rng_b = StdRng::seed_from_u64(8);
        let traced = run_traced(&cfg, &mut rng_b, &tele, |r| r.gen::<f64>(), |_, &x, _| x);
        assert_eq!(plain, traced);
        let promoted = tele.counter(Counter::HyperbandPromotions);
        let pruned = tele.counter(Counter::HyperbandPrunes);
        assert!(promoted > 0, "some configs must survive a rung");
        assert!(pruned > 0, "some configs must be pruned");
        let rungs = tele
            .run_report()
            .span("hyperband.rung")
            .expect("span")
            .count;
        assert!(rungs >= 2, "multiple rungs expected, saw {rungs}");
    }

    #[test]
    fn successive_halving_narrows_pool() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut evals = 0usize;
        let results = successive_halving(
            27,
            4,
            3.0,
            1.0,
            &mut rng,
            |r| r.gen::<f64>(),
            |_, &x, _| {
                evals += 1;
                (x - 0.25).abs()
            },
        );
        assert!(!results.is_empty());
        // Rungs of 27, 9, and 3 configs; the loop stops once one survivor
        // remains after the third rung: 27 + 9 + 3 = 39 evaluations.
        assert_eq!(evals, 39);
        assert!((results[0].config - 0.25).abs() < 0.2);
    }

    #[test]
    fn single_config_halving_works() {
        let mut rng = StdRng::seed_from_u64(6);
        let results = successive_halving(1, 3, 3.0, 1.0, &mut rng, |_| 42usize, |_, _, _| 1.0);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].config, 42);
    }
}
