//! Exhaustive / strided grid search over a [`DiscreteSpace`].
//!
//! Infeasible on the paper's `10^19+` spaces (which is the point of the
//! comparison), but exact on small spaces and useful for validating the
//! other searchers in tests.

use crate::budget::Budget;
use crate::objective::DiscreteObjective;
use crate::space::DiscreteSpace;
use crate::tpe::Observation;

/// Iterates configurations of `space` in row-major order with an optional
/// per-dimension `stride`, evaluating each until exhaustion or budget stop.
///
/// Returns the best observation.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn run(
    obj: &mut dyn DiscreteObjective,
    space: &DiscreteSpace,
    stride: usize,
    budget: &mut Budget,
) -> Option<Observation> {
    assert!(stride > 0, "stride must be positive");
    let dims = space.n_dims();
    let mut levels = vec![0usize; dims];
    let mut best: Option<Observation> = None;
    loop {
        if budget.exhausted() {
            break;
        }
        let value = obj.eval(&levels);
        budget.record_samples(1);
        if best.as_ref().is_none_or(|b| value < b.value) {
            best = Some(Observation {
                levels: levels.clone(),
                value,
            });
        }
        // Odometer increment with stride.
        let mut d = dims;
        loop {
            if d == 0 {
                return best;
            }
            d -= 1;
            levels[d] += stride;
            if levels[d] < space.cardinality(d) {
                break;
            }
            levels[d] = 0;
        }
    }
    best
}

/// Number of grid points `run` would visit at the given stride.
pub fn grid_size(space: &DiscreteSpace, stride: usize) -> f64 {
    space
        .cardinalities()
        .iter()
        .map(|&c| c.div_ceil(stride) as f64)
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::DiscreteFn;

    #[test]
    fn exhaustive_grid_finds_exact_optimum() {
        let space = DiscreteSpace::new(vec![7, 5]);
        let mut obj = DiscreteFn::new(vec![7, 5], |l: &[usize]| {
            ((l[0] as f64 - 4.0).powi(2)) + ((l[1] as f64 - 2.0).powi(2))
        });
        let mut budget = Budget::unlimited();
        let best = run(&mut obj, &space, 1, &mut budget).expect("found");
        assert_eq!(best.levels, vec![4, 2]);
        assert_eq!(best.value, 0.0);
        assert_eq!(budget.samples(), 35);
    }

    #[test]
    fn stride_skips_points() {
        let space = DiscreteSpace::new(vec![10]);
        let mut seen = Vec::new();
        let mut obj = DiscreteFn::new(vec![10], |l: &[usize]| {
            seen.push(l[0]);
            0.0
        });
        let mut budget = Budget::unlimited();
        let _ = run(&mut obj, &space, 3, &mut budget);
        assert_eq!(seen, vec![0, 3, 6, 9]);
    }

    #[test]
    fn grid_size_matches_visits() {
        let space = DiscreteSpace::new(vec![10, 4]);
        assert_eq!(grid_size(&space, 3), 4.0 * 2.0);
        let mut count = 0usize;
        let mut obj = DiscreteFn::new(vec![10, 4], |_: &[usize]| {
            count += 1;
            0.0
        });
        let mut budget = Budget::unlimited();
        let _ = run(&mut obj, &space, 3, &mut budget);
        assert_eq!(count as f64, grid_size(&space, 3));
    }

    #[test]
    fn budget_stops_mid_grid() {
        let space = DiscreteSpace::new(vec![100, 100]);
        let mut obj = DiscreteFn::new(vec![100, 100], |_: &[usize]| 1.0);
        let mut budget = Budget::unlimited().with_samples(50);
        let _ = run(&mut obj, &space, 1, &mut budget);
        assert_eq!(budget.samples(), 50);
    }
}
