//! NaN-safe total orderings for ranking losses.
//!
//! Search code ranks candidates by floating-point loss. A surrogate can
//! return `NaN` (e.g. a diverged model), and `partial_cmp(..).expect(..)`
//! turns that into a panic deep inside a sort. [`nan_last`] instead defines
//! the total order the optimizer wants: finite-and-ordinary values first via
//! [`f64::total_cmp`], every `NaN` (either sign bit) after all numbers.

use std::cmp::Ordering;

/// Total order on `f64` with **every** `NaN` sorting after all numbers.
///
/// Ascending sorts (`sort_by(|a, b| nan_last(*a, *b))`) therefore keep the
/// best (smallest) losses first and push poisoned entries to the tail, where
/// truncation drops them. Note plain [`f64::total_cmp`] alone is not enough:
/// it orders negative-sign-bit NaNs *before* every number.
#[must_use]
pub fn nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_ordinary_values_ascending() {
        let mut v = vec![3.0, -1.0, 2.5, 0.0, -0.0];
        v.sort_by(|a, b| nan_last(*a, *b));
        assert_eq!(v, vec![-1.0, -0.0, 0.0, 2.5, 3.0]);
    }

    #[test]
    fn nan_sorts_after_everything() {
        let neg_nan = f64::from_bits(f64::NAN.to_bits() | (1 << 63));
        let mut v = [f64::NAN, 1.0, neg_nan, f64::NEG_INFINITY, f64::INFINITY];
        v.sort_by(|a, b| nan_last(*a, *b));
        assert_eq!(v[0], f64::NEG_INFINITY);
        assert_eq!(v[1], 1.0);
        assert_eq!(v[2], f64::INFINITY);
        assert!(v[3].is_nan() && v[4].is_nan());
    }

    #[test]
    fn nan_ties_are_equal() {
        assert_eq!(nan_last(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(nan_last(1.0, 1.0), Ordering::Equal);
    }
}
