//! # isop-hpo — hyperparameter-optimization substrate
//!
//! The search algorithms the ISOP+ paper builds on or compares against, all
//! implemented from scratch:
//!
//! * [`harmonica`] — the spectral HPO method of Hazan, Klivans & Yuan
//!   (ICLR'18) over `{-1, +1}^n`: sample, fit a **sparse low-degree Fourier
//!   polynomial** via Lasso ([`lasso`]), fix the most significant bits,
//!   shrink the space, repeat. This powers ISOP+'s global stage.
//! * [`hyperband`] — bandit-based successive halving (Li et al., JMLR'17),
//!   used by ISOP+ to pick candidates out of the reduced space.
//! * [`sa`] — the paper's own simulated-annealing baseline (linear
//!   temperature decay, `exp(delta / T)` acceptance).
//! * [`tpe`] — a tree-structured Parzen estimator in the style of Optuna,
//!   the paper's Bayesian-optimization baseline (sequential by design, which
//!   is exactly the runtime handicap Tables IV/V exhibit).
//! * [`random`] / [`grid`] — reference searchers.
//!
//! Searchers operate over two space views: a binary cube
//! ([`space::BinarySpace`], Harmonica/SA) and a per-parameter discrete space
//! ([`space::DiscreteSpace`], TPE/random/grid). The `isop` core crate maps
//! stack-up parameter spaces onto both.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod grid;
pub mod harmonica;
pub mod hyperband;
pub mod lasso;
pub mod objective;
pub mod order;
pub mod random;
pub mod sa;
pub mod space;
pub mod tpe;

pub use budget::Budget;
pub use objective::{BinaryObjective, DiscreteObjective, Evaluation};
pub use order::nan_last;
pub use space::{BinarySpace, DiscreteSpace};
