//! Search-space descriptions and sampling.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A binary search cube `{0, 1}^n` with optional per-bit restrictions —
/// the view Harmonica and simulated annealing operate on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinarySpace {
    /// Per-bit restriction: `None` = free, `Some(b)` = fixed to `b`.
    fixed: Vec<Option<bool>>,
}

impl BinarySpace {
    /// A fully free cube of `n_bits` dimensions.
    pub fn free(n_bits: usize) -> Self {
        Self {
            fixed: vec![None; n_bits],
        }
    }

    /// Number of bits.
    pub fn n_bits(&self) -> usize {
        self.fixed.len()
    }

    /// Number of still-free bits.
    pub fn n_free(&self) -> usize {
        self.fixed.iter().filter(|f| f.is_none()).count()
    }

    /// Fixes bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn fix(&mut self, i: usize, value: bool) {
        self.fixed[i] = Some(value);
    }

    /// The restriction on bit `i` (`None` = free).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn restriction(&self, i: usize) -> Option<bool> {
        self.fixed[i]
    }

    /// Draws a uniform sample consistent with the restrictions.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<bool> {
        self.fixed
            .iter()
            .map(|f| f.unwrap_or_else(|| rng.gen::<bool>()))
            .collect()
    }

    /// Projects `bits` onto the space by overwriting restricted positions.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != n_bits()`.
    pub fn project(&self, bits: &mut [bool]) {
        assert_eq!(bits.len(), self.fixed.len(), "bit length mismatch");
        for (b, f) in bits.iter_mut().zip(&self.fixed) {
            if let Some(v) = f {
                *b = *v;
            }
        }
    }

    /// `true` when `bits` satisfies every restriction.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != n_bits()`.
    pub fn contains(&self, bits: &[bool]) -> bool {
        assert_eq!(bits.len(), self.fixed.len(), "bit length mismatch");
        bits.iter()
            .zip(&self.fixed)
            .all(|(b, f)| f.is_none_or(|v| v == *b))
    }

    /// log2 of the remaining space size.
    pub fn log2_size(&self) -> f64 {
        self.n_free() as f64
    }
}

/// A per-parameter discrete search space: dimension `i` takes integer levels
/// `0..cardinalities[i]` — the view TPE, random, and grid search use.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscreteSpace {
    cardinalities: Vec<usize>,
}

impl DiscreteSpace {
    /// Creates a space from per-dimension level counts.
    ///
    /// # Panics
    ///
    /// Panics if any dimension has zero levels.
    pub fn new(cardinalities: Vec<usize>) -> Self {
        assert!(
            cardinalities.iter().all(|&c| c > 0),
            "every dimension needs at least one level"
        );
        Self { cardinalities }
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.cardinalities.len()
    }

    /// Level count of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cardinality(&self, i: usize) -> usize {
        self.cardinalities[i]
    }

    /// All level counts.
    pub fn cardinalities(&self) -> &[usize] {
        &self.cardinalities
    }

    /// Total number of configurations, as `f64` (spaces like `10^20` exceed
    /// `u64`).
    pub fn size(&self) -> f64 {
        self.cardinalities.iter().map(|&c| c as f64).product()
    }

    /// Uniform random configuration.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<usize> {
        self.cardinalities
            .iter()
            .map(|&c| rng.gen_range(0..c))
            .collect()
    }

    /// `true` when every level is in range.
    pub fn contains(&self, levels: &[usize]) -> bool {
        levels.len() == self.cardinalities.len()
            && levels.iter().zip(&self.cardinalities).all(|(l, c)| l < c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn free_space_samples_vary() {
        let s = BinarySpace::free(16);
        let mut rng = StdRng::seed_from_u64(0);
        let a = s.sample(&mut rng);
        let b = s.sample(&mut rng);
        assert_eq!(a.len(), 16);
        assert_ne!(a, b, "two 16-bit samples should differ");
    }

    #[test]
    fn fixed_bits_always_respected() {
        let mut s = BinarySpace::free(8);
        s.fix(2, true);
        s.fix(5, false);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let x = s.sample(&mut rng);
            assert!(x[2]);
            assert!(!x[5]);
            assert!(s.contains(&x));
        }
        assert_eq!(s.n_free(), 6);
    }

    #[test]
    fn project_enforces_restrictions() {
        let mut s = BinarySpace::free(4);
        s.fix(0, true);
        let mut bits = vec![false, false, true, true];
        s.project(&mut bits);
        assert!(bits[0]);
        assert!(s.contains(&bits));
    }

    #[test]
    fn contains_rejects_violations() {
        let mut s = BinarySpace::free(3);
        s.fix(1, true);
        assert!(!s.contains(&[true, false, true]));
        assert!(s.contains(&[true, true, true]));
    }

    #[test]
    fn log2_size_counts_free_bits() {
        let mut s = BinarySpace::free(10);
        assert_eq!(s.log2_size(), 10.0);
        s.fix(0, false);
        s.fix(9, true);
        assert_eq!(s.log2_size(), 8.0);
    }

    #[test]
    fn discrete_space_size() {
        let s = DiscreteSpace::new(vec![3, 5, 2]);
        assert_eq!(s.size(), 30.0);
        assert_eq!(s.n_dims(), 3);
        assert_eq!(s.cardinality(1), 5);
    }

    #[test]
    fn discrete_samples_in_range() {
        let s = DiscreteSpace::new(vec![4, 7, 1]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let x = s.sample(&mut rng);
            assert!(s.contains(&x));
            assert_eq!(x[2], 0, "cardinality-1 dims are always level 0");
        }
    }

    #[test]
    fn discrete_contains_rejects_bad_levels() {
        let s = DiscreteSpace::new(vec![2, 2]);
        assert!(!s.contains(&[2, 0]));
        assert!(!s.contains(&[0]));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_cardinality_panics() {
        let _ = DiscreteSpace::new(vec![3, 0]);
    }

    #[test]
    fn huge_space_size_is_finite() {
        let s = DiscreteSpace::new(vec![100; 15]);
        assert!(s.size().is_finite());
        assert_eq!(s.size(), 1e30);
    }
}
