//! Search budgets: wall-clock and sample-count limits.
//!
//! The paper's experiments match baselines either on runtime ("-1" variants)
//! or on the number of observed samples ("-2" variants); [`Budget`] expresses
//! both, plus a simulated-seconds ledger so that "EM simulation time" can be
//! accounted the way the paper does without actually sleeping.

use std::time::{Duration, Instant};

/// A composite stop condition for searchers.
#[derive(Debug, Clone)]
pub struct Budget {
    started: Instant,
    max_wall: Option<Duration>,
    max_samples: Option<u64>,
    samples: u64,
    simulated_seconds: f64,
}

impl Budget {
    /// A budget with no limits (searcher-internal stop rules apply).
    pub fn unlimited() -> Self {
        Self {
            started: Instant::now(),
            max_wall: None,
            max_samples: None,
            samples: 0,
            simulated_seconds: 0.0,
        }
    }

    /// Limits wall-clock time.
    pub fn with_wall_clock(mut self, limit: Duration) -> Self {
        self.max_wall = Some(limit);
        self
    }

    /// Limits the number of samples.
    pub fn with_samples(mut self, limit: u64) -> Self {
        self.max_samples = Some(limit);
        self
    }

    /// Records `n` consumed samples.
    pub fn record_samples(&mut self, n: u64) {
        self.samples += n;
    }

    /// Adds simulated seconds (e.g. the nominal cost of an EM run).
    pub fn record_simulated_seconds(&mut self, s: f64) {
        self.simulated_seconds += s;
    }

    /// Samples consumed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Simulated seconds accumulated so far.
    pub fn simulated_seconds(&self) -> f64 {
        self.simulated_seconds
    }

    /// Real elapsed wall-clock.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// `true` once any limit is hit.
    pub fn exhausted(&self) -> bool {
        if let Some(w) = self.max_wall {
            if self.started.elapsed() >= w {
                return true;
            }
        }
        if let Some(s) = self.max_samples {
            if self.samples >= s {
                return true;
            }
        }
        false
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut b = Budget::unlimited();
        b.record_samples(1_000_000);
        assert!(!b.exhausted());
    }

    #[test]
    fn sample_limit_trips() {
        let mut b = Budget::unlimited().with_samples(10);
        b.record_samples(9);
        assert!(!b.exhausted());
        b.record_samples(1);
        assert!(b.exhausted());
    }

    #[test]
    fn wall_clock_limit_trips() {
        let b = Budget::unlimited().with_wall_clock(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.exhausted());
    }

    #[test]
    fn simulated_seconds_accumulate() {
        let mut b = Budget::unlimited();
        b.record_simulated_seconds(15.2);
        b.record_simulated_seconds(15.2);
        assert!((b.simulated_seconds() - 30.4).abs() < 1e-12);
    }
}
