//! The Harmonica spectral HPO algorithm (Hazan, Klivans & Yuan, ICLR'18),
//! adapted as in the ISOP+ paper.
//!
//! Each stage draws `q` uniform samples from the current (restricted) binary
//! cube, evaluates the objective in batch, fits a **sparse low-degree Fourier
//! polynomial** to the observations via Lasso (the PSR subroutine of Eq. 3),
//! and fixes the bits appearing in the most significant monomials to their
//! best joint assignment — shrinking the search space multiplicatively while
//! remaining trivially parallelizable, in contrast to sequential BO.
//!
//! Invalid encodings (the objective returns `None`) are excluded from the fit
//! and resampled, matching the paper's handling of the `2^73` vs `7.14e19`
//! discrepancy in `S_1`.

use crate::budget::Budget;
use crate::lasso::lasso_coordinate_descent_traced;
use crate::objective::BinaryObjective;
use crate::space::BinarySpace;
use isop_telemetry::{Counter, Telemetry};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Harmonica hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarmonicaConfig {
    /// Number of restriction stages (`iter_num` in Algorithm 1).
    pub stages: usize,
    /// Samples drawn per stage (`q`).
    pub samples_per_stage: usize,
    /// Maximum parity degree of the Fourier features (1 or 2).
    pub degree: usize,
    /// Lasso regularization strength.
    pub lambda: f64,
    /// Number of significant monomials kept by the PSR step.
    pub top_monomials: usize,
    /// Maximum bits fixed per stage.
    pub bits_per_stage: usize,
    /// Resampling attempts per requested valid sample.
    pub max_resample: usize,
}

impl Default for HarmonicaConfig {
    fn default() -> Self {
        Self {
            stages: 3,
            samples_per_stage: 300,
            degree: 2,
            lambda: 0.02,
            top_monomials: 8,
            bits_per_stage: 6,
            max_resample: 16_384,
        }
    }
}

/// One evaluated sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinarySample {
    /// The bitstring.
    pub bits: Vec<bool>,
    /// Objective value (lower is better).
    pub value: f64,
}

/// Outcome of a Harmonica run.
#[derive(Debug, Clone)]
pub struct HarmonicaResult {
    /// The final restricted space.
    pub space: BinarySpace,
    /// Every valid sample observed, in evaluation order.
    pub history: Vec<BinarySample>,
    /// The best sample seen.
    pub best: Option<BinarySample>,
    /// Stages actually completed (budget may stop early).
    pub stages_run: usize,
}

/// A parity feature over one, two, or three bit positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Parity {
    Single(usize),
    Pair(usize, usize),
    Triple(usize, usize, usize),
}

impl Parity {
    fn value(&self, bits: &[bool]) -> f64 {
        let sign = |b: bool| if b { 1.0 } else { -1.0 };
        match *self {
            Parity::Single(i) => sign(bits[i]),
            Parity::Pair(i, j) => sign(bits[i]) * sign(bits[j]),
            Parity::Triple(i, j, k) => sign(bits[i]) * sign(bits[j]) * sign(bits[k]),
        }
    }

    fn bits(&self) -> Vec<usize> {
        match *self {
            Parity::Single(i) => vec![i],
            Parity::Pair(i, j) => vec![i, j],
            Parity::Triple(i, j, k) => vec![i, j, k],
        }
    }
}

/// Builds parity features up to `degree` (1–3). The original Harmonica paper
/// works with degree <= 3; degree 2 is the ISOP+ default (degree 3 on a
/// 73-bit space costs ~C(73,3) ~ 62k Lasso columns — supported, but budget
/// for it).
fn build_features(free_bits: &[usize], degree: usize) -> Vec<Parity> {
    let mut feats: Vec<Parity> = free_bits.iter().map(|&i| Parity::Single(i)).collect();
    if degree >= 2 {
        for (a, &i) in free_bits.iter().enumerate() {
            for &j in &free_bits[a + 1..] {
                feats.push(Parity::Pair(i, j));
            }
        }
    }
    if degree >= 3 {
        for (a, &i) in free_bits.iter().enumerate() {
            for (b, &j) in free_bits[a + 1..].iter().enumerate() {
                for &k in &free_bits[a + 1 + b + 1..] {
                    feats.push(Parity::Triple(i, j, k));
                }
            }
        }
    }
    feats
}

/// Draws up to `count` valid samples from `space`, evaluating via `obj`.
fn sample_valid(
    obj: &mut dyn BinaryObjective,
    space: &BinarySpace,
    count: usize,
    max_resample: usize,
    budget: &mut Budget,
    rng: &mut StdRng,
) -> Vec<BinarySample> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if budget.exhausted() {
            break;
        }
        let mut found = false;
        for _ in 0..max_resample {
            let bits = space.sample(rng);
            if let Some(value) = obj.eval(&bits) {
                budget.record_samples(1);
                out.push(BinarySample { bits, value });
                found = true;
                break;
            }
        }
        if !found {
            // Space may be overwhelmingly invalid here; give up on this draw.
            continue;
        }
    }
    out
}

/// Runs Harmonica starting from `space`.
///
/// `on_stage` fires after each stage with that stage's valid samples — the
/// hook ISOP+ uses for adaptive weight adjustment (Algorithm 2), which makes
/// the objective for the *next* stage differ.
pub fn run(
    obj: &mut dyn BinaryObjective,
    space: BinarySpace,
    cfg: &HarmonicaConfig,
    budget: &mut Budget,
    rng: &mut StdRng,
    on_stage: impl FnMut(usize, &[BinarySample]),
) -> HarmonicaResult {
    run_traced(
        obj,
        space,
        cfg,
        budget,
        rng,
        &Telemetry::disabled(),
        on_stage,
    )
}

/// [`run`] with telemetry: records a `harmonica.sample` span around each
/// stage's sampling batch, counts Lasso solves and completed stages, and
/// forwards the handle into the PSR Lasso fit.
pub fn run_traced(
    obj: &mut dyn BinaryObjective,
    mut space: BinarySpace,
    cfg: &HarmonicaConfig,
    budget: &mut Budget,
    rng: &mut StdRng,
    telemetry: &Telemetry,
    mut on_stage: impl FnMut(usize, &[BinarySample]),
) -> HarmonicaResult {
    assert_eq!(space.n_bits(), obj.n_bits(), "space/objective bit mismatch");
    let mut history: Vec<BinarySample> = Vec::new();
    let mut best: Option<BinarySample> = None;
    let mut stages_run = 0;

    for stage in 0..cfg.stages {
        if budget.exhausted() || space.n_free() == 0 {
            break;
        }
        let samples = {
            let _span = isop_telemetry::span!(telemetry, "harmonica.sample");
            sample_valid(
                obj,
                &space,
                cfg.samples_per_stage,
                cfg.max_resample,
                budget,
                rng,
            )
        };
        if samples.len() < 8 {
            break; // not enough data for a meaningful fit
        }
        stages_run = stage + 1;
        telemetry.incr(Counter::HarmonicaStages);

        for s in &samples {
            if best.as_ref().is_none_or(|b| s.value < b.value) {
                best = Some(s.clone());
            }
        }

        // PSR: fit a sparse polynomial over parity features of free bits.
        let free_bits: Vec<usize> = (0..space.n_bits())
            .filter(|&i| space.restriction(i).is_none())
            .collect();
        let feats = build_features(&free_bits, cfg.degree);
        let n = samples.len();
        let d = feats.len();
        let mut xmat = vec![0.0f64; n * d];
        let mut yvec = vec![0.0f64; n];
        for (r, s) in samples.iter().enumerate() {
            for (c, f) in feats.iter().enumerate() {
                xmat[r * d + c] = f.value(&s.bits);
            }
            yvec[r] = s.value;
        }
        let fit =
            lasso_coordinate_descent_traced(&xmat, &yvec, n, d, cfg.lambda, 300, 1e-7, telemetry);
        let top = fit.top_k(cfg.top_monomials);

        // Collect the bits of the significant monomials, most significant
        // first, capped at bits_per_stage.
        let mut chosen: Vec<usize> = Vec::new();
        for &m in &top {
            for b in feats[m].bits() {
                if !chosen.contains(&b) {
                    chosen.push(b);
                }
            }
            if chosen.len() >= cfg.bits_per_stage {
                chosen.truncate(cfg.bits_per_stage);
                break;
            }
        }
        if chosen.is_empty() {
            on_stage(stage, &samples);
            history.extend(samples);
            continue; // nothing significant; keep sampling next stage
        }

        // Enumerate assignments of the chosen bits and rank them by the
        // restricted polynomial (monomials fully inside `chosen`; partial
        // monomials average to zero over the free bits).
        let k = chosen.len();
        let mut ranked: Vec<(f64, usize)> = (0..(1usize << k))
            .map(|assign| {
                let bit_of = |b: usize| -> Option<bool> {
                    chosen
                        .iter()
                        .position(|&c| c == b)
                        .map(|p| (assign >> p) & 1 == 1)
                };
                let mut val = fit.intercept;
                for &m in &top {
                    let bits = feats[m].bits();
                    let signs: Option<f64> = bits
                        .iter()
                        .map(|&b| bit_of(b).map(|v| if v { 1.0 } else { -1.0 }))
                        .product();
                    if let Some(sign) = signs {
                        val += fit.coefficients[m] * sign;
                    }
                }
                (val, assign)
            })
            .collect();
        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite polynomial"));

        // Fix the best assignment whose restricted space is still *alive*:
        // an assignment can force a parameter code past its level count
        // (e.g. both bits of a 3-level parameter set), leaving a space with
        // no valid designs. Probe each candidate restriction with a handful
        // of draws and fall through to the next assignment if it is dead.
        let mut fixed_any = false;
        for (_, assign) in ranked {
            let mut trial_space = space.clone();
            for (p, &b) in chosen.iter().enumerate() {
                trial_space.fix(b, (assign >> p) & 1 == 1);
            }
            let alive = (0..cfg.max_resample.clamp(64, 1024)).any(|_| {
                let bits = trial_space.sample(rng);
                obj.eval(&bits).is_some()
            });
            if alive {
                space = trial_space;
                fixed_any = true;
                break;
            }
        }
        let _ = fixed_any; // a dead stage simply leaves the space unrestricted

        on_stage(stage, &samples);
        history.extend(samples);
    }

    HarmonicaResult {
        space,
        history,
        best,
        stages_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::BinaryFn;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    /// Objective with a known sparse structure: bit 0 must be 1, bit 3 must
    /// be 0, and bits 5 xor 6 must be 1; everything else is noise-free slack.
    fn sparse_objective() -> impl BinaryObjective {
        BinaryFn::new(16, |b: &[bool]| {
            let sign = |x: bool| if x { 1.0 } else { -1.0 };
            Some(-2.0 * sign(b[0]) + 1.5 * sign(b[3]) + sign(b[5]) * sign(b[6]))
        })
    }

    #[test]
    fn fixes_significant_bits_correctly() {
        let mut obj = sparse_objective();
        let cfg = HarmonicaConfig {
            stages: 2,
            samples_per_stage: 200,
            top_monomials: 4,
            bits_per_stage: 4,
            lambda: 0.05,
            ..HarmonicaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let res = run(
            &mut obj,
            BinarySpace::free(16),
            &cfg,
            &mut budget,
            &mut rng(),
            |_, _| {},
        );
        // The dominant single-bit terms must be fixed to their minimizers.
        assert_eq!(res.space.restriction(0), Some(true), "bit 0 -> +1");
        assert_eq!(res.space.restriction(3), Some(false), "bit 3 -> -1");
        assert!(res.best.is_some());
    }

    #[test]
    fn shrinks_the_space() {
        let mut obj = sparse_objective();
        let cfg = HarmonicaConfig {
            stages: 3,
            samples_per_stage: 150,
            ..HarmonicaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let res = run(
            &mut obj,
            BinarySpace::free(16),
            &cfg,
            &mut budget,
            &mut rng(),
            |_, _| {},
        );
        assert!(res.space.n_free() < 16, "space must shrink");
        assert!(res.stages_run >= 1);
    }

    #[test]
    fn stage_callback_sees_samples() {
        let mut obj = sparse_objective();
        let cfg = HarmonicaConfig {
            stages: 2,
            samples_per_stage: 60,
            ..HarmonicaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let mut stage_sizes = Vec::new();
        let _ = run(
            &mut obj,
            BinarySpace::free(16),
            &cfg,
            &mut budget,
            &mut rng(),
            |stage, samples| {
                stage_sizes.push((stage, samples.len()));
            },
        );
        assert_eq!(stage_sizes.len(), 2);
        assert!(stage_sizes.iter().all(|&(_, n)| n > 0));
    }

    #[test]
    fn sample_budget_stops_early() {
        let mut obj = sparse_objective();
        let cfg = HarmonicaConfig {
            stages: 10,
            samples_per_stage: 100,
            ..HarmonicaConfig::default()
        };
        let mut budget = Budget::unlimited().with_samples(150);
        let res = run(
            &mut obj,
            BinarySpace::free(16),
            &cfg,
            &mut budget,
            &mut rng(),
            |_, _| {},
        );
        assert!(res.stages_run <= 2);
        assert!(budget.samples() >= 150);
    }

    #[test]
    fn invalid_points_are_resampled() {
        // Half the cube (bit 15 set) is invalid.
        let mut obj = BinaryFn::new(16, |b: &[bool]| {
            if b[15] {
                None
            } else {
                Some(if b[0] { -1.0 } else { 1.0 })
            }
        });
        let cfg = HarmonicaConfig {
            stages: 1,
            samples_per_stage: 100,
            ..HarmonicaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let res = run(
            &mut obj,
            BinarySpace::free(16),
            &cfg,
            &mut budget,
            &mut rng(),
            |_, _| {},
        );
        assert!(
            res.history.iter().all(|s| !s.bits[15]),
            "no invalid samples kept"
        );
        assert!(res.history.len() >= 90, "resampling must recover the count");
    }

    #[test]
    fn best_tracks_minimum_of_history() {
        let mut obj = sparse_objective();
        let cfg = HarmonicaConfig {
            stages: 2,
            samples_per_stage: 80,
            ..HarmonicaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let res = run(
            &mut obj,
            BinarySpace::free(16),
            &cfg,
            &mut budget,
            &mut rng(),
            |_, _| {},
        );
        let hist_min = res
            .history
            .iter()
            .map(|s| s.value)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(res.best.unwrap().value, hist_min);
    }

    /// Regression test: the PSR step must never fix bits into a dead
    /// (all-invalid) subspace. Here bit pattern (b0, b1) = (1, 1) is the
    /// only invalid region but also where the unconstrained polynomial
    /// minimum lies — Harmonica must fall through to a live assignment and
    /// keep producing samples in later stages.
    #[test]
    fn bit_fixing_avoids_dead_subspaces() {
        let mut obj = BinaryFn::new(10, |b: &[bool]| {
            if b[0] && b[1] {
                return None; // invalid encoding region
            }
            let sign = |x: bool| if x { 1.0 } else { -1.0 };
            // Pushes both b0 and b1 towards 1 (the dead corner).
            Some(-3.0 * sign(b[0]) - 3.0 * sign(b[1]))
        });
        let cfg = HarmonicaConfig {
            stages: 3,
            samples_per_stage: 80,
            top_monomials: 4,
            bits_per_stage: 2,
            lambda: 0.05,
            ..HarmonicaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let res = run(
            &mut obj,
            BinarySpace::free(10),
            &cfg,
            &mut budget,
            &mut rng(),
            |_, _| {},
        );
        assert_eq!(res.stages_run, 3, "later stages must stay alive");
        // The space must still contain valid points.
        let mut check_rng = StdRng::seed_from_u64(99);
        let mut found_valid = false;
        for _ in 0..2000 {
            let bits = res.space.sample(&mut check_rng);
            if !(bits[0] && bits[1]) {
                found_valid = true;
                break;
            }
        }
        assert!(found_valid, "restricted space must not be dead");
        // And the best value is the live optimum: exactly one of b0/b1 set
        // gives -3 * (+1) - 3 * (-1) = 0.
        assert_eq!(res.best.expect("found").value, 0.0);
    }

    /// Tracing must be observation-only: the traced run draws the same RNG
    /// stream and returns the same result, while the counters account one
    /// Lasso solve per completed stage.
    #[test]
    fn traced_run_matches_plain_run_and_counts_stages() {
        let cfg = HarmonicaConfig {
            stages: 2,
            samples_per_stage: 120,
            ..HarmonicaConfig::default()
        };
        let mut plain_obj = sparse_objective();
        let plain = run(
            &mut plain_obj,
            BinarySpace::free(16),
            &cfg,
            &mut Budget::unlimited(),
            &mut rng(),
            |_, _| {},
        );
        let tele = Telemetry::enabled();
        let mut traced_obj = sparse_objective();
        let traced = run_traced(
            &mut traced_obj,
            BinarySpace::free(16),
            &cfg,
            &mut Budget::unlimited(),
            &mut rng(),
            &tele,
            |_, _| {},
        );
        assert_eq!(plain.history, traced.history);
        assert_eq!(plain.best, traced.best);
        assert_eq!(plain.stages_run, traced.stages_run);
        assert_eq!(
            tele.counter(Counter::HarmonicaStages),
            traced.stages_run as u64
        );
        assert_eq!(
            tele.counter(Counter::HarmonicaLassoSolves),
            traced.stages_run as u64,
            "one PSR solve per completed stage"
        );
        assert_eq!(
            tele.run_report()
                .span("harmonica.sample")
                .expect("span")
                .count,
            traced.stages_run as u64
        );
    }

    #[test]
    fn parity_feature_values() {
        let bits = [true, false, true];
        assert_eq!(Parity::Single(0).value(&bits), 1.0);
        assert_eq!(Parity::Single(1).value(&bits), -1.0);
        assert_eq!(Parity::Pair(0, 1).value(&bits), -1.0);
        assert_eq!(Parity::Pair(0, 2).value(&bits), 1.0);
    }

    #[test]
    fn feature_count_matches_degree() {
        let free = vec![0, 1, 2, 3];
        assert_eq!(build_features(&free, 1).len(), 4);
        assert_eq!(build_features(&free, 2).len(), 4 + 6);
        assert_eq!(build_features(&free, 3).len(), 4 + 6 + 4);
    }

    #[test]
    fn triple_parity_value() {
        let bits = [true, false, true, true];
        assert_eq!(Parity::Triple(0, 1, 2).value(&bits), -1.0);
        assert_eq!(Parity::Triple(0, 2, 3).value(&bits), 1.0);
        assert_eq!(Parity::Triple(1, 2, 3).bits(), vec![1, 2, 3]);
    }

    /// Degree-3 Harmonica recovers an XOR-of-three structure that degree-2
    /// features cannot represent.
    #[test]
    fn degree_three_captures_triple_interaction() {
        let mut obj = BinaryFn::new(8, |b: &[bool]| {
            let sign = |x: bool| if x { 1.0 } else { -1.0 };
            Some(2.0 * sign(b[1]) * sign(b[4]) * sign(b[6]))
        });
        let cfg = HarmonicaConfig {
            stages: 1,
            samples_per_stage: 220,
            degree: 3,
            top_monomials: 3,
            bits_per_stage: 3,
            lambda: 0.05,
            ..HarmonicaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let res = run(
            &mut obj,
            BinarySpace::free(8),
            &cfg,
            &mut budget,
            &mut rng(),
            |_, _| {},
        );
        // The triple must be fixed to a joint assignment with product -1.
        let fixed: Vec<Option<bool>> = [1, 4, 6]
            .iter()
            .map(|&b| res.space.restriction(b))
            .collect();
        if fixed.iter().all(Option::is_some) {
            let product: f64 = fixed
                .iter()
                .map(|v| if v.expect("checked") { 1.0 } else { -1.0 })
                .product();
            assert_eq!(product, -1.0, "joint assignment must minimize the parity");
        }
        assert_eq!(res.best.expect("found").value, -2.0);
    }
}
