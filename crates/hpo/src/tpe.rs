//! Tree-structured Parzen estimator — the Optuna-style Bayesian-optimization
//! baseline of the paper.
//!
//! TPE models `p(x | y good)` and `p(x | y bad)` instead of `p(y | x)`:
//! observations are split at the `gamma` quantile of the objective, each
//! dimension gets a smoothed categorical density for the good and bad sets,
//! and the next point maximizes the density ratio `l(x) / g(x)` over a batch
//! of candidates drawn from `l`. Like Optuna's default, evaluation is
//! **sequential** — one sample per iteration — which is precisely why the
//! paper's BO-1/BO-2 rows observe far fewer samples than Harmonica-based
//! ISOP+ in matched wall-clock.
//!
//! [`Tpe::ask_batch`] adds q-point suggestion on top: one KDE build
//! proposes `q` distinct points per refit, so a BO baseline driving a
//! batched EM scheduler can fill all its batch slots without pretending
//! the model saw results it does not have yet (a constant-liar-free
//! variant of the q-EI batching in He et al.'s parallel PCB BO). With
//! `batch_size = 1` the proposal stream is bit-identical to [`Tpe::ask`].

use crate::budget::Budget;
use crate::objective::DiscreteObjective;
use crate::space::DiscreteSpace;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// TPE control parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpeConfig {
    /// Random-search iterations before the model kicks in.
    pub n_startup: usize,
    /// Quantile separating "good" observations.
    pub gamma: f64,
    /// Candidates drawn from `l` per iteration.
    pub n_ei_candidates: usize,
    /// Additive smoothing weight on the categorical densities.
    pub prior_weight: f64,
    /// Points proposed per KDE refit (`q`). `1` reproduces the classic
    /// sequential loop bit for bit; the batched EM scheduler sets this to
    /// its slot count so BO keeps the simulator's batches full.
    pub batch_size: usize,
}

impl Default for TpeConfig {
    fn default() -> Self {
        Self {
            n_startup: 10,
            gamma: 0.25,
            n_ei_candidates: 24,
            prior_weight: 1.0,
            batch_size: 1,
        }
    }
}

/// One TPE observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Level vector.
    pub levels: Vec<usize>,
    /// Objective value.
    pub value: f64,
}

/// Sequential TPE optimizer (ask/tell interface).
#[derive(Debug, Clone)]
pub struct Tpe {
    cfg: TpeConfig,
    space: DiscreteSpace,
    observations: Vec<Observation>,
}

impl Tpe {
    /// Creates an optimizer over `space`.
    pub fn new(space: DiscreteSpace, cfg: TpeConfig) -> Self {
        Self {
            cfg,
            space,
            observations: Vec::new(),
        }
    }

    /// Observations so far.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Best observation so far.
    pub fn best(&self) -> Option<&Observation> {
        self.observations
            .iter()
            .min_by(|a, b| a.value.partial_cmp(&b.value).expect("finite values"))
    }

    /// Records an evaluated point.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is outside the space.
    pub fn tell(&mut self, levels: Vec<usize>, value: f64) {
        assert!(self.space.contains(&levels), "levels outside the space");
        self.observations.push(Observation { levels, value });
    }

    /// Proposes the next point to evaluate. Equivalent to
    /// `ask_batch(1, rng)` — same RNG stream, same winner.
    pub fn ask(&self, rng: &mut StdRng) -> Vec<usize> {
        self.ask_batch(1, rng)
            .pop()
            .expect("ask_batch(1) yields one point")
    }

    /// Proposes up to `q` *distinct* points from one KDE build (q-point
    /// batch suggestion). During the startup phase the points are plain
    /// random samples. Afterwards one `l`/`g` density pair scores
    /// `n_ei_candidates` draws, and the batch is filled by repeated
    /// argmax over the still-unpicked draws (first-wins on score ties, so
    /// `q = 1` is bit-identical to the sequential [`ask`](Self::ask) —
    /// same RNG draws, same winner). Duplicates among the draws are
    /// skipped, so the result can be shorter than `q` when the model's
    /// proposal mass has collapsed onto fewer distinct points.
    pub fn ask_batch(&self, q: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
        let q = q.max(1);
        if self.observations.len() < self.cfg.n_startup {
            return (0..q).map(|_| self.space.sample(rng)).collect();
        }

        // Split observations at the gamma quantile.
        let mut sorted: Vec<&Observation> = self.observations.iter().collect();
        sorted.sort_by(|a, b| a.value.partial_cmp(&b.value).expect("finite values"));
        let n_good =
            ((sorted.len() as f64 * self.cfg.gamma).ceil() as usize).clamp(1, sorted.len() - 1);
        let (good, bad) = sorted.split_at(n_good);

        // Per-dimension smoothed categorical densities.
        let densities = |set: &[&Observation]| -> Vec<Vec<f64>> {
            (0..self.space.n_dims())
                .map(|d| {
                    let c = self.space.cardinality(d);
                    let mut counts = vec![self.cfg.prior_weight / c as f64; c];
                    for o in set {
                        counts[o.levels[d]] += 1.0;
                    }
                    let total: f64 = counts.iter().sum();
                    counts.iter().map(|v| v / total).collect()
                })
                .collect()
        };
        let l = densities(good);
        let g = densities(bad);

        // Draw and score the candidate set from l — every RNG draw happens
        // here, before selection, so the stream is independent of q.
        let scored: Vec<(Vec<usize>, f64)> = (0..self.cfg.n_ei_candidates)
            .map(|_| {
                let cand: Vec<usize> = l
                    .iter()
                    .map(|probs| sample_categorical(probs, rng))
                    .collect();
                let score: f64 = cand
                    .iter()
                    .enumerate()
                    .map(|(d, &lev)| (l[d][lev].max(1e-12) / g[d][lev].max(1e-12)).ln())
                    .sum();
                (cand, score)
            })
            .collect();

        // Fill the batch by repeated argmax over the unpicked, distinct
        // draws (strictly-greater keeps the first of tied scores, matching
        // the sequential loop's winner).
        let mut picked = vec![false; scored.len()];
        let mut out: Vec<Vec<usize>> = Vec::with_capacity(q);
        while out.len() < q {
            let mut best: Option<usize> = None;
            for (i, (cand, score)) in scored.iter().enumerate() {
                if picked[i] || out.contains(cand) {
                    continue;
                }
                if best.is_none_or(|b| *score > scored[b].1) {
                    best = Some(i);
                }
            }
            let Some(i) = best else {
                break;
            };
            picked[i] = true;
            out.push(scored[i].0.clone());
        }
        out
    }

    /// Runs the full loop until `iterations` evaluations or the budget
    /// stops. Proposals come `batch_size` at a time from one KDE build
    /// ([`ask_batch`](Self::ask_batch)); every point is still evaluated
    /// and told individually, so the observation/budget accounting is
    /// identical to the sequential loop — batching only reduces KDE
    /// refits. `batch_size = 1` reproduces the classic loop bit for bit.
    pub fn optimize(
        &mut self,
        obj: &mut dyn DiscreteObjective,
        iterations: usize,
        budget: &mut Budget,
        rng: &mut StdRng,
    ) -> Option<Observation> {
        let q = self.cfg.batch_size.max(1);
        let mut evals = 0usize;
        'outer: while evals < iterations {
            if budget.exhausted() {
                break;
            }
            let batch = self.ask_batch(q.min(iterations - evals), rng);
            if batch.is_empty() {
                break;
            }
            for levels in batch {
                if budget.exhausted() {
                    break 'outer;
                }
                let value = obj.eval(&levels);
                budget.record_samples(1);
                self.tell(levels, value);
                evals += 1;
            }
        }
        self.best().cloned()
    }
}

fn sample_categorical(probs: &[f64], rng: &mut StdRng) -> usize {
    let mut u = rng.gen::<f64>();
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::DiscreteFn;
    use rand::SeedableRng;

    fn quadratic_objective() -> impl DiscreteObjective {
        // Minimum at levels [7, 2, 5] of a 10x10x10 grid.
        DiscreteFn::new(vec![10, 10, 10], |l: &[usize]| {
            let t = [7.0, 2.0, 5.0];
            l.iter()
                .zip(&t)
                .map(|(&x, &c)| (x as f64 - c) * (x as f64 - c))
                .sum()
        })
    }

    #[test]
    fn beats_random_search_on_structured_problem() {
        let mut rng = StdRng::seed_from_u64(0);
        let space = DiscreteSpace::new(vec![10, 10, 10]);
        let mut tpe = Tpe::new(space.clone(), TpeConfig::default());
        let mut obj = quadratic_objective();
        let mut budget = Budget::unlimited();
        let best = tpe
            .optimize(&mut obj, 120, &mut budget, &mut rng)
            .expect("has best");

        // Random baseline with the same sample count.
        let mut rng2 = StdRng::seed_from_u64(0);
        let mut obj2 = quadratic_objective();
        let mut rand_best = f64::INFINITY;
        for _ in 0..120 {
            let x = space.sample(&mut rng2);
            rand_best = rand_best.min(obj2.eval(&x));
        }
        assert!(
            best.value <= rand_best,
            "TPE {} vs random {rand_best}",
            best.value
        );
        assert!(best.value <= 3.0, "TPE should get close: {}", best.value);
    }

    #[test]
    fn startup_phase_is_random() {
        let mut rng = StdRng::seed_from_u64(1);
        let space = DiscreteSpace::new(vec![5, 5]);
        let tpe = Tpe::new(space, TpeConfig::default());
        // No observations: ask must still work (random sample).
        let x = tpe.ask(&mut rng);
        assert_eq!(x.len(), 2);
    }

    #[test]
    fn tell_rejects_out_of_space() {
        let space = DiscreteSpace::new(vec![3]);
        let mut tpe = Tpe::new(space, TpeConfig::default());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tpe.tell(vec![5], 1.0);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn best_tracks_minimum() {
        let space = DiscreteSpace::new(vec![4]);
        let mut tpe = Tpe::new(space, TpeConfig::default());
        tpe.tell(vec![0], 3.0);
        tpe.tell(vec![1], 1.0);
        tpe.tell(vec![2], 2.0);
        assert_eq!(tpe.best().unwrap().levels, vec![1]);
    }

    #[test]
    fn budget_stops_sequential_loop() {
        let mut rng = StdRng::seed_from_u64(2);
        let space = DiscreteSpace::new(vec![10, 10, 10]);
        let mut tpe = Tpe::new(space, TpeConfig::default());
        let mut obj = quadratic_objective();
        let mut budget = Budget::unlimited().with_samples(30);
        let _ = tpe.optimize(&mut obj, 1000, &mut budget, &mut rng);
        assert_eq!(tpe.observations().len(), 30);
    }

    /// `ask_batch(1)` must be the sequential `ask` exactly: same RNG
    /// stream, same winner — so flipping a baseline to batched suggestion
    /// cannot silently change the q = 1 comparison rows.
    #[test]
    fn ask_batch_of_one_is_bit_identical_to_ask() {
        let space = DiscreteSpace::new(vec![10, 10, 10]);
        let mut tpe = Tpe::new(space.clone(), TpeConfig::default());
        let mut obj = quadratic_objective();
        let mut seed_rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let x = space.sample(&mut seed_rng);
            let v = obj.eval(&x);
            tpe.tell(x, v);
        }
        for trial in 0..5 {
            let mut rng_a = StdRng::seed_from_u64(100 + trial);
            let mut rng_b = StdRng::seed_from_u64(100 + trial);
            assert_eq!(tpe.ask(&mut rng_a), tpe.ask_batch(1, &mut rng_b)[0]);
            // Both consumed the same number of draws.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }

    /// A q-point batch is distinct points in descending score order, drawn
    /// from a single KDE build.
    #[test]
    fn ask_batch_proposes_distinct_points() {
        let space = DiscreteSpace::new(vec![10, 10, 10]);
        let mut tpe = Tpe::new(space.clone(), TpeConfig::default());
        let mut obj = quadratic_objective();
        let mut seed_rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let x = space.sample(&mut seed_rng);
            let v = obj.eval(&x);
            tpe.tell(x, v);
        }
        let mut rng = StdRng::seed_from_u64(11);
        let batch = tpe.ask_batch(3, &mut rng);
        assert!(!batch.is_empty() && batch.len() <= 3);
        for (i, a) in batch.iter().enumerate() {
            for b in &batch[i + 1..] {
                assert_ne!(a, b, "batch must not repeat a point");
            }
        }
        // The first batch point is the sequential ask's winner.
        let mut rng2 = StdRng::seed_from_u64(11);
        assert_eq!(batch[0], tpe.ask(&mut rng2));
    }

    /// Batched suggestion keeps total-evaluation semantics: the budget and
    /// the iteration cap still count single evaluations, so a batched BO
    /// baseline observes exactly as many samples as the sequential one.
    #[test]
    fn batched_optimize_respects_sample_budget() {
        let mut rng = StdRng::seed_from_u64(4);
        let space = DiscreteSpace::new(vec![10, 10, 10]);
        let mut tpe = Tpe::new(
            space,
            TpeConfig {
                batch_size: 3,
                ..TpeConfig::default()
            },
        );
        let mut obj = quadratic_objective();
        let mut budget = Budget::unlimited().with_samples(31);
        let _ = tpe.optimize(&mut obj, 1000, &mut budget, &mut rng);
        assert_eq!(tpe.observations().len(), 31);

        let mut rng = StdRng::seed_from_u64(4);
        let space = DiscreteSpace::new(vec![10, 10, 10]);
        let mut tpe = Tpe::new(
            space,
            TpeConfig {
                batch_size: 3,
                ..TpeConfig::default()
            },
        );
        let mut budget = Budget::unlimited();
        let _ = tpe.optimize(&mut obj, 40, &mut budget, &mut rng);
        assert_eq!(tpe.observations().len(), 40, "iteration cap is per eval");
    }

    #[test]
    fn categorical_sampler_respects_mass() {
        let mut rng = StdRng::seed_from_u64(3);
        let probs = [0.0, 1.0, 0.0];
        for _ in 0..20 {
            assert_eq!(sample_categorical(&probs, &mut rng), 1);
        }
    }
}
