//! Uniform random search — the reference baseline every HPO method must beat.

use crate::budget::Budget;
use crate::objective::DiscreteObjective;
use crate::space::DiscreteSpace;
use crate::tpe::Observation;
use rand::rngs::StdRng;

/// Runs random search for `iterations` evaluations (or until the budget
/// stops), returning the best observation.
pub fn run(
    obj: &mut dyn DiscreteObjective,
    space: &DiscreteSpace,
    iterations: usize,
    budget: &mut Budget,
    rng: &mut StdRng,
) -> Option<Observation> {
    let mut best: Option<Observation> = None;
    for _ in 0..iterations {
        if budget.exhausted() {
            break;
        }
        let levels = space.sample(rng);
        let value = obj.eval(&levels);
        budget.record_samples(1);
        if best.as_ref().is_none_or(|b| value < b.value) {
            best = Some(Observation { levels, value });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::DiscreteFn;
    use rand::SeedableRng;

    #[test]
    fn finds_optimum_of_tiny_space() {
        let space = DiscreteSpace::new(vec![4, 4]);
        let mut obj = DiscreteFn::new(vec![4, 4], |l: &[usize]| (l[0] + l[1]) as f64);
        let mut budget = Budget::unlimited();
        let mut rng = StdRng::seed_from_u64(0);
        let best = run(&mut obj, &space, 200, &mut budget, &mut rng).expect("found");
        assert_eq!(best.levels, vec![0, 0]);
        assert_eq!(best.value, 0.0);
    }

    #[test]
    fn budget_caps_evaluations() {
        let space = DiscreteSpace::new(vec![100]);
        let mut count = 0usize;
        let mut obj = DiscreteFn::new(vec![100], |_: &[usize]| {
            count += 1;
            0.0
        });
        let mut budget = Budget::unlimited().with_samples(17);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = run(&mut obj, &space, 10_000, &mut budget, &mut rng);
        assert_eq!(count, 17);
    }

    #[test]
    fn monotone_improvement_over_iterations() {
        let space = DiscreteSpace::new(vec![1000]);
        let mut obj = DiscreteFn::new(vec![1000], |l: &[usize]| l[0] as f64);
        let mut rng = StdRng::seed_from_u64(2);
        let mut b10 = Budget::unlimited();
        let few = run(&mut obj, &space, 10, &mut b10, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut b1000 = Budget::unlimited();
        let mut obj2 = DiscreteFn::new(vec![1000], |l: &[usize]| l[0] as f64);
        let many = run(&mut obj2, &space, 1000, &mut b1000, &mut rng).unwrap();
        assert!(many.value <= few.value);
    }
}
