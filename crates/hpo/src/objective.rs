//! Objective-function traits and evaluation records.
//!
//! Stack-up encodings contain *invalid* codes (Table III: `S_1` spans `2^73`
//! codes but only `7.14e19` valid designs), so binary objectives return
//! `None` for invalid points and searchers must handle resampling — exactly
//! the behaviour Section IV-A of the paper describes.

use serde::{Deserialize, Serialize};

/// One recorded evaluation (used by experiment statistics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The evaluated point in whatever encoding the searcher uses.
    pub point: Vec<f64>,
    /// The objective value.
    pub value: f64,
}

/// An objective over bitstrings. Lower is better.
pub trait BinaryObjective {
    /// Evaluates `bits`; `None` marks an invalid encoding (excluded from
    /// search statistics, as in the paper).
    fn eval(&mut self, bits: &[bool]) -> Option<f64>;

    /// Number of bits expected.
    fn n_bits(&self) -> usize;
}

/// An objective over per-dimension integer levels. Lower is better.
pub trait DiscreteObjective {
    /// Evaluates a level vector (always valid by construction).
    fn eval(&mut self, levels: &[usize]) -> f64;

    /// Per-dimension level counts.
    fn cardinalities(&self) -> Vec<usize>;
}

/// Wraps a closure as a [`BinaryObjective`].
pub struct BinaryFn<F> {
    f: F,
    n_bits: usize,
}

impl<F: FnMut(&[bool]) -> Option<f64>> BinaryFn<F> {
    /// Creates a closure-backed binary objective over `n_bits` bits.
    pub fn new(n_bits: usize, f: F) -> Self {
        Self { f, n_bits }
    }
}

impl<F: FnMut(&[bool]) -> Option<f64>> BinaryObjective for BinaryFn<F> {
    fn eval(&mut self, bits: &[bool]) -> Option<f64> {
        (self.f)(bits)
    }

    fn n_bits(&self) -> usize {
        self.n_bits
    }
}

/// Wraps a closure as a [`DiscreteObjective`].
pub struct DiscreteFn<F> {
    f: F,
    cards: Vec<usize>,
}

impl<F: FnMut(&[usize]) -> f64> DiscreteFn<F> {
    /// Creates a closure-backed discrete objective.
    pub fn new(cards: Vec<usize>, f: F) -> Self {
        Self { f, cards }
    }
}

impl<F: FnMut(&[usize]) -> f64> DiscreteObjective for DiscreteFn<F> {
    fn eval(&mut self, levels: &[usize]) -> f64 {
        (self.f)(levels)
    }

    fn cardinalities(&self) -> Vec<usize> {
        self.cards.clone()
    }
}

/// Counts evaluations of an inner binary objective (valid and invalid
/// separately), for the paper's "samples seen" accounting.
pub struct CountingBinary<O> {
    inner: O,
    /// Evaluations that returned a value.
    pub valid: u64,
    /// Evaluations rejected as invalid encodings.
    pub invalid: u64,
}

impl<O: BinaryObjective> CountingBinary<O> {
    /// Wraps `inner`.
    pub fn new(inner: O) -> Self {
        Self {
            inner,
            valid: 0,
            invalid: 0,
        }
    }

    /// Total evaluation attempts.
    pub fn total(&self) -> u64 {
        self.valid + self.invalid
    }

    /// Unwraps the inner objective.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: BinaryObjective> BinaryObjective for CountingBinary<O> {
    fn eval(&mut self, bits: &[bool]) -> Option<f64> {
        let out = self.inner.eval(bits);
        if out.is_some() {
            self.valid += 1;
        } else {
            self.invalid += 1;
        }
        out
    }

    fn n_bits(&self) -> usize {
        self.inner.n_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_objectives_work() {
        let mut o = BinaryFn::new(
            3,
            |b: &[bool]| Some(b.iter().filter(|&&x| x).count() as f64),
        );
        assert_eq!(o.n_bits(), 3);
        assert_eq!(o.eval(&[true, false, true]), Some(2.0));

        let mut d = DiscreteFn::new(vec![4, 4], |l: &[usize]| (l[0] + l[1]) as f64);
        assert_eq!(d.cardinalities(), vec![4, 4]);
        assert_eq!(d.eval(&[1, 2]), 3.0);
    }

    #[test]
    fn counting_tracks_valid_and_invalid() {
        let inner = BinaryFn::new(2, |b: &[bool]| if b[0] { Some(1.0) } else { None });
        let mut c = CountingBinary::new(inner);
        assert_eq!(c.eval(&[true, false]), Some(1.0));
        assert_eq!(c.eval(&[false, false]), None);
        assert_eq!(c.eval(&[true, true]), Some(1.0));
        assert_eq!((c.valid, c.invalid, c.total()), (2, 1, 3));
    }
}
