//! Property-based tests on the search algorithms: correctness invariants
//! that must hold for arbitrary objectives and seeds.

use isop_hpo::budget::Budget;
use isop_hpo::harmonica::{self, HarmonicaConfig};
use isop_hpo::lasso::lasso_coordinate_descent;
use isop_hpo::objective::BinaryFn;
use isop_hpo::sa::{self, SaConfig};
use isop_hpo::space::{BinarySpace, DiscreteSpace};
use isop_hpo::tpe::{Tpe, TpeConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random linear pseudo-Boolean objective: `sum_i w_i * sign(b_i)`.
fn linear_objective(weights: Vec<f64>) -> impl FnMut(&[bool]) -> Option<f64> {
    move |bits: &[bool]| {
        Some(
            bits.iter()
                .zip(&weights)
                .map(|(&b, &w)| if b { w } else { -w })
                .sum(),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a pure linear objective Harmonica's best sample must at least
    /// match the best of the same number of uniform random draws (it *uses*
    /// random draws plus structure).
    #[test]
    fn harmonica_never_loses_to_its_own_samples(
        weights in prop::collection::vec(-2.0f64..2.0, 12),
        seed in 0u64..1000,
    ) {
        let mut obj = BinaryFn::new(12, linear_objective(weights.clone()));
        let cfg = HarmonicaConfig {
            stages: 2,
            samples_per_stage: 60,
            ..HarmonicaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let mut rng = StdRng::seed_from_u64(seed);
        let res = harmonica::run(&mut obj, BinarySpace::free(12), &cfg, &mut budget, &mut rng, |_, _| {});
        let best = res.best.expect("found").value;
        let hist_min = res.history.iter().map(|s| s.value).fold(f64::INFINITY, f64::min);
        prop_assert!(best <= hist_min + 1e-12);
        // The global optimum of the linear objective.
        let opt: f64 = weights.iter().map(|w| -w.abs()).sum();
        prop_assert!(best >= opt - 1e-9, "cannot beat the true optimum");
    }

    /// Harmonica's restriction never removes the optimum of a 1-sparse
    /// (single dominant bit) objective.
    #[test]
    fn harmonica_fixes_dominant_bit_correctly(
        bit in 0usize..10,
        sign in prop::bool::ANY,
        seed in 0u64..500,
    ) {
        let coef = if sign { 5.0 } else { -5.0 };
        let mut obj = BinaryFn::new(10, move |b: &[bool]| {
            Some(coef * if b[bit] { 1.0 } else { -1.0 })
        });
        let cfg = HarmonicaConfig {
            stages: 1,
            samples_per_stage: 120,
            top_monomials: 2,
            bits_per_stage: 2,
            lambda: 0.1,
            ..HarmonicaConfig::default()
        };
        let mut budget = Budget::unlimited();
        let mut rng = StdRng::seed_from_u64(seed);
        let res = harmonica::run(&mut obj, BinarySpace::free(10), &cfg, &mut budget, &mut rng, |_, _| {});
        // If the dominant bit got fixed, it must be fixed to its minimizer.
        if let Some(v) = res.space.restriction(bit) {
            prop_assert_eq!(v, !sign, "bit must minimize coef * sign(b)");
        }
    }

    /// SA's accepted-solution trajectory never loses track of the best.
    #[test]
    fn sa_best_dominates_history(weights in prop::collection::vec(-1.0f64..1.0, 10), seed in 0u64..500) {
        let mut obj = BinaryFn::new(10, linear_objective(weights));
        let cfg = SaConfig { iterations: 300, ..SaConfig::default() };
        let mut budget = Budget::unlimited();
        let mut rng = StdRng::seed_from_u64(seed);
        let res = sa::run(&mut obj, &BinarySpace::free(10), &cfg, &mut budget, &mut rng);
        let best = res.best.expect("has best").value;
        for s in &res.history {
            prop_assert!(best <= s.value + 1e-12);
        }
    }

    /// TPE asks only points inside the space and improves on average over
    /// pure startup sampling.
    #[test]
    fn tpe_asks_stay_in_space(cards in prop::collection::vec(2usize..8, 3..6), seed in 0u64..200) {
        let space = DiscreteSpace::new(cards.clone());
        let mut tpe = Tpe::new(space.clone(), TpeConfig { n_startup: 4, ..TpeConfig::default() });
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..30 {
            let x = tpe.ask(&mut rng);
            prop_assert!(space.contains(&x), "ask left the space at iter {i}: {x:?}");
            let value: f64 = x.iter().map(|&v| v as f64).sum();
            tpe.tell(x, value);
        }
        prop_assert_eq!(tpe.observations().len(), 30);
    }

    /// Lasso with lambda = 0 on an orthogonal design recovers coefficients
    /// to working precision; increasing lambda only shrinks magnitudes.
    #[test]
    fn lasso_shrinkage_is_monotone(seed in 0u64..100) {
        use rand::Rng;
        let (n, d) = (160, 8);
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n * d).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
        let y: Vec<f64> = (0..n).map(|i| 2.0 * x[i * d] - 1.0 * x[i * d + 3]).collect();
        let l0 = lasso_coordinate_descent(&x, &y, n, d, 0.0, 2000, 1e-10);
        let l1 = lasso_coordinate_descent(&x, &y, n, d, 0.3, 2000, 1e-10);
        let norm = |w: &[f64]| w.iter().map(|v| v.abs()).sum::<f64>();
        prop_assert!(norm(&l1.coefficients) <= norm(&l0.coefficients) + 1e-9);
    }
}

/// Budget exhaustion is permanent: once tripped it stays tripped.
#[test]
fn budget_exhaustion_is_sticky() {
    let mut b = Budget::unlimited().with_samples(5);
    b.record_samples(5);
    assert!(b.exhausted());
    b.record_samples(0);
    assert!(b.exhausted());
}
