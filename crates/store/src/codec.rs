//! Exact-bit binary codec over the vendored serde [`Value`] tree.
//!
//! The JSON spill format cannot carry every `f64`: the vendored writer
//! prints whole numbers as integers (losing the sign of `-0.0`) and parses
//! `NaN` without preserving payload bits. Model weights and cached metrics
//! must survive a disk round-trip **bit for bit** — a warm run that loads a
//! stored surrogate has to predict exactly what the cold-trained one did.
//! This codec therefore serializes any [`Serialize`] type generically
//! through its `Value` tree, storing every number as its raw
//! `f64::to_bits()` pattern: `decode(encode(x)) == x` at the bit level for
//! every value the vendored data model can represent.
//!
//! ## Wire format (little-endian)
//!
//! One tag byte per node, then the payload:
//!
//! | tag | node | payload |
//! |----:|------|---------|
//! | 0 | `Null` | — |
//! | 1 | `Bool(false)` | — |
//! | 2 | `Bool(true)` | — |
//! | 3 | `Num(f64)` | 8 bytes, `to_bits()` |
//! | 4 | `Str` | varint byte length + UTF-8 bytes |
//! | 5 | `Arr` | varint element count + encoded elements |
//! | 6 | `Obj` | varint entry count + (varint key length, key, value)* |
//!
//! Varints are LEB128 `u64`. The encoding is canonical: one byte stream
//! per `Value` tree, so fingerprints over encoded bytes are stable.

use serde::json::Value;
use serde::{Deserialize, Serialize};

/// Decoding failure: truncated input, an unknown tag, or trailing bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_NUM: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_ARR: u8 = 5;
const TAG_OBJ: u8 = 6;

/// Appends `n` as a LEB128 varint.
pub fn write_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint at `*pos`, advancing it.
///
/// # Errors
///
/// Returns [`CodecError`] on truncated input or a varint wider than 64
/// bits.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut n: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes
            .get(*pos)
            .ok_or_else(|| CodecError::new("truncated varint"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::new("varint overflow"));
        }
        n |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(n);
        }
        shift += 7;
    }
}

fn write_bytes(b: &[u8], out: &mut Vec<u8>) {
    write_varint(b.len() as u64, out);
    out.extend_from_slice(b);
}

fn read_exact<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], CodecError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| CodecError::new("truncated payload"))?;
    let out = &bytes[*pos..end];
    *pos = end;
    Ok(out)
}

fn read_len(bytes: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let n = read_varint(bytes, pos)?;
    usize::try_from(n).map_err(|_| CodecError::new("length overflows usize"))
}

/// Appends the canonical encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Num(n) => {
            out.push(TAG_NUM);
            out.extend_from_slice(&n.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_bytes(s.as_bytes(), out);
        }
        Value::Arr(items) => {
            out.push(TAG_ARR);
            write_varint(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Obj(entries) => {
            out.push(TAG_OBJ);
            write_varint(entries.len() as u64, out);
            for (key, value) in entries {
                write_bytes(key.as_bytes(), out);
                encode_value(value, out);
            }
        }
    }
}

/// Decodes one `Value` at `*pos`, advancing it past the node.
///
/// # Errors
///
/// Returns [`CodecError`] on truncation, an unknown tag, or invalid UTF-8.
pub fn decode_value(bytes: &[u8], pos: &mut usize) -> Result<Value, CodecError> {
    let &tag = bytes
        .get(*pos)
        .ok_or_else(|| CodecError::new("truncated tag"))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_NUM => {
            let raw = read_exact(bytes, pos, 8)?;
            let bits = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
            Ok(Value::Num(f64::from_bits(bits)))
        }
        TAG_STR => {
            let len = read_len(bytes, pos)?;
            let raw = read_exact(bytes, pos, len)?;
            let s = std::str::from_utf8(raw).map_err(|_| CodecError::new("invalid UTF-8"))?;
            Ok(Value::Str(s.to_string()))
        }
        TAG_ARR => {
            let count = read_len(bytes, pos)?;
            let mut items = Vec::new();
            for _ in 0..count {
                items.push(decode_value(bytes, pos)?);
            }
            Ok(Value::Arr(items))
        }
        TAG_OBJ => {
            let count = read_len(bytes, pos)?;
            let mut entries = Vec::new();
            for _ in 0..count {
                let klen = read_len(bytes, pos)?;
                let kraw = read_exact(bytes, pos, klen)?;
                let key = std::str::from_utf8(kraw)
                    .map_err(|_| CodecError::new("invalid UTF-8 key"))?
                    .to_string();
                let value = decode_value(bytes, pos)?;
                entries.push((key, value));
            }
            Ok(Value::Obj(entries))
        }
        other => Err(CodecError::new(format!("unknown tag {other}"))),
    }
}

/// Encodes any serializable type through its `Value` tree, exact f64 bits.
#[must_use]
pub fn encode<T: Serialize>(t: &T) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(&t.to_value(), &mut out);
    out
}

/// Decodes a type previously written by [`encode`]. Trailing bytes after
/// the value are an error — a record payload holds exactly one value.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed bytes or a `Value`-shape mismatch.
pub fn decode<T: Deserialize>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut pos = 0;
    let value = decode_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(CodecError::new("trailing bytes after value"));
    }
    T::from_value(&value).map_err(|e| CodecError::new(format!("{e:?}")))
}

/// FNV-1a over `bytes`: the per-record checksum and the fingerprint hash
/// used by the model registry (full 64 bits — fingerprints live only in
/// binary records, never in a JSON `f64`).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let mut out = Vec::new();
        encode_value(v, &mut out);
        let mut pos = 0;
        let back = decode_value(&out, &mut pos).expect("decodes");
        assert_eq!(pos, out.len(), "decoder must consume the whole encoding");
        back
    }

    fn bits_of(v: &Value) -> Vec<u64> {
        match v {
            Value::Num(n) => vec![n.to_bits()],
            Value::Arr(items) => items.iter().flat_map(bits_of).collect(),
            Value::Obj(entries) => entries.iter().flat_map(|(_, e)| bits_of(e)).collect(),
            _ => vec![],
        }
    }

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Str(String::new()),
            Value::Str("hëllo".to_string()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn pathological_floats_round_trip_bit_exactly() {
        // Exactly the values the JSON spill cannot carry.
        for bits in [
            (-0.0f64).to_bits(),
            f64::NAN.to_bits() | 0xdead,
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            f64::MIN_POSITIVE.to_bits() >> 1, // subnormal
            1.0f64.to_bits(),
            (1.0f64 / 3.0).to_bits(),
        ] {
            let v = Value::Num(f64::from_bits(bits));
            let back = round_trip(&v);
            assert_eq!(bits_of(&back), vec![bits], "bits {bits:#x} must survive");
        }
    }

    #[test]
    fn nested_tree_round_trips() {
        let v = Value::Obj(vec![
            ("weights".to_string(), {
                Value::Arr((0..64).map(|i| Value::Num((i as f64).sqrt())).collect())
            }),
            ("name".to_string(), Value::Str("mlp".to_string())),
            ("nested".to_string(), Value::Obj(vec![])),
            ("flag".to_string(), Value::Bool(false)),
            ("none".to_string(), Value::Null),
        ]);
        let back = round_trip(&v);
        assert_eq!(bits_of(&back), bits_of(&v));
        assert_eq!(back, v);
    }

    #[test]
    fn varint_round_trips_across_widths() {
        for n in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut out = Vec::new();
            write_varint(n, &mut out);
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos).expect("reads"), n);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn truncation_and_unknown_tags_are_errors() {
        let mut out = Vec::new();
        encode_value(&Value::Num(1.5), &mut out);
        out.truncate(5);
        assert!(decode_value(&out, &mut 0).is_err());
        assert!(decode_value(&[0xFF], &mut 0).is_err());
        assert!(decode_value(&[], &mut 0).is_err());
        // Trailing bytes are rejected by the typed decoder.
        let mut padded = encode(&1.5f64);
        padded.push(0);
        assert!(decode::<f64>(&padded).is_err());
    }

    #[test]
    fn typed_encode_decode_round_trips_serde_types() {
        let v: Vec<f64> = vec![-0.0, 0.5, f64::INFINITY];
        let back: Vec<f64> = decode(&encode(&v)).expect("decodes");
        assert_eq!(
            back.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
