//! # isop-store — append-only, sharded on-disk evaluation store
//!
//! The persistence layer that turns "one CLI run" into reusable shared
//! state. Two kinds of facts are worth keeping across processes:
//!
//! * **Accurate EM evaluations** ([`EvalRecord`]) — the scarce resource
//!   the whole pipeline economizes. A design simulated by yesterday's job
//!   never needs to be simulated again.
//! * **Trained surrogate models** ([`ModelRecord`]) — a zoo fitted for a
//!   given `(space fingerprint, config fingerprint, data fingerprint)` is
//!   bit-reusable by every subsequent run on that space.
//!
//! ## Layout
//!
//! A store is a directory of `shard_NNN.bin` files. Entries hash to a
//! shard by `space_id % n_shards` (the 48-bit `DesignKey` space
//! fingerprint), so one optimization run touches exactly the shards of the
//! spaces it works on — loads are **lazy per fingerprint**, never
//! whole-store. Each shard is:
//!
//! ```text
//! header:  magic "ISOPSTR1" | schema u32 LE | n_shards u32 LE
//! record*: payload_len u32 LE | kind u8 | fnv1a(payload) u64 LE | payload
//! ```
//!
//! Records are **append-only**: a flush rewrites the shard as
//! `existing valid records + pending appends` to a temp file and renames
//! it into place, so a killed run can never leave a torn shard visible —
//! readers at worst see the previous complete generation. Within a file,
//! a checksum-failing record is *skipped and counted*
//! (`store.records_skipped`), never fatal: one bad record costs itself,
//! a torn tail costs only the tail (framing cannot resync past a bad
//! length, which is exactly the case the atomic rename prevents).
//!
//! Duplicate records are legal — later appends supersede earlier ones at
//! read time (last record wins). [`Store::compact`] drops the superseded
//! generations; compaction is idempotent.
//!
//! ## Cross-job accounting
//!
//! Counters tick on the store's [`Telemetry`] handle: `store.shard_loads`,
//! `store.records_loaded`, `store.records_skipped`,
//! `store.records_written`. Hits served from records written by a
//! *previous* process are the store's reason to exist, so they get
//! first-class accounting: consumers report them via
//! [`Store::note_cross_job_hit`], and each flush folds the tally into a
//! persistent meta record that `stats` sums across all generations.
//!
//! Payloads use the exact-bit [`codec`]: every `f64` is stored as its raw
//! bit pattern, which is what lets a warm run replay a cold run — cached
//! metrics, attempt counts, and model weights — **bit for bit**.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;

use codec::{fnv1a, read_varint, write_varint, CodecError};
use isop_telemetry::{Counter, Telemetry};
use serde::json::Value;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shard-file magic, 8 bytes.
pub const STORE_MAGIC: [u8; 8] = *b"ISOPSTR1";
/// On-disk schema version; bump on breaking record-layout changes.
pub const STORE_SCHEMA_VERSION: u32 = 1;
/// Shard count of a freshly created store. Existing stores keep the count
/// their shard headers declare.
pub const DEFAULT_SHARDS: u32 = 8;

const HEADER_LEN: usize = 16;
/// Frame prefix: payload_len u32 | kind u8 | checksum u64.
const FRAME_PREFIX: usize = 4 + 1 + 8;

/// Typed record kinds of the shard frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// One accurate EM evaluation ([`EvalRecord`]).
    Eval = 0,
    /// One trained surrogate model ([`ModelRecord`]).
    Model = 1,
    /// Cross-job hit tally appended at flush ([`Store::note_cross_job_hit`]).
    Meta = 2,
    /// One daemon job-journal state transition ([`JobRecord`]).
    Job = 3,
}

impl RecordKind {
    fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(RecordKind::Eval),
            1 => Some(RecordKind::Model),
            2 => Some(RecordKind::Meta),
            3 => Some(RecordKind::Job),
            _ => None,
        }
    }
}

/// One cached accurate EM evaluation, keyed by the design's canonical
/// identity (space fingerprint + grid levels). Metrics are `[Z, L, NEXT]`
/// raw — this crate is a leaf and deliberately does not know the
/// simulator's result type.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// 48-bit space fingerprint of the defining parameter space.
    pub space_id: u64,
    /// Grid level of each parameter, in space order.
    pub levels: Vec<u32>,
    /// `[Z, L, NEXT]` of the successful simulation, exact bits.
    pub metrics: [f64; 3],
    /// Attempts the original evaluation took, including the final success.
    pub attempts: u32,
}

impl EvalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 2 * self.levels.len() + 28);
        out.extend_from_slice(&self.space_id.to_le_bytes());
        write_varint(self.levels.len() as u64, &mut out);
        for &level in &self.levels {
            write_varint(u64::from(level), &mut out);
        }
        for m in self.metrics {
            out.extend_from_slice(&m.to_bits().to_le_bytes());
        }
        write_varint(u64::from(self.attempts), &mut out);
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut pos = 0;
        let space_id = read_u64(bytes, &mut pos)?;
        let n = read_varint(bytes, &mut pos)?;
        let mut levels = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let level = read_varint(bytes, &mut pos)?;
            levels.push(u32::try_from(level).map_err(|_| bad("level overflows u32"))?);
        }
        let mut metrics = [0.0f64; 3];
        for m in &mut metrics {
            *m = f64::from_bits(read_u64(bytes, &mut pos)?);
        }
        let attempts = read_varint(bytes, &mut pos)?;
        let attempts = u32::try_from(attempts).map_err(|_| bad("attempts overflows u32"))?;
        if pos != bytes.len() {
            return Err(bad("trailing bytes in eval record"));
        }
        Ok(Self {
            space_id,
            levels,
            metrics,
            attempts,
        })
    }

    /// Record identity for compaction: later records with the same key
    /// supersede earlier ones.
    fn identity(&self) -> Vec<u8> {
        let mut id = self.space_id.to_le_bytes().to_vec();
        for &level in &self.levels {
            id.extend_from_slice(&level.to_le_bytes());
        }
        id
    }
}

/// One trained surrogate model, keyed by the triple that makes retraining
/// provably redundant: the space it serves, the fingerprint of its
/// *unfitted* configuration, and the fingerprint of the training data.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRecord {
    /// 48-bit space fingerprint the model was trained for.
    pub space_id: u64,
    /// FNV-1a over the canonical encoding of the unfitted model.
    pub config_fp: u64,
    /// FNV-1a over the training dataset's shape and exact f64 bits.
    pub data_fp: u64,
    /// Model name (e.g. `"MLPR"`), a human-readable disambiguator.
    pub name: String,
    /// The fitted model's serialized `Value` tree, exact f64 bits.
    pub payload: Value,
}

impl ModelRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.name.len());
        out.extend_from_slice(&self.space_id.to_le_bytes());
        out.extend_from_slice(&self.config_fp.to_le_bytes());
        out.extend_from_slice(&self.data_fp.to_le_bytes());
        write_varint(self.name.len() as u64, &mut out);
        out.extend_from_slice(self.name.as_bytes());
        codec::encode_value(&self.payload, &mut out);
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut pos = 0;
        let space_id = read_u64(bytes, &mut pos)?;
        let config_fp = read_u64(bytes, &mut pos)?;
        let data_fp = read_u64(bytes, &mut pos)?;
        let name_len = read_varint(bytes, &mut pos)? as usize;
        let end = pos
            .checked_add(name_len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| bad("truncated model name"))?;
        let name = std::str::from_utf8(&bytes[pos..end])
            .map_err(|_| bad("invalid UTF-8 model name"))?
            .to_string();
        pos = end;
        let payload = codec::decode_value(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(bad("trailing bytes in model record"));
        }
        Ok(Self {
            space_id,
            config_fp,
            data_fp,
            name,
            payload,
        })
    }

    fn identity(&self) -> Vec<u8> {
        let mut id = Vec::with_capacity(24 + self.name.len());
        id.extend_from_slice(&self.space_id.to_le_bytes());
        id.extend_from_slice(&self.config_fp.to_le_bytes());
        id.extend_from_slice(&self.data_fp.to_le_bytes());
        id.extend_from_slice(self.name.as_bytes());
        id
    }
}

/// Lifecycle state a [`JobRecord`] frame records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum JobState {
    /// The daemon accepted the submission into an epoch queue; the payload
    /// is the full job spec, so a restart can rebuild the frozen queue.
    Submitted = 0,
    /// The job's epoch began executing.
    Started = 1,
    /// The job resolved; the payload is the full job result, so a restart
    /// replays it verbatim instead of re-running.
    Finished = 2,
}

impl JobState {
    fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(JobState::Submitted),
            1 => Some(JobState::Started),
            2 => Some(JobState::Finished),
            _ => None,
        }
    }
}

/// One job-journal state transition: a daemon appends `Submitted` /
/// `Started` / `Finished` frames as a job moves through its epoch, and a
/// restarted daemon replays the frames (in file order) to resume exactly
/// where the killed process stopped. Payloads are opaque `Value` trees —
/// the store stays a leaf and does not know the job spec/result types.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Streaming-admission epoch the job was frozen into.
    pub epoch: u64,
    /// Which transition this frame records.
    pub state: JobState,
    /// The job's submission id (unique across the daemon's lifetime).
    pub job_id: String,
    /// Spec (`Submitted`), empty (`Started`), or result (`Finished`) tree,
    /// exact f64 bits through the binary codec.
    pub payload: Value,
}

impl JobRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.job_id.len());
        write_varint(self.epoch, &mut out);
        out.push(self.state as u8);
        write_varint(self.job_id.len() as u64, &mut out);
        out.extend_from_slice(self.job_id.as_bytes());
        codec::encode_value(&self.payload, &mut out);
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut pos = 0;
        let epoch = read_varint(bytes, &mut pos)?;
        let state = *bytes.get(pos).ok_or_else(|| bad("truncated job state"))?;
        pos += 1;
        let state = JobState::from_u8(state).ok_or_else(|| bad("unknown job state"))?;
        let id_len = read_varint(bytes, &mut pos)? as usize;
        let end = pos
            .checked_add(id_len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| bad("truncated job id"))?;
        let job_id = std::str::from_utf8(&bytes[pos..end])
            .map_err(|_| bad("invalid UTF-8 job id"))?
            .to_string();
        pos = end;
        let payload = codec::decode_value(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(bad("trailing bytes in job record"));
        }
        Ok(Self {
            epoch,
            state,
            job_id,
            payload,
        })
    }

    /// Identity is the full `(epoch, state, job_id)` transition, so a
    /// duplicated frame collapses under compaction while the three
    /// transitions of one job all survive as distinct records.
    fn identity(&self) -> Vec<u8> {
        let mut id = Vec::with_capacity(10 + self.job_id.len());
        id.extend_from_slice(&self.epoch.to_le_bytes());
        id.push(self.state as u8);
        id.extend_from_slice(self.job_id.as_bytes());
        id
    }
}

fn bad(msg: &str) -> CodecError {
    CodecError::new(msg)
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| bad("truncated u64"))?;
    let raw: [u8; 8] = bytes[*pos..end].try_into().expect("8 bytes");
    *pos = end;
    Ok(u64::from_le_bytes(raw))
}

/// One raw record frame held in memory: the kind byte plus the payload
/// bytes exactly as they sit (or will sit) on disk.
#[derive(Debug, Clone)]
struct RawRecord {
    kind: RecordKind,
    payload: Vec<u8>,
}

impl RawRecord {
    /// Compaction identity: records with equal identity supersede each
    /// other (last wins); `None` means the record never supersedes
    /// (undecodable payloads are kept verbatim only until compaction).
    fn identity(&self) -> Option<Vec<u8>> {
        match self.kind {
            RecordKind::Eval => EvalRecord::decode(&self.payload).ok().map(|r| r.identity()),
            RecordKind::Model => ModelRecord::decode(&self.payload)
                .ok()
                .map(|r| r.identity()),
            RecordKind::Job => JobRecord::decode(&self.payload).ok().map(|r| r.identity()),
            // Meta tallies are summed, not superseded.
            RecordKind::Meta => None,
        }
    }
}

/// Per-shard in-memory state: disk records are read lazily, pending
/// appends wait for the next flush.
#[derive(Debug, Default)]
struct ShardState {
    loaded: bool,
    /// Valid records read from disk, in file order.
    records: Vec<RawRecord>,
    /// Appends since the last flush.
    pending: Vec<RawRecord>,
}

/// Aggregate result of one [`Store::flush`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Pending records written.
    pub records_written: u64,
    /// Shard files rewritten (atomically, temp + rename).
    pub shards_rewritten: u64,
}

/// Aggregate result of one [`Store::compact`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Records before compaction (across all shards, pending included).
    pub records_before: u64,
    /// Records after dropping superseded generations.
    pub records_after: u64,
}

/// Per-shard outcome of one [`Store::verify`] scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardVerify {
    /// Shard index.
    pub shard: u32,
    /// Records whose checksum and payload decoded cleanly.
    pub valid: u64,
    /// Records skipped: checksum mismatch, undecodable payload, or a
    /// truncated tail.
    pub skipped: u64,
    /// File size in bytes.
    pub bytes: u64,
}

/// Aggregate counts of one [`Store::stats`] scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Shard files present on disk.
    pub shards: u32,
    /// Shard count the store hashes over (files may not all exist yet).
    pub n_shards: u32,
    /// Valid evaluation records.
    pub eval_records: u64,
    /// Valid model records.
    pub model_records: u64,
    /// Valid job-journal records.
    pub job_records: u64,
    /// Records skipped during the scan.
    pub skipped: u64,
    /// Total bytes across shard files.
    pub bytes: u64,
    /// Cross-job hits accumulated by every past flush's meta tally.
    pub cross_job_hits: u64,
}

/// The append-only, sharded evaluation store. Thread-safe: consumers share
/// one instance behind an `Arc`.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    n_shards: u32,
    telemetry: Telemetry,
    shards: Mutex<Vec<ShardState>>,
    /// Cross-job hits observed this process, folded into a meta record at
    /// the next flush.
    cross_job_hits: AtomicU64,
}

impl Store {
    /// Opens (creating if absent) the store at `dir` with the default
    /// shard count. An existing store keeps the shard count its headers
    /// declare — the count is a property of the directory, not the caller.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and header corruption (bad magic or a
    /// schema-version mismatch).
    pub fn open(dir: &Path) -> io::Result<Self> {
        Self::open_with_shards(dir, DEFAULT_SHARDS)
    }

    /// [`Store::open`] with an explicit shard count for new stores.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and header corruption.
    pub fn open_with_shards(dir: &Path, n_shards: u32) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut n_shards = n_shards.max(1);
        // Adopt the shard count of the first existing shard header so two
        // processes can never disagree on the hash ring.
        let mut existing: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard_") && n.ends_with(".bin"))
            })
            .collect();
        existing.sort();
        if let Some(first) = existing.first() {
            let header = read_header(first)?;
            n_shards = header;
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            n_shards,
            telemetry: Telemetry::disabled(),
            shards: Mutex::new((0..n_shards).map(|_| ShardState::default()).collect()),
            cross_job_hits: AtomicU64::new(0),
        })
    }

    /// Routes `store.*` counters to `telemetry`.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shard count of the hash ring.
    #[must_use]
    pub fn n_shards(&self) -> u32 {
        self.n_shards
    }

    /// The shard a space fingerprint hashes to.
    #[must_use]
    pub fn shard_of(&self, space_id: u64) -> u32 {
        (space_id % u64::from(self.n_shards)) as u32
    }

    fn shard_path(&self, shard: u32) -> PathBuf {
        self.dir.join(format!("shard_{shard:03}.bin"))
    }

    /// Locks the shard table, recovering from poisoning: a job thread that
    /// panicked while holding the lock must not turn every later probe and
    /// flush into a panic cascade (fatal for a daemon). Recovery is sound
    /// because the in-memory image is only ever *extended* under the lock
    /// (loaded flag, record/pending pushes) and the next flush rewrites the
    /// shard from that image — disk state heals whatever a torn in-memory
    /// update left behind.
    fn lock_shards(&self) -> std::sync::MutexGuard<'_, Vec<ShardState>> {
        self.shards
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Reads the shard file into `state.records` if not yet loaded,
    /// skipping (and counting) corrupt records.
    fn ensure_loaded(&self, state: &mut ShardState, shard: u32) -> io::Result<()> {
        if state.loaded {
            return Ok(());
        }
        state.loaded = true;
        let path = self.shard_path(shard);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        self.telemetry.incr(Counter::StoreShardLoads);
        let (records, skipped) = parse_shard(&bytes, &path)?;
        self.telemetry
            .add(Counter::StoreRecordsLoaded, records.len() as u64);
        self.telemetry.add(Counter::StoreRecordsSkipped, skipped);
        state.records = records;
        Ok(())
    }

    /// Every stored evaluation for `space_id`, oldest first (pending
    /// appends from this process included, so two caches sharing one store
    /// see each other's flushed-or-not entries identically).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; corrupt records are skipped, not
    /// fatal.
    pub fn load_evals(&self, space_id: u64) -> io::Result<Vec<EvalRecord>> {
        let shard = self.shard_of(space_id);
        let mut shards = self.lock_shards();
        let state = &mut shards[shard as usize];
        self.ensure_loaded(state, shard)?;
        let mut out = Vec::new();
        for rec in state.records.iter().chain(state.pending.iter()) {
            if rec.kind != RecordKind::Eval {
                continue;
            }
            if let Ok(eval) = EvalRecord::decode(&rec.payload) {
                if eval.space_id == space_id {
                    out.push(eval);
                }
            }
        }
        Ok(out)
    }

    /// Every stored evaluation across every shard, shard-then-file order —
    /// the bulk read behind `isop cache export`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; corrupt records are skipped.
    pub fn load_all_evals(&self) -> io::Result<Vec<EvalRecord>> {
        let mut shards = self.lock_shards();
        let mut out = Vec::new();
        for shard in 0..self.n_shards {
            let state = &mut shards[shard as usize];
            self.ensure_loaded(state, shard)?;
            for rec in state.records.iter().chain(state.pending.iter()) {
                if rec.kind != RecordKind::Eval {
                    continue;
                }
                if let Ok(eval) = EvalRecord::decode(&rec.payload) {
                    out.push(eval);
                }
            }
        }
        Ok(out)
    }

    /// Buffers one evaluation for the next [`Store::flush`].
    pub fn append_eval(&self, record: &EvalRecord) {
        let shard = self.shard_of(record.space_id);
        let mut shards = self.lock_shards();
        shards[shard as usize].pending.push(RawRecord {
            kind: RecordKind::Eval,
            payload: record.encode(),
        });
    }

    /// The latest stored model for the exact `(space, config, data, name)`
    /// key, or `None`. Later records supersede earlier ones.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; corrupt records are skipped.
    pub fn get_model(
        &self,
        space_id: u64,
        config_fp: u64,
        data_fp: u64,
        name: &str,
    ) -> io::Result<Option<ModelRecord>> {
        let shard = self.shard_of(space_id);
        let mut shards = self.lock_shards();
        let state = &mut shards[shard as usize];
        self.ensure_loaded(state, shard)?;
        let mut found = None;
        for rec in state.records.iter().chain(state.pending.iter()) {
            if rec.kind != RecordKind::Model {
                continue;
            }
            if let Ok(model) = ModelRecord::decode(&rec.payload) {
                if model.space_id == space_id
                    && model.config_fp == config_fp
                    && model.data_fp == data_fp
                    && model.name == name
                {
                    found = Some(model);
                }
            }
        }
        Ok(found)
    }

    /// Buffers one trained model for the next [`Store::flush`].
    pub fn put_model(&self, record: &ModelRecord) {
        let shard = self.shard_of(record.space_id);
        let mut shards = self.lock_shards();
        shards[shard as usize].pending.push(RawRecord {
            kind: RecordKind::Model,
            payload: record.encode(),
        });
    }

    /// Buffers one job-journal transition for the next [`Store::flush`].
    /// Journal frames all live on shard 0, so their relative order — the
    /// order replay depends on — is exactly file order.
    pub fn append_job(&self, record: &JobRecord) {
        let mut shards = self.lock_shards();
        shards[0].pending.push(RawRecord {
            kind: RecordKind::Job,
            payload: record.encode(),
        });
    }

    /// Every journal transition in file order (pending appends included),
    /// the order a restarted daemon replays.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; corrupt records are skipped, not
    /// fatal.
    pub fn load_jobs(&self) -> io::Result<Vec<JobRecord>> {
        let mut shards = self.lock_shards();
        let state = &mut shards[0];
        self.ensure_loaded(state, 0)?;
        let mut out = Vec::new();
        for rec in state.records.iter().chain(state.pending.iter()) {
            if rec.kind != RecordKind::Job {
                continue;
            }
            if let Ok(job) = JobRecord::decode(&rec.payload) {
                out.push(job);
            }
        }
        Ok(out)
    }

    /// Records one hit served from a record a previous process wrote
    /// (ticks `store.cross_job_hits`; the tally persists at the next
    /// flush).
    pub fn note_cross_job_hit(&self) {
        self.telemetry.incr(Counter::StoreCrossJobHits);
        self.cross_job_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Writes every shard with pending records atomically (temp file +
    /// rename), folding this process's cross-job hit tally into a meta
    /// record on shard 0. A flush with nothing pending and no hits is a
    /// complete no-op — no file is touched.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush(&self) -> io::Result<FlushStats> {
        let mut shards = self.lock_shards();
        let hits = self.cross_job_hits.swap(0, Ordering::Relaxed);
        if hits > 0 {
            let mut payload = Vec::new();
            write_varint(hits, &mut payload);
            shards[0].pending.push(RawRecord {
                kind: RecordKind::Meta,
                payload,
            });
        }
        let mut stats = FlushStats::default();
        for shard in 0..self.n_shards {
            let state = &mut shards[shard as usize];
            if state.pending.is_empty() {
                continue;
            }
            // Appending rewrites the shard from its in-memory image, so
            // load first: prior generations are preserved verbatim and a
            // torn tail (if any) is healed by the rewrite.
            self.ensure_loaded(state, shard)?;
            let pending = std::mem::take(&mut state.pending);
            stats.records_written += pending.len() as u64;
            state.records.extend(pending);
            self.write_shard(shard, &state.records)?;
            stats.shards_rewritten += 1;
        }
        self.telemetry
            .add(Counter::StoreRecordsWritten, stats.records_written);
        Ok(stats)
    }

    /// Atomically replaces the shard file with `records`.
    fn write_shard(&self, shard: u32, records: &[RawRecord]) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(HEADER_LEN);
        bytes.extend_from_slice(&STORE_MAGIC);
        bytes.extend_from_slice(&STORE_SCHEMA_VERSION.to_le_bytes());
        bytes.extend_from_slice(&self.n_shards.to_le_bytes());
        for rec in records {
            bytes.extend_from_slice(&(rec.payload.len() as u32).to_le_bytes());
            bytes.push(rec.kind as u8);
            bytes.extend_from_slice(&fnv1a(&rec.payload).to_le_bytes());
            bytes.extend_from_slice(&rec.payload);
        }
        let path = self.shard_path(shard);
        let tmp = self.dir.join(format!("shard_{shard:03}.bin.tmp"));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)
    }

    /// Drops superseded record generations: within each shard, only the
    /// last record per identity survives, and meta tallies collapse into
    /// one summed record. Pending appends are flushed first. Idempotent —
    /// compacting a compacted store rewrites nothing further.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn compact(&self) -> io::Result<CompactStats> {
        self.flush()?;
        let mut shards = self.lock_shards();
        let mut stats = CompactStats::default();
        for shard in 0..self.n_shards {
            let state = &mut shards[shard as usize];
            self.ensure_loaded(state, shard)?;
            stats.records_before += state.records.len() as u64;
            let compacted = compact_records(&state.records);
            stats.records_after += compacted.len() as u64;
            if compacted.len() != state.records.len() {
                state.records = compacted;
                self.write_shard(shard, &state.records)?;
            }
        }
        Ok(stats)
    }

    /// Re-scans every shard file from disk (ignoring in-memory state) and
    /// reports per-shard valid/skipped/byte counts. Read-only.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (a missing shard file is simply
    /// absent, not an error).
    pub fn verify(&self) -> io::Result<Vec<ShardVerify>> {
        let mut out = Vec::new();
        for shard in 0..self.n_shards {
            let path = self.shard_path(shard);
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let (records, mut skipped) = parse_shard(&bytes, &path)?;
            // verify decodes payloads too — a record whose checksum holds
            // but whose payload no longer parses is as unusable as a torn
            // one.
            let mut valid = 0u64;
            for rec in &records {
                let ok = match rec.kind {
                    RecordKind::Eval => EvalRecord::decode(&rec.payload).is_ok(),
                    RecordKind::Model => ModelRecord::decode(&rec.payload).is_ok(),
                    RecordKind::Meta => read_varint(&rec.payload, &mut 0).is_ok(),
                    RecordKind::Job => JobRecord::decode(&rec.payload).is_ok(),
                };
                if ok {
                    valid += 1;
                } else {
                    skipped += 1;
                }
            }
            out.push(ShardVerify {
                shard,
                valid,
                skipped,
                bytes: bytes.len() as u64,
            });
        }
        Ok(out)
    }

    /// Aggregate record counts from a fresh disk scan. Read-only.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn stats(&self) -> io::Result<StoreStats> {
        let mut stats = StoreStats {
            n_shards: self.n_shards,
            ..StoreStats::default()
        };
        for shard in 0..self.n_shards {
            let path = self.shard_path(shard);
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            stats.shards += 1;
            stats.bytes += bytes.len() as u64;
            let (records, skipped) = parse_shard(&bytes, &path)?;
            stats.skipped += skipped;
            for rec in &records {
                match rec.kind {
                    RecordKind::Eval => stats.eval_records += 1,
                    RecordKind::Model => stats.model_records += 1,
                    RecordKind::Job => stats.job_records += 1,
                    RecordKind::Meta => {
                        stats.cross_job_hits += read_varint(&rec.payload, &mut 0).unwrap_or(0);
                    }
                }
            }
        }
        Ok(stats)
    }
}

/// Validates the header of `path` and returns its declared shard count.
fn read_header(path: &Path) -> io::Result<u32> {
    let bytes = std::fs::read(path)?;
    parse_header(&bytes, path)
}

fn parse_header(bytes: &[u8], path: &Path) -> io::Result<u32> {
    if bytes.len() < HEADER_LEN {
        return Err(io::Error::other(format!(
            "{}: truncated store header",
            path.display()
        )));
    }
    if bytes[..8] != STORE_MAGIC {
        return Err(io::Error::other(format!(
            "{}: not an isop store shard (bad magic)",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != STORE_SCHEMA_VERSION {
        return Err(io::Error::other(format!(
            "{}: store schema v{version} != supported v{STORE_SCHEMA_VERSION}",
            path.display()
        )));
    }
    let n_shards = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if n_shards == 0 {
        return Err(io::Error::other(format!(
            "{}: store header declares zero shards",
            path.display()
        )));
    }
    Ok(n_shards)
}

/// Parses a shard file body: valid records in file order plus the skipped
/// count. A checksum-failing record with intact framing is skipped alone;
/// a torn frame (truncated length/payload or an unknown kind) ends the
/// scan, costing one more skip for the tail.
fn parse_shard(bytes: &[u8], path: &Path) -> io::Result<(Vec<RawRecord>, u64)> {
    parse_header(bytes, path)?;
    let mut records = Vec::new();
    let mut skipped = 0u64;
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        if pos + FRAME_PREFIX > bytes.len() {
            skipped += 1; // torn tail: partial frame prefix
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let kind = bytes[pos + 4];
        let checksum = u64::from_le_bytes(bytes[pos + 5..pos + 13].try_into().expect("8 bytes"));
        let body_start = pos + FRAME_PREFIX;
        let Some(body_end) = body_start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            skipped += 1; // torn tail: payload runs past EOF
            break;
        };
        let Some(kind) = RecordKind::from_u8(kind) else {
            // An unknown kind byte means the frame stream itself is not
            // trustworthy past this point.
            skipped += 1;
            break;
        };
        let payload = &bytes[body_start..body_end];
        if fnv1a(payload) == checksum {
            records.push(RawRecord {
                kind,
                payload: payload.to_vec(),
            });
        } else {
            skipped += 1; // framing intact, payload corrupt: skip just it
        }
        pos = body_end;
    }
    Ok((records, skipped))
}

/// Keep-last-per-identity compaction, preserving first-appearance order of
/// the survivors; meta tallies sum into a single record.
fn compact_records(records: &[RawRecord]) -> Vec<RawRecord> {
    let mut meta_total = 0u64;
    let mut keep: Vec<(Option<Vec<u8>>, RawRecord)> = Vec::new();
    for rec in records {
        if rec.kind == RecordKind::Meta {
            meta_total += read_varint(&rec.payload, &mut 0).unwrap_or(0);
            continue;
        }
        let id = rec.identity();
        match id
            .as_ref()
            .and_then(|id| keep.iter().position(|(k, _)| k.as_deref() == Some(id)))
        {
            Some(at) => keep[at].1 = rec.clone(),
            None => keep.push((id, rec.clone())),
        }
    }
    let mut out: Vec<RawRecord> = keep.into_iter().map(|(_, r)| r).collect();
    if meta_total > 0 {
        let mut payload = Vec::new();
        write_varint(meta_total, &mut payload);
        out.push(RawRecord {
            kind: RecordKind::Meta,
            payload,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("isop-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn eval(space_id: u64, level: u32, z: f64) -> EvalRecord {
        EvalRecord {
            space_id,
            levels: vec![level, level + 1],
            metrics: [z, -0.4, -3.25],
            attempts: 2,
        }
    }

    #[test]
    fn evals_round_trip_across_reopen() {
        let dir = temp_dir("reopen");
        let store = Store::open(&dir).expect("opens");
        store.append_eval(&eval(7, 0, 85.0));
        store.append_eval(&eval(7, 1, f64::from_bits(0x8000_0000_0000_0000))); // -0.0
        let flushed = store.flush().expect("flushes");
        assert_eq!(flushed.records_written, 2);
        drop(store);

        let fresh = Store::open(&dir).expect("reopens");
        let evals = fresh.load_evals(7).expect("loads");
        assert_eq!(evals.len(), 2);
        assert_eq!(evals[0], eval(7, 0, 85.0));
        assert_eq!(
            evals[1].metrics[0].to_bits(),
            0x8000_0000_0000_0000,
            "-0.0 must survive the disk round-trip bit-exactly"
        );
        // Other spaces on the same shard ring load nothing.
        assert!(fresh
            .load_evals(7 + u64::from(fresh.n_shards()))
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_with_nothing_pending_touches_no_file() {
        let dir = temp_dir("noop");
        let store = Store::open(&dir).expect("opens");
        let stats = store.flush().expect("flushes");
        assert_eq!(stats, FlushStats::default());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_count_is_a_property_of_the_directory() {
        let dir = temp_dir("ring");
        let store = Store::open_with_shards(&dir, 3).expect("opens");
        store.append_eval(&eval(5, 0, 80.0));
        store.flush().expect("flushes");
        drop(store);
        // A reopen with a different requested count adopts the on-disk ring.
        let fresh = Store::open_with_shards(&dir, 16).expect("reopens");
        assert_eq!(fresh.n_shards(), 3);
        assert_eq!(fresh.load_evals(5).expect("loads").len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn models_supersede_by_key_and_survive_reopen() {
        let dir = temp_dir("model");
        let store = Store::open(&dir).expect("opens");
        let model = |w: f64| ModelRecord {
            space_id: 11,
            config_fp: 0xdead_beef_dead_beef, // full 64 bits, no JSON mantissa
            data_fp: 42,
            name: "MLPR".to_string(),
            payload: Value::Arr(vec![Value::Num(w)]),
        };
        store.put_model(&model(1.0));
        store.put_model(&model(2.0));
        store.flush().expect("flushes");
        drop(store);

        let fresh = Store::open(&dir).expect("reopens");
        let got = fresh
            .get_model(11, 0xdead_beef_dead_beef, 42, "MLPR")
            .expect("reads")
            .expect("present");
        assert_eq!(got.payload, Value::Arr(vec![Value::Num(2.0)]));
        assert!(fresh
            .get_model(11, 0xdead_beef_dead_beef, 43, "MLPR")
            .expect("reads")
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_is_skipped_not_fatal() {
        let dir = temp_dir("corrupt");
        let store = Store::open(&dir).expect("opens");
        store.append_eval(&eval(3, 0, 85.0));
        store.append_eval(&eval(3, 1, 86.0));
        store.flush().expect("flushes");
        let shard = store.shard_of(3);
        let path = dir.join(format!("shard_{shard:03}.bin"));
        drop(store);

        // Flip one payload byte of the first record: checksum now fails.
        let mut bytes = std::fs::read(&path).expect("reads");
        bytes[HEADER_LEN + FRAME_PREFIX + 2] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("writes");

        let tele = Telemetry::enabled();
        let fresh = Store::open(&dir)
            .expect("opens")
            .with_telemetry(tele.clone());
        let evals = fresh.load_evals(3).expect("loads");
        assert_eq!(evals.len(), 1, "only the intact record survives");
        assert_eq!(evals[0].metrics[0], 86.0);
        assert_eq!(tele.counter(Counter::StoreRecordsSkipped), 1);
        assert_eq!(tele.counter(Counter::StoreRecordsLoaded), 1);
        assert_eq!(tele.counter(Counter::StoreShardLoads), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_tail_recovers_and_flush_heals_it() {
        let dir = temp_dir("torn");
        let store = Store::open(&dir).expect("opens");
        store.append_eval(&eval(9, 0, 85.0));
        store.append_eval(&eval(9, 1, 86.0));
        store.flush().expect("flushes");
        let shard = store.shard_of(9);
        let path = dir.join(format!("shard_{shard:03}.bin"));
        drop(store);

        // Tear mid-way through the second record's payload.
        let bytes = std::fs::read(&path).expect("reads");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("writes");

        let fresh = Store::open(&dir).expect("opens");
        assert_eq!(fresh.load_evals(9).expect("loads").len(), 1);
        // A new append + flush rewrites the shard whole: the torn tail is
        // gone and both the survivor and the new record verify clean.
        fresh.append_eval(&eval(9, 2, 87.0));
        fresh.flush().expect("flushes");
        let verify = fresh.verify().expect("verifies");
        let v = verify.iter().find(|v| v.shard == shard).expect("shard");
        assert_eq!((v.valid, v.skipped), (2, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_drops_superseded_and_is_idempotent() {
        let dir = temp_dir("compact");
        let store = Store::open(&dir).expect("opens");
        for attempt in 1..=3u32 {
            store.append_eval(&EvalRecord {
                attempts: attempt,
                ..eval(4, 0, 85.0)
            });
        }
        store.append_eval(&eval(4, 9, 90.0));
        store.note_cross_job_hit();
        store.note_cross_job_hit();
        let first = store.compact().expect("compacts");
        assert_eq!(first.records_before, 5); // 4 evals + 1 meta
        assert_eq!(first.records_after, 3); // survivor + distinct + meta
                                            // Last write wins.
        let evals = store.load_evals(4).expect("loads");
        assert_eq!(evals.iter().find(|e| e.levels[0] == 0).unwrap().attempts, 3);
        let second = store.compact().expect("compacts again");
        assert_eq!(second.records_before, second.records_after);
        assert_eq!(store.stats().expect("stats").cross_job_hits, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_and_verify_report_disk_truth() {
        let dir = temp_dir("stats");
        let store = Store::open(&dir).expect("opens");
        store.append_eval(&eval(1, 0, 85.0));
        store.put_model(&ModelRecord {
            space_id: 2,
            config_fp: 1,
            data_fp: 2,
            name: "RFR".to_string(),
            payload: Value::Null,
        });
        store.flush().expect("flushes");
        let stats = store.stats().expect("stats");
        assert_eq!(stats.eval_records, 1);
        assert_eq!(stats.model_records, 1);
        assert_eq!(stats.skipped, 0);
        assert!(stats.bytes > 0);
        assert!(stats.shards >= 1);
        let verify = store.verify().expect("verifies");
        assert_eq!(verify.iter().map(|v| v.valid).sum::<u64>(), 2);
        assert_eq!(verify.iter().map(|v| v.skipped).sum::<u64>(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn job_journal_round_trips_in_file_order() {
        let dir = temp_dir("journal");
        let store = Store::open(&dir).expect("opens");
        let frame = |epoch: u64, state: JobState, id: &str, v: f64| JobRecord {
            epoch,
            state,
            job_id: id.to_string(),
            payload: Value::Obj(vec![("em".to_string(), Value::Num(v))]),
        };
        store.append_job(&frame(0, JobState::Submitted, "a", -0.0));
        store.append_job(&frame(0, JobState::Submitted, "b", 1.5));
        store.append_job(&frame(0, JobState::Started, "a", 0.0));
        store.append_job(&frame(0, JobState::Finished, "a", 42.25));
        // Pending frames are visible before the flush, same as evals.
        assert_eq!(store.load_jobs().expect("loads pending").len(), 4);
        store.flush().expect("flushes");
        drop(store);

        let fresh = Store::open(&dir).expect("reopens");
        let jobs = fresh.load_jobs().expect("loads");
        assert_eq!(jobs.len(), 4);
        assert_eq!(
            jobs.iter()
                .map(|j| (j.state, j.job_id.as_str()))
                .collect::<Vec<_>>(),
            vec![
                (JobState::Submitted, "a"),
                (JobState::Submitted, "b"),
                (JobState::Started, "a"),
                (JobState::Finished, "a"),
            ],
            "replay order must be submission/transition order"
        );
        // -0.0 survives the payload round-trip bit-exactly.
        let Value::Obj(entries) = &jobs[0].payload else {
            panic!("payload shape")
        };
        let Value::Num(em) = entries[0].1 else {
            panic!("payload field")
        };
        assert_eq!(em.to_bits(), (-0.0f64).to_bits());
        assert_eq!(fresh.stats().expect("stats").job_records, 4);
        // A duplicated transition collapses under compaction; the three
        // distinct transitions of job "a" all survive.
        fresh.append_job(&frame(0, JobState::Finished, "a", 42.25));
        fresh.compact().expect("compacts");
        assert_eq!(fresh.load_jobs().expect("after compact").len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// One panicking job thread must not poison the store for everyone
    /// else: a lock held across a panic recovers, and the next flush still
    /// lands its records.
    #[test]
    fn poisoned_store_lock_recovers() {
        let dir = temp_dir("poison");
        let store = std::sync::Arc::new(Store::open(&dir).expect("opens"));
        store.append_eval(&eval(3, 0, 85.0));
        let poisoner = std::sync::Arc::clone(&store);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.shards.lock().expect("first lock is clean");
            panic!("poison the shard table");
        })
        .join();
        assert!(store.shards.lock().is_err(), "lock should be poisoned");
        store.append_eval(&eval(3, 1, 86.0));
        let flushed = store.flush().expect("flush survives poisoning");
        assert_eq!(flushed.records_written, 2);
        assert_eq!(store.load_evals(3).expect("load survives").len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_mismatch_is_an_explicit_error() {
        let dir = temp_dir("schema");
        let store = Store::open(&dir).expect("opens");
        store.append_eval(&eval(0, 0, 85.0));
        store.flush().expect("flushes");
        let path = dir.join("shard_000.bin");
        drop(store);
        let mut bytes = std::fs::read(&path).expect("reads");
        bytes[8] = 99; // version
        std::fs::write(&path, &bytes).expect("writes");
        assert!(Store::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
