//! Worst-case eye-opening estimation from a channel's frequency response.
//!
//! The classic peak-distortion analysis: sample the channel's `S21` on a
//! uniform frequency grid, inverse-DFT to the impulse response, convolve
//! with one unit bit pulse to get the **pulse response**, then open the eye
//! at the main cursor and close it by the worst-case sum of inter-symbol
//! interference magnitudes at all other cursors:
//!
//! `eye_height = p(t0) - sum_{n != 0} |p(t0 + n T)|`
//!
//! This deliberately simple estimator (no equalization, no jitter) is the
//! standard first-pass link check and gives the channel designer a scalar
//! to trade against the stack-up FoM.
//!
//! The spectrum is sampled through the batched [`SweepPlan`] path and the
//! inverse DFT runs through the radix-2 [`RealInverseFft`] (O(n log n));
//! all buffers live in a reusable [`EyeWorkspace`], so a warm analysis
//! allocates nothing. The O(n²) scalar reference survives as
//! [`impulse_response_naive`] for equivalence tests and benches.

use crate::channel::Channel;
use crate::complex::Complex;
use crate::fft::RealInverseFft;
use crate::sweep::SweepPlan;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Result of a peak-distortion eye analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EyeReport {
    /// Main-cursor pulse amplitude (0..1 of the transmitted swing).
    pub main_cursor: f64,
    /// Worst-case ISI closing the eye (sum of off-cursor magnitudes).
    pub isi: f64,
    /// Worst-case vertical eye opening, `main_cursor - isi` (can be
    /// negative: a closed eye).
    pub eye_height: f64,
    /// Bit period used, seconds.
    pub bit_period: f64,
}

impl EyeReport {
    /// `true` when the worst-case eye is open.
    pub fn is_open(&self) -> bool {
        self.eye_height > 0.0
    }
}

/// Total order that ranks every NaN below every number (`nan_last` for a
/// max search): a degenerate pulse sample can never win the main cursor,
/// and an all-NaN pulse is handled by an explicit fallback instead of a
/// panic.
fn nan_last(a: &f64, b: &f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(b),
    }
}

/// Reusable scratch arenas for eye analysis: the embedded batched sweep
/// plan, the FFT plan (cached per grid), and the spectrum/time/pulse
/// buffers. A warm workspace (same grid, prototypes already interned)
/// allocates nothing per analysis.
#[derive(Debug, Default)]
pub struct EyeWorkspace {
    /// `(f_max bits, n_freq)` of the grid the plan/FFT are built for.
    grid: Option<(u64, usize)>,
    plan: SweepPlan,
    /// Present when `2 * n_freq` is a power of two (always true for the
    /// grids [`peak_distortion_eye`] builds); otherwise the naive O(n²)
    /// sum runs in-place as a fallback.
    fft: Option<RealInverseFft>,
    half_re: Vec<f64>,
    half_im: Vec<f64>,
    time_re: Vec<f64>,
    time_im: Vec<f64>,
    pulse: Vec<f64>,
}

impl EyeWorkspace {
    /// An empty workspace; arenas fill on first use.
    pub fn new() -> Self {
        Self {
            plan: SweepPlan::new(Vec::new()),
            ..Self::default()
        }
    }

    /// Samples `channel`'s transfer function and returns the impulse
    /// response by inverse real DFT, borrowed from the workspace arena.
    /// `n_freq` spectral bins span `[0, f_max]` (DC and Nyquist inclusive);
    /// the time resolution is `1 / (2 f_max)`.
    ///
    /// Only the `k == 0` bin is treated as DC (`H = 1`: a passive series
    /// path passes DC fully); every `k >= 1` bin — however low its
    /// frequency — is evaluated through the channel model. Gating on the
    /// frequency *value* instead (the pre-fix `f < 1.0` Hz) collapses
    /// multiple low bins to `H = 1` on fine grids and flattens the
    /// low-frequency response.
    ///
    /// # Panics
    ///
    /// Panics when `n_freq == 0` or `f_max <= 0`.
    pub fn impulse_response(&mut self, channel: &Channel, f_max: f64, n_freq: usize) -> &[f64] {
        assert!(n_freq >= 1, "need at least one spectral bin");
        assert!(f_max > 0.0, "f_max must be positive");
        let key = (f_max.to_bits(), n_freq);
        if self.grid != Some(key) {
            // Grid change: rebuild the sweep plan (bins k = 1..=n_freq; DC
            // is pinned analytically below) and the FFT plan.
            let freqs: Vec<f64> = (1..=n_freq)
                .map(|k| f_max * k as f64 / n_freq as f64)
                .collect();
            self.plan = SweepPlan::new(freqs);
            let n_time = 2 * n_freq;
            self.fft = n_time
                .is_power_of_two()
                .then(|| RealInverseFft::new(n_time));
            self.grid = Some(key);
        }

        let view = self.plan.sweep(channel);
        self.half_re.clear();
        self.half_im.clear();
        // k == 0: DC. A passive channel passes DC fully (series path).
        self.half_re.push(1.0);
        self.half_im.push(0.0);
        for k in 0..n_freq {
            let s21 = view.s21(k);
            self.half_re.push(s21.re);
            self.half_im.push(s21.im);
        }

        let n_time = 2 * n_freq;
        self.time_re.resize(n_time, 0.0);
        self.time_im.resize(n_time, 0.0);
        if let Some(fft) = &self.fft {
            fft.inverse_real(
                &self.half_re,
                &self.half_im,
                &mut self.time_re,
                &mut self.time_im,
            );
        } else {
            naive_inverse_into(&self.half_re, &self.half_im, &mut self.time_re);
        }
        &self.time_re
    }
}

/// The O(n²) weighted-sum inverse of a Hermitian half-spectrum, written
/// into `out` (length `2 * (half_re.len() - 1)`).
fn naive_inverse_into(half_re: &[f64], half_im: &[f64], out: &mut [f64]) {
    let n_freq = half_re.len() - 1;
    let n_time = 2 * n_freq;
    for (m, slot) in out.iter_mut().enumerate() {
        let mut acc = half_re[0];
        for k in 1..=n_freq {
            let phase = 2.0 * std::f64::consts::PI * (k * m) as f64 / n_time as f64;
            let w = if k == n_freq { 1.0 } else { 2.0 };
            acc += w * (half_re[k] * phase.cos() - half_im[k] * phase.sin());
        }
        *slot = acc / n_time as f64;
    }
}

/// Convenience wrapper over [`EyeWorkspace::impulse_response`] that
/// allocates a fresh workspace and returns an owned impulse response.
pub fn impulse_response(channel: &Channel, f_max: f64, n_freq: usize) -> Vec<f64> {
    let mut ws = EyeWorkspace::new();
    ws.impulse_response(channel, f_max, n_freq).to_vec()
}

/// The scalar O(n²) reference implementation of [`impulse_response`]: the
/// spectrum is sampled point-by-point through [`Channel::abcd`] and
/// inverse-transformed by the naive weighted sum. Kept as the equivalence
/// anchor for the FFT path (equal in exact arithmetic; ~1e-12 apart in
/// floats) and as the baseline for the `eye_fft` bench.
///
/// # Panics
///
/// Panics when `n_freq == 0` or `f_max <= 0`.
pub fn impulse_response_naive(channel: &Channel, f_max: f64, n_freq: usize) -> Vec<f64> {
    assert!(n_freq >= 1, "need at least one spectral bin");
    assert!(f_max > 0.0, "f_max must be positive");
    let z_ref = channel.reference_impedance();
    // H[k] for k = 0..n_freq (inclusive of DC and Nyquist); only k == 0 is
    // the DC bin (see EyeWorkspace::impulse_response).
    let spectrum: Vec<Complex> = (0..=n_freq)
        .map(|k| {
            if k == 0 {
                Complex::real(1.0)
            } else {
                let f = f_max * k as f64 / n_freq as f64;
                let (_, s21, _, _) = channel.abcd(f).to_s_params(z_ref);
                s21
            }
        })
        .collect();
    let half_re: Vec<f64> = spectrum.iter().map(|h| h.re).collect();
    let half_im: Vec<f64> = spectrum.iter().map(|h| h.im).collect();
    let mut out = vec![0.0; 2 * n_freq];
    naive_inverse_into(&half_re, &half_im, &mut out);
    out
}

/// Runs peak-distortion analysis of `channel` at `gbps` gigabits per
/// second, reusing `ws`'s arenas (allocation-free when warm).
///
/// `oversample` time samples per bit (8–32 is typical); the analysis window
/// covers `n_bits` bit periods of pulse-response tail.
///
/// A degenerate channel (overflowed cosh/sinh, zero denominators) yields
/// NaN pulse samples; those are ranked below every finite sample for the
/// main cursor and skipped in the ISI sum, and an all-NaN pulse reports a
/// fully closed eye (`main_cursor = isi = eye_height = 0`) instead of
/// panicking.
///
/// # Panics
///
/// Panics on non-positive `gbps` or `oversample < 2`.
pub fn peak_distortion_eye_with(
    ws: &mut EyeWorkspace,
    channel: &Channel,
    gbps: f64,
    oversample: usize,
    n_bits: usize,
) -> EyeReport {
    assert!(gbps > 0.0, "bit rate must be positive");
    assert!(oversample >= 2, "need at least 2 samples per bit");
    let bit_period = 1e-9 / gbps;
    let dt = bit_period / oversample as f64;
    let f_max = 0.5 / dt;
    let n_freq = (oversample * n_bits.max(4)).next_power_of_two();
    ws.impulse_response(channel, f_max, n_freq);

    // Pulse response: convolve the impulse response with a one-bit-wide
    // rectangular pulse (sum of `oversample` consecutive impulse samples).
    let h = &ws.time_re;
    ws.pulse.clear();
    ws.pulse.extend((0..h.len()).map(|m| {
        (0..oversample)
            .map(|j| if m >= j { h[m - j] } else { 0.0 })
            .sum::<f64>()
    }));

    // Main cursor: the pulse-response peak, NaNs ranked last.
    let (peak_idx, main_cursor) = ws
        .pulse
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| nan_last(&a.1, &b.1))
        .expect("non-empty");
    if main_cursor.is_nan() {
        // Every sample is NaN: the channel model broke down entirely.
        // Report a fully closed eye rather than propagating NaN.
        return EyeReport {
            main_cursor: 0.0,
            isi: 0.0,
            eye_height: 0.0,
            bit_period,
        };
    }

    // Worst-case ISI: sample at bit-period offsets from the cursor,
    // skipping any degenerate NaN samples.
    let mut isi = 0.0;
    for n in 1..n_bits as isize {
        for &sign in &[-1isize, 1] {
            let idx = peak_idx as isize + sign * n * oversample as isize;
            if idx >= 0 && (idx as usize) < ws.pulse.len() {
                let v = ws.pulse[idx as usize];
                if !v.is_nan() {
                    isi += v.abs();
                }
            }
        }
    }

    EyeReport {
        main_cursor,
        isi,
        eye_height: main_cursor - isi,
        bit_period,
    }
}

/// Runs peak-distortion analysis of `channel` at `gbps` gigabits per
/// second with a fresh (throwaway) workspace — see
/// [`peak_distortion_eye_with`] for the semantics and the reusable entry
/// point.
///
/// # Panics
///
/// Panics on non-positive `gbps` or `oversample < 2`.
pub fn peak_distortion_eye(
    channel: &Channel,
    gbps: f64,
    oversample: usize,
    n_bits: usize,
) -> EyeReport {
    let mut ws = EyeWorkspace::new();
    peak_distortion_eye_with(&mut ws, channel, gbps, oversample, n_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Element;
    use crate::stackup::DiffStripline;
    use crate::via::Via;

    fn line(inches: f64) -> Channel {
        Channel::new(vec![Element::Stripline {
            layer: DiffStripline::default(),
            length_inches: inches,
        }])
        .expect("valid")
    }

    #[test]
    fn short_clean_line_has_wide_open_eye() {
        let eye = peak_distortion_eye(&line(1.0), 8.0, 8, 16);
        assert!(eye.is_open(), "1-inch line at 8 Gb/s must be open: {eye:?}");
        assert!(eye.main_cursor > 0.7, "main cursor {}", eye.main_cursor);
        assert!(eye.eye_height > 0.4, "eye height {}", eye.eye_height);
    }

    #[test]
    fn eye_degrades_with_length() {
        let short = peak_distortion_eye(&line(2.0), 16.0, 8, 16);
        let long = peak_distortion_eye(&line(20.0), 16.0, 8, 16);
        assert!(
            long.eye_height < short.eye_height,
            "longer channel must close the eye: {} !< {}",
            long.eye_height,
            short.eye_height
        );
    }

    #[test]
    fn eye_degrades_with_bit_rate() {
        let ch = line(10.0);
        let slow = peak_distortion_eye(&ch, 4.0, 8, 16);
        let fast = peak_distortion_eye(&ch, 32.0, 8, 16);
        assert!(fast.eye_height < slow.eye_height);
    }

    #[test]
    fn stub_via_costs_eye_margin() {
        let layer = DiffStripline::default();
        let seg = |inches: f64| Element::Stripline {
            layer,
            length_inches: inches,
        };
        let clean = Channel::new(vec![seg(4.0), seg(4.0)]).expect("ok");
        let stubbed = Channel::new(vec![
            seg(4.0),
            Element::Via(Via {
                stub_length: 60.0,
                ..Via::default()
            }),
            seg(4.0),
        ])
        .expect("ok");
        let rate = 25.0;
        let e_clean = peak_distortion_eye(&clean, rate, 8, 16);
        let e_stub = peak_distortion_eye(&stubbed, rate, 8, 16);
        assert!(
            e_stub.eye_height < e_clean.eye_height + 1e-9,
            "stub must not improve the eye: {} vs {}",
            e_stub.eye_height,
            e_clean.eye_height
        );
    }

    #[test]
    fn cursor_plus_isi_bounded_by_pulse_energy() {
        let eye = peak_distortion_eye(&line(6.0), 16.0, 8, 16);
        // For a passive channel the pulse response integrates to <= 1 bit;
        // cursor and ISI are each bounded accordingly.
        assert!(eye.main_cursor <= 1.05, "cursor {}", eye.main_cursor);
        assert!(eye.isi >= 0.0);
        assert!(eye.bit_period > 0.0);
    }

    #[test]
    #[should_panic(expected = "bit rate must be positive")]
    fn zero_rate_panics() {
        let _ = peak_distortion_eye(&line(1.0), 0.0, 8, 16);
    }

    /// Regression for the NaN panic: an absurdly long line overflows
    /// `cosh`/`sinh`, the S-parameter denominator goes infinite, and
    /// `2 / inf` evaluates to NaN through the complex division — the
    /// pre-fix `partial_cmp(...).expect("finite pulse")` panicked here.
    /// The fixed ranking reports a closed eye instead.
    #[test]
    fn degenerate_channel_reports_closed_eye_instead_of_panicking() {
        let eye = peak_distortion_eye(&line(1e9), 32.0, 8, 16);
        assert!(eye.main_cursor.is_finite());
        assert!(eye.isi.is_finite());
        assert!(!eye.is_open(), "a broken channel cannot have an open eye");
        assert_eq!(eye.main_cursor, 0.0);
        assert_eq!(eye.isi, 0.0);
    }

    /// Regression for the DC gating bug: with `f_max / n_freq < 1` Hz the
    /// pre-fix code forced every bin below 1 Hz to `H = 1`; reconstructing
    /// bin 1 from the impulse response then returned exactly 1 instead of
    /// the channel's true (mismatch-dominated) low-frequency `S21`.
    #[test]
    fn low_frequency_bins_are_not_collapsed_to_dc() {
        let ch = line(100.0);
        let (f_max, n_freq) = (4.0, 16);
        let f1 = f_max / n_freq as f64; // 0.25 Hz — below the old gate
        let z = ch.reference_impedance();
        let (_, s21, _, _) = ch.abcd(f1).to_s_params(z);
        // The channel is strongly mismatched at sub-Hz frequencies, so the
        // true bin-1 response is far from the pre-fix forced value of 1.
        assert!(
            (s21 - Complex::real(1.0)).abs() > 1e-3,
            "test needs a discriminating channel, |s21 - 1| too small"
        );
        let h = impulse_response(&ch, f_max, n_freq);
        // Forward-DFT the impulse response back to bin 1.
        let n_time = h.len();
        let mut re = 0.0;
        let mut im = 0.0;
        for (m, &v) in h.iter().enumerate() {
            let phase = 2.0 * std::f64::consts::PI * m as f64 / n_time as f64;
            re += v * phase.cos();
            im -= v * phase.sin();
        }
        let err = ((re - s21.re).powi(2) + (im - s21.im).powi(2)).sqrt();
        assert!(err < 1e-6, "reconstructed H[1] off by {err}");
    }

    /// The FFT path and the O(n²) scalar reference agree to numerical
    /// noise (equal in exact arithmetic; the float rounding differs at the
    /// 1e-12 level).
    #[test]
    fn fft_impulse_matches_naive_reference() {
        let ch = line(5.0);
        let (f_max, n_freq) = (6.4e10, 128);
        let fast = impulse_response(&ch, f_max, n_freq);
        let slow = impulse_response_naive(&ch, f_max, n_freq);
        assert_eq!(fast.len(), slow.len());
        for (m, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert!((a - b).abs() < 1e-9, "sample {m}: {a} vs {b}");
        }
    }

    /// A reused (warm) workspace reproduces the cold result bit for bit,
    /// across interleaved channels and grids.
    #[test]
    fn workspace_reuse_is_bit_identical() {
        let a = line(3.0);
        let b = line(7.0);
        let mut ws = EyeWorkspace::new();
        let cold_a = ws.impulse_response(&a, 3.2e10, 64).to_vec();
        let cold_b = ws.impulse_response(&b, 3.2e10, 64).to_vec();
        let _grid_change = ws.impulse_response(&a, 1.6e10, 32).to_vec();
        let warm_a = ws.impulse_response(&a, 3.2e10, 64).to_vec();
        let warm_b = ws.impulse_response(&b, 3.2e10, 64).to_vec();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&cold_a), bits(&warm_a));
        assert_eq!(bits(&cold_b), bits(&warm_b));
        let eye_fresh = peak_distortion_eye(&a, 16.0, 8, 16);
        let eye_warm = peak_distortion_eye_with(&mut ws, &a, 16.0, 8, 16);
        assert_eq!(eye_fresh, eye_warm);
    }
}
