//! Worst-case eye-opening estimation from a channel's frequency response.
//!
//! The classic peak-distortion analysis: sample the channel's `S21` on a
//! uniform frequency grid, inverse-DFT to the impulse response, convolve
//! with one unit bit pulse to get the **pulse response**, then open the eye
//! at the main cursor and close it by the worst-case sum of inter-symbol
//! interference magnitudes at all other cursors:
//!
//! `eye_height = p(t0) - sum_{n != 0} |p(t0 + n T)|`
//!
//! This deliberately simple estimator (no equalization, no jitter) is the
//! standard first-pass link check and gives the channel designer a scalar
//! to trade against the stack-up FoM.

use crate::channel::Channel;
use crate::complex::Complex;
use serde::{Deserialize, Serialize};

/// Result of a peak-distortion eye analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EyeReport {
    /// Main-cursor pulse amplitude (0..1 of the transmitted swing).
    pub main_cursor: f64,
    /// Worst-case ISI closing the eye (sum of off-cursor magnitudes).
    pub isi: f64,
    /// Worst-case vertical eye opening, `main_cursor - isi` (can be
    /// negative: a closed eye).
    pub eye_height: f64,
    /// Bit period used, seconds.
    pub bit_period: f64,
}

impl EyeReport {
    /// `true` when the worst-case eye is open.
    pub fn is_open(&self) -> bool {
        self.eye_height > 0.0
    }
}

/// Samples `channel`'s transfer function and returns the impulse response by
/// inverse real DFT. `n_freq` spectral bins span `[0, f_max]`; the time
/// resolution is `1 / (2 f_max)`.
fn impulse_response(channel: &Channel, f_max: f64, n_freq: usize) -> Vec<f64> {
    let z_ref = channel.reference_impedance();
    // H[k] for k = 0..n_freq (inclusive of DC and Nyquist).
    let spectrum: Vec<Complex> = (0..=n_freq)
        .map(|k| {
            let f = f_max * k as f64 / n_freq as f64;
            if f < 1.0 {
                // DC: passive channel passes DC fully (series path).
                Complex::real(1.0)
            } else {
                let (_, s21, _, _) = channel.abcd(f).to_s_params(z_ref);
                s21
            }
        })
        .collect();
    // Inverse real DFT with Hermitian symmetry: h[m] = (1/N) * sum_k H_k e^{j 2 pi k m / N}
    // over the full length N = 2 * n_freq.
    let n_time = 2 * n_freq;
    (0..n_time)
        .map(|m| {
            let mut acc = spectrum[0].re; // DC term
            for (k, h) in spectrum.iter().enumerate().skip(1) {
                let phase = 2.0 * std::f64::consts::PI * (k * m) as f64 / n_time as f64;
                let w = if k == n_freq { 1.0 } else { 2.0 };
                acc += w * (h.re * phase.cos() - h.im * phase.sin());
            }
            acc / n_time as f64
        })
        .collect()
}

/// Runs peak-distortion analysis of `channel` at `gbps` gigabits per second.
///
/// `oversample` time samples per bit (8–32 is typical); the analysis window
/// covers `n_bits` bit periods of pulse-response tail.
///
/// # Panics
///
/// Panics on non-positive `gbps` or `oversample < 2`.
pub fn peak_distortion_eye(
    channel: &Channel,
    gbps: f64,
    oversample: usize,
    n_bits: usize,
) -> EyeReport {
    assert!(gbps > 0.0, "bit rate must be positive");
    assert!(oversample >= 2, "need at least 2 samples per bit");
    let bit_period = 1e-9 / gbps;
    let dt = bit_period / oversample as f64;
    let f_max = 0.5 / dt;
    let n_freq = (oversample * n_bits.max(4)).next_power_of_two();
    let h = impulse_response(channel, f_max, n_freq);

    // Pulse response: convolve the impulse response with a one-bit-wide
    // rectangular pulse (sum of `oversample` consecutive impulse samples).
    let pulse: Vec<f64> = (0..h.len())
        .map(|m| {
            (0..oversample)
                .map(|j| if m >= j { h[m - j] } else { 0.0 })
                .sum()
        })
        .collect();

    // Main cursor: the pulse-response peak.
    let (peak_idx, &main_cursor) = pulse
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite pulse"))
        .expect("non-empty");

    // Worst-case ISI: sample at bit-period offsets from the cursor.
    let mut isi = 0.0;
    for n in 1..n_bits as isize {
        for &sign in &[-1isize, 1] {
            let idx = peak_idx as isize + sign * n * oversample as isize;
            if idx >= 0 && (idx as usize) < pulse.len() {
                isi += pulse[idx as usize].abs();
            }
        }
    }

    EyeReport {
        main_cursor,
        isi,
        eye_height: main_cursor - isi,
        bit_period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Element;
    use crate::stackup::DiffStripline;
    use crate::via::Via;

    fn line(inches: f64) -> Channel {
        Channel::new(vec![Element::Stripline {
            layer: DiffStripline::default(),
            length_inches: inches,
        }])
        .expect("valid")
    }

    #[test]
    fn short_clean_line_has_wide_open_eye() {
        let eye = peak_distortion_eye(&line(1.0), 8.0, 8, 16);
        assert!(eye.is_open(), "1-inch line at 8 Gb/s must be open: {eye:?}");
        assert!(eye.main_cursor > 0.7, "main cursor {}", eye.main_cursor);
        assert!(eye.eye_height > 0.4, "eye height {}", eye.eye_height);
    }

    #[test]
    fn eye_degrades_with_length() {
        let short = peak_distortion_eye(&line(2.0), 16.0, 8, 16);
        let long = peak_distortion_eye(&line(20.0), 16.0, 8, 16);
        assert!(
            long.eye_height < short.eye_height,
            "longer channel must close the eye: {} !< {}",
            long.eye_height,
            short.eye_height
        );
    }

    #[test]
    fn eye_degrades_with_bit_rate() {
        let ch = line(10.0);
        let slow = peak_distortion_eye(&ch, 4.0, 8, 16);
        let fast = peak_distortion_eye(&ch, 32.0, 8, 16);
        assert!(fast.eye_height < slow.eye_height);
    }

    #[test]
    fn stub_via_costs_eye_margin() {
        let layer = DiffStripline::default();
        let seg = |inches: f64| Element::Stripline {
            layer,
            length_inches: inches,
        };
        let clean = Channel::new(vec![seg(4.0), seg(4.0)]).expect("ok");
        let stubbed = Channel::new(vec![
            seg(4.0),
            Element::Via(Via {
                stub_length: 60.0,
                ..Via::default()
            }),
            seg(4.0),
        ])
        .expect("ok");
        let rate = 25.0;
        let e_clean = peak_distortion_eye(&clean, rate, 8, 16);
        let e_stub = peak_distortion_eye(&stubbed, rate, 8, 16);
        assert!(
            e_stub.eye_height < e_clean.eye_height + 1e-9,
            "stub must not improve the eye: {} vs {}",
            e_stub.eye_height,
            e_clean.eye_height
        );
    }

    #[test]
    fn cursor_plus_isi_bounded_by_pulse_energy() {
        let eye = peak_distortion_eye(&line(6.0), 16.0, 8, 16);
        // For a passive channel the pulse response integrates to <= 1 bit;
        // cursor and ISI are each bounded accordingly.
        assert!(eye.main_cursor <= 1.05, "cursor {}", eye.main_cursor);
        assert!(eye.isi >= 0.0);
        assert!(eye.bit_period > 0.0);
    }

    #[test]
    #[should_panic(expected = "bit rate must be positive")]
    fn zero_rate_panics() {
        let _ = peak_distortion_eye(&line(1.0), 0.0, 8, 16);
    }
}
