//! 2-D finite-difference electrostatic field solver.
//!
//! Solves Laplace's equation over the stripline cross-section with
//! successive over-relaxation (SOR) and extracts the odd-mode per-unit-length
//! capacitance by the energy method. Running the same solve with the
//! dielectric replaced by vacuum yields the inductance through
//! `L = 1 / (c0^2 * C_air)` (quasi-TEM), and hence the odd-mode impedance
//!
//! `Z_odd = 1 / (c0 * sqrt(C * C_air))`.
//!
//! This is the "accurate but slow" engine standing in for the commercial EM
//! tool of the paper: it makes no closed-form approximations about the trace
//! shape (the trapezoidal etch profile is rasterized directly) and is used to
//! cross-validate the analytical model and as the roll-out verifier.

use crate::stackup::DiffStripline;
use crate::units::{mils_to_meters, C0, EPS0};
use serde::{Deserialize, Serialize};

/// Configuration of the finite-difference grid and SOR iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FdConfig {
    /// Grid cells per mil (resolution). 2.0 gives ~1% repeatability.
    pub cells_per_mil: f64,
    /// SOR over-relaxation factor in (1, 2).
    pub omega: f64,
    /// Convergence threshold on the max potential update.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Lateral margin beyond the outer trace edges, in multiples of the
    /// plane spacing.
    pub lateral_margin: f64,
}

impl Default for FdConfig {
    fn default() -> Self {
        Self {
            cells_per_mil: 2.0,
            omega: 1.85,
            tolerance: 1e-6,
            max_iterations: 20_000,
            lateral_margin: 2.0,
        }
    }
}

/// Result of a field solve on one cross-section.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldSolution {
    /// Odd-mode capacitance per unit length with the real dielectric, F/m.
    pub c_odd: f64,
    /// Odd-mode capacitance per unit length with vacuum dielectric, F/m.
    pub c_odd_air: f64,
    /// Odd-mode characteristic impedance, ohms.
    pub z_odd: f64,
    /// Effective relative permittivity `C / C_air`.
    pub eps_eff: f64,
    /// SOR iterations used (dielectric solve).
    pub iterations: usize,
}

impl FieldSolution {
    /// Differential impedance `2 * Z_odd`, ohms.
    pub fn z_diff(&self) -> f64 {
        2.0 * self.z_odd
    }
}

/// Rasterized cross-section: node potentials plus cell permittivities.
struct Grid {
    nx: usize,
    ny: usize,
    h_m: f64,
    /// Cell-centred relative permittivity, `(nx-1) * (ny-1)` cells.
    eps: Vec<f64>,
    /// Node potential, `nx * ny` nodes.
    v: Vec<f64>,
    /// Node kind: 0 = free, 1 = fixed (conductor / boundary).
    fixed: Vec<bool>,
}

impl Grid {
    fn cell(&self, i: usize, j: usize) -> f64 {
        self.eps[j * (self.nx - 1) + i]
    }
}

/// Builds the odd-mode grid (exploiting the antisymmetry plane between the
/// two traces: the symmetry plane is a virtual ground, so only one half needs
/// solving; we solve the full pair anyway for clarity at this problem size).
fn build_grid(layer: &DiffStripline, cfg: &FdConfig, vacuum: bool) -> Grid {
    let res = cfg.cells_per_mil;
    let b = layer.plane_spacing_mils();
    let w = layer.trace_width;
    let s = layer.trace_spacing;
    let margin = cfg.lateral_margin * b;
    let width_mils = 2.0 * w + s + 2.0 * margin;
    let nx = (width_mils * res).ceil() as usize + 1;
    let ny = (b * res).ceil() as usize + 1;
    let h_m = mils_to_meters(1.0 / res);

    let mut eps = vec![1.0; (nx - 1) * (ny - 1)];
    if !vacuum {
        for j in 0..ny - 1 {
            let y = (j as f64 + 0.5) / res;
            let dk = if y < layer.core_height {
                layer.dk_core
            } else if y < layer.core_height + layer.trace_height {
                layer.dk_trace
            } else {
                layer.dk_prepreg
            };
            for i in 0..nx - 1 {
                eps[j * (nx - 1) + i] = dk;
            }
        }
    }

    let mut v = vec![0.0; nx * ny];
    let mut fixed = vec![false; nx * ny];

    // Ground planes and lateral walls.
    for i in 0..nx {
        fixed[i] = true; // bottom plane (j = 0)
        fixed[(ny - 1) * nx + i] = true; // top plane
    }
    for j in 0..ny {
        fixed[j * nx] = true;
        fixed[j * nx + nx - 1] = true;
    }

    // Trapezoidal traces at +0.5 / -0.5 V (odd mode).
    let y0 = layer.core_height;
    let y1 = layer.core_height + layer.trace_height;
    let trace1_left = margin;
    let trace2_left = margin + w + s;
    for j in 0..ny {
        let y = j as f64 / res;
        if y < y0 || y > y1 {
            continue;
        }
        // Etch narrows the trace linearly from bottom (full width) to top.
        let frac = if layer.trace_height > 0.0 {
            ((y - y0) / layer.trace_height).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let inset = layer.etch_factor * layer.trace_height * frac;
        for (left, pot) in [(trace1_left, 0.5), (trace2_left, -0.5)] {
            let lo = left + inset;
            let hi = left + w - inset;
            for i in 0..nx {
                let x = i as f64 / res;
                if x >= lo && x <= hi {
                    let idx = j * nx + i;
                    fixed[idx] = true;
                    v[idx] = pot;
                }
            }
        }
    }

    Grid {
        nx,
        ny,
        h_m,
        eps,
        v,
        fixed,
    }
}

/// Runs SOR until convergence; returns iterations used.
fn solve_sor(grid: &mut Grid, cfg: &FdConfig) -> usize {
    let (nx, ny) = (grid.nx, grid.ny);
    for iter in 0..cfg.max_iterations {
        let mut max_delta = 0.0f64;
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                let idx = j * nx + i;
                if grid.fixed[idx] {
                    continue;
                }
                // Edge permittivities: mean of the two cells flanking each
                // edge (standard dielectric-interface stencil).
                let e_sw = grid.cell(i - 1, j - 1);
                let e_se = grid.cell(i, j - 1);
                let e_nw = grid.cell(i - 1, j);
                let e_ne = grid.cell(i, j);
                let a_w = 0.5 * (e_sw + e_nw);
                let a_e = 0.5 * (e_se + e_ne);
                let a_s = 0.5 * (e_sw + e_se);
                let a_n = 0.5 * (e_nw + e_ne);
                let denom = a_w + a_e + a_s + a_n;
                let v_new = (a_w * grid.v[idx - 1]
                    + a_e * grid.v[idx + 1]
                    + a_s * grid.v[idx - nx]
                    + a_n * grid.v[idx + nx])
                    / denom;
                let delta = v_new - grid.v[idx];
                grid.v[idx] += cfg.omega * delta;
                max_delta = max_delta.max(delta.abs());
            }
        }
        if max_delta < cfg.tolerance {
            return iter + 1;
        }
    }
    cfg.max_iterations
}

/// Field energy per unit length, J/m, via cell-centred gradients.
fn field_energy(grid: &Grid) -> f64 {
    let nx = grid.nx;
    let mut w = 0.0;
    for j in 0..grid.ny - 1 {
        for i in 0..nx - 1 {
            let v00 = grid.v[j * nx + i];
            let v10 = grid.v[j * nx + i + 1];
            let v01 = grid.v[(j + 1) * nx + i];
            let v11 = grid.v[(j + 1) * nx + i + 1];
            let ex = 0.5 * ((v10 - v00) + (v11 - v01)) / grid.h_m;
            let ey = 0.5 * ((v01 - v00) + (v11 - v10)) / grid.h_m;
            w += grid.cell(i, j) * (ex * ex + ey * ey);
        }
    }
    0.5 * EPS0 * w * grid.h_m * grid.h_m
}

/// Solves the odd-mode electrostatics of `layer`.
///
/// With traces driven at +-0.5 V, the stored energy `W` relates to the
/// odd-mode capacitance per line as `C_odd = 4 W` (see module docs).
pub fn solve_odd_mode(layer: &DiffStripline, cfg: &FdConfig) -> FieldSolution {
    let mut g_diel = build_grid(layer, cfg, false);
    let iters = solve_sor(&mut g_diel, cfg);
    let c_odd = 4.0 * field_energy(&g_diel);

    let mut g_air = build_grid(layer, cfg, true);
    solve_sor(&mut g_air, cfg);
    let c_odd_air = 4.0 * field_energy(&g_air);

    let z_odd = 1.0 / (C0 * (c_odd * c_odd_air).sqrt());
    FieldSolution {
        c_odd,
        c_odd_air,
        z_odd,
        eps_eff: c_odd / c_odd_air,
        iterations: iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stripline::odd_mode_z0;

    fn fast_cfg() -> FdConfig {
        FdConfig {
            cells_per_mil: 2.5,
            tolerance: 1e-5,
            ..FdConfig::default()
        }
    }

    #[test]
    fn converges_and_is_physical() {
        let layer = DiffStripline::default();
        let sol = solve_odd_mode(&layer, &fast_cfg());
        assert!(
            sol.iterations < fast_cfg().max_iterations,
            "did not converge"
        );
        assert!(sol.c_odd > sol.c_odd_air, "dielectric must raise C");
        assert!(
            sol.z_odd > 10.0 && sol.z_odd < 100.0,
            "Zodd = {}",
            sol.z_odd
        );
    }

    #[test]
    fn eps_eff_between_bounds() {
        let layer = DiffStripline::default();
        let sol = solve_odd_mode(&layer, &fast_cfg());
        let dks = [layer.dk_core, layer.dk_trace, layer.dk_prepreg];
        let lo = dks.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = dks.iter().cloned().fold(0.0, f64::max);
        assert!(
            sol.eps_eff >= lo * 0.98 && sol.eps_eff <= hi * 1.02,
            "eps_eff {} outside [{lo}, {hi}]",
            sol.eps_eff
        );
    }

    #[test]
    fn agrees_with_analytical_model() {
        // Field solve and closed-form Wheeler+coupling model must agree to
        // ~15% for typical geometry: they are independent derivations.
        let layer = DiffStripline::default();
        let fd = solve_odd_mode(&layer, &fast_cfg()).z_odd;
        let an = odd_mode_z0(&layer);
        let rel = (fd - an).abs() / an;
        assert!(
            rel < 0.15,
            "FD {fd} vs analytical {an} ({:.1}%)",
            rel * 100.0
        );
    }

    #[test]
    fn z_tracks_width_direction() {
        let narrow = DiffStripline::builder().trace_width(3.5).build().unwrap();
        let wide = DiffStripline::builder().trace_width(7.0).build().unwrap();
        let cfg = fast_cfg();
        let zn = solve_odd_mode(&narrow, &cfg).z_odd;
        let zw = solve_odd_mode(&wide, &cfg).z_odd;
        assert!(zw < zn, "wider trace must lower Z: {zw} !< {zn}");
    }

    #[test]
    fn z_diff_is_twice_odd() {
        let sol = solve_odd_mode(&DiffStripline::default(), &fast_cfg());
        assert!((sol.z_diff() - 2.0 * sol.z_odd).abs() < 1e-12);
    }

    #[test]
    fn finer_grid_changes_little() {
        let layer = DiffStripline::default();
        let coarse = solve_odd_mode(
            &layer,
            &FdConfig {
                cells_per_mil: 1.0,
                tolerance: 1e-5,
                ..FdConfig::default()
            },
        );
        let fine = solve_odd_mode(
            &layer,
            &FdConfig {
                cells_per_mil: 2.0,
                tolerance: 1e-5,
                ..FdConfig::default()
            },
        );
        let rel = (coarse.z_odd - fine.z_odd).abs() / fine.z_odd;
        assert!(rel < 0.08, "grid sensitivity too high: {:.1}%", rel * 100.0);
    }
}
