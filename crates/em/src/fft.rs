//! Radix-2 inverse real FFT for the eye-diagram impulse response.
//!
//! The peak-distortion analysis needs the inverse DFT of a Hermitian
//! half-spectrum (`n/2 + 1` bins spanning DC..Nyquist) back to `n` real
//! time samples. The naive weighted sum is O(n^2); this module provides the
//! O(n log n) Cooley–Tukey equivalent with all twiddle factors and the
//! bit-reversal permutation precomputed at construction, so a transform
//! allocates nothing — callers own (and reuse) the work buffers.
//!
//! The transform computes exactly the same quantity as the naive reference
//! in [`crate::eye::impulse_response_naive`]:
//!
//! `h[m] = (1/n) * sum_{k=0}^{n-1} X[k] e^{+j 2 pi k m / n}`
//!
//! with `X` the Hermitian extension of the half-spectrum (`X[n-k] =
//! conj(X[k])`), whose inverse DFT is real by construction. Floating-point
//! rounding differs from the naive sum at the 1e-12 level — the FFT is
//! *not* bit-identical to the O(n^2) reference, only to itself.

/// Precomputed plan for an `n`-point inverse FFT (`n` a power of two).
#[derive(Debug, Clone)]
pub struct RealInverseFft {
    n: usize,
    /// Twiddles `e^{+j 2 pi k / n}` for `k < n/2` (inverse-transform sign).
    tw_re: Vec<f64>,
    tw_im: Vec<f64>,
    /// Bit-reversal permutation of `0..n`.
    rev: Vec<u32>,
}

impl RealInverseFft {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two and at least 2.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && n.is_power_of_two(), "FFT length must be 2^k >= 2");
        let half = n / 2;
        let mut tw_re = Vec::with_capacity(half);
        let mut tw_im = Vec::with_capacity(half);
        for k in 0..half {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            tw_re.push(theta.cos());
            tw_im.push(theta.sin());
        }
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        Self {
            n,
            tw_re,
            tw_im,
            rev,
        }
    }

    /// Transform length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` only for the degenerate zero-length plan (unreachable: `new`
    /// requires `n >= 2`); provided to satisfy the `len`/`is_empty` pair.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Inverse-transforms the Hermitian half-spectrum (`half_re`/`half_im`,
    /// `n/2 + 1` bins from DC to Nyquist inclusive) into `n` real time
    /// samples, written to `work_re`. `work_im` is scratch; both must be
    /// exactly `n` long. No allocation.
    ///
    /// # Panics
    ///
    /// Panics when a buffer has the wrong length.
    pub fn inverse_real(
        &self,
        half_re: &[f64],
        half_im: &[f64],
        work_re: &mut [f64],
        work_im: &mut [f64],
    ) {
        let n = self.n;
        let half = n / 2;
        assert_eq!(half_re.len(), half + 1, "half-spectrum length");
        assert_eq!(half_im.len(), half + 1, "half-spectrum length");
        assert_eq!(work_re.len(), n, "work buffer length");
        assert_eq!(work_im.len(), n, "work buffer length");

        // Hermitian extension, written in bit-reversed order so the
        // butterflies below run in natural order.
        for (i, &r) in self.rev.iter().enumerate() {
            let k = r as usize;
            if k <= half {
                work_re[i] = half_re[k];
                work_im[i] = half_im[k];
            } else {
                work_re[i] = half_re[n - k];
                work_im[i] = -half_im[n - k];
            }
        }

        // Iterative radix-2 decimation-in-time butterflies with the
        // inverse-transform twiddle sign (+j).
        let mut len = 2;
        while len <= n {
            let half_len = len / 2;
            let stride = n / len;
            let mut base = 0;
            while base < n {
                for j in 0..half_len {
                    let (wr, wi) = (self.tw_re[j * stride], self.tw_im[j * stride]);
                    let (lo, hi) = (base + j, base + j + half_len);
                    let tr = work_re[hi] * wr - work_im[hi] * wi;
                    let ti = work_re[hi] * wi + work_im[hi] * wr;
                    work_re[hi] = work_re[lo] - tr;
                    work_im[hi] = work_im[lo] - ti;
                    work_re[lo] += tr;
                    work_im[lo] += ti;
                }
                base += len;
            }
            len *= 2;
        }

        let scale = 1.0 / n as f64;
        for v in work_re.iter_mut() {
            *v *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The naive O(n^2) inverse of a Hermitian half-spectrum — the exact
    /// quantity `inverse_real` must reproduce.
    fn naive_inverse(half_re: &[f64], half_im: &[f64], n: usize) -> Vec<f64> {
        let half = n / 2;
        (0..n)
            .map(|m| {
                let mut acc = half_re[0];
                for k in 1..=half {
                    let phase = 2.0 * std::f64::consts::PI * (k * m) as f64 / n as f64;
                    let w = if k == half { 1.0 } else { 2.0 };
                    acc += w * (half_re[k] * phase.cos() - half_im[k] * phase.sin());
                }
                acc / n as f64
            })
            .collect()
    }

    fn transform(half_re: &[f64], half_im: &[f64], n: usize) -> Vec<f64> {
        let fft = RealInverseFft::new(n);
        let mut re = vec![0.0; n];
        let mut im = vec![0.0; n];
        fft.inverse_real(half_re, half_im, &mut re, &mut im);
        re
    }

    #[test]
    fn flat_spectrum_is_a_delta() {
        let n = 16;
        let half_re = vec![1.0; n / 2 + 1];
        let half_im = vec![0.0; n / 2 + 1];
        let h = transform(&half_re, &half_im, n);
        assert!((h[0] - 1.0).abs() < 1e-12, "h[0] = {}", h[0]);
        for (m, &v) in h.iter().enumerate().skip(1) {
            assert!(v.abs() < 1e-12, "h[{m}] = {v}");
        }
    }

    #[test]
    fn matches_naive_inverse_dft() {
        for n in [4usize, 8, 64, 256] {
            let half = n / 2;
            // Deterministic pseudo-arbitrary Hermitian half-spectrum.
            let half_re: Vec<f64> = (0..=half).map(|k| (k as f64 * 0.7).sin()).collect();
            let mut half_im: Vec<f64> = (0..=half).map(|k| (k as f64 * 1.3).cos()).collect();
            // DC and Nyquist bins of a real signal are purely real.
            half_im[0] = 0.0;
            half_im[half] = 0.0;
            let got = transform(&half_re, &half_im, n);
            let want = naive_inverse(&half_re, &half_im, n);
            for m in 0..n {
                assert!(
                    (got[m] - want[m]).abs() < 1e-9,
                    "n={n} m={m}: {} vs {}",
                    got[m],
                    want[m]
                );
            }
        }
    }

    #[test]
    fn repeated_transforms_are_bit_identical() {
        let n = 128;
        let half = n / 2;
        let half_re: Vec<f64> = (0..=half).map(|k| 1.0 / (1.0 + k as f64)).collect();
        let half_im = vec![0.0; half + 1];
        let a = transform(&half_re, &half_im, n);
        let b = transform(&half_re, &half_im, n);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_rejected() {
        let _ = RealInverseFft::new(12);
    }
}
