//! Copper surface-roughness loss models.
//!
//! Rough copper increases conductor loss once the skin depth shrinks to the
//! scale of the tooth structure. Two standard models are provided:
//!
//! * [`hammerstad_jensen_factor`] — the classic closed-form multiplier,
//!   saturating at 2x;
//! * [`huray_factor`] — the cannonball-stack model, which keeps growing at
//!   high frequency and is preferred for multi-GHz work.
//!
//! Both take the RMS roughness in micrometres and the skin depth in metres
//! and return the factor `K >= 1` by which smooth-copper resistance is
//! multiplied.

use crate::units::MU0;

/// Skin depth in metres for a conductor of conductivity `sigma` (S/m) at
/// frequency `f_hz`.
///
/// ```
/// // Copper at 1 GHz: ~2.1 um.
/// let d = isop_em::roughness::skin_depth(5.8e7, 1e9);
/// assert!((d - 2.09e-6).abs() < 0.05e-6);
/// ```
pub fn skin_depth(sigma: f64, f_hz: f64) -> f64 {
    debug_assert!(sigma > 0.0 && f_hz > 0.0);
    1.0 / (std::f64::consts::PI * f_hz * MU0 * sigma).sqrt()
}

/// Hammerstad–Jensen roughness multiplier.
///
/// `K = 1 + (2/pi) * atan(1.4 * (delta_rms / skin_depth)^2)`, saturating at 2.
pub fn hammerstad_jensen_factor(rms_um: f64, skin_depth_m: f64) -> f64 {
    if rms_um <= 0.0 {
        return 1.0;
    }
    let ratio = rms_um * 1e-6 / skin_depth_m;
    1.0 + (2.0 / std::f64::consts::PI) * (1.4 * ratio * ratio).atan()
}

/// Huray "cannonball" roughness multiplier with a single snowball size.
///
/// Uses the canonical 14-sphere stack with sphere radius tied to the RMS
/// roughness (`r = rms / 2`) and a hexagonal base-tile area. Unlike
/// Hammerstad–Jensen it does not saturate at 2x.
pub fn huray_factor(rms_um: f64, skin_depth_m: f64) -> f64 {
    if rms_um <= 0.0 {
        return 1.0;
    }
    let r = rms_um * 1e-6 / 2.0;
    let delta = skin_depth_m;
    // 14 spheres on a hex tile whose side is ~3 sphere diameters.
    let tile = 6.0 * (3.0f64.sqrt() / 4.0) * (6.0 * r) * (6.0 * r);
    let sphere_term =
        (std::f64::consts::PI * r * r) / (1.0 + delta / r + delta * delta / (2.0 * r * r));
    1.0 + (14.0 * 4.0 / tile) * sphere_term * (3.0 / 2.0) / std::f64::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;

    const COPPER: f64 = 5.8e7;

    #[test]
    fn skin_depth_decreases_with_frequency() {
        let d1 = skin_depth(COPPER, 1e9);
        let d16 = skin_depth(COPPER, 16e9);
        assert!(d16 < d1);
        // delta ~ 1/sqrt(f): 16x frequency -> 4x smaller depth.
        assert!((d1 / d16 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn smooth_copper_has_unit_factor() {
        let d = skin_depth(COPPER, 16e9);
        assert_eq!(hammerstad_jensen_factor(0.0, d), 1.0);
        assert_eq!(huray_factor(0.0, d), 1.0);
    }

    #[test]
    fn hammerstad_saturates_at_two() {
        let d = skin_depth(COPPER, 50e9);
        let k = hammerstad_jensen_factor(10.0, d);
        assert!(k < 2.0 && k > 1.9, "k = {k}");
    }

    #[test]
    fn factors_increase_with_roughness() {
        let d = skin_depth(COPPER, 16e9);
        let k1 = hammerstad_jensen_factor(0.5, d);
        let k2 = hammerstad_jensen_factor(2.0, d);
        assert!(k2 > k1 && k1 > 1.0);
        let h1 = huray_factor(0.5, d);
        let h2 = huray_factor(2.0, d);
        assert!(h2 > h1 && h1 > 1.0);
    }

    #[test]
    fn factors_increase_with_frequency() {
        let k_lo = hammerstad_jensen_factor(1.5, skin_depth(COPPER, 1e9));
        let k_hi = hammerstad_jensen_factor(1.5, skin_depth(COPPER, 16e9));
        assert!(k_hi > k_lo);
        let h_lo = huray_factor(1.5, skin_depth(COPPER, 1e9));
        let h_hi = huray_factor(1.5, skin_depth(COPPER, 16e9));
        assert!(h_hi > h_lo);
    }

    #[test]
    fn huray_exceeds_unity_but_stays_physical() {
        let d = skin_depth(COPPER, 16e9);
        let h = huray_factor(3.0, d);
        assert!(h > 1.0 && h < 4.0, "h = {h}");
    }
}
