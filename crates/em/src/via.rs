//! Via discontinuity models for multi-layer channel analysis.
//!
//! A signal changing layers traverses a via barrel; electrically it is a
//! short transmission segment loaded by excess pad/antipad capacitance and
//! barrel inductance, plus — when the barrel continues past the exit layer —
//! a **stub** whose quarter-wave resonance carves a notch into the channel
//! response. The model here is the standard lumped/stub hybrid used for
//! pre-route budgeting (pi-model: `C/2 — L — C/2`, with an open-circuited
//! stub line hanging at the junction).

use crate::abcd::AbcdMatrix;
use crate::complex::Complex;
use crate::units::{mils_to_meters, C0};
use serde::{Deserialize, Serialize};

/// Effective loss tangent of the via-stub field region (dielectric plus
/// radiation/plane losses); sets the depth of the stub-resonance notch.
pub const STUB_LOSS_TANGENT: f64 = 0.02;

/// Geometry and material description of a signal via.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Via {
    /// Barrel (drill) diameter, mils.
    pub barrel_diameter: f64,
    /// Pad diameter, mils.
    pub pad_diameter: f64,
    /// Antipad (plane clearance) diameter, mils.
    pub antipad_diameter: f64,
    /// Functional barrel length (entry to exit layer), mils.
    pub length: f64,
    /// Residual stub length below the exit layer (0 for back-drilled), mils.
    pub stub_length: f64,
    /// Effective dielectric constant around the via.
    pub dk: f64,
}

impl Default for Via {
    /// A typical 8-mil drill server-board via with a 20-mil stub.
    fn default() -> Self {
        Self {
            barrel_diameter: 8.0,
            pad_diameter: 18.0,
            antipad_diameter: 30.0,
            length: 40.0,
            stub_length: 20.0,
            dk: 3.8,
        }
    }
}

/// Error for physically impossible via geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViaGeometryError(&'static str);

impl std::fmt::Display for ViaGeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid via geometry: {}", self.0)
    }
}

impl std::error::Error for ViaGeometryError {}

impl Via {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ViaGeometryError`] when diameters are non-increasing
    /// (`barrel < pad < antipad`) or lengths are negative.
    pub fn validate(&self) -> Result<(), ViaGeometryError> {
        if self.barrel_diameter.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ViaGeometryError("barrel diameter must be positive"));
        }
        if self.pad_diameter <= self.barrel_diameter {
            return Err(ViaGeometryError("pad must exceed barrel"));
        }
        if self.antipad_diameter <= self.pad_diameter {
            return Err(ViaGeometryError("antipad must exceed pad"));
        }
        if self.length < 0.0 || self.stub_length < 0.0 {
            return Err(ViaGeometryError("lengths must be non-negative"));
        }
        if self.dk < 1.0 {
            return Err(ViaGeometryError("dk below vacuum"));
        }
        Ok(())
    }

    /// Excess capacitance, farads — Howard Johnson's classic estimate
    /// `C[pF] = 1.41 * eps_r * T * D1 / (D2 - D1)` with lengths in inches,
    /// where `T` is the barrel length (including any stub), `D1` the pad and
    /// `D2` the antipad diameter.
    pub fn capacitance(&self) -> f64 {
        let t_in = (self.length + self.stub_length) / 1000.0;
        let d1_in = self.pad_diameter / 1000.0;
        let d2_in = self.antipad_diameter / 1000.0;
        1.41 * self.dk * t_in * d1_in / (d2_in - d1_in) * 1e-12
    }

    /// Barrel inductance, henries (partial self-inductance of a cylinder).
    pub fn inductance(&self) -> f64 {
        let h = mils_to_meters(self.length + self.stub_length).max(1e-6);
        let d = mils_to_meters(self.barrel_diameter);
        // L ~= (mu0 / 2pi) * h * [ln(4h/d) + 1].
        2.0e-7 * h * ((4.0 * h / d).ln() + 1.0)
    }

    /// Characteristic impedance of the barrel treated as a coaxial-ish line
    /// against its antipad, ohms.
    pub fn barrel_impedance(&self) -> f64 {
        60.0 / self.dk.sqrt() * (self.antipad_diameter / self.barrel_diameter).ln()
    }

    /// First stub resonance frequency (quarter-wave), Hz. `None` when
    /// back-drilled (`stub_length == 0`).
    pub fn stub_resonance_hz(&self) -> Option<f64> {
        if self.stub_length <= 0.0 {
            return None;
        }
        let len_m = mils_to_meters(self.stub_length);
        Some(C0 / self.dk.sqrt() / (4.0 * len_m))
    }

    /// Two-port ABCD matrix of the via at `f_hz`.
    ///
    /// Pi-model of the through path (`C/2` shunt, barrel line, `C/2` shunt)
    /// with an open stub (input impedance `-j Z0 cot(beta l)`) loading the
    /// exit node.
    pub fn abcd(&self, f_hz: f64) -> AbcdMatrix {
        let w = 2.0 * std::f64::consts::PI * f_hz;
        let c_half = Complex::new(0.0, w * self.capacitance() / 2.0);
        let z0 = Complex::real(self.barrel_impedance());
        let v = C0 / self.dk.sqrt();
        let beta = w / v;

        let shunt_in = AbcdMatrix::shunt_admittance(c_half);
        let barrel =
            AbcdMatrix::transmission_line(Complex::new(0.0, beta), z0, mils_to_meters(self.length));
        let mut chain = shunt_in.cascade(&barrel);

        if self.stub_length > 0.0 {
            // Open stub modelled as a lossy line: Y_in = tanh(gamma l) / Z0.
            // The small dielectric loss keeps the quarter-wave resonance a
            // finite-depth notch instead of a numerically unbounded
            // tan(beta l) singularity (a lossless ideal stub is neither
            // physical nor numerically safe).
            let l = mils_to_meters(self.stub_length);
            let alpha = beta * STUB_LOSS_TANGENT / 2.0;
            let gamma_l = Complex::new(alpha, beta).scale(l);
            let y_stub = gamma_l.tanh() / z0;
            chain = chain.cascade(&AbcdMatrix::shunt_admittance(y_stub));
        }
        chain.cascade(&AbcdMatrix::shunt_admittance(c_half))
    }

    /// `|S21|` in dB at `f_hz` in a `z_ref` system.
    pub fn insertion_loss_db(&self, f_hz: f64, z_ref: f64) -> f64 {
        let (_, s21, _, _) = self.abcd(f_hz).to_s_params(z_ref);
        crate::abcd::to_db(s21)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_via_is_valid() {
        Via::default().validate().expect("valid");
    }

    #[test]
    fn geometry_validation_catches_ordering() {
        let v = Via {
            pad_diameter: 5.0, // below barrel
            ..Via::default()
        };
        assert!(v.validate().is_err());
        let mut v = Via::default();
        v.antipad_diameter = v.pad_diameter; // not larger
        assert!(v.validate().is_err());
    }

    #[test]
    fn parasitics_are_physical() {
        let v = Via::default();
        let c = v.capacitance();
        let l = v.inductance();
        // Typical via: tenths of pF, tenths of nH.
        assert!(c > 1e-14 && c < 5e-12, "C = {c}");
        assert!(l > 1e-11 && l < 5e-9, "L = {l}");
        assert!(v.barrel_impedance() > 20.0 && v.barrel_impedance() < 120.0);
    }

    #[test]
    fn stub_resonance_matches_quarter_wave() {
        let v = Via {
            stub_length: 40.0,
            dk: 4.0,
            ..Via::default()
        };
        let f = v.stub_resonance_hz().expect("has stub");
        // lambda/4 = 40 mil at v = c0/2.
        let expected = (C0 / 2.0) / (4.0 * 40.0 * 25.4e-6);
        assert!((f - expected).abs() / expected < 1e-9, "f = {f}");
    }

    #[test]
    fn backdrilled_via_has_no_resonance() {
        let v = Via {
            stub_length: 0.0,
            ..Via::default()
        };
        assert!(v.stub_resonance_hz().is_none());
    }

    #[test]
    fn via_is_nearly_transparent_at_low_frequency() {
        let v = Via::default();
        let il = v.insertion_loss_db(1e8, 42.5);
        assert!(il > -0.1, "100 MHz via loss should be negligible: {il} dB");
    }

    #[test]
    fn stub_notch_appears_near_resonance() {
        let v = Via {
            stub_length: 60.0,
            ..Via::default()
        };
        let f_res = v.stub_resonance_hz().expect("stub");
        let at_res = v.insertion_loss_db(f_res, 42.5);
        let below = v.insertion_loss_db(f_res / 4.0, 42.5);
        assert!(
            at_res < below - 3.0,
            "stub notch missing: {at_res} dB at resonance vs {below} dB below"
        );
    }

    #[test]
    fn backdrilling_improves_high_frequency_loss() {
        let stubbed = Via {
            stub_length: 30.0,
            ..Via::default()
        };
        let drilled = Via {
            stub_length: 0.0,
            ..Via::default()
        };
        let f = stubbed.stub_resonance_hz().expect("stub") * 0.8;
        assert!(
            drilled.insertion_loss_db(f, 42.5) > stubbed.insertion_loss_db(f, 42.5),
            "back-drilling must help near the stub notch"
        );
    }

    #[test]
    fn passive_even_at_stub_resonance() {
        let v = Via {
            stub_length: 25.0,
            ..Via::default()
        };
        let f_res = v.stub_resonance_hz().expect("stub");
        for f in [f_res * 0.99, f_res, f_res * 1.01, f_res * 0.5, f_res * 2.0] {
            let il = v.insertion_loss_db(f, 42.5);
            assert!(il <= 1e-9, "gain at {f} Hz: {il} dB");
            assert!(il.is_finite());
        }
        // The notch is deep but finite.
        let notch = v.insertion_loss_db(f_res, 42.5);
        assert!(notch < -3.0, "resonance must bite: {notch} dB");
        assert!(notch > -80.0, "notch should be finite: {notch} dB");
    }

    #[test]
    fn via_reciprocity_holds() {
        let v = Via::default();
        let m = v.abcd(1.6e10);
        assert!((m.det() - crate::complex::ONE).abs() < 1e-9);
    }
}
