//! Frequency sweeps and S-parameter extraction for a stack-up layer.
//!
//! Builds the per-frequency ABCD matrix of a differential interconnect of a
//! given physical length from the [`rlgc`](crate::rlgc) model and produces
//! the insertion-loss / return-loss traces used both by the experiment
//! benches (Fig.-style frequency plots) and by validation tests.

use crate::abcd::{to_db, AbcdMatrix};
use crate::dispersion::WidebandDebye;
use crate::rlgc::odd_mode_rlgc;
use crate::stackup::DiffStripline;
use crate::sweep::SweepPlan;
use crate::units::METERS_PER_INCH;
use serde::{Deserialize, Serialize};

/// One point of a two-port frequency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Frequency, Hz.
    pub f_hz: f64,
    /// Insertion loss `|S21|` in dB (non-positive for passive lines).
    pub il_db: f64,
    /// Return loss `|S11|` in dB.
    pub rl_db: f64,
}

/// A differential two-port frequency sweep of a stripline of fixed length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencySweep {
    points: Vec<SweepPoint>,
}

impl FrequencySweep {
    /// Sweeps `layer` over `n` logarithmically spaced frequencies in
    /// `[f_start_hz, f_stop_hz]` for a line of `length_inches`, referenced to
    /// `z_ref` ohms (odd-mode reference = half the differential reference).
    ///
    /// Runs through the batched [`SweepPlan`] path (RLGC hoisted per layer,
    /// structure-of-arrays lanes); results are bit-identical to the former
    /// scalar per-point loop — see [`crate::sweep`] for the argument.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the band is empty/non-positive.
    pub fn of_layer(
        layer: &DiffStripline,
        f_start_hz: f64,
        f_stop_hz: f64,
        n: usize,
        length_inches: f64,
        z_ref: f64,
    ) -> Self {
        let mut plan = SweepPlan::log_spaced(f_start_hz, f_stop_hz, n);
        Self::of_layer_with(&mut plan, layer, length_inches, z_ref)
    }

    /// Like [`FrequencySweep::of_layer`] but over `plan`'s grid, reusing
    /// its interned prototypes and scratch arenas across calls.
    pub fn of_layer_with(
        plan: &mut SweepPlan,
        layer: &DiffStripline,
        length_inches: f64,
        z_ref: f64,
    ) -> Self {
        let view = plan.sweep_line(layer, length_inches, z_ref);
        let points = (0..view.len())
            .map(|i| SweepPoint {
                f_hz: view.freq(i),
                il_db: view.il_db(i),
                rl_db: view.rl_db(i),
            })
            .collect();
        Self { points }
    }

    /// Sweeps with **causal dielectric dispersion**: the layer's `Dk`/`Df`
    /// values are taken as datasheet numbers at `f_ref_hz` and re-evaluated
    /// per frequency through the wideband-Debye model
    /// ([`crate::dispersion`]), so the phase response is Kramers–Kronig
    /// consistent. Same sampling/termination as [`FrequencySweep::of_layer`].
    ///
    /// Stays on the scalar per-point path deliberately: dispersion gives
    /// every frequency its own effective layer, so routing through
    /// [`SweepPlan`] would intern `n` distinct single-use layer prototypes
    /// per sweep and turn the arena into a leak.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`FrequencySweep::of_layer`], or
    /// when `f_ref_hz` falls outside the wideband-Debye pole band.
    #[allow(clippy::too_many_arguments)]
    pub fn of_layer_dispersive(
        layer: &DiffStripline,
        f_ref_hz: f64,
        f_start_hz: f64,
        f_stop_hz: f64,
        n: usize,
        length_inches: f64,
        z_ref: f64,
    ) -> Self {
        assert!(n >= 2, "sweep needs at least two points");
        assert!(
            f_start_hz > 0.0 && f_stop_hz > f_start_hz,
            "invalid frequency band"
        );
        let models = [
            WidebandDebye::fit(layer.dk_core, layer.df_core, f_ref_hz),
            WidebandDebye::fit(layer.dk_prepreg, layer.df_prepreg, f_ref_hz),
            WidebandDebye::fit(layer.dk_trace, layer.df_trace, f_ref_hz),
        ];
        let len_m = length_inches * METERS_PER_INCH;
        let log_lo = f_start_hz.ln();
        let log_hi = f_stop_hz.ln();
        let points = (0..n)
            .map(|i| {
                let f = (log_lo + (log_hi - log_lo) * i as f64 / (n - 1) as f64).exp();
                let mut at_f = *layer;
                at_f.dk_core = models[0].dk(f);
                at_f.df_core = models[0].df(f).max(0.0);
                at_f.dk_prepreg = models[1].dk(f);
                at_f.df_prepreg = models[1].df(f).max(0.0);
                at_f.dk_trace = models[2].dk(f);
                at_f.df_trace = models[2].df(f).max(0.0);
                let p = odd_mode_rlgc(&at_f, f);
                let line = AbcdMatrix::transmission_line(
                    p.propagation_constant(f),
                    p.characteristic_impedance(f),
                    len_m,
                );
                let (s11, s21, _, _) = line.to_s_params(z_ref);
                SweepPoint {
                    f_hz: f,
                    il_db: to_db(s21),
                    rl_db: to_db(s11),
                }
            })
            .collect();
        Self { points }
    }

    /// The sweep points, ordered by frequency.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Linearly interpolated insertion loss (dB) at an arbitrary frequency.
    ///
    /// Clamps to the band edges outside the sweep.
    pub fn il_at(&self, f_hz: f64) -> f64 {
        let pts = &self.points;
        if f_hz <= pts[0].f_hz {
            return pts[0].il_db;
        }
        if f_hz >= pts[pts.len() - 1].f_hz {
            return pts[pts.len() - 1].il_db;
        }
        let idx = pts.partition_point(|p| p.f_hz < f_hz);
        let (a, b) = (&pts[idx - 1], &pts[idx]);
        let t = (f_hz - a.f_hz) / (b.f_hz - a.f_hz);
        a.il_db + t * (b.il_db - a.il_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stripline::odd_mode_z0;
    use crate::units::ghz_to_hz;

    fn sweep() -> (DiffStripline, FrequencySweep) {
        let layer = DiffStripline::default();
        let z_ref = odd_mode_z0(&layer);
        let s = FrequencySweep::of_layer(&layer, 1e8, 4e10, 64, 1.0, z_ref);
        (layer, s)
    }

    #[test]
    fn il_monotonically_degrades() {
        let (_, s) = sweep();
        let pts = s.points();
        for w in pts.windows(2) {
            assert!(
                w[1].il_db <= w[0].il_db + 1e-9,
                "IL must worsen with frequency: {w:?}"
            );
        }
    }

    #[test]
    fn il_nonpositive_everywhere() {
        let (_, s) = sweep();
        assert!(s.points().iter().all(|p| p.il_db <= 1e-12));
    }

    #[test]
    fn matched_sweep_has_deep_return_loss() {
        let (_, s) = sweep();
        // Matched to its own odd-mode impedance at low loss: |S11| small.
        assert!(s.points().iter().all(|p| p.rl_db < -20.0));
    }

    #[test]
    fn il_at_interpolates_within_band() {
        let (_, s) = sweep();
        let f = ghz_to_hz(16.0);
        let il = s.il_at(f);
        // Must sit between the neighbouring sample values.
        let pts = s.points();
        let idx = pts.partition_point(|p| p.f_hz < f);
        let (lo, hi) = (pts[idx - 1].il_db, pts[idx].il_db);
        assert!(il <= lo + 1e-12 && il >= hi - 1e-12);
    }

    #[test]
    fn il_at_clamps_outside_band() {
        let (_, s) = sweep();
        assert_eq!(s.il_at(1.0), s.points()[0].il_db);
        assert_eq!(s.il_at(1e13), s.points().last().unwrap().il_db);
    }

    #[test]
    fn il_scales_with_length() {
        let layer = DiffStripline::default();
        let z = odd_mode_z0(&layer);
        let one = FrequencySweep::of_layer(&layer, 1e9, 2e10, 16, 1.0, z);
        let five = FrequencySweep::of_layer(&layer, 1e9, 2e10, 16, 5.0, z);
        let f = ghz_to_hz(16.0);
        let ratio = five.il_at(f) / one.il_at(f);
        assert!((ratio - 5.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn dispersive_sweep_matches_at_reference_and_diverges_away() {
        let layer = DiffStripline::default();
        let z = odd_mode_z0(&layer);
        let f_ref = ghz_to_hz(1.0);
        let flat = FrequencySweep::of_layer(&layer, 1e8, 4e10, 48, 1.0, z);
        let disp = FrequencySweep::of_layer_dispersive(&layer, f_ref, 1e8, 4e10, 48, 1.0, z);
        // Near the reference frequency the two models agree closely.
        let d_ref = (flat.il_at(f_ref) - disp.il_at(f_ref)).abs();
        assert!(d_ref < 0.05, "at f_ref: {d_ref} dB apart");
        // Dispersion changes the high-frequency response (Dk falls, the
        // flat model overestimates delay-related loss weighting).
        let f_hi = ghz_to_hz(32.0);
        assert!(flat.il_at(f_hi).is_finite() && disp.il_at(f_hi).is_finite());
    }

    #[test]
    fn dispersive_sweep_remains_monotone_and_passive() {
        let layer = DiffStripline::default();
        let z = odd_mode_z0(&layer);
        let s = FrequencySweep::of_layer_dispersive(&layer, ghz_to_hz(1.0), 1e8, 4e10, 48, 1.0, z);
        for w in s.points().windows(2) {
            assert!(w[1].il_db <= w[0].il_db + 1e-9);
        }
        assert!(s.points().iter().all(|p| p.il_db <= 1e-12));
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_sweep_panics() {
        let layer = DiffStripline::default();
        let _ = FrequencySweep::of_layer(&layer, 1e9, 2e9, 1, 1.0, 50.0);
    }
}
