//! Closed-form impedance models for single and edge-coupled striplines.
//!
//! The characteristic impedance of a symmetric stripline is computed with
//! Wheeler's conformal-mapping approximation (as collected in Wadell,
//! *Transmission Line Design Handbook*), including a finite-thickness width
//! correction. Offset (asymmetric) striplines — the general case here, since
//! core and prepreg heights differ — are handled with the standard
//! parallel-combination rule of the two bounding symmetric striplines.
//! Edge coupling between the two traces of a differential pair uses an
//! exponential coupling-coefficient model calibrated against published
//! industrial design points (see `calibration` tests in `simulator.rs`).
//!
//! All geometric inputs are in **mils**; impedances in ohms.

use crate::stackup::DiffStripline;

/// Coupling-coefficient amplitude for the edge-coupled pair model.
///
/// Calibrated (together with [`COUPLING_DECAY`]) against two anchors: the
/// in-crate 2-D finite-difference solver's odd-mode impedance across the
/// spacing range `S in [2, 20]` mils, and the expert design of the paper's
/// Table IX (`W=5, S=6, Hc=Hp=8, Ht=1.5, Dk=4.3`) whose published
/// differential impedance is 85.7 ohms.
pub const COUPLING_AMPLITUDE: f64 = 0.68;

/// Exponential decay rate of the coupling coefficient with `S / b`.
pub const COUPLING_DECAY: f64 = 3.7;

/// Finite-thickness effective-width correction for a stripline trace.
///
/// Returns the width increment `dW` (mils) to add to the drawn width, using
/// the standard logarithmic correction for a strip of thickness `t` between
/// planes `b` apart. Tends to zero as `t -> 0`.
pub fn thickness_correction_mils(width: f64, thickness: f64, plane_spacing: f64) -> f64 {
    if thickness <= 0.0 {
        return 0.0;
    }
    let ratio_b = thickness / plane_spacing;
    let ratio_w = std::f64::consts::PI * thickness / (4.0 * width);
    let arg = 4.0 * std::f64::consts::E / (ratio_b * ratio_b + ratio_w * ratio_w).sqrt();
    (thickness / std::f64::consts::PI) * arg.ln()
}

/// Characteristic impedance of a symmetric stripline (ohms).
///
/// `width` and `thickness` describe the trace, `plane_spacing` is the
/// plane-to-plane dielectric height `b`, and `er` the relative permittivity.
/// Uses Wheeler's single-formula approximation, accurate to a few percent
/// over the full `w/b` range used in PCB design.
///
/// # Panics
///
/// Panics in debug builds if any dimension is non-positive.
pub fn symmetric_stripline_z0(width: f64, thickness: f64, plane_spacing: f64, er: f64) -> f64 {
    debug_assert!(width > 0.0 && plane_spacing > thickness && er >= 1.0);
    let w_eff = width + thickness_correction_mils(width, thickness, plane_spacing);
    let u = w_eff / (plane_spacing - thickness);
    let q = 8.0 / (std::f64::consts::PI * u);
    let inner = q + (q * q + 6.27).sqrt();
    30.0 / er.sqrt() * (1.0 + (4.0 / (std::f64::consts::PI * u)) * inner).ln()
}

/// Single-ended (uncoupled) impedance of the stripline trace in its actual
/// offset position between the core and prepreg (ohms).
///
/// An offset stripline behaves as the parallel combination of two symmetric
/// striplines whose half-heights match the distances to each plane:
/// `Z = 2 * Z1 * Z2 / (Z1 + Z2)`.
pub fn single_ended_z0(layer: &DiffStripline) -> f64 {
    let er = layer.effective_dk();
    let w = layer.effective_width_mils();
    let t = layer.trace_height;
    // Plane distances measured from the trace centre to each plane.
    let b1 = 2.0 * layer.core_height + t;
    let b2 = 2.0 * layer.prepreg_height + t;
    let z1 = symmetric_stripline_z0(w, t, b1, er);
    let z2 = symmetric_stripline_z0(w, t, b2, er);
    2.0 * z1 * z2 / (z1 + z2)
}

/// Electromagnetic coupling coefficient between two parallel striplines whose
/// edge-to-edge separation is `separation` (mils) between planes `b` apart.
///
/// In the homogeneous stripline medium the inductive and capacitive coupling
/// coefficients coincide; both are modelled as
/// `k = K0 * exp(-a * s / b)`, the classical exponential fall-off of
/// edge-coupled lines.
pub fn coupling_coefficient(separation: f64, plane_spacing: f64) -> f64 {
    coupling_coefficient_with(
        separation,
        plane_spacing,
        COUPLING_AMPLITUDE,
        COUPLING_DECAY,
    )
}

/// [`coupling_coefficient`] with explicit amplitude/decay constants.
///
/// The crosstalk model uses a slower decay than the impedance model: the
/// odd-mode impedance is set by the strong near-field between the pair's own
/// traces, while pair-to-pair crosstalk rides on the weaker far-field tail,
/// whose best exponential fit over the relevant distance range has a smaller
/// rate.
pub fn coupling_coefficient_with(
    separation: f64,
    plane_spacing: f64,
    amplitude: f64,
    decay: f64,
) -> f64 {
    debug_assert!(plane_spacing > 0.0);
    if separation <= 0.0 {
        return amplitude;
    }
    amplitude * (-decay * separation / plane_spacing).exp()
}

/// Odd-mode impedance of the differential pair (ohms).
///
/// With equal inductive and capacitive coupling `k`,
/// `Z_odd = Z0 * sqrt((1 - k) / (1 + k))`.
pub fn odd_mode_z0(layer: &DiffStripline) -> f64 {
    let z0 = single_ended_z0(layer);
    let k = coupling_coefficient(layer.trace_spacing, layer.plane_spacing_mils());
    z0 * ((1.0 - k) / (1.0 + k)).sqrt()
}

/// Even-mode impedance of the differential pair (ohms).
pub fn even_mode_z0(layer: &DiffStripline) -> f64 {
    let z0 = single_ended_z0(layer);
    let k = coupling_coefficient(layer.trace_spacing, layer.plane_spacing_mils());
    z0 * ((1.0 + k) / (1.0 - k)).sqrt()
}

/// Differential impedance `Z_diff = 2 * Z_odd` (ohms) — the quantity the
/// paper's `Z` targets (85 or 100 ohms).
pub fn differential_z0(layer: &DiffStripline) -> f64 {
    2.0 * odd_mode_z0(layer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stackup::DiffStripline;

    #[test]
    fn thickness_correction_vanishes_for_thin_strip() {
        let d = thickness_correction_mils(5.0, 1e-9, 12.0);
        assert!(d.abs() < 1e-7);
    }

    #[test]
    fn z0_decreases_with_width() {
        let narrow = symmetric_stripline_z0(3.0, 1.2, 12.0, 4.0);
        let wide = symmetric_stripline_z0(8.0, 1.2, 12.0, 4.0);
        assert!(
            wide < narrow,
            "wider trace must have lower impedance ({wide} !< {narrow})"
        );
    }

    #[test]
    fn z0_decreases_with_dk() {
        let lo = symmetric_stripline_z0(5.0, 1.2, 12.0, 2.5);
        let hi = symmetric_stripline_z0(5.0, 1.2, 12.0, 4.5);
        assert!(hi < lo);
        // Ideal TEM scaling: Z ~ 1/sqrt(er).
        assert!((hi * 4.5f64.sqrt() - lo * 2.5f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn z0_increases_with_plane_spacing() {
        let thin = symmetric_stripline_z0(5.0, 1.2, 8.0, 4.0);
        let thick = symmetric_stripline_z0(5.0, 1.2, 16.0, 4.0);
        assert!(thick > thin);
    }

    #[test]
    fn z0_in_plausible_pcb_range() {
        // Typical geometries must land in the 20..120 ohm realm.
        for w in [3.0, 5.0, 8.0] {
            for b in [10.0, 14.0, 18.0] {
                let z = symmetric_stripline_z0(w, 1.2, b, 3.8);
                assert!((20.0..120.0).contains(&z), "Z0={z} for w={w}, b={b}");
            }
        }
    }

    #[test]
    fn offset_combination_below_best_half() {
        // The parallel combination is below twice the smaller symmetric Z.
        let layer = DiffStripline::builder()
            .core_height(4.0)
            .prepreg_height(10.0)
            .build()
            .unwrap();
        let z = single_ended_z0(&layer);
        assert!(z > 0.0 && z < 120.0);
    }

    #[test]
    fn coupling_decays_with_separation() {
        let near = coupling_coefficient(2.0, 14.0);
        let far = coupling_coefficient(10.0, 14.0);
        assert!(near > far);
        assert!(far > 0.0);
        assert!(near < 1.0);
    }

    #[test]
    fn coupling_saturates_at_zero_separation() {
        assert_eq!(coupling_coefficient(0.0, 14.0), COUPLING_AMPLITUDE);
        assert_eq!(coupling_coefficient(-1.0, 14.0), COUPLING_AMPLITUDE);
    }

    #[test]
    fn odd_below_single_below_even() {
        let layer = DiffStripline::default();
        let zodd = odd_mode_z0(&layer);
        let z0 = single_ended_z0(&layer);
        let zeven = even_mode_z0(&layer);
        assert!(zodd < z0, "{zodd} !< {z0}");
        assert!(z0 < zeven, "{z0} !< {zeven}");
    }

    #[test]
    fn differential_is_twice_odd() {
        let layer = DiffStripline::default();
        assert!((differential_z0(&layer) - 2.0 * odd_mode_z0(&layer)).abs() < 1e-12);
    }

    #[test]
    fn wider_spacing_raises_differential_z() {
        let tight = DiffStripline::builder().trace_spacing(3.0).build().unwrap();
        let loose = DiffStripline::builder().trace_spacing(9.0).build().unwrap();
        assert!(differential_z0(&loose) > differential_z0(&tight));
    }

    #[test]
    fn default_design_near_85_ohms() {
        // The default layer is meant to be an 85-ohm-class design.
        let z = differential_z0(&DiffStripline::default());
        assert!((70.0..100.0).contains(&z), "Zdiff = {z}");
    }
}
