//! Two-port ABCD (chain) matrices and their conversion to S-parameters.
//!
//! Cascading stack-up segments, vias, and terminations in the frequency
//! domain is most natural in the ABCD representation: a chain of elements is
//! the product of their matrices. The final conversion to S-parameters
//! produces the insertion/return-loss quantities the paper evaluates.
//!
//! ```
//! use isop_em::abcd::AbcdMatrix;
//! use isop_em::complex::Complex;
//!
//! let ident = AbcdMatrix::identity();
//! let series = AbcdMatrix::series_impedance(Complex::new(5.0, 0.0));
//! let chain = ident.cascade(&series);
//! assert_eq!(chain, series);
//! ```

use crate::complex::{Complex, ONE, ZERO};
use serde::{Deserialize, Serialize};

/// A 2x2 complex chain matrix `[[a, b], [c, d]]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbcdMatrix {
    /// Voltage ratio term.
    pub a: Complex,
    /// Transfer impedance term (ohms).
    pub b: Complex,
    /// Transfer admittance term (siemens).
    pub c: Complex,
    /// Current ratio term.
    pub d: Complex,
}

impl AbcdMatrix {
    /// The identity element (a through-connection).
    pub fn identity() -> Self {
        Self {
            a: ONE,
            b: ZERO,
            c: ZERO,
            d: ONE,
        }
    }

    /// A series impedance `z`.
    pub fn series_impedance(z: Complex) -> Self {
        Self {
            a: ONE,
            b: z,
            c: ZERO,
            d: ONE,
        }
    }

    /// A shunt admittance `y`.
    pub fn shunt_admittance(y: Complex) -> Self {
        Self {
            a: ONE,
            b: ZERO,
            c: y,
            d: ONE,
        }
    }

    /// A transmission-line segment of length `len_m` with propagation
    /// constant `gamma` (1/m) and characteristic impedance `zc` (ohms).
    pub fn transmission_line(gamma: Complex, zc: Complex, len_m: f64) -> Self {
        let gl = gamma.scale(len_m);
        let ch = gl.cosh();
        let sh = gl.sinh();
        Self {
            a: ch,
            b: zc * sh,
            c: sh / zc,
            d: ch,
        }
    }

    /// Matrix product `self * rhs`: `self` is the first element the signal
    /// meets, `rhs` the next.
    pub fn cascade(&self, rhs: &Self) -> Self {
        Self {
            a: self.a * rhs.a + self.b * rhs.c,
            b: self.a * rhs.b + self.b * rhs.d,
            c: self.c * rhs.a + self.d * rhs.c,
            d: self.c * rhs.b + self.d * rhs.d,
        }
    }

    /// Determinant `ad - bc`; equals 1 for reciprocal networks.
    pub fn det(&self) -> Complex {
        self.a * self.d - self.b * self.c
    }

    /// Converts to S-parameters with real reference impedance `z0` (ohms).
    ///
    /// Returns `(s11, s21, s12, s22)` following the standard convention
    /// (e.g. Pozar, *Microwave Engineering*, Table 4.2):
    /// `s21 = 2 / denom` and `s12 = 2 (ad - bc) / denom`. For reciprocal
    /// networks the determinant is 1 and the two coincide, which is why a
    /// swapped implementation survives every reciprocal-element test — the
    /// non-reciprocal regression test below pins the orientation.
    pub fn to_s_params(&self, z0: f64) -> (Complex, Complex, Complex, Complex) {
        let z0c = Complex::real(z0);
        let denom = self.a + self.b / z0c + self.c * z0c + self.d;
        let s11 = (self.a + self.b / z0c - self.c * z0c - self.d) / denom;
        let s21 = Complex::real(2.0) / denom;
        let s12 = (Complex::real(2.0) * self.det()) / denom;
        let s22 = (-self.a + self.b / z0c - self.c * z0c + self.d) / denom;
        (s11, s21, s12, s22)
    }
}

impl Default for AbcdMatrix {
    fn default() -> Self {
        Self::identity()
    }
}

/// Floor returned by [`to_db`] for zero-magnitude (or non-finite) input,
/// dB. -300 dB is far below anything a passive channel model produces
/// (thermal noise floors sit around -170 dBm/Hz) but keeps downstream
/// ranking, differencing, and serialization finite where a raw
/// `20 log10(0) = -inf` or `20 log10(NaN) = NaN` would poison them.
pub const DB_FLOOR: f64 = -300.0;

/// Magnitude of a transmission coefficient in dB (`20 log10 |s|`).
///
/// Returns [`DB_FLOOR`] for zero-magnitude or NaN input and clamps
/// sub-floor magnitudes to it, so the result is always a finite number
/// `>= DB_FLOOR` for any passive coefficient.
pub fn to_db(s: Complex) -> f64 {
    let mag = s.abs();
    if mag.is_nan() || mag <= 0.0 {
        // Zero magnitude (log10 would be -inf) or NaN.
        return DB_FLOOR;
    }
    (20.0 * mag.log10()).max(DB_FLOOR)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn identity_is_neutral() {
        let line = AbcdMatrix::transmission_line(Complex::new(0.1, 40.0), Complex::real(50.0), 0.1);
        assert_eq!(AbcdMatrix::identity().cascade(&line), line);
        assert_eq!(line.cascade(&AbcdMatrix::identity()), line);
    }

    #[test]
    fn reciprocal_determinant_is_one() {
        let line =
            AbcdMatrix::transmission_line(Complex::new(0.2, 100.0), Complex::new(48.0, -1.0), 0.05);
        assert!(close(line.det(), ONE, 1e-9));
        let z = AbcdMatrix::series_impedance(Complex::new(3.0, 7.0));
        assert!(close(z.det(), ONE, 1e-12));
    }

    #[test]
    fn two_half_lines_equal_one_full_line() {
        let gamma = Complex::new(0.5, 60.0);
        let zc = Complex::real(42.5);
        let full = AbcdMatrix::transmission_line(gamma, zc, 0.2);
        let half = AbcdMatrix::transmission_line(gamma, zc, 0.1);
        let chained = half.cascade(&half);
        assert!(close(full.a, chained.a, 1e-9));
        assert!(close(full.b, chained.b, 1e-7));
        assert!(close(full.c, chained.c, 1e-9));
        assert!(close(full.d, chained.d, 1e-9));
    }

    #[test]
    fn matched_lossless_line_is_all_pass() {
        // A lossless line matched to the reference has |S21| = 1, S11 = 0.
        let z0 = 50.0;
        let line = AbcdMatrix::transmission_line(Complex::new(0.0, 30.0), Complex::real(z0), 0.1);
        let (s11, s21, _, _) = line.to_s_params(z0);
        assert!(s11.abs() < 1e-9, "S11 = {s11}");
        assert!((s21.abs() - 1.0).abs() < 1e-9, "|S21| = {}", s21.abs());
    }

    #[test]
    fn lossy_line_attenuates() {
        let z0 = 50.0;
        let alpha = 2.0; // Np/m
        let line =
            AbcdMatrix::transmission_line(Complex::new(alpha, 100.0), Complex::real(z0), 0.5);
        let (_, s21, _, _) = line.to_s_params(z0);
        let expected_db = -8.685_889_638 * alpha * 0.5;
        assert!((to_db(s21) - expected_db).abs() < 1e-6);
    }

    #[test]
    fn mismatched_line_reflects() {
        let line = AbcdMatrix::transmission_line(Complex::new(0.0, 30.0), Complex::real(75.0), 0.1);
        let (s11, _, _, _) = line.to_s_params(50.0);
        assert!(s11.abs() > 0.05);
    }

    #[test]
    fn series_shunt_l_network() {
        // Series 50 then shunt 0.02 S: verify against hand-derived ABCD.
        let net = AbcdMatrix::series_impedance(Complex::real(50.0))
            .cascade(&AbcdMatrix::shunt_admittance(Complex::real(0.02)));
        assert!(close(net.a, Complex::real(2.0), 1e-12));
        assert!(close(net.b, Complex::real(50.0), 1e-12));
        assert!(close(net.c, Complex::real(0.02), 1e-12));
        assert!(close(net.d, ONE, 1e-12));
    }

    /// Regression for the S21/S12 swap: on a *non-reciprocal* matrix
    /// (det != 1) the two formulas give different values, so a swapped
    /// implementation fails here even though every reciprocal-element
    /// test passes. With `a = 1, b = 0, c = 0, d = 2` (det = 2) at
    /// `z0 = 50`: `denom = 3`, so `s21 = 2/3` and `s12 = 4/3`.
    #[test]
    fn non_reciprocal_matrix_orients_s21_and_s12() {
        let m = AbcdMatrix {
            a: ONE,
            b: ZERO,
            c: ZERO,
            d: Complex::real(2.0),
        };
        assert!(close(m.det(), Complex::real(2.0), 1e-12));
        let (_, s21, s12, _) = m.to_s_params(50.0);
        assert!(close(s21, Complex::real(2.0 / 3.0), 1e-12), "s21 = {s21}");
        assert!(close(s12, Complex::real(4.0 / 3.0), 1e-12), "s12 = {s12}");
    }

    /// Regression for the `to_db` floor: zero-magnitude and NaN inputs
    /// must return the documented finite floor, not `-inf`/NaN.
    #[test]
    fn to_db_floors_zero_and_nan_magnitudes() {
        assert_eq!(to_db(ZERO), DB_FLOOR);
        assert_eq!(to_db(Complex::new(f64::NAN, 0.0)), DB_FLOOR);
        assert_eq!(to_db(Complex::new(0.0, f64::NAN)), DB_FLOOR);
        // Sub-floor magnitudes clamp; ordinary magnitudes are untouched.
        assert_eq!(to_db(Complex::real(1e-200)), DB_FLOOR);
        assert!((to_db(Complex::real(0.5)) - 20.0 * 0.5f64.log10()).abs() < 1e-12);
        assert!(to_db(Complex::real(1e-300)).is_finite());
    }

    #[test]
    fn s_params_passive_magnitudes() {
        let line =
            AbcdMatrix::transmission_line(Complex::new(1.0, 200.0), Complex::new(42.0, -0.8), 0.3);
        let (s11, s21, s12, s22) = line.to_s_params(50.0);
        for s in [s11, s21, s12, s22] {
            assert!(s.abs() <= 1.0 + 1e-9, "|s| = {}", s.abs());
        }
        // Reciprocity: S12 == S21.
        assert!(close(s12, s21, 1e-9));
    }
}
