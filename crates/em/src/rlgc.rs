//! Frequency-dependent per-unit-length RLGC model of the differential
//! stripline (odd mode).
//!
//! From the lossless odd-mode impedance and effective permittivity the module
//! derives the per-unit-length inductance and capacitance, then adds the
//! frequency-dependent series resistance (DC + skin effect + surface
//! roughness) and shunt conductance (dielectric loss). The complex
//! propagation constant and characteristic impedance follow from standard
//! transmission-line theory:
//!
//! `gamma = sqrt((R + jwL)(G + jwC))`, `Zc = sqrt((R + jwL)/(G + jwC))`.

use crate::complex::Complex;
use crate::roughness::{hammerstad_jensen_factor, skin_depth};
use crate::stackup::DiffStripline;
use crate::stripline::odd_mode_z0;
use crate::units::{mils_to_meters, np_per_meter_to_db_per_inch, C0};
use serde::{Deserialize, Serialize};

/// Empirical geometry factor for conductor loss.
///
/// Conductor loss of a stripline is `alpha_c = K * Rs / (2 Z0 w)` where the
/// ideal flat-strip value `K = 1` underestimates the current crowding at the
/// trace edges and the return-current loss in the planes. The value is
/// calibrated against published stripline loss data (about -0.43 dB/inch at
/// 16 GHz for the paper's Table IX expert design).
pub const CONDUCTOR_LOSS_GEOMETRY: f64 = 0.72;

/// Per-unit-length line constants at a single frequency (SI units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RlgcParams {
    /// Series resistance, ohm/m.
    pub r: f64,
    /// Series inductance, H/m.
    pub l: f64,
    /// Shunt conductance, S/m.
    pub g: f64,
    /// Shunt capacitance, F/m.
    pub c: f64,
}

impl RlgcParams {
    /// Complex propagation constant `gamma = alpha + j*beta` at `f_hz`.
    pub fn propagation_constant(&self, f_hz: f64) -> Complex {
        let w = 2.0 * std::f64::consts::PI * f_hz;
        let series = Complex::new(self.r, w * self.l);
        let shunt = Complex::new(self.g, w * self.c);
        (series * shunt).sqrt()
    }

    /// Complex characteristic impedance at `f_hz`.
    pub fn characteristic_impedance(&self, f_hz: f64) -> Complex {
        let w = 2.0 * std::f64::consts::PI * f_hz;
        let series = Complex::new(self.r, w * self.l);
        let shunt = Complex::new(self.g, w * self.c);
        (series / shunt).sqrt()
    }

    /// Attenuation constant alpha in Np/m at `f_hz`.
    pub fn attenuation_np_per_m(&self, f_hz: f64) -> f64 {
        self.propagation_constant(f_hz).re
    }

    /// Attenuation in dB/inch at `f_hz` (positive number).
    pub fn attenuation_db_per_inch(&self, f_hz: f64) -> f64 {
        np_per_meter_to_db_per_inch(self.attenuation_np_per_m(f_hz))
    }

    /// Phase velocity in m/s at `f_hz`.
    pub fn phase_velocity(&self, f_hz: f64) -> f64 {
        let beta = self.propagation_constant(f_hz).im;
        2.0 * std::f64::consts::PI * f_hz / beta
    }
}

/// Computes the odd-mode RLGC parameters of `layer` at frequency `f_hz`.
///
/// The lossless L and C come from the closed-form odd-mode impedance and the
/// effective permittivity; R adds DC and skin-effect terms in quadrature
/// (smooth transition), multiplied by the Hammerstad–Jensen roughness factor;
/// G follows the loss tangent.
pub fn odd_mode_rlgc(layer: &DiffStripline, f_hz: f64) -> RlgcParams {
    let z_odd = odd_mode_z0(layer);
    let er = layer.effective_dk();
    let v = C0 / er.sqrt();
    let c = 1.0 / (z_odd * v);
    let l = z_odd * z_odd * c;

    // Conductor resistance: the current-carrying cross-section.
    let w_m = mils_to_meters(layer.effective_width_mils());
    let t_m = mils_to_meters(layer.trace_height);
    let r_dc = 1.0 / (layer.conductivity * w_m * t_m);
    let delta = skin_depth(layer.conductivity, f_hz.max(1.0));
    let r_skin = 1.0 / (layer.conductivity * delta * 2.0 * (w_m + t_m)) / CONDUCTOR_LOSS_GEOMETRY;
    let k_rough = hammerstad_jensen_factor(layer.roughness_rms_um(), delta);
    // Smooth DC-to-skin transition; roughness only affects the skin term.
    let r = (r_dc * r_dc + (k_rough * r_skin) * (k_rough * r_skin)).sqrt();

    let w_ang = 2.0 * std::f64::consts::PI * f_hz;
    let g = w_ang * c * layer.effective_df();

    RlgcParams { r, l, g, c }
}

/// Differential insertion loss (dB/inch, **negative**) at frequency `f_hz`,
/// matching the paper's sign convention for `L`.
pub fn insertion_loss_db_per_inch(layer: &DiffStripline, f_hz: f64) -> f64 {
    -odd_mode_rlgc(layer, f_hz).attenuation_db_per_inch(f_hz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::ghz_to_hz;

    fn default_rlgc(f_ghz: f64) -> RlgcParams {
        odd_mode_rlgc(&DiffStripline::default(), ghz_to_hz(f_ghz))
    }

    #[test]
    fn lc_consistent_with_impedance() {
        let layer = DiffStripline::default();
        let p = odd_mode_rlgc(&layer, ghz_to_hz(16.0));
        let z = (p.l / p.c).sqrt();
        assert!((z - odd_mode_z0(&layer)).abs() / z < 1e-9);
    }

    #[test]
    fn lc_velocity_matches_dielectric() {
        let layer = DiffStripline::default();
        let p = odd_mode_rlgc(&layer, ghz_to_hz(16.0));
        let v = 1.0 / (p.l * p.c).sqrt();
        let expected = C0 / layer.effective_dk().sqrt();
        assert!((v - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn resistance_grows_with_frequency() {
        assert!(default_rlgc(16.0).r > default_rlgc(1.0).r);
    }

    #[test]
    fn resistance_approaches_dc_at_low_frequency() {
        let layer = DiffStripline::default();
        let p = odd_mode_rlgc(&layer, 1.0);
        let w_m = mils_to_meters(layer.effective_width_mils());
        let t_m = mils_to_meters(layer.trace_height);
        let r_dc = 1.0 / (layer.conductivity * w_m * t_m);
        assert!((p.r - r_dc).abs() / r_dc < 0.05, "r={} r_dc={}", p.r, r_dc);
    }

    #[test]
    fn conductance_proportional_to_frequency() {
        let g1 = default_rlgc(1.0).g;
        let g16 = default_rlgc(16.0).g;
        assert!((g16 / g1 - 16.0).abs() < 1e-6);
    }

    #[test]
    fn attenuation_positive_and_growing() {
        let a1 = default_rlgc(1.0).attenuation_db_per_inch(ghz_to_hz(1.0));
        let a16 = default_rlgc(16.0).attenuation_db_per_inch(ghz_to_hz(16.0));
        assert!(a1 > 0.0);
        assert!(a16 > a1);
    }

    #[test]
    fn insertion_loss_is_negative_db() {
        let il = insertion_loss_db_per_inch(&DiffStripline::default(), ghz_to_hz(16.0));
        assert!(il < 0.0);
        assert!(il > -2.0, "unphysically lossy: {il}");
    }

    #[test]
    fn rougher_copper_is_lossier() {
        let smooth = DiffStripline::builder().roughness(-14.5).build().unwrap();
        let rough = DiffStripline::builder().roughness(14.0).build().unwrap();
        let f = ghz_to_hz(16.0);
        assert!(insertion_loss_db_per_inch(&rough, f) < insertion_loss_db_per_inch(&smooth, f));
    }

    #[test]
    fn higher_df_is_lossier() {
        let lo = DiffStripline::builder()
            .df_core(0.001)
            .df_prepreg(0.001)
            .df_trace(0.001)
            .build()
            .unwrap();
        let hi = DiffStripline::builder()
            .df_core(0.02)
            .df_prepreg(0.02)
            .df_trace(0.02)
            .build()
            .unwrap();
        let f = ghz_to_hz(16.0);
        assert!(insertion_loss_db_per_inch(&hi, f) < insertion_loss_db_per_inch(&lo, f));
    }

    #[test]
    fn wider_trace_is_less_lossy() {
        let narrow = DiffStripline::builder().trace_width(3.0).build().unwrap();
        let wide = DiffStripline::builder().trace_width(8.0).build().unwrap();
        let f = ghz_to_hz(16.0);
        assert!(insertion_loss_db_per_inch(&wide, f) > insertion_loss_db_per_inch(&narrow, f));
    }

    #[test]
    fn characteristic_impedance_near_lossless_value() {
        let layer = DiffStripline::default();
        let p = odd_mode_rlgc(&layer, ghz_to_hz(16.0));
        let zc = p.characteristic_impedance(ghz_to_hz(16.0));
        assert!((zc.re - odd_mode_z0(&layer)).abs() < 2.0);
        assert!(zc.im.abs() < 2.0);
    }

    #[test]
    fn phase_velocity_below_light_speed() {
        let p = default_rlgc(16.0);
        let v = p.phase_velocity(ghz_to_hz(16.0));
        assert!(v < C0 && v > C0 / 4.0);
    }
}
