//! Batched, zero-allocation frequency sweeps over channels and lines.
//!
//! The scalar path ([`Channel::abcd`]) recomputes the per-unit-length RLGC
//! constants and the segment ABCD matrix for every element at every
//! frequency, even when consecutive segments share a layer. A [`SweepPlan`]
//! amortises that work across a whole (designs × frequencies) evaluation:
//!
//! * **RLGC hoisting** — `odd_mode_rlgc` runs once per *distinct layer* per
//!   frequency, not once per element per frequency;
//! * **prototype interning** — the ABCD lanes of each distinct
//!   `(layer, length)` segment and each distinct via are built once and
//!   reused across elements, channels, and repeated sweeps;
//! * **structure-of-arrays lanes** — all per-frequency complex state lives
//!   in flat `Vec<f64>` re/im lanes (`AbcdLanes`), cascaded with an
//!   explicit 4-wide unrolled kernel behind the `simd-lanes` feature;
//! * **scratch arenas** — chain and S-parameter lanes are owned by the plan
//!   and reused, so a warm plan allocates nothing per sweep.
//!
//! ## Bit-identity contract
//!
//! Batched results are **bit-identical** to the scalar per-point path at
//! every lane width. This holds by construction, not by tolerance: every
//! per-point value is produced by the *same pure functions* the scalar path
//! calls ([`odd_mode_rlgc`], [`stripline_abcd`](crate::channel),
//! [`Via::abcd`], [`AbcdMatrix::cascade`], [`AbcdMatrix::to_s_params`]) with
//! the same arguments in the same order — the plan only *caches and reuses*
//! their results. The 4-wide kernel is an unrolled loop of four independent
//! per-point calls, so widening the lanes reorders no floating-point
//! operation within a point: lane width 1 ≡ 4, mirroring the
//! `threads = 1 ≡ N` determinism contract of the training engine.

use crate::abcd::{to_db, AbcdMatrix};
use crate::channel::{stripline_abcd, Channel, Element};
use crate::complex::Complex;
use crate::rlgc::{odd_mode_rlgc, RlgcParams};
use crate::stackup::DiffStripline;
use crate::via::Via;

/// `true` when the crate was compiled with the `simd-lanes` feature, i.e.
/// when [`LaneWidth::W4`] actually runs the 4-wide unrolled kernel. The CI
/// bench gate only enforces the sweep speedup threshold when this is set.
pub fn lanes_compiled() -> bool {
    cfg!(feature = "simd-lanes")
}

/// Kernel lane width for the batched sweep loops.
///
/// Purely a throughput knob: results are bit-identical at every width (see
/// the module docs). [`LaneWidth::W4`] silently degrades to an effective
/// width of 1 when the crate is built without the `simd-lanes` feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneWidth {
    /// Straight per-point loop.
    W1,
    /// 4-wide unrolled loop (requires the `simd-lanes` feature).
    W4,
}

impl LaneWidth {
    /// The width the kernels actually run at under the current build.
    pub fn effective(self) -> usize {
        match self {
            LaneWidth::W1 => 1,
            LaneWidth::W4 => {
                if lanes_compiled() {
                    4
                } else {
                    1
                }
            }
        }
    }
}

impl Default for LaneWidth {
    /// The widest compiled kernel.
    fn default() -> Self {
        LaneWidth::W4
    }
}

/// Structure-of-arrays storage for one 2x2 complex matrix per frequency:
/// eight flat `f64` lanes (a/b/c/d × re/im). Also reused to hold the four
/// S-parameters (a=s11, b=s21, c=s12, d=s22).
#[derive(Debug, Clone, Default)]
struct AbcdLanes {
    a_re: Vec<f64>,
    a_im: Vec<f64>,
    b_re: Vec<f64>,
    b_im: Vec<f64>,
    c_re: Vec<f64>,
    c_im: Vec<f64>,
    d_re: Vec<f64>,
    d_im: Vec<f64>,
}

impl AbcdLanes {
    fn with_len(n: usize) -> Self {
        let mut lanes = Self::default();
        lanes.resize(n);
        lanes
    }

    fn len(&self) -> usize {
        self.a_re.len()
    }

    fn resize(&mut self, n: usize) {
        for lane in [
            &mut self.a_re,
            &mut self.a_im,
            &mut self.b_re,
            &mut self.b_im,
            &mut self.c_re,
            &mut self.c_im,
            &mut self.d_re,
            &mut self.d_im,
        ] {
            lane.resize(n, 0.0);
        }
    }

    #[inline(always)]
    fn get(&self, i: usize) -> AbcdMatrix {
        AbcdMatrix {
            a: Complex::new(self.a_re[i], self.a_im[i]),
            b: Complex::new(self.b_re[i], self.b_im[i]),
            c: Complex::new(self.c_re[i], self.c_im[i]),
            d: Complex::new(self.d_re[i], self.d_im[i]),
        }
    }

    #[inline(always)]
    fn set(&mut self, i: usize, m: &AbcdMatrix) {
        self.a_re[i] = m.a.re;
        self.a_im[i] = m.a.im;
        self.b_re[i] = m.b.re;
        self.b_im[i] = m.b.im;
        self.c_re[i] = m.c.re;
        self.c_im[i] = m.c.im;
        self.d_re[i] = m.d.re;
        self.d_im[i] = m.d.im;
    }

    fn fill_identity(&mut self) {
        self.a_re.fill(1.0);
        self.a_im.fill(0.0);
        self.b_re.fill(0.0);
        self.b_im.fill(0.0);
        self.c_re.fill(0.0);
        self.c_im.fill(0.0);
        self.d_re.fill(1.0);
        self.d_im.fill(0.0);
    }

    /// Byte-for-byte copy of `other`'s lanes; reuses this arena's capacity.
    fn copy_from(&mut self, other: &Self) {
        for (dst, src) in [
            (&mut self.a_re, &other.a_re),
            (&mut self.a_im, &other.a_im),
            (&mut self.b_re, &other.b_re),
            (&mut self.b_im, &other.b_im),
            (&mut self.c_re, &other.c_re),
            (&mut self.c_im, &other.c_im),
            (&mut self.d_re, &other.d_re),
            (&mut self.d_im, &other.d_im),
        ] {
            dst.clear();
            dst.extend_from_slice(src);
        }
    }
}

/// One interned element of the channel currently being swept.
#[derive(Debug, Clone, Copy)]
enum ElemRef {
    /// Index into the line-prototype arena.
    Line(usize),
    /// Index into the via-prototype arena.
    Via(usize),
}

/// Cascades `proto` into `chain` at point `i` through the exact scalar
/// cascade — the bit-identity anchor of the batched path.
#[inline(always)]
fn cascade_point(chain: &mut AbcdLanes, proto: &AbcdLanes, i: usize) {
    let m = chain.get(i).cascade(&proto.get(i));
    chain.set(i, &m);
}

/// Converts chain point `i` to S-parameters through the exact scalar
/// conversion, storing them as (a=s11, b=s21, c=s12, d=s22).
#[inline(always)]
fn sparams_point(chain: &AbcdLanes, out: &mut AbcdLanes, z_ref: f64, i: usize) {
    let (s11, s21, s12, s22) = chain.get(i).to_s_params(z_ref);
    out.set(
        i,
        &AbcdMatrix {
            a: s11,
            b: s21,
            c: s12,
            d: s22,
        },
    );
}

/// Cascade kernel: 4-wide unrolled when `width == 4` (four *independent*
/// per-point calls per iteration — no cross-point arithmetic, hence
/// bit-identical to the straight loop), straight loop otherwise.
fn cascade_lanes(chain: &mut AbcdLanes, proto: &AbcdLanes, width: usize) {
    let n = chain.len();
    let mut i = 0;
    #[cfg(feature = "simd-lanes")]
    if width == 4 {
        while i + 4 <= n {
            cascade_point(chain, proto, i);
            cascade_point(chain, proto, i + 1);
            cascade_point(chain, proto, i + 2);
            cascade_point(chain, proto, i + 3);
            i += 4;
        }
    }
    #[cfg(not(feature = "simd-lanes"))]
    let _ = width;
    while i < n {
        cascade_point(chain, proto, i);
        i += 1;
    }
}

/// S-parameter kernel; same unrolling contract as [`cascade_lanes`].
fn sparams_lanes(chain: &AbcdLanes, out: &mut AbcdLanes, z_ref: f64, width: usize) {
    let n = chain.len();
    let mut i = 0;
    #[cfg(feature = "simd-lanes")]
    if width == 4 {
        while i + 4 <= n {
            sparams_point(chain, out, z_ref, i);
            sparams_point(chain, out, z_ref, i + 1);
            sparams_point(chain, out, z_ref, i + 2);
            sparams_point(chain, out, z_ref, i + 3);
            i += 4;
        }
    }
    #[cfg(not(feature = "simd-lanes"))]
    let _ = width;
    while i < n {
        sparams_point(chain, out, z_ref, i);
        i += 1;
    }
}

/// A reusable batched-sweep arena over a fixed frequency grid.
///
/// Build one per sweep grid, then evaluate any number of channels or lines
/// against it; prototype ABCD lanes and RLGC rows are interned on first
/// sight and reused for every later element, channel, and repeated sweep.
/// A warm plan (all prototypes seen) allocates nothing per sweep.
///
/// ```
/// use isop_em::channel::{Channel, Element};
/// use isop_em::stackup::DiffStripline;
/// use isop_em::sweep::SweepPlan;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ch = Channel::new(vec![Element::Stripline {
///     layer: DiffStripline::default(),
///     length_inches: 4.0,
/// }])?;
/// let mut plan = SweepPlan::log_spaced(1e8, 4e10, 64);
/// let view = plan.sweep(&ch);
/// assert_eq!(view.len(), 64);
/// assert!(view.il_db(63) < view.il_db(0), "loss grows with frequency");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SweepPlan {
    freqs: Vec<f64>,
    lanes: LaneWidth,
    /// Interned distinct layers, in first-seen order.
    layers: Vec<DiffStripline>,
    /// RLGC rows, `freqs.len()` entries per interned layer, row-major.
    rlgc: Vec<RlgcParams>,
    /// Interned `(layer index, length bits)` line prototypes.
    line_keys: Vec<(usize, u64)>,
    line_lanes: Vec<AbcdLanes>,
    /// Interned via prototypes.
    via_keys: Vec<Via>,
    via_lanes: Vec<AbcdLanes>,
    /// Element references of the channel being swept (reused scratch).
    elems: Vec<ElemRef>,
    /// Cascaded chain lanes (reused scratch).
    chain: AbcdLanes,
    /// S-parameter lanes of the last sweep (a=s11, b=s21, c=s12, d=s22).
    out: AbcdLanes,
}

impl Default for SweepPlan {
    /// An empty-grid plan (sweeps produce zero points until rebuilt).
    fn default() -> Self {
        Self::new(Vec::new())
    }
}

impl SweepPlan {
    /// A plan over an arbitrary frequency grid (Hz, caller's order).
    pub fn new(freqs: Vec<f64>) -> Self {
        Self {
            freqs,
            lanes: LaneWidth::default(),
            layers: Vec::new(),
            rlgc: Vec::new(),
            line_keys: Vec::new(),
            line_lanes: Vec::new(),
            via_keys: Vec::new(),
            via_lanes: Vec::new(),
            elems: Vec::new(),
            chain: AbcdLanes::default(),
            out: AbcdLanes::default(),
        }
    }

    /// A plan over `n` logarithmically spaced frequencies in
    /// `[f_start_hz, f_stop_hz]` — bit-identical to the grid of
    /// [`FrequencySweep::of_layer`](crate::sparams::FrequencySweep::of_layer).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the band is empty/non-positive.
    pub fn log_spaced(f_start_hz: f64, f_stop_hz: f64, n: usize) -> Self {
        assert!(n >= 2, "sweep needs at least two points");
        assert!(
            f_start_hz > 0.0 && f_stop_hz > f_start_hz,
            "invalid frequency band"
        );
        let log_lo = f_start_hz.ln();
        let log_hi = f_stop_hz.ln();
        let freqs = (0..n)
            .map(|i| (log_lo + (log_hi - log_lo) * i as f64 / (n - 1) as f64).exp())
            .collect();
        Self::new(freqs)
    }

    /// Sets the kernel lane width (default [`LaneWidth::W4`]); results are
    /// bit-identical at every width.
    #[must_use]
    pub fn with_lanes(mut self, lanes: LaneWidth) -> Self {
        self.lanes = lanes;
        self
    }

    /// The frequency grid, Hz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// The configured kernel lane width.
    pub fn lane_width(&self) -> LaneWidth {
        self.lanes
    }

    /// Number of distinct interned `(layer, length)` / via prototypes —
    /// the arena footprint, exposed for tests and diagnostics.
    pub fn interned_prototypes(&self) -> usize {
        self.line_keys.len() + self.via_keys.len()
    }

    /// Drops every interned prototype and RLGC row (keeps the grid and the
    /// scratch arenas). Use when a long-lived plan has accumulated
    /// prototypes for designs that will not recur.
    pub fn reset(&mut self) {
        self.layers.clear();
        self.rlgc.clear();
        self.line_keys.clear();
        self.line_lanes.clear();
        self.via_keys.clear();
        self.via_lanes.clear();
    }

    /// Interns `layer`, computing its RLGC row on first sight.
    fn intern_layer(&mut self, layer: &DiffStripline) -> usize {
        if let Some(i) = self.layers.iter().position(|l| l == layer) {
            return i;
        }
        self.layers.push(*layer);
        self.rlgc.reserve(self.freqs.len());
        for &f in &self.freqs {
            self.rlgc.push(odd_mode_rlgc(layer, f));
        }
        self.layers.len() - 1
    }

    /// Interns a `(layer, length)` line prototype, building its ABCD lanes
    /// from the hoisted RLGC row on first sight.
    fn intern_line(&mut self, layer: &DiffStripline, length_inches: f64) -> usize {
        let li = self.intern_layer(layer);
        let key = (li, length_inches.to_bits());
        if let Some(i) = self.line_keys.iter().position(|k| *k == key) {
            return i;
        }
        let nf = self.freqs.len();
        let mut lanes = AbcdLanes::with_len(nf);
        let row = &self.rlgc[li * nf..(li + 1) * nf];
        for (i, (&f, p)) in self.freqs.iter().zip(row).enumerate() {
            lanes.set(i, &stripline_abcd(p, f, length_inches));
        }
        self.line_keys.push(key);
        self.line_lanes.push(lanes);
        self.line_lanes.len() - 1
    }

    /// Interns a via prototype, building its ABCD lanes on first sight.
    fn intern_via(&mut self, via: &Via) -> usize {
        if let Some(i) = self.via_keys.iter().position(|v| v == via) {
            return i;
        }
        let nf = self.freqs.len();
        let mut lanes = AbcdLanes::with_len(nf);
        for (i, &f) in self.freqs.iter().enumerate() {
            lanes.set(i, &via.abcd(f));
        }
        self.via_keys.push(*via);
        self.via_lanes.push(lanes);
        self.via_lanes.len() - 1
    }

    /// Sweeps `channel`'s four S-parameters over the whole grid.
    ///
    /// Bit-identical to calling [`Channel::abcd`] +
    /// [`AbcdMatrix::to_s_params`] per frequency (including the leading
    /// identity cascade), at any lane width. The returned view borrows the
    /// plan's output arena, so it is invalidated by the next sweep.
    pub fn sweep(&mut self, channel: &Channel) -> SweepView<'_> {
        self.elems.clear();
        for e in channel.elements() {
            let r = match e {
                Element::Stripline {
                    layer,
                    length_inches,
                } => ElemRef::Line(self.intern_line(layer, *length_inches)),
                Element::Via(v) => ElemRef::Via(self.intern_via(v)),
            };
            self.elems.push(r);
        }
        let nf = self.freqs.len();
        self.chain.resize(nf);
        self.chain.fill_identity();
        let width = self.lanes.effective();
        for r in &self.elems {
            let proto = match r {
                ElemRef::Line(i) => &self.line_lanes[*i],
                ElemRef::Via(i) => &self.via_lanes[*i],
            };
            cascade_lanes(&mut self.chain, proto, width);
        }
        self.out.resize(nf);
        sparams_lanes(
            &self.chain,
            &mut self.out,
            channel.reference_impedance(),
            width,
        );
        SweepView {
            freqs: &self.freqs,
            s: &self.out,
        }
    }

    /// Sweeps a single stripline of `length_inches` on `layer`, referenced
    /// to `z_ref` ohms.
    ///
    /// Bit-identical to the scalar
    /// [`FrequencySweep::of_layer`](crate::sparams::FrequencySweep::of_layer)
    /// arithmetic: the prototype lanes are converted directly (no identity
    /// cascade), exactly as `of_layer` converts the bare line matrix.
    pub fn sweep_line(
        &mut self,
        layer: &DiffStripline,
        length_inches: f64,
        z_ref: f64,
    ) -> SweepView<'_> {
        let idx = self.intern_line(layer, length_inches);
        self.chain.copy_from(&self.line_lanes[idx]);
        self.out.resize(self.freqs.len());
        let width = self.lanes.effective();
        sparams_lanes(&self.chain, &mut self.out, z_ref, width);
        SweepView {
            freqs: &self.freqs,
            s: &self.out,
        }
    }

    /// Sweeps many channels through one plan, invoking `visit` with each
    /// channel's index and view. Prototypes shared between channels are
    /// computed once — this is the (designs × frequencies) batch entry
    /// point the async-scheduler roadmap item builds on.
    pub fn sweep_channels<F>(&mut self, channels: &[Channel], mut visit: F)
    where
        F: FnMut(usize, SweepView<'_>),
    {
        for (i, ch) in channels.iter().enumerate() {
            let view = self.sweep(ch);
            visit(i, view);
        }
    }
}

/// Read-only view of the last sweep's S-parameters, borrowed from the
/// plan's output arena.
#[derive(Debug, Clone, Copy)]
pub struct SweepView<'a> {
    freqs: &'a [f64],
    s: &'a AbcdLanes,
}

impl SweepView<'_> {
    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// `true` when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Frequency of point `i`, Hz.
    pub fn freq(&self, i: usize) -> f64 {
        self.freqs[i]
    }

    /// The frequency grid, Hz.
    pub fn freqs(&self) -> &[f64] {
        self.freqs
    }

    /// `S11` at point `i`.
    pub fn s11(&self, i: usize) -> Complex {
        Complex::new(self.s.a_re[i], self.s.a_im[i])
    }

    /// `S21` at point `i`.
    pub fn s21(&self, i: usize) -> Complex {
        Complex::new(self.s.b_re[i], self.s.b_im[i])
    }

    /// `S12` at point `i`.
    pub fn s12(&self, i: usize) -> Complex {
        Complex::new(self.s.c_re[i], self.s.c_im[i])
    }

    /// `S22` at point `i`.
    pub fn s22(&self, i: usize) -> Complex {
        Complex::new(self.s.d_re[i], self.s.d_im[i])
    }

    /// Insertion loss `|S21|` in dB at point `i`.
    pub fn il_db(&self, i: usize) -> f64 {
        to_db(self.s21(i))
    }

    /// Return loss `|S11|` in dB at point `i`.
    pub fn rl_db(&self, i: usize) -> f64 {
        to_db(self.s11(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stripline::odd_mode_z0;

    fn mixed_channel() -> Channel {
        let a = DiffStripline::default();
        let b = DiffStripline {
            trace_width: 6.0,
            ..DiffStripline::default()
        };
        Channel::new(vec![
            Element::Stripline {
                layer: a,
                length_inches: 2.0,
            },
            Element::Via(Via::default()),
            Element::Stripline {
                layer: b,
                length_inches: 3.0,
            },
            Element::Via(Via {
                stub_length: 0.0,
                ..Via::default()
            }),
            // Repeats the first prototype exactly — must intern, not rebuild.
            Element::Stripline {
                layer: a,
                length_inches: 2.0,
            },
        ])
        .expect("valid channel")
    }

    #[test]
    fn batched_sweep_is_bit_identical_to_scalar() {
        let ch = mixed_channel();
        let mut plan = SweepPlan::log_spaced(1e8, 4e10, 37);
        let view = plan.sweep(&ch);
        let z = ch.reference_impedance();
        for i in 0..view.len() {
            let f = view.freq(i);
            let (s11, s21, s12, s22) = ch.abcd(f).to_s_params(z);
            for (got, want) in [
                (view.s11(i), s11),
                (view.s21(i), s21),
                (view.s12(i), s12),
                (view.s22(i), s22),
            ] {
                assert_eq!(got.re.to_bits(), want.re.to_bits(), "point {i}");
                assert_eq!(got.im.to_bits(), want.im.to_bits(), "point {i}");
            }
        }
    }

    #[test]
    fn lane_widths_are_bit_identical() {
        let ch = mixed_channel();
        let mut narrow = SweepPlan::log_spaced(1e8, 4e10, 37).with_lanes(LaneWidth::W1);
        let mut wide = SweepPlan::log_spaced(1e8, 4e10, 37).with_lanes(LaneWidth::W4);
        let a: Vec<(u64, u64)> = {
            let v = narrow.sweep(&ch);
            (0..v.len())
                .map(|i| (v.s21(i).re.to_bits(), v.s21(i).im.to_bits()))
                .collect()
        };
        let b: Vec<(u64, u64)> = {
            let v = wide.sweep(&ch);
            (0..v.len())
                .map(|i| (v.s21(i).re.to_bits(), v.s21(i).im.to_bits()))
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn prototypes_intern_across_elements_and_sweeps() {
        let ch = mixed_channel();
        let mut plan = SweepPlan::log_spaced(1e8, 4e10, 16);
        let _ = plan.sweep(&ch);
        // 5 elements, but the repeated segment shares a prototype:
        // 2 distinct lines + 2 distinct vias.
        assert_eq!(plan.interned_prototypes(), 4);
        let _ = plan.sweep(&ch);
        assert_eq!(plan.interned_prototypes(), 4, "warm sweep interns nothing");
        plan.reset();
        assert_eq!(plan.interned_prototypes(), 0);
    }

    #[test]
    fn sweep_line_matches_scalar_of_layer_arithmetic() {
        let layer = DiffStripline::default();
        let z = odd_mode_z0(&layer);
        let mut plan = SweepPlan::log_spaced(1e8, 4e10, 21);
        let view = plan.sweep_line(&layer, 1.0, z);
        let sweep = crate::sparams::FrequencySweep::of_layer(&layer, 1e8, 4e10, 21, 1.0, z);
        for (i, p) in sweep.points().iter().enumerate() {
            assert_eq!(view.freq(i).to_bits(), p.f_hz.to_bits());
            assert_eq!(view.il_db(i).to_bits(), p.il_db.to_bits());
            assert_eq!(view.rl_db(i).to_bits(), p.rl_db.to_bits());
        }
    }

    #[test]
    fn sweep_channels_visits_every_channel_in_order() {
        let chans = vec![mixed_channel(), mixed_channel()];
        let mut plan = SweepPlan::log_spaced(1e9, 2e10, 8);
        let mut seen = Vec::new();
        plan.sweep_channels(&chans, |i, v| {
            seen.push((i, v.len()));
        });
        assert_eq!(seen, vec![(0, 8), (1, 8)]);
    }

    #[test]
    fn lane_width_effective_respects_feature() {
        assert_eq!(LaneWidth::W1.effective(), 1);
        if lanes_compiled() {
            assert_eq!(LaneWidth::W4.effective(), 4);
        } else {
            assert_eq!(LaneWidth::W4.effective(), 1);
        }
    }
}
