//! Near-end and far-end crosstalk between adjacent differential pairs.
//!
//! The aggressor pair couples into the victim pair through mutual inductance
//! and capacitance. In the homogeneous stripline medium the two coupling
//! coefficients are equal, so far-end crosstalk largely cancels and the
//! dominant term is the **backward (near-end) crosstalk**, whose saturated
//! amplitude for a coupling coefficient `k` is `Kb = (kL + kC) / 4 = k / 2`.
//!
//! Differential signalling introduces partial field cancellation: the two
//! traces of the aggressor pair carry opposite polarities, so the victim sees
//! the *difference* of the coupling coefficients at the two aggressor-trace
//! distances. The same applies on the victim side, yielding a four-term sum.
//!
//! The paper reports NEXT as a (negative) millivolt amplitude for a
//! nominal 1 V aggressor step, which this module reproduces.

use crate::stackup::DiffStripline;
use crate::stripline::coupling_coefficient_with;
use serde::{Deserialize, Serialize};

/// Aggressor step amplitude assumed by the paper's NEXT numbers, volts.
pub const AGGRESSOR_STEP_V: f64 = 1.0;

/// Amplitude of the pair-to-pair coupling model.
///
/// Calibrated with [`XTALK_DECAY`] against two published design points of the
/// paper's Table IX: the expert design (`D_t = 20`, `b = 17.5`,
/// `NEXT = -2.77 mV`) and the `T1 / S_1` ISOP design (`D_t = 30`, `b = 15.7`,
/// `NEXT = -0.49 mV`).
pub const XTALK_AMPLITUDE: f64 = 0.154;

/// Exponential decay rate of pair-to-pair coupling with `d / b`.
///
/// Slower than the intra-pair [`crate::stripline::COUPLING_DECAY`] because
/// crosstalk at pair distances of 15-40 mils is carried by the far-field
/// tail, which an exponential fit captures with a smaller rate.
pub const XTALK_DECAY: f64 = 2.5;

/// Crosstalk summary between two identical adjacent differential pairs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrosstalkResult {
    /// Net differential coupling coefficient (dimensionless).
    pub coupling: f64,
    /// Saturated backward-crosstalk coefficient `Kb`.
    pub backward_coefficient: f64,
    /// Peak near-end crosstalk in millivolts (negative, per the paper's
    /// polarity convention).
    pub next_mv: f64,
}

/// Computes pair-to-pair crosstalk for `layer`.
///
/// The victim's near trace sits `D_t` (edge-to-edge) from the aggressor's
/// near trace; the remaining trace-to-trace distances follow from the pair
/// geometry (`W_t`, `S_t`).
pub fn pair_crosstalk(layer: &DiffStripline) -> CrosstalkResult {
    let b = layer.plane_spacing_mils();
    let w = layer.trace_width;
    let s = layer.trace_spacing;
    let d = layer.pair_distance;

    // Edge-to-edge separations of the four aggressor/victim trace pairs.
    // Victim traces: V- (near), V+ (far); aggressor traces: A+ (near), A-.
    let sep_vn_an = d;
    let sep_vn_af = d + w + s;
    let sep_vf_an = d + w + s;
    let sep_vf_af = d + 2.0 * (w + s);

    // Differential-to-differential coupling: polarity-weighted sum.
    let kx = |sep: f64| coupling_coefficient_with(sep, b, XTALK_AMPLITUDE, XTALK_DECAY);
    let k = kx(sep_vn_an) - kx(sep_vn_af) - kx(sep_vf_an) + kx(sep_vf_af);

    let kb = k / 2.0;
    CrosstalkResult {
        coupling: k,
        backward_coefficient: kb,
        next_mv: -kb.abs() * AGGRESSOR_STEP_V * 1e3,
    }
}

/// Peak near-end crosstalk in millivolts (negative) — convenience wrapper
/// matching the paper's `NEXT` metric.
pub fn next_mv(layer: &DiffStripline) -> f64 {
    pair_crosstalk(layer).next_mv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_is_nonpositive() {
        assert!(next_mv(&DiffStripline::default()) <= 0.0);
    }

    #[test]
    fn next_decays_with_pair_distance() {
        let near = DiffStripline::builder()
            .pair_distance(15.0)
            .build()
            .unwrap();
        let mid = DiffStripline::builder()
            .pair_distance(25.0)
            .build()
            .unwrap();
        let far = DiffStripline::builder()
            .pair_distance(40.0)
            .build()
            .unwrap();
        let (n, m, f) = (
            next_mv(&near).abs(),
            next_mv(&mid).abs(),
            next_mv(&far).abs(),
        );
        assert!(n > m && m > f, "NEXT must decay: {n} > {m} > {f}");
    }

    #[test]
    fn thinner_dielectric_reduces_crosstalk() {
        // Closer reference planes confine the field: smaller coupling at the
        // same pair distance.
        let thin = DiffStripline::builder()
            .core_height(3.0)
            .prepreg_height(3.0)
            .build()
            .unwrap();
        let thick = DiffStripline::builder()
            .core_height(9.0)
            .prepreg_height(9.0)
            .build()
            .unwrap();
        assert!(next_mv(&thin).abs() < next_mv(&thick).abs());
    }

    #[test]
    fn differential_cancellation_reduces_coupling() {
        // Net differential coupling must be below the raw near-trace value.
        let layer = DiffStripline::default();
        let raw = coupling_coefficient_with(
            layer.pair_distance,
            layer.plane_spacing_mils(),
            XTALK_AMPLITUDE,
            XTALK_DECAY,
        );
        let net = pair_crosstalk(&layer).coupling.abs();
        assert!(net < raw);
    }

    #[test]
    fn backward_coefficient_is_half_coupling() {
        let r = pair_crosstalk(&DiffStripline::default());
        assert!((r.backward_coefficient - r.coupling / 2.0).abs() < 1e-15);
    }

    #[test]
    fn next_magnitude_in_millivolt_regime() {
        // Typical spacings give sub-10 mV NEXT for a 1 V step.
        let r = next_mv(&DiffStripline::default()).abs();
        assert!(r < 20.0, "NEXT unreasonably large: {r} mV");
    }
}
