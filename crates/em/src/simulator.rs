//! Simulator facade: the drop-in substitute for the paper's commercial
//! "ICAT-based" EM tool.
//!
//! Two engines implement [`EmSimulator`]:
//!
//! * [`AnalyticalSolver`] — fast closed-form model (used to generate the
//!   surrogate-training dataset and for roll-out verification at scale);
//! * [`FieldSolver`] — the 2-D finite-difference engine, slower but free of
//!   closed-form approximations; used for cross-validation.
//!
//! Both report the three performance metrics the paper optimizes: the
//! differential impedance `Z` (ohms), the differential insertion loss `L` at
//! 16 GHz (dB/inch, negative), and the peak near-end crosstalk `NEXT` (mV,
//! negative). A configurable simulated latency reproduces the paper's
//! runtime accounting (45.5 s for three parallel EM runs) without actually
//! sleeping, via an internal cost ledger.

use crate::crosstalk::next_mv;
use crate::fault::SimError;
use crate::fdsolver::{solve_odd_mode, FdConfig};
use crate::rlgc::insertion_loss_db_per_inch;
use crate::stackup::DiffStripline;
use crate::stripline::differential_z0;
use isop_telemetry::{Counter, Telemetry};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Frequency at which the paper evaluates insertion loss, Hz.
pub const LOSS_EVAL_FREQ_HZ: f64 = 16.0e9;

/// The paper's reported wall-clock for three parallel EM simulations, s.
pub const PAPER_EM_BATCH_SECONDS: f64 = 45.5;

/// The three stack-up performance metrics of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Differential impedance `Z`, ohms.
    pub z_diff: f64,
    /// Differential insertion loss `L` at 16 GHz, dB/inch (negative).
    pub insertion_loss: f64,
    /// Peak near-end crosstalk `NEXT`, mV (negative).
    pub next: f64,
}

impl SimulationResult {
    /// Returns the metrics as a `[Z, L, NEXT]` array — the target vector
    /// layout used by the surrogate models.
    pub fn to_array(&self) -> [f64; 3] {
        [self.z_diff, self.insertion_loss, self.next]
    }
}

/// A performance simulator for differential stripline layers.
///
/// The trait is object-safe: the optimizer holds engines as
/// `&dyn EmSimulator` so roll-out verification can swap engines.
pub trait EmSimulator: Send + Sync {
    /// Evaluates one stack-up layer.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] classifying the failure: permanent for a
    /// physically invalid layer (or an injected unsolvable design) and
    /// transient for retryable tool failures injected by
    /// [`FaultInjector`](crate::fault::FaultInjector).
    fn simulate(&self, layer: &DiffStripline) -> Result<SimulationResult, SimError>;

    /// Nominal wall-clock cost of one evaluation in seconds, used by the
    /// experiment harness to account simulated EM time like the paper does.
    fn nominal_seconds(&self) -> f64;

    /// Engine name for reports.
    fn name(&self) -> &str;
}

/// Fast closed-form engine (Wheeler impedance + RLGC loss + coupled-line
/// crosstalk).
#[derive(Debug, Default)]
pub struct AnalyticalSolver {
    calls: AtomicU64,
    telemetry: Telemetry,
}

impl AnalyticalSolver {
    /// Creates a new engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry handle: every `simulate` call then records
    /// attempted/succeeded/failed counters and an `em.simulate` span.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of evaluations performed so far.
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl EmSimulator for AnalyticalSolver {
    fn simulate(&self, layer: &DiffStripline) -> Result<SimulationResult, SimError> {
        let _span = isop_telemetry::span!(self.telemetry, "em.simulate");
        self.telemetry.incr(Counter::EmSimAttempted);
        if let Err(e) = layer.validate() {
            self.telemetry.incr(Counter::EmSimFailed);
            return Err(e.into());
        }
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.telemetry.incr(Counter::EmSimSucceeded);
        Ok(SimulationResult {
            z_diff: differential_z0(layer),
            insertion_loss: insertion_loss_db_per_inch(layer, LOSS_EVAL_FREQ_HZ),
            next: next_mv(layer),
        })
    }

    fn nominal_seconds(&self) -> f64 {
        // The closed-form model stands in for the production tool; a single
        // accurate EM run in the paper costs PAPER_EM_BATCH_SECONDS for a
        // batch of three.
        PAPER_EM_BATCH_SECONDS / 3.0
    }

    fn name(&self) -> &str {
        "analytical"
    }
}

/// Accurate engine: finite-difference impedance, closed-form loss/crosstalk.
#[derive(Debug)]
pub struct FieldSolver {
    cfg: FdConfig,
    calls: AtomicU64,
    telemetry: Telemetry,
    nominal_seconds: f64,
}

impl Default for FieldSolver {
    fn default() -> Self {
        Self::new(FdConfig::default())
    }
}

impl FieldSolver {
    /// Creates an engine with the given grid configuration.
    ///
    /// The nominal per-run cost defaults to the paper's accounting
    /// (`PAPER_EM_BATCH_SECONDS / 3`, same as [`AnalyticalSolver`]); use
    /// [`FieldSolver::with_nominal_seconds`] to model a slower reference
    /// tool independently of the analytical engine.
    pub fn new(cfg: FdConfig) -> Self {
        Self {
            cfg,
            calls: AtomicU64::new(0),
            telemetry: Telemetry::disabled(),
            nominal_seconds: PAPER_EM_BATCH_SECONDS / 3.0,
        }
    }

    /// Attaches a telemetry handle (see
    /// [`AnalyticalSolver::with_telemetry`]).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Overrides the nominal wall-clock charged per evaluation, so the
    /// cost ledger can account the field solver differently from the
    /// analytical engine.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or negative cost.
    #[must_use]
    pub fn with_nominal_seconds(mut self, seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "nominal seconds must be finite and non-negative"
        );
        self.nominal_seconds = seconds;
        self
    }

    /// Number of evaluations performed so far.
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl EmSimulator for FieldSolver {
    fn simulate(&self, layer: &DiffStripline) -> Result<SimulationResult, SimError> {
        let _span = isop_telemetry::span!(self.telemetry, "em.simulate");
        self.telemetry.incr(Counter::EmSimAttempted);
        if let Err(e) = layer.validate() {
            self.telemetry.incr(Counter::EmSimFailed);
            return Err(e.into());
        }
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.telemetry.incr(Counter::EmSimSucceeded);
        let sol = solve_odd_mode(layer, &self.cfg);
        Ok(SimulationResult {
            z_diff: sol.z_diff(),
            insertion_loss: insertion_loss_db_per_inch(layer, LOSS_EVAL_FREQ_HZ),
            next: next_mv(layer),
        })
    }

    fn nominal_seconds(&self) -> f64 {
        self.nominal_seconds
    }

    fn name(&self) -> &str {
        "field-solver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytical_reports_all_metrics() {
        let sim = AnalyticalSolver::new();
        let r = sim
            .simulate(&DiffStripline::default())
            .expect("valid layer");
        assert!(r.z_diff > 40.0 && r.z_diff < 150.0);
        assert!(r.insertion_loss < 0.0);
        assert!(r.next <= 0.0);
        assert_eq!(sim.call_count(), 1);
    }

    #[test]
    fn invalid_layer_is_rejected() {
        let sim = AnalyticalSolver::new();
        let bad = DiffStripline {
            trace_width: -1.0,
            ..DiffStripline::default()
        };
        assert!(sim.simulate(&bad).is_err());
        assert_eq!(sim.call_count(), 0, "failed runs must not count");
    }

    #[test]
    fn telemetry_counts_attempts_successes_failures() {
        let tele = Telemetry::enabled();
        let sim = AnalyticalSolver::new().with_telemetry(tele.clone());
        sim.simulate(&DiffStripline::default())
            .expect("valid layer");
        let bad = DiffStripline {
            trace_width: -1.0,
            ..DiffStripline::default()
        };
        assert!(sim.simulate(&bad).is_err());
        assert_eq!(tele.counter(Counter::EmSimAttempted), 2);
        assert_eq!(tele.counter(Counter::EmSimSucceeded), 1);
        assert_eq!(tele.counter(Counter::EmSimFailed), 1);
        let report = tele.run_report();
        assert_eq!(report.span("em.simulate").expect("span recorded").count, 2);
    }

    #[test]
    fn field_solver_nominal_seconds_is_configurable() {
        let default = FieldSolver::default();
        assert_eq!(default.nominal_seconds(), PAPER_EM_BATCH_SECONDS / 3.0);
        let slow = FieldSolver::default().with_nominal_seconds(120.0);
        assert_eq!(slow.nominal_seconds(), 120.0);
        // Independent of the analytical engine's cost.
        assert_eq!(
            AnalyticalSolver::new().nominal_seconds(),
            PAPER_EM_BATCH_SECONDS / 3.0
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_nominal_seconds_rejected() {
        let _ = FieldSolver::default().with_nominal_seconds(-1.0);
    }

    #[test]
    fn to_array_layout() {
        let r = SimulationResult {
            z_diff: 85.0,
            insertion_loss: -0.4,
            next: -0.5,
        };
        assert_eq!(r.to_array(), [85.0, -0.4, -0.5]);
    }

    #[test]
    fn engines_agree_on_impedance() {
        let layer = DiffStripline::default();
        let a = AnalyticalSolver::new().simulate(&layer).unwrap();
        let f = FieldSolver::new(FdConfig {
            cells_per_mil: 2.5,
            tolerance: 1e-5,
            ..FdConfig::default()
        })
        .simulate(&layer)
        .unwrap();
        let rel = (a.z_diff - f.z_diff).abs() / a.z_diff;
        assert!(rel < 0.15, "analytical {} vs FD {}", a.z_diff, f.z_diff);
        // Loss and NEXT share the same model by construction.
        assert_eq!(a.insertion_loss, f.insertion_loss);
        assert_eq!(a.next, f.next);
    }

    /// Calibration anchor: the expert design of paper Table IX
    /// (`T1 Manual` row) must land near its published metrics:
    /// Z = 85.69 ohm, L = -0.434 dB/inch, NEXT = -2.77 mV.
    #[test]
    fn table_ix_manual_design_calibration() {
        let manual = DiffStripline {
            trace_width: 5.0,
            trace_spacing: 6.0,
            pair_distance: 20.0,
            etch_factor: 0.0,
            trace_height: 1.5,
            core_height: 8.0,
            prepreg_height: 8.0,
            conductivity: 5.8e7,
            roughness: -14.5,
            dk_trace: 4.30,
            dk_core: 4.30,
            dk_prepreg: 4.30,
            df_trace: 0.001,
            df_core: 0.001,
            df_prepreg: 0.001,
        };
        let r = AnalyticalSolver::new().simulate(&manual).unwrap();
        assert!(
            (r.z_diff - 85.69).abs() < 4.0,
            "Z calibration off: {}",
            r.z_diff
        );
        assert!(
            (r.insertion_loss - (-0.434)).abs() < 0.12,
            "L calibration off: {}",
            r.insertion_loss
        );
        assert!(
            (r.next.abs() - 2.77).abs() < 1.6,
            "NEXT calibration off: {}",
            r.next
        );
    }
}
