//! End-to-end channel composition: stripline segments and vias cascaded
//! into one two-port, with loss-budget utilities.
//!
//! This is what a signal-integrity engineer does *after* the stack-up is
//! chosen: route the link (segments on possibly different optimized layers,
//! layer changes through vias) and check the end-to-end insertion loss
//! against the interface budget (e.g. -28 dB at Nyquist for a 32 GT/s
//! PCIe-class link).
//!
//! ```
//! use isop_em::channel::{Channel, Element};
//! use isop_em::stackup::DiffStripline;
//! use isop_em::via::Via;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let layer = DiffStripline::default();
//! let channel = Channel::new(vec![
//!     Element::Stripline { layer, length_inches: 3.0 },
//!     Element::Via(Via::default()),
//!     Element::Stripline { layer, length_inches: 5.0 },
//! ])?;
//! let il = channel.insertion_loss_db(8e9);
//! assert!(il < 0.0);
//! # Ok(())
//! # }
//! ```

use crate::abcd::{to_db, AbcdMatrix};
use crate::rlgc::{odd_mode_rlgc, RlgcParams};
use crate::stackup::DiffStripline;
use crate::stripline::odd_mode_z0;
use crate::sweep::{SweepPlan, SweepView};
use crate::units::METERS_PER_INCH;
use crate::via::Via;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reference impedance (ohms) for a channel that contains no stripline
/// segment (via-only), where there is no first-segment odd-mode impedance
/// to reference S-parameters to. 42.5 ohm is the odd-mode impedance of the
/// paper's Table IX expert stripline (half of its ~85 ohm differential
/// target) — the impedance such a via would be embedded in on a real link.
pub const VIA_ONLY_Z_REF_OHMS: f64 = 42.5;

/// The ABCD matrix of a stripline segment given its per-unit-length line
/// constants at `f_hz`. This is the one place the segment matrix is built —
/// the scalar path ([`Channel::abcd`]) and the batched path
/// ([`SweepPlan`](crate::sweep::SweepPlan)) both call it, which is what
/// makes their results bit-identical by construction: the batched sweep
/// only *reuses* values from pure functions, it never re-derives them
/// through different arithmetic.
pub(crate) fn stripline_abcd(p: &RlgcParams, f_hz: f64, length_inches: f64) -> AbcdMatrix {
    AbcdMatrix::transmission_line(
        p.propagation_constant(f_hz),
        p.characteristic_impedance(f_hz),
        length_inches * METERS_PER_INCH,
    )
}

/// One element of a channel, in signal order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Element {
    /// A stripline routing segment on some stack-up layer.
    Stripline {
        /// The layer's cross-section.
        layer: DiffStripline,
        /// Routed length in inches.
        length_inches: f64,
    },
    /// A layer-change via.
    Via(Via),
}

impl Element {
    /// The element's two-port ABCD matrix at `f_hz` — the single scalar
    /// reference implementation shared by [`Channel::abcd`] and the batched
    /// sweep machinery.
    pub fn abcd_at(&self, f_hz: f64) -> AbcdMatrix {
        match self {
            Element::Stripline {
                layer,
                length_inches,
            } => stripline_abcd(&odd_mode_rlgc(layer, f_hz), f_hz, *length_inches),
            Element::Via(v) => v.abcd(f_hz),
        }
    }
}

/// Error building a channel.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// The element list was empty.
    Empty,
    /// A stripline layer failed validation.
    BadLayer(crate::stackup::GeometryError),
    /// A via failed validation.
    BadVia(crate::via::ViaGeometryError),
    /// A non-positive segment length.
    BadLength(f64),
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::Empty => write!(f, "channel needs at least one element"),
            ChannelError::BadLayer(e) => write!(f, "bad stripline layer: {e}"),
            ChannelError::BadVia(e) => write!(f, "bad via: {e}"),
            ChannelError::BadLength(l) => write!(f, "non-positive segment length {l}"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// A validated multi-element channel referenced to the odd-mode impedance of
/// its first stripline segment (or 42.5 ohm if via-only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    elements: Vec<Element>,
    z_ref: f64,
}

impl Channel {
    /// Builds and validates a channel.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError`] for an empty list or any invalid element.
    pub fn new(elements: Vec<Element>) -> Result<Self, ChannelError> {
        if elements.is_empty() {
            return Err(ChannelError::Empty);
        }
        let mut z_ref = None;
        for e in &elements {
            match e {
                Element::Stripline {
                    layer,
                    length_inches,
                } => {
                    layer.validate().map_err(ChannelError::BadLayer)?;
                    if *length_inches <= 0.0 {
                        return Err(ChannelError::BadLength(*length_inches));
                    }
                    z_ref.get_or_insert_with(|| odd_mode_z0(layer));
                }
                Element::Via(v) => v.validate().map_err(ChannelError::BadVia)?,
            }
        }
        Ok(Self {
            elements,
            z_ref: z_ref.unwrap_or(VIA_ONLY_Z_REF_OHMS),
        })
    }

    /// The elements in signal order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Reference (odd-mode) impedance used for S-parameters, ohms.
    pub fn reference_impedance(&self) -> f64 {
        self.z_ref
    }

    /// Total routed length in inches (vias excluded).
    pub fn routed_length_inches(&self) -> f64 {
        self.elements
            .iter()
            .map(|e| match e {
                Element::Stripline { length_inches, .. } => *length_inches,
                Element::Via(_) => 0.0,
            })
            .sum()
    }

    /// Cascaded ABCD matrix at `f_hz` — the scalar per-point reference path.
    ///
    /// For sweeps over many frequencies, [`Channel::sweep`] computes the
    /// same chain bit-identically with per-layer RLGC results hoisted out
    /// of the frequency loop (this method recomputes RLGC for every
    /// element at every call, even when segments share a layer).
    pub fn abcd(&self, f_hz: f64) -> AbcdMatrix {
        let mut chain = AbcdMatrix::identity();
        for e in &self.elements {
            chain = chain.cascade(&e.abcd_at(f_hz));
        }
        chain
    }

    /// Sweeps the channel's four S-parameters over `plan`'s frequency grid
    /// through the batched structure-of-arrays path (see [`crate::sweep`]).
    /// Bit-identical to calling [`Channel::abcd`] +
    /// [`AbcdMatrix::to_s_params`] per point, at any lane width.
    pub fn sweep<'p>(&self, plan: &'p mut SweepPlan) -> SweepView<'p> {
        plan.sweep(self)
    }

    /// Batched equivalent of [`Channel::insertion_loss_db`] over `plan`'s
    /// grid: clears `out` and appends one dB value per frequency.
    /// Allocation-free once `out` has capacity.
    pub fn insertion_loss_db_sweep(&self, plan: &mut SweepPlan, out: &mut Vec<f64>) {
        let view = plan.sweep(self);
        out.clear();
        out.extend((0..view.len()).map(|i| view.il_db(i)));
    }

    /// Batched equivalent of [`Channel::return_loss_db`] over `plan`'s
    /// grid: clears `out` and appends one dB value per frequency.
    /// Allocation-free once `out` has capacity.
    pub fn return_loss_db_sweep(&self, plan: &mut SweepPlan, out: &mut Vec<f64>) {
        let view = plan.sweep(self);
        out.clear();
        out.extend((0..view.len()).map(|i| view.rl_db(i)));
    }

    /// End-to-end `|S21|` in dB at `f_hz` (non-positive for this passive
    /// network).
    pub fn insertion_loss_db(&self, f_hz: f64) -> f64 {
        let (_, s21, _, _) = self.abcd(f_hz).to_s_params(self.z_ref);
        to_db(s21)
    }

    /// `|S11|` in dB at `f_hz`.
    pub fn return_loss_db(&self, f_hz: f64) -> f64 {
        let (s11, _, _, _) = self.abcd(f_hz).to_s_params(self.z_ref);
        to_db(s11)
    }

    /// Checks the channel against a loss budget: `true` when the insertion
    /// loss at `f_hz` stays above `budget_db` (e.g. `-28.0`).
    pub fn meets_budget(&self, f_hz: f64, budget_db: f64) -> bool {
        self.insertion_loss_db(f_hz) >= budget_db
    }

    /// The margin to a loss budget at `f_hz`, dB (positive = passing).
    pub fn budget_margin_db(&self, f_hz: f64, budget_db: f64) -> f64 {
        self.insertion_loss_db(f_hz) - budget_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_inch() -> Element {
        Element::Stripline {
            layer: DiffStripline::default(),
            length_inches: 1.0,
        }
    }

    #[test]
    fn empty_channel_rejected() {
        assert_eq!(Channel::new(vec![]), Err(ChannelError::Empty));
    }

    #[test]
    fn invalid_length_rejected() {
        let e = Element::Stripline {
            layer: DiffStripline::default(),
            length_inches: -2.0,
        };
        assert!(matches!(
            Channel::new(vec![e]),
            Err(ChannelError::BadLength(_))
        ));
    }

    #[test]
    fn loss_accumulates_with_segments() {
        let short = Channel::new(vec![one_inch()]).expect("ok");
        let long = Channel::new(vec![one_inch(); 8]).expect("ok");
        let f = 1.6e10;
        let il_short = short.insertion_loss_db(f);
        let il_long = long.insertion_loss_db(f);
        assert!(il_long < il_short);
        // Matched homogeneous cascade: loss ~ linear in length.
        assert!(
            (il_long / il_short - 8.0).abs() < 0.3,
            "ratio {}",
            il_long / il_short
        );
    }

    #[test]
    fn via_adds_loss_at_high_frequency() {
        let plain = Channel::new(vec![one_inch(), one_inch()]).expect("ok");
        let with_via =
            Channel::new(vec![one_inch(), Element::Via(Via::default()), one_inch()]).expect("ok");
        let f = 2.5e10;
        assert!(with_via.insertion_loss_db(f) < plain.insertion_loss_db(f));
    }

    #[test]
    fn backdrilling_recovers_margin() {
        let stubbed = Via {
            stub_length: 35.0,
            ..Via::default()
        };
        let drilled = Via {
            stub_length: 0.0,
            ..Via::default()
        };
        let mk = |v: Via| Channel::new(vec![one_inch(), Element::Via(v), one_inch()]).expect("ok");
        let f = stubbed.stub_resonance_hz().expect("stub") * 0.9;
        assert!(
            mk(drilled).insertion_loss_db(f) > mk(stubbed).insertion_loss_db(f),
            "back-drilled channel must lose less near the stub notch"
        );
    }

    #[test]
    fn budget_check_consistency() {
        let ch = Channel::new(vec![one_inch(); 4]).expect("ok");
        let f = 1.6e10;
        let il = ch.insertion_loss_db(f);
        assert!(ch.meets_budget(f, il - 1.0));
        assert!(!ch.meets_budget(f, il + 1.0));
        assert!((ch.budget_margin_db(f, il - 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn routed_length_counts_segments_only() {
        let ch = Channel::new(vec![
            one_inch(),
            Element::Via(Via::default()),
            Element::Stripline {
                layer: DiffStripline::default(),
                length_inches: 2.5,
            },
        ])
        .expect("ok");
        assert!((ch.routed_length_inches() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn reference_impedance_tracks_first_segment() {
        let ch = Channel::new(vec![one_inch()]).expect("ok");
        assert!((ch.reference_impedance() - odd_mode_z0(&DiffStripline::default())).abs() < 1e-9);
        let via_only = Channel::new(vec![Element::Via(Via::default())]).expect("ok");
        assert_eq!(via_only.reference_impedance(), VIA_ONLY_Z_REF_OHMS);
    }

    #[test]
    fn passivity_holds_across_band() {
        let ch = Channel::new(vec![
            one_inch(),
            Element::Via(Via::default()),
            one_inch(),
            Element::Via(Via {
                stub_length: 0.0,
                ..Via::default()
            }),
            one_inch(),
        ])
        .expect("ok");
        for f in [1e8, 1e9, 8e9, 1.6e10, 3.2e10] {
            let il = ch.insertion_loss_db(f);
            assert!(il <= 1e-9, "gain at {f} Hz: {il} dB");
        }
    }
}
