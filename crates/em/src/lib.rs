//! # isop-em — coupled-stripline electromagnetic simulator
//!
//! The electromagnetic substrate of the ISOP+ reproduction: a
//! physics-based, frequency-dependent model of a **differential stripline**
//! layer in an HDI PCB stack-up, standing in for the commercial ICAT-based
//! tool used in the paper.
//!
//! The crate is organised bottom-up:
//!
//! * [`complex`] / [`units`] — numeric foundations;
//! * [`stackup`] — the 15-parameter layer description (paper Fig. 2 / Table I);
//! * [`stripline`] — closed-form impedance (Wheeler conformal mapping, edge
//!   coupling);
//! * [`roughness`] / [`rlgc`] — conductor & dielectric loss, per-unit-length
//!   line constants;
//! * [`abcd`] / [`sparams`] — frequency-domain network analysis;
//! * [`sweep`] — batched structure-of-arrays frequency sweeps
//!   ([`SweepPlan`]) with interned RLGC/ABCD prototypes,
//!   bit-identical to the scalar path at every lane width;
//! * [`fft`] — the radix-2 inverse real FFT behind the eye-diagram
//!   impulse response;
//! * [`crosstalk`] — near-end crosstalk between adjacent pairs;
//! * [`fdsolver`] — a 2-D finite-difference Laplace solver used as the
//!   approximation-free reference engine;
//! * [`simulator`] — the [`EmSimulator`] facade the
//!   optimizer consumes;
//! * [`fault`] — transient/permanent failure taxonomy
//!   ([`SimError`]), the seeded deterministic
//!   [`FaultInjector`] decorator, and the
//!   [`RetryPolicy`] the roll-out applies.
//!
//! ## Quick example
//!
//! ```
//! use isop_em::stackup::DiffStripline;
//! use isop_em::simulator::{AnalyticalSolver, EmSimulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let layer = DiffStripline::builder()
//!     .trace_width(5.0)
//!     .trace_spacing(6.0)
//!     .dk_core(3.8)
//!     .build()?;
//! let result = AnalyticalSolver::new().simulate(&layer)?;
//! println!("Z = {:.1} ohm, L = {:.3} dB/in, NEXT = {:.2} mV",
//!          result.z_diff, result.insertion_loss, result.next);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod abcd;
pub mod channel;
pub mod complex;
pub mod crosstalk;
pub mod dispersion;
pub mod eye;
pub mod fault;
pub mod fdsolver;
pub mod fft;
pub mod rlgc;
pub mod roughness;
pub mod simulator;
pub mod sparams;
pub mod stackup;
pub mod stripline;
pub mod sweep;
pub mod units;
pub mod via;

pub use fault::{
    FaultConfig, FaultInjector, PermanentFault, RetryPolicy, SimError, TransientFault,
};
pub use simulator::{AnalyticalSolver, EmSimulator, FieldSolver, SimulationResult};
pub use stackup::{DiffStripline, GeometryError, PARAM_COUNT, PARAM_NAMES};
pub use sweep::{lanes_compiled, LaneWidth, SweepPlan, SweepView};
