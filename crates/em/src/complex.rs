//! Minimal complex arithmetic for frequency-domain transmission-line work.
//!
//! A dedicated complex type (rather than an external dependency) keeps the
//! solver self-contained and lets us expose exactly the operations the RLGC /
//! ABCD machinery needs: the field operations, square root on the principal
//! branch, exponentials, and hyperbolic functions of a complex argument.
//!
//! ```
//! use isop_em::complex::Complex;
//!
//! let z = Complex::new(3.0, 4.0);
//! assert_eq!(z.abs(), 5.0);
//! let w = z * z.conj();
//! assert!((w.re - 25.0).abs() < 1e-12 && w.im.abs() < 1e-12);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The imaginary unit `j` (electrical-engineering convention).
pub const J: Complex = Complex { re: 0.0, im: 1.0 };

/// Complex zero.
pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

/// Complex one.
pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r * exp(j * theta)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude `|z|`, computed with `hypot` for numerical robustness.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|^2`, avoiding the square root of [`abs`].
    ///
    /// [`abs`]: Complex::abs
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1 / z`.
    ///
    /// Returns non-finite components when `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Principal-branch complex square root (non-negative real part).
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return ZERO;
        }
        let r = self.abs();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).max(0.0).sqrt();
        Self::new(re, if self.im < 0.0 { -im_mag } else { im_mag })
    }

    /// Complex exponential `exp(z)`.
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal-branch natural logarithm.
    pub fn ln(self) -> Self {
        Self::new(self.abs().ln(), self.arg())
    }

    /// Complex hyperbolic cosine.
    pub fn cosh(self) -> Self {
        Self::new(
            self.re.cosh() * self.im.cos(),
            self.re.sinh() * self.im.sin(),
        )
    }

    /// Complex hyperbolic sine.
    pub fn sinh(self) -> Self {
        Self::new(
            self.re.sinh() * self.im.cos(),
            self.re.cosh() * self.im.sin(),
        )
    }

    /// Complex hyperbolic tangent, computed as `sinh(z) / cosh(z)`.
    pub fn tanh(self) -> Self {
        self.sinh() / self.cosh()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Self;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        Self::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        Self::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn field_operations() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        assert_eq!(a * b, Complex::new(-4.0, -5.5));
        assert!(close(a / b * b, a, 1e-12));
    }

    #[test]
    fn division_by_self_is_one() {
        let z = Complex::new(0.3, -7.2);
        assert!(close(z / z, ONE, 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-1.0, 0.0), (3.0, -4.0), (0.0, 2.0)] {
            let z = Complex::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z, 1e-12), "sqrt failed for {z}");
            assert!(s.re >= 0.0, "principal branch violated for {z}");
        }
    }

    #[test]
    fn sqrt_of_negative_real_is_imaginary() {
        let s = Complex::real(-9.0).sqrt();
        assert!(close(s, Complex::new(0.0, 3.0), 1e-12));
    }

    #[test]
    fn exp_and_ln_roundtrip() {
        let z = Complex::new(0.5, 1.2);
        assert!(close(z.exp().ln(), z, 1e-12));
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let z = (J * std::f64::consts::PI).exp();
        assert!(close(z, Complex::real(-1.0), 1e-12));
    }

    #[test]
    fn hyperbolic_identity() {
        // cosh^2 - sinh^2 = 1 holds for complex arguments.
        let z = Complex::new(0.7, -0.3);
        let c = z.cosh();
        let s = z.sinh();
        assert!(close(c * c - s * s, ONE, 1e-12));
    }

    #[test]
    fn tanh_matches_ratio() {
        let z = Complex::new(0.2, 0.9);
        assert!(close(z.tanh(), z.sinh() / z.cosh(), 1e-12));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.8);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex::new(1.5, -2.5);
        assert_eq!(z.conj().conj(), z);
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn recip_is_inverse() {
        let z = Complex::new(-0.4, 3.1);
        assert!(close(z * z.recip(), ONE, 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }
}
