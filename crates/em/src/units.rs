//! Physical constants and unit conversions used throughout the solver.
//!
//! Stack-up geometry is specified in **mils** (1/1000 inch), matching both
//! industrial practice and the parameter tables of the ISOP+ paper, while all
//! field computations happen in SI units. These helpers keep the conversions
//! in one place so no module hand-rolls its own factors.

/// Speed of light in vacuum, m/s.
pub const C0: f64 = 299_792_458.0;

/// Vacuum permeability, H/m.
pub const MU0: f64 = 1.256_637_061_435_917_3e-6;

/// Vacuum permittivity, F/m.
pub const EPS0: f64 = 8.854_187_817e-12;

/// Metres per mil (1 mil = 1/1000 inch = 25.4 um).
pub const METERS_PER_MIL: f64 = 25.4e-6;

/// Metres per inch.
pub const METERS_PER_INCH: f64 = 0.0254;

/// Converts a length in mils to metres.
///
/// ```
/// assert!((isop_em::units::mils_to_meters(1000.0) - 0.0254).abs() < 1e-12);
/// ```
#[inline]
pub fn mils_to_meters(mils: f64) -> f64 {
    mils * METERS_PER_MIL
}

/// Converts a length in metres to mils.
#[inline]
pub fn meters_to_mils(m: f64) -> f64 {
    m / METERS_PER_MIL
}

/// Converts an attenuation constant in nepers/metre to dB/inch.
///
/// The paper reports differential insertion loss in dB/inch at 16 GHz; the
/// RLGC machinery naturally produces Np/m.
#[inline]
pub fn np_per_meter_to_db_per_inch(alpha: f64) -> f64 {
    alpha * 8.685_889_638_065_037 * METERS_PER_INCH
}

/// Converts a frequency in GHz to Hz.
#[inline]
pub fn ghz_to_hz(ghz: f64) -> f64 {
    ghz * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mil_roundtrip() {
        let x = 7.25;
        assert!((meters_to_mils(mils_to_meters(x)) - x).abs() < 1e-12);
    }

    #[test]
    fn np_to_db_inch_scale() {
        // 1 Np/m = 8.6859 dB/m = 0.2206 dB/inch.
        let v = np_per_meter_to_db_per_inch(1.0);
        assert!((v - 0.220_622).abs() < 1e-4, "got {v}");
    }

    #[test]
    fn light_speed_consistency() {
        // c0 = 1/sqrt(mu0 * eps0) must hold to solver accuracy.
        let c = 1.0 / (MU0 * EPS0).sqrt();
        assert!((c - C0).abs() / C0 < 1e-9);
    }

    #[test]
    fn ghz_conversion() {
        assert_eq!(ghz_to_hz(16.0), 1.6e10);
    }
}
