//! Differential-stripline stack-up geometry and materials (paper Fig. 2 /
//! Table I).
//!
//! A [`DiffStripline`] captures the 15 design parameters an engineer controls
//! when designing one layer of an HDI PCB stack-up: the trace geometry
//! (width, spacing, pair distance, etch factor, thickness), the dielectric
//! heights of the core and prepreg sheets, and the material properties
//! (conductivity, surface roughness, dielectric constant `Dk` and dissipation
//! factor `Df` for the trace-level resin, core, and prepreg).
//!
//! Lengths are in **mils**, conductivity in S/m, roughness as the paper's
//! dimensionless index in `[-14.5, 14]` (lower = smoother copper).
//!
//! ```
//! use isop_em::stackup::DiffStripline;
//!
//! let layer = DiffStripline::builder()
//!     .trace_width(5.0)
//!     .trace_spacing(6.0)
//!     .pair_distance(30.0)
//!     .build()?;
//! assert!(layer.plane_spacing_mils() > 0.0);
//! # Ok::<(), isop_em::stackup::GeometryError>(())
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of designable stack-up parameters (paper Table III).
pub const PARAM_COUNT: usize = 15;

/// Canonical ordering of the 15 parameters used for feature vectors,
/// datasets, and surrogate-model inputs. Matches Table III / Table IX
/// column order: `Wt St Dt Et Ht sigma_t Rt Dk_t Df_t Hc Dk_c Df_c Hp Dk_p Df_p`
/// reordered as the paper's Table III rows
/// (`Wt St Dt Et Ht Hc Hp sigma Rt Dkt Dkc Dkp Dft Dfc Dfp`).
pub const PARAM_NAMES: [&str; PARAM_COUNT] = [
    "W_t", "S_t", "D_t", "E_t", "H_t", "H_c", "H_p", "sigma_t", "R_t", "Dk_t", "Dk_c", "Dk_p",
    "Df_t", "Df_c", "Df_p",
];

/// Error returned when stack-up parameters are physically meaningless.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryError {
    field: &'static str,
    reason: &'static str,
}

impl GeometryError {
    /// The offending field name.
    pub fn field(&self) -> &'static str {
        self.field
    }
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid stack-up geometry: {} {}",
            self.field, self.reason
        )
    }
}

impl std::error::Error for GeometryError {}

/// One differential stripline layer of a PCB stack-up (paper Fig. 2).
///
/// Construct with [`DiffStripline::builder`], [`DiffStripline::from_vector`],
/// or [`DiffStripline::default`] (a typical 85 ohm mid-loss design).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffStripline {
    /// `W_t` — trace width at the base of the trapezoid, mils.
    pub trace_width: f64,
    /// `S_t` — edge-to-edge spacing between the two traces of the pair, mils.
    pub trace_spacing: f64,
    /// `D_t` — edge-to-edge distance between adjacent differential pairs, mils.
    pub pair_distance: f64,
    /// `E_t` — etch factor describing the trapezoidal cross-section
    /// (`0` = rectangular; larger values narrow the trace top).
    pub etch_factor: f64,
    /// `H_t` — trace (copper) thickness, mils.
    pub trace_height: f64,
    /// `H_c` — core laminate height below the trace, mils.
    pub core_height: f64,
    /// `H_p` — prepreg height above the trace, mils.
    pub prepreg_height: f64,
    /// `sigma_t` — trace conductivity, S/m.
    pub conductivity: f64,
    /// `R_t` — surface-roughness index in `[-14.5, 14]`; lower is smoother.
    pub roughness: f64,
    /// `Dk_t` — dielectric constant of the resin immediately around the trace.
    pub dk_trace: f64,
    /// `Dk_c` — dielectric constant of the core.
    pub dk_core: f64,
    /// `Dk_p` — dielectric constant of the prepreg.
    pub dk_prepreg: f64,
    /// `Df_t` — dissipation factor of the trace-level resin.
    pub df_trace: f64,
    /// `Df_c` — dissipation factor of the core.
    pub df_core: f64,
    /// `Df_p` — dissipation factor of the prepreg.
    pub df_prepreg: f64,
}

impl Default for DiffStripline {
    /// A representative mid-range 85 ohm-class design.
    fn default() -> Self {
        Self {
            trace_width: 5.0,
            trace_spacing: 6.0,
            pair_distance: 30.0,
            etch_factor: 0.0,
            trace_height: 1.2,
            core_height: 6.0,
            prepreg_height: 6.0,
            conductivity: 5.8e7,
            roughness: 0.0,
            dk_trace: 3.6,
            dk_core: 3.6,
            dk_prepreg: 3.6,
            df_trace: 0.008,
            df_core: 0.008,
            df_prepreg: 0.008,
        }
    }
}

impl DiffStripline {
    /// Starts a [`DiffStriplineBuilder`] seeded with the default design.
    pub fn builder() -> DiffStriplineBuilder {
        DiffStriplineBuilder::new()
    }

    /// Builds a layer from a 15-element feature vector in [`PARAM_NAMES`]
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the slice length differs from
    /// [`PARAM_COUNT`] or any value is physically invalid.
    pub fn from_vector(v: &[f64]) -> Result<Self, GeometryError> {
        if v.len() != PARAM_COUNT {
            return Err(GeometryError {
                field: "vector",
                reason: "must have exactly 15 elements",
            });
        }
        let layer = Self {
            trace_width: v[0],
            trace_spacing: v[1],
            pair_distance: v[2],
            etch_factor: v[3],
            trace_height: v[4],
            core_height: v[5],
            prepreg_height: v[6],
            conductivity: v[7],
            roughness: v[8],
            dk_trace: v[9],
            dk_core: v[10],
            dk_prepreg: v[11],
            df_trace: v[12],
            df_core: v[13],
            df_prepreg: v[14],
        };
        layer.validate()?;
        Ok(layer)
    }

    /// Serializes the layer to a 15-element vector in [`PARAM_NAMES`] order.
    pub fn to_vector(&self) -> [f64; PARAM_COUNT] {
        [
            self.trace_width,
            self.trace_spacing,
            self.pair_distance,
            self.etch_factor,
            self.trace_height,
            self.core_height,
            self.prepreg_height,
            self.conductivity,
            self.roughness,
            self.dk_trace,
            self.dk_core,
            self.dk_prepreg,
            self.df_trace,
            self.df_core,
            self.df_prepreg,
        ]
    }

    /// Validates physical plausibility of every field.
    ///
    /// # Errors
    ///
    /// Returns the first [`GeometryError`] found. Bounds are deliberately
    /// looser than any search space in the paper — the solver accepts any
    /// physically meaningful layer, while search-space membership is enforced
    /// by the optimizer.
    pub fn validate(&self) -> Result<(), GeometryError> {
        fn pos(field: &'static str, v: f64) -> Result<(), GeometryError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(GeometryError {
                    field,
                    reason: "must be positive and finite",
                })
            }
        }
        pos("trace_width", self.trace_width)?;
        pos("trace_spacing", self.trace_spacing)?;
        pos("pair_distance", self.pair_distance)?;
        pos("trace_height", self.trace_height)?;
        pos("core_height", self.core_height)?;
        pos("prepreg_height", self.prepreg_height)?;
        pos("conductivity", self.conductivity)?;
        if !(self.etch_factor.is_finite() && (0.0..=1.0).contains(&self.etch_factor)) {
            return Err(GeometryError {
                field: "etch_factor",
                reason: "must lie in [0, 1]",
            });
        }
        if !self.roughness.is_finite() || !(-20.0..=20.0).contains(&self.roughness) {
            return Err(GeometryError {
                field: "roughness",
                reason: "must lie in [-20, 20]",
            });
        }
        for (field, dk) in [
            ("dk_trace", self.dk_trace),
            ("dk_core", self.dk_core),
            ("dk_prepreg", self.dk_prepreg),
        ] {
            if !dk.is_finite() || !(1.0..=12.0).contains(&dk) {
                return Err(GeometryError {
                    field,
                    reason: "dielectric constant must lie in [1, 12]",
                });
            }
        }
        for (field, df) in [
            ("df_trace", self.df_trace),
            ("df_core", self.df_core),
            ("df_prepreg", self.df_prepreg),
        ] {
            if !df.is_finite() || !(0.0..=0.5).contains(&df) {
                return Err(GeometryError {
                    field,
                    reason: "dissipation factor must lie in [0, 0.5]",
                });
            }
        }
        if self.etch_factor * self.trace_height >= self.trace_width / 2.0 {
            return Err(GeometryError {
                field: "etch_factor",
                reason: "would collapse the trace top width to zero",
            });
        }
        Ok(())
    }

    /// Ground-plane to ground-plane spacing `b = H_c + H_t + H_p`, mils.
    #[inline]
    pub fn plane_spacing_mils(&self) -> f64 {
        self.core_height + self.trace_height + self.prepreg_height
    }

    /// Mean trapezoidal trace width `W_t - E_t * H_t`, mils.
    ///
    /// The etch factor narrows the trace top by `2 * E_t * H_t`; the
    /// electrically effective width is well approximated by the mid-height
    /// width.
    #[inline]
    pub fn effective_width_mils(&self) -> f64 {
        self.trace_width - self.etch_factor * self.trace_height
    }

    /// Height-weighted effective dielectric constant seen by the stripline.
    ///
    /// Stripline fields live almost entirely in the dielectric; the core and
    /// prepreg contribute in proportion to their heights and the trace-level
    /// resin in proportion to the copper thickness it embeds.
    pub fn effective_dk(&self) -> f64 {
        let b = self.plane_spacing_mils();
        (self.core_height * self.dk_core
            + self.prepreg_height * self.dk_prepreg
            + self.trace_height * self.dk_trace)
            / b
    }

    /// Height-weighted effective dissipation factor (loss tangent).
    pub fn effective_df(&self) -> f64 {
        let b = self.plane_spacing_mils();
        // Weight each sheet by the portion of electric-field energy it holds:
        // height share scaled by its Dk (energy density is proportional to
        // eps in a series-stacked dielectric under common field).
        let num = self.core_height * self.dk_core * self.df_core
            + self.prepreg_height * self.dk_prepreg * self.df_prepreg
            + self.trace_height * self.dk_trace * self.df_trace;
        let den = self.core_height * self.dk_core
            + self.prepreg_height * self.dk_prepreg
            + self.trace_height * self.dk_trace;
        debug_assert!(b > 0.0);
        num / den
    }

    /// RMS copper surface roughness in micrometres derived from the paper's
    /// roughness index `R_t in [-14.5, 14]`.
    ///
    /// The index is mapped affinely onto `[0, 3] um`: `-14.5` is perfectly
    /// smooth rolled copper, `14` is very rough reverse-treated foil. The
    /// mapping direction matches Table IX, where expert designs pick
    /// `R_t = -14.5` to minimize loss.
    pub fn roughness_rms_um(&self) -> f64 {
        ((self.roughness + 14.5) / 28.5 * 3.0).max(0.0)
    }
}

/// Builder for [`DiffStripline`] with validation at `build`.
#[derive(Debug, Clone)]
pub struct DiffStriplineBuilder {
    layer: DiffStripline,
}

impl Default for DiffStriplineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: f64) -> Self {
                self.layer.$name = value;
                self
            }
        )+
    };
}

impl DiffStriplineBuilder {
    /// Creates a builder seeded with [`DiffStripline::default`].
    pub fn new() -> Self {
        Self {
            layer: DiffStripline::default(),
        }
    }

    builder_setters! {
        /// Sets `W_t` (mils).
        trace_width,
        /// Sets `S_t` (mils).
        trace_spacing,
        /// Sets `D_t` (mils).
        pair_distance,
        /// Sets `E_t`.
        etch_factor,
        /// Sets `H_t` (mils).
        trace_height,
        /// Sets `H_c` (mils).
        core_height,
        /// Sets `H_p` (mils).
        prepreg_height,
        /// Sets `sigma_t` (S/m).
        conductivity,
        /// Sets `R_t` (index in [-14.5, 14]).
        roughness,
        /// Sets `Dk_t`.
        dk_trace,
        /// Sets `Dk_c`.
        dk_core,
        /// Sets `Dk_p`.
        dk_prepreg,
        /// Sets `Df_t`.
        df_trace,
        /// Sets `Df_c`.
        df_core,
        /// Sets `Df_p`.
        df_prepreg,
    }

    /// Finalizes the builder.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any parameter is physically invalid.
    pub fn build(self) -> Result<DiffStripline, GeometryError> {
        self.layer.validate()?;
        Ok(self.layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        DiffStripline::default().validate().expect("default valid");
    }

    #[test]
    fn vector_roundtrip() {
        let layer = DiffStripline::default();
        let v = layer.to_vector();
        let back = DiffStripline::from_vector(&v).expect("roundtrip");
        assert_eq!(layer, back);
    }

    #[test]
    fn wrong_vector_length_rejected() {
        assert!(DiffStripline::from_vector(&[1.0; 3]).is_err());
    }

    #[test]
    fn builder_sets_fields() {
        let layer = DiffStripline::builder()
            .trace_width(4.0)
            .dk_core(3.1)
            .build()
            .expect("valid");
        assert_eq!(layer.trace_width, 4.0);
        assert_eq!(layer.dk_core, 3.1);
        // Untouched fields keep the default.
        assert_eq!(layer.trace_spacing, DiffStripline::default().trace_spacing);
    }

    #[test]
    fn negative_width_rejected() {
        let err = DiffStripline::builder()
            .trace_width(-1.0)
            .build()
            .expect_err("must fail");
        assert_eq!(err.field(), "trace_width");
    }

    #[test]
    fn absurd_dk_rejected() {
        assert!(DiffStripline::builder().dk_core(0.5).build().is_err());
        assert!(DiffStripline::builder().dk_core(99.0).build().is_err());
    }

    #[test]
    fn etch_collapse_rejected() {
        // 0.9 etch on a thick trace with a thin width pinches the top off.
        let err = DiffStripline::builder()
            .trace_width(2.0)
            .trace_height(3.0)
            .etch_factor(0.9)
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn effective_dk_is_weighted_mean() {
        let layer = DiffStripline::builder()
            .core_height(4.0)
            .prepreg_height(4.0)
            .trace_height(2.0)
            .dk_core(2.0)
            .dk_prepreg(4.0)
            .dk_trace(3.0)
            .build()
            .expect("valid");
        let dk = layer.effective_dk();
        assert!((dk - (4.0 * 2.0 + 4.0 * 4.0 + 2.0 * 3.0) / 10.0).abs() < 1e-12);
        assert!(dk > 2.0 && dk < 4.0);
    }

    #[test]
    fn effective_df_between_extremes() {
        let layer = DiffStripline::builder()
            .df_core(0.001)
            .df_prepreg(0.02)
            .df_trace(0.01)
            .build()
            .expect("valid");
        let df = layer.effective_df();
        assert!(df > 0.001 && df < 0.02);
    }

    #[test]
    fn roughness_mapping_endpoints() {
        let smooth = DiffStripline::builder().roughness(-14.5).build().unwrap();
        let rough = DiffStripline::builder().roughness(14.0).build().unwrap();
        assert!(smooth.roughness_rms_um().abs() < 1e-12);
        assert!((rough.roughness_rms_um() - 3.0).abs() < 1e-12);
        assert!(rough.roughness_rms_um() > smooth.roughness_rms_um());
    }

    #[test]
    fn effective_width_shrinks_with_etch() {
        let square = DiffStripline::builder().etch_factor(0.0).build().unwrap();
        let etched = DiffStripline::builder().etch_factor(0.3).build().unwrap();
        assert!(etched.effective_width_mils() < square.effective_width_mils());
    }

    #[test]
    fn param_names_count_matches() {
        assert_eq!(PARAM_NAMES.len(), PARAM_COUNT);
        assert_eq!(DiffStripline::default().to_vector().len(), PARAM_COUNT);
    }
}
