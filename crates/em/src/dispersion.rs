//! Causal wideband-Debye dielectric dispersion (Djordjevic–Sarkar /
//! Svensson–Dermer model).
//!
//! A dielectric with a frequency-independent loss tangent would violate the
//! Kramers–Kronig relations; real laminates show a slowly falling `Dk(f)`
//! and nearly flat `Df(f)` across decades. The wideband Debye model captures
//! both with a log-uniform distribution of relaxation poles:
//!
//! `eps(f) = eps_inf + (delta_eps / (m2 - m1)) * log10((10^m2 + j f)/(10^m1 + j f))`
//!
//! This module is an **extension** over the paper's (frequency-point) loss
//! model: the headline experiments evaluate `L` at a single 16 GHz point
//! where the non-dispersive model is calibrated, while sweeps that need
//! causal broadband behaviour can use [`dispersive_permittivity`].

use crate::complex::Complex;
use serde::{Deserialize, Serialize};

/// Wideband-Debye model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WidebandDebye {
    /// High-frequency (optical) permittivity `eps_inf`.
    pub eps_inf: f64,
    /// Total dispersion magnitude `delta_eps` spread across the pole band.
    pub delta_eps: f64,
    /// log10 of the lowest pole frequency (Hz).
    pub m1: f64,
    /// log10 of the highest pole frequency (Hz).
    pub m2: f64,
}

impl WidebandDebye {
    /// Fits the model so that at the reference frequency `f_ref` the real
    /// permittivity equals `dk_ref` and the loss tangent equals `df_ref`,
    /// with the standard 1 kHz – 1 THz pole band.
    ///
    /// Uses the small-angle identity of the wideband Debye model:
    /// `tan_delta ~= delta_eps * (pi / (2 ln 10)) / eps'(f)` inside the band.
    ///
    /// # Panics
    ///
    /// Panics unless `dk_ref > 1`, `df_ref >= 0`, and `f_ref` lies inside
    /// the pole band.
    pub fn fit(dk_ref: f64, df_ref: f64, f_ref: f64) -> Self {
        assert!(dk_ref > 1.0, "Dk must exceed vacuum");
        assert!(df_ref >= 0.0, "Df must be non-negative");
        let (m1, m2) = (3.0, 12.0);
        assert!(
            f_ref > 10f64.powf(m1) && f_ref < 10f64.powf(m2),
            "reference frequency must lie inside the pole band"
        );
        // delta_eps from the loss tangent at the reference point.
        let k = std::f64::consts::PI / (2.0 * std::f64::consts::LN_10) / (m2 - m1);
        let delta_eps = df_ref * dk_ref / (k + df_ref * 0.5_f64.log10().abs()).max(1e-12);
        let model = Self {
            eps_inf: 0.0,
            delta_eps,
            m1,
            m2,
        };
        // Solve eps_inf so the real part matches dk_ref at f_ref.
        let real_at_ref = model.permittivity(f_ref).re;
        Self {
            eps_inf: dk_ref - real_at_ref,
            ..model
        }
    }

    /// Complex relative permittivity `eps' - j eps''` at frequency `f_hz`.
    pub fn permittivity(&self, f_hz: f64) -> Complex {
        let jf = Complex::new(0.0, f_hz);
        let hi = Complex::real(10f64.powf(self.m2)) + jf;
        let lo = Complex::real(10f64.powf(self.m1)) + jf;
        let log10_ratio = (hi / lo).ln() / std::f64::consts::LN_10;
        Complex::real(self.eps_inf) + log10_ratio * (self.delta_eps / (self.m2 - self.m1))
    }

    /// Real permittivity `Dk(f)`.
    pub fn dk(&self, f_hz: f64) -> f64 {
        self.permittivity(f_hz).re
    }

    /// Loss tangent `Df(f) = eps'' / eps'`.
    pub fn df(&self, f_hz: f64) -> f64 {
        let e = self.permittivity(f_hz);
        -e.im / e.re
    }
}

/// Convenience: complex permittivity of a laminate specified by its
/// datasheet `(Dk, Df)` at `f_ref`, evaluated at `f_hz`.
pub fn dispersive_permittivity(dk_ref: f64, df_ref: f64, f_ref: f64, f_hz: f64) -> Complex {
    WidebandDebye::fit(dk_ref, df_ref, f_ref).permittivity(f_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    const F_REF: f64 = 1e9;

    #[test]
    fn matches_datasheet_at_reference() {
        let m = WidebandDebye::fit(3.8, 0.008, F_REF);
        assert!(
            (m.dk(F_REF) - 3.8).abs() < 1e-9,
            "Dk at ref: {}",
            m.dk(F_REF)
        );
        let df = m.df(F_REF);
        assert!((df - 0.008).abs() < 0.004, "Df at ref: {df}");
    }

    #[test]
    fn dk_decreases_with_frequency() {
        let m = WidebandDebye::fit(4.2, 0.015, F_REF);
        let dk1 = m.dk(1e8);
        let dk2 = m.dk(1e9);
        let dk3 = m.dk(1.6e10);
        let dk4 = m.dk(4e10);
        assert!(
            dk1 > dk2 && dk2 > dk3 && dk3 > dk4,
            "{dk1} {dk2} {dk3} {dk4}"
        );
    }

    #[test]
    fn df_is_nearly_flat_in_band() {
        let m = WidebandDebye::fit(3.8, 0.01, F_REF);
        let df_lo = m.df(1e8);
        let df_hi = m.df(2e10);
        assert!(
            (df_lo - df_hi).abs() / df_lo.max(df_hi) < 0.35,
            "Df should be roughly flat: {df_lo} vs {df_hi}"
        );
    }

    #[test]
    fn lossless_material_has_no_dispersion() {
        let m = WidebandDebye::fit(3.0, 0.0, F_REF);
        assert!((m.dk(1e8) - m.dk(4e10)).abs() < 1e-9);
        assert!(m.df(1e10).abs() < 1e-12);
    }

    #[test]
    fn higher_df_means_stronger_dispersion() {
        let low = WidebandDebye::fit(3.8, 0.002, F_REF);
        let high = WidebandDebye::fit(3.8, 0.02, F_REF);
        let slope = |m: &WidebandDebye| m.dk(1e8) - m.dk(4e10);
        assert!(
            slope(&high) > slope(&low),
            "loss and dispersion are linked (causality)"
        );
    }

    #[test]
    fn imaginary_part_is_negative_convention() {
        // eps'' carried as a negative imaginary part (lossy, e^{jwt}).
        let e = dispersive_permittivity(3.8, 0.01, F_REF, 1.6e10);
        assert!(e.re > 1.0);
        assert!(e.im < 0.0);
    }
}
