//! Fault model for the EM simulator stack: typed transient/permanent
//! failures, a seeded deterministic fault injector, and the retry policy
//! the stage-3 roll-out applies.
//!
//! Production EM tools fail in two distinct ways and the roll-out must
//! treat them differently:
//!
//! * **Transient** faults (license contention, mesh non-convergence,
//!   timeouts) are worth retrying — the same design may well succeed on
//!   the next attempt.
//! * **Permanent** faults (physically invalid geometry, an unsolvable
//!   mesh) will fail identically forever; retrying wastes budget and the
//!   scheduler should instead *top up* from the surrogate-ranked pool.
//!
//! [`FaultInjector`] wraps any [`EmSimulator`] and injects synthetic
//! transient/permanent faults from a seeded stream. Determinism contract:
//! every fault decision is a pure function of `(fault seed, design
//! identity, attempt number)` — **never** of call order or thread
//! interleaving — so a roll-out at `threads = 1` observes bit-identical
//! faults, retries, and outcomes to the same roll-out at `threads = N`.
//! The design identity is an FNV-1a hash over the bit patterns of the
//! design's 15 parameter values; roll-out candidates are grid-canonical
//! (snapped to grid levels before simulation), so equal value bits are
//! equivalent to equal grid indices.
//!
//! [`RetryPolicy`] bounds attempts and shapes an exponential backoff whose
//! waits are *simulated* time: the pipeline charges them to the telemetry
//! EM-seconds ledger instead of sleeping, mirroring how the paper accounts
//! simulator wall-clock without running the commercial tool.

use crate::simulator::{EmSimulator, SimulationResult};
use crate::stackup::{DiffStripline, GeometryError};
use isop_telemetry::{Counter, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// A simulator failure worth retrying: the same design may succeed on the
/// next attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransientFault {
    /// All solver licenses were checked out.
    LicenseContention,
    /// The adaptive mesh failed to converge within its iteration budget.
    MeshNonConvergence,
    /// The solver exceeded its wall-clock limit.
    Timeout,
}

impl fmt::Display for TransientFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransientFault::LicenseContention => write!(f, "license contention"),
            TransientFault::MeshNonConvergence => write!(f, "mesh non-convergence"),
            TransientFault::Timeout => write!(f, "solver timeout"),
        }
    }
}

/// A simulator failure that will recur on every attempt for the same
/// design; retrying is pointless.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermanentFault {
    /// The layer is physically invalid (fail-fast pre-flight validation;
    /// no solver time is spent).
    Geometry(GeometryError),
    /// The solver deterministically cannot solve this design (e.g. a
    /// degenerate mesh); injected by [`FaultInjector`].
    Unsolvable,
}

impl fmt::Display for PermanentFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermanentFault::Geometry(e) => write!(f, "invalid geometry: {e}"),
            PermanentFault::Unsolvable => write!(f, "unsolvable design"),
        }
    }
}

/// The error type of [`EmSimulator::simulate`]: every failure is classified
/// transient or permanent so the roll-out scheduler can decide between
/// retry and top-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Retryable failure.
    Transient(TransientFault),
    /// Unretryable failure.
    Permanent(PermanentFault),
}

impl SimError {
    /// Whether a retry of the same design could succeed.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::Transient(_))
    }

    /// Whether every future attempt of the same design will fail too.
    #[must_use]
    pub fn is_permanent(&self) -> bool {
        matches!(self, SimError::Permanent(_))
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Transient(t) => write!(f, "transient EM failure: {t}"),
            SimError::Permanent(p) => write!(f, "permanent EM failure: {p}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<GeometryError> for SimError {
    fn from(e: GeometryError) -> Self {
        SimError::Permanent(PermanentFault::Geometry(e))
    }
}

/// Bounded-retry schedule for transient EM failures.
///
/// Attempt 1 carries no wait; before attempt `k >= 2` the roll-out charges
/// `min(cap, base * factor^(k-2))` *simulated* seconds of backoff to the
/// EM ledger (no real sleep). With the defaults (3 attempts, 5 s base,
/// factor 2, 60 s cap) a design that succeeds on its third attempt costs
/// two extra solver runs plus `5 + 10 = 15` seconds of backoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum simulation attempts per design (including the first);
    /// clamped to at least 1.
    pub max_attempts: u32,
    /// Simulated wait before the first retry, seconds.
    pub backoff_base_seconds: f64,
    /// Multiplier applied per further retry.
    pub backoff_factor: f64,
    /// Ceiling on any single simulated wait, seconds.
    pub backoff_cap_seconds: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_seconds: 5.0,
            backoff_factor: 2.0,
            backoff_cap_seconds: 60.0,
        }
    }
}

impl RetryPolicy {
    /// Effective attempt budget (never below 1).
    #[must_use]
    pub fn attempt_budget(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Simulated backoff charged before attempt `attempt` (1-based);
    /// attempt 1 is free.
    #[must_use]
    pub fn backoff_before(&self, attempt: u32) -> f64 {
        if attempt < 2 {
            return 0.0;
        }
        let wait = self.backoff_base_seconds * self.backoff_factor.powi(attempt as i32 - 2);
        wait.min(self.backoff_cap_seconds)
    }

    /// Total simulated backoff accrued by a design that ran `attempts`
    /// attempts (the sum of `backoff_before(2..=attempts)`).
    #[must_use]
    pub fn total_backoff(&self, attempts: u32) -> f64 {
        let mut total = 0.0;
        for k in 2..=attempts {
            total += self.backoff_before(k);
        }
        total
    }

    /// Retries still available to a flight that has already run `attempts`
    /// attempts — the async scheduler's re-enqueue predicate. Zero means
    /// the next transient failure is terminal (the design counts as a
    /// permanent failure and the scheduler draws a top-up instead).
    #[must_use]
    pub fn retries_remaining(&self, attempts: u32) -> u32 {
        self.attempt_budget().saturating_sub(attempts)
    }
}

/// Fault rates and seed for a [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that any single attempt fails transiently, in `[0, 1]`.
    pub transient_rate: f64,
    /// Probability that a design is *doomed* — every attempt fails
    /// permanently — in `[0, 1]`. Rolled once per design, not per attempt.
    pub permanent_rate: f64,
    /// Seed of the fault stream. Two injectors with equal seeds and rates
    /// inject identical faults for identical designs.
    pub seed: u64,
}

impl FaultConfig {
    /// A configuration that injects nothing; wrapping with it is a
    /// bit-exact no-op (verified by the integration suite and bench gate).
    #[must_use]
    pub fn disabled(seed: u64) -> Self {
        Self {
            transient_rate: 0.0,
            permanent_rate: 0.0,
            seed,
        }
    }

    /// Whether this configuration can ever inject a fault.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.transient_rate > 0.0 || self.permanent_rate > 0.0
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a mixed word to the unit interval `[0, 1)` using the top 53 bits.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

const PERMANENT_SALT: u64 = 0x5045_524d_414e_4546; // "PERMANEF"
const TRANSIENT_SALT: u64 = 0x5452_414e_5349_454e; // "TRANSIEN"

/// Deterministic fault-injecting decorator over any [`EmSimulator`].
///
/// Each fault decision hashes `(seed, design key, attempt)` — the design
/// key is an FNV-1a over the design's parameter bit patterns, and the
/// attempt number is tracked per design key — so the fault stream is a
/// property of the *design*, never of call order or thread interleaving.
/// A doomed design (permanent roll below `permanent_rate`) fails every
/// attempt; transient faults are rolled independently per attempt.
///
/// Injected failures tick `em.sim.attempted` and `em.sim.failed` on the
/// injector's telemetry handle (the inner engine is not called), keeping
/// the invariant `attempted == succeeded + failed` across the stack.
#[derive(Debug)]
pub struct FaultInjector<S> {
    inner: S,
    config: FaultConfig,
    telemetry: Telemetry,
    /// Attempts observed so far per design key. Designs retry serially
    /// (one worker owns a design's whole retry chain), so the per-design
    /// sequence is deterministic even though the map is shared.
    attempts: Mutex<HashMap<u64, u32>>,
}

impl<S: EmSimulator> FaultInjector<S> {
    /// Wraps `inner` with the given fault stream.
    pub fn new(inner: S, config: FaultConfig) -> Self {
        Self {
            inner,
            config,
            telemetry: Telemetry::disabled(),
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// Attaches a telemetry handle for the attempted/failed counters of
    /// *injected* faults. Pass the same handle the inner engine records
    /// to, so the ledger stays consistent.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Call-order-independent identity of a design: FNV-1a over the bit
    /// patterns of its 15 parameters. Roll-out designs are grid-canonical,
    /// so equal bits ≡ equal grid indices.
    #[must_use]
    pub fn design_key(layer: &DiffStripline) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in layer.to_vector() {
            for b in v.to_bits().to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Whether `layer` is doomed: its per-design permanent roll fires.
    /// Independent of the attempt number so a doomed design fails forever.
    #[must_use]
    pub fn is_doomed(&self, layer: &DiffStripline) -> bool {
        if self.config.permanent_rate <= 0.0 {
            return false;
        }
        let key = Self::design_key(layer);
        unit(mix64(self.config.seed ^ PERMANENT_SALT ^ mix64(key))) < self.config.permanent_rate
    }

    /// Whether attempt number `attempt` (1-based) of `layer` fails
    /// transiently, and with which fault.
    fn transient_fault(&self, key: u64, attempt: u32) -> Option<TransientFault> {
        if self.config.transient_rate <= 0.0 {
            return None;
        }
        let word = mix64(self.config.seed ^ TRANSIENT_SALT ^ mix64(key) ^ u64::from(attempt));
        if unit(word) >= self.config.transient_rate {
            return None;
        }
        Some(match mix64(word) % 3 {
            0 => TransientFault::LicenseContention,
            1 => TransientFault::MeshNonConvergence,
            _ => TransientFault::Timeout,
        })
    }
}

impl<S: EmSimulator> EmSimulator for FaultInjector<S> {
    fn simulate(&self, layer: &DiffStripline) -> Result<SimulationResult, SimError> {
        if !self.config.is_active() {
            // Inactive injector is a transparent pass-through: no hashing,
            // no attempt bookkeeping, bit-identical to the bare engine.
            return self.inner.simulate(layer);
        }
        let key = Self::design_key(layer);
        let attempt = {
            let mut map = self.attempts.lock().expect("fault attempt map lock");
            let slot = map.entry(key).or_insert(0);
            *slot += 1;
            *slot
        };
        if self.is_doomed(layer) {
            self.telemetry.incr(Counter::EmSimAttempted);
            self.telemetry.incr(Counter::EmSimFailed);
            return Err(SimError::Permanent(PermanentFault::Unsolvable));
        }
        if let Some(fault) = self.transient_fault(key, attempt) {
            self.telemetry.incr(Counter::EmSimAttempted);
            self.telemetry.incr(Counter::EmSimFailed);
            return Err(SimError::Transient(fault));
        }
        self.inner.simulate(layer)
    }

    fn nominal_seconds(&self) -> f64 {
        self.inner.nominal_seconds()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::AnalyticalSolver;

    fn layer_with_width(w: f64) -> DiffStripline {
        DiffStripline {
            trace_width: w,
            ..DiffStripline::default()
        }
    }

    #[test]
    fn sim_error_classifies_and_displays() {
        let t = SimError::Transient(TransientFault::Timeout);
        assert!(t.is_transient() && !t.is_permanent());
        assert!(t.to_string().contains("timeout"));
        let p = SimError::Permanent(PermanentFault::Unsolvable);
        assert!(p.is_permanent() && !p.is_transient());
        assert!(p.to_string().contains("unsolvable"));
        let geom = layer_with_width(-1.0).validate().expect_err("invalid");
        let g: SimError = geom.into();
        assert!(g.is_permanent());
        assert!(g.to_string().contains("trace_width"));
    }

    #[test]
    fn retries_remaining_counts_down_to_zero() {
        let p = RetryPolicy::default(); // attempt budget 3
        assert_eq!(p.retries_remaining(0), 3);
        assert_eq!(p.retries_remaining(1), 2);
        assert_eq!(p.retries_remaining(3), 0);
        assert_eq!(p.retries_remaining(99), 0);
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before(1), 0.0);
        assert_eq!(p.backoff_before(2), 5.0);
        assert_eq!(p.backoff_before(3), 10.0);
        assert_eq!(p.total_backoff(1), 0.0);
        assert_eq!(p.total_backoff(3), 15.0);
        let capped = RetryPolicy {
            max_attempts: 10,
            backoff_cap_seconds: 12.0,
            ..RetryPolicy::default()
        };
        assert_eq!(capped.backoff_before(4), 12.0, "20 s capped to 12 s");
        let degenerate = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(degenerate.attempt_budget(), 1);
    }

    #[test]
    fn rate_zero_injector_is_transparent() {
        let layer = DiffStripline::default();
        let bare = AnalyticalSolver::new().simulate(&layer).expect("valid");
        let wrapped = FaultInjector::new(AnalyticalSolver::new(), FaultConfig::disabled(7));
        let via = wrapped.simulate(&layer).expect("valid");
        assert_eq!(
            bare.to_array().map(f64::to_bits),
            via.to_array().map(f64::to_bits)
        );
        assert_eq!(
            wrapped.nominal_seconds(),
            AnalyticalSolver::new().nominal_seconds()
        );
        assert_eq!(wrapped.name(), "analytical");
    }

    #[test]
    fn fault_stream_is_keyed_by_design_not_call_order() {
        let cfg = FaultConfig {
            transient_rate: 0.5,
            permanent_rate: 0.2,
            seed: 42,
        };
        let layers: Vec<DiffStripline> = (0..24)
            .map(|i| layer_with_width(4.0 + 0.25 * f64::from(i)))
            .collect();
        let record = |order: &[usize]| -> Vec<Vec<bool>> {
            let inj = FaultInjector::new(AnalyticalSolver::new(), cfg);
            // Two attempts per design, issued in the given design order.
            let mut per_design = vec![Vec::new(); layers.len()];
            for round in 0..2 {
                let _ = round;
                for &i in order {
                    per_design[i].push(inj.simulate(&layers[i]).is_ok());
                }
            }
            per_design
        };
        let forward: Vec<usize> = (0..layers.len()).collect();
        let reverse: Vec<usize> = (0..layers.len()).rev().collect();
        assert_eq!(
            record(&forward),
            record(&reverse),
            "per-design outcome sequences must not depend on call order"
        );
    }

    #[test]
    fn doomed_designs_fail_every_attempt() {
        let cfg = FaultConfig {
            transient_rate: 0.0,
            permanent_rate: 0.4,
            seed: 3,
        };
        let inj = FaultInjector::new(AnalyticalSolver::new(), cfg);
        let mut saw_doomed = false;
        let mut saw_clean = false;
        for i in 0..32 {
            let layer = layer_with_width(4.0 + 0.2 * f64::from(i));
            let doomed = inj.is_doomed(&layer);
            saw_doomed |= doomed;
            saw_clean |= !doomed;
            for _ in 0..3 {
                let out = inj.simulate(&layer);
                if doomed {
                    assert_eq!(out, Err(SimError::Permanent(PermanentFault::Unsolvable)));
                } else {
                    assert!(out.is_ok());
                }
            }
        }
        assert!(saw_doomed && saw_clean, "rate 0.4 over 32 designs must mix");
    }

    #[test]
    fn injected_faults_keep_counter_invariant() {
        let tele = Telemetry::enabled();
        let cfg = FaultConfig {
            transient_rate: 0.6,
            permanent_rate: 0.2,
            seed: 11,
        };
        let inj = FaultInjector::new(AnalyticalSolver::new().with_telemetry(tele.clone()), cfg)
            .with_telemetry(tele.clone());
        for i in 0..20 {
            let _ = inj.simulate(&layer_with_width(4.0 + 0.3 * f64::from(i)));
        }
        let attempted = tele.counter(Counter::EmSimAttempted);
        let succeeded = tele.counter(Counter::EmSimSucceeded);
        let failed = tele.counter(Counter::EmSimFailed);
        assert_eq!(attempted, 20);
        assert_eq!(attempted, succeeded + failed);
        assert!(failed > 0, "rates 0.6/0.2 over 20 designs must inject");
    }

    #[test]
    fn transient_faults_vary_by_attempt() {
        let cfg = FaultConfig {
            transient_rate: 0.5,
            permanent_rate: 0.0,
            seed: 9,
        };
        let inj = FaultInjector::new(AnalyticalSolver::new(), cfg);
        // With per-attempt rolls at rate 0.5, some design must flip from
        // failure to success within its first few attempts.
        let mut saw_recovery = false;
        for i in 0..32 {
            let layer = layer_with_width(4.0 + 0.2 * f64::from(i));
            let first = inj.simulate(&layer).is_ok();
            let second = inj.simulate(&layer).is_ok();
            if !first && second {
                saw_recovery = true;
                break;
            }
        }
        assert!(saw_recovery, "transient faults must clear on retry");
    }
}
