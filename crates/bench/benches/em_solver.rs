//! Micro-benchmark: analytical closed-form solve vs 2-D finite-difference
//! field solve — the speed gap that motivates using the analytical engine
//! for dataset generation and the FD engine only for verification.

use criterion::{criterion_group, criterion_main, Criterion};
use isop_em::fdsolver::{solve_odd_mode, FdConfig};
use isop_em::simulator::{AnalyticalSolver, EmSimulator};
use isop_em::stackup::DiffStripline;
use std::hint::black_box;

fn bench_em(c: &mut Criterion) {
    let layer = DiffStripline::default();
    let analytical = AnalyticalSolver::new();

    c.bench_function("analytical_full_simulation", |b| {
        b.iter(|| analytical.simulate(black_box(&layer)).expect("valid"))
    });

    let coarse = FdConfig {
        cells_per_mil: 1.0,
        tolerance: 1e-4,
        ..FdConfig::default()
    };
    let mut g = c.benchmark_group("fd_solver");
    g.sample_size(10);
    g.bench_function("fd_odd_mode_coarse", |b| {
        b.iter(|| solve_odd_mode(black_box(&layer), &coarse))
    });
    g.finish();
}

criterion_group!(benches, bench_em);
criterion_main!(benches);
