//! Micro-benchmark: the evaluation-cache fast path. A probe that hits must
//! be orders of magnitude cheaper than the accurate simulation it elides,
//! and the miss path (key derivation + lookup) must stay negligible next
//! to one `AnalyticalSolver` run.

use criterion::{criterion_group, criterion_main, Criterion};
use isop::evalcache::{CachedSim, EvalCache};
use isop_em::simulator::{AnalyticalSolver, EmSimulator};
use isop_em::stackup::DiffStripline;
use isop_telemetry::Telemetry;
use std::hint::black_box;

fn bench_evalcache(c: &mut Criterion) {
    let space = isop::spaces::s1();
    let design = space.round_to_grid(&isop::manual::MANUAL_VECTOR);
    let solver = AnalyticalSolver::new();
    let sim = solver
        .simulate(&DiffStripline::from_vector(&design).expect("valid"))
        .expect("simulates");
    let tele = Telemetry::disabled();

    let warm = EvalCache::new();
    let key = EvalCache::key_for(&space, &design).expect("on grid");
    warm.insert(
        key,
        CachedSim {
            result: sim,
            attempts: 1,
        },
    );
    let cold = EvalCache::new();

    let mut g = c.benchmark_group("evalcache");
    g.bench_function("evalcache_hit", |b| {
        b.iter(|| warm.probe(black_box(&space), black_box(&design), &tele))
    });
    g.bench_function("evalcache_miss", |b| {
        b.iter(|| cold.probe(black_box(&space), black_box(&design), &tele))
    });
    // The work a hit elides, for scale.
    g.bench_function("analytical_simulate", |b| {
        b.iter(|| {
            let layer = DiffStripline::from_vector(black_box(&design)).expect("valid");
            solver.simulate(&layer).expect("simulates")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_evalcache);
criterion_main!(benches);
