//! Micro-benchmark: binary encode/decode of the 73-bit `S_1` space
//! (Eqs. 4–6) — this sits on the hot path of every Harmonica sample.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let space = isop::spaces::s1();
    let mut rng = StdRng::seed_from_u64(0);
    let levels: Vec<usize> = space
        .cardinalities()
        .iter()
        .map(|&n| rng.gen_range(0..n))
        .collect();
    let bits = space.encode_levels(&levels);

    c.bench_function("s1_encode_levels", |b| {
        b.iter(|| space.encode_levels(black_box(&levels)))
    });
    c.bench_function("s1_decode_values", |b| {
        b.iter(|| space.decode_values(black_box(&bits)).expect("valid"))
    });
    c.bench_function("s1_round_to_grid", |b| {
        let values = space.values_of_levels(&levels);
        b.iter(|| space.round_to_grid(black_box(&values)))
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
