//! Micro-benchmark: MLP minibatch backprop through the data-parallel
//! engine. Dropout masks are pre-drawn serially per batch, 16-row chunks
//! run forward/backward in parallel, and gradients reduce in chunk order —
//! run with e.g. `THREADS=4 cargo bench` to compare widths; the fits are
//! bit-identical at every width (asserted once before timing).

use criterion::{criterion_group, criterion_main, Criterion};
use isop::data::generate_dataset;
use isop::exec::Parallelism;
use isop_em::simulator::AnalyticalSolver;
use isop_ml::models::{Mlp, MlpConfig};
use isop_ml::train::TrainContext;
use isop_ml::Regressor;
use std::hint::black_box;

fn mlp() -> Mlp {
    Mlp::new(MlpConfig {
        hidden: vec![96, 96, 48],
        epochs: 8,
        batch_size: 64,
        dropout: 0.05,
        seed: 7,
        ..MlpConfig::default()
    })
}

fn bench_mlp_training(c: &mut Criterion) {
    let data =
        generate_dataset(&isop::spaces::s1(), 1200, &AnalyticalSolver::new(), 1).expect("dataset");
    let threads = Parallelism::from_env().threads;

    // Contract check outside the timed region: the parallel fit must equal
    // the serial fit bit for bit — dropout masks included.
    let mut serial = mlp();
    serial
        .fit_with(&data, &TrainContext::serial())
        .expect("serial fit");
    let mut wide = mlp();
    wide.fit_with(&data, &TrainContext::new(Parallelism::new(threads.max(2))))
        .expect("parallel fit");
    assert_eq!(
        serial.predict(&data.x).expect("ok"),
        wide.predict(&data.x).expect("ok"),
        "parallel MLP fit diverged from serial"
    );

    let mut g = c.benchmark_group("train_mlp_1200rows_8epochs");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            let mut m = mlp();
            m.fit_with(black_box(&data), &TrainContext::serial())
                .expect("ok");
            m
        })
    });
    g.bench_function(format!("t{threads}"), |b| {
        let ctx = TrainContext::new(Parallelism::new(threads));
        b.iter(|| {
            let mut m = mlp();
            m.fit_with(black_box(&data), &ctx).expect("ok");
            m
        })
    });
    g.finish();
}

criterion_group!(benches, bench_mlp_training);
criterion_main!(benches);
