//! Micro-benchmark: random-forest training through the data-parallel
//! engine. Bootstrap plans are drawn serially, then the trees build in
//! parallel — run with e.g. `THREADS=4 cargo bench` to compare widths; the
//! fits are bit-identical at every width (asserted once before timing).

use criterion::{criterion_group, criterion_main, Criterion};
use isop::data::generate_dataset;
use isop::exec::Parallelism;
use isop_em::simulator::AnalyticalSolver;
use isop_ml::models::{RandomForest, TreeConfig};
use isop_ml::train::TrainContext;
use isop_ml::Regressor;
use std::hint::black_box;

fn forest() -> RandomForest {
    RandomForest::new(
        16,
        TreeConfig {
            max_depth: 10,
            ..TreeConfig::default()
        },
        7,
    )
}

fn bench_forest_training(c: &mut Criterion) {
    let data =
        generate_dataset(&isop::spaces::s1(), 1500, &AnalyticalSolver::new(), 1).expect("dataset");
    let threads = Parallelism::from_env().threads;

    // Contract check outside the timed region: the parallel fit must equal
    // the serial fit bit for bit.
    let mut serial = forest();
    serial
        .fit_with(&data, &TrainContext::serial())
        .expect("serial fit");
    let mut wide = forest();
    wide.fit_with(&data, &TrainContext::new(Parallelism::new(threads.max(2))))
        .expect("parallel fit");
    assert_eq!(
        serial.predict(&data.x).expect("ok"),
        wide.predict(&data.x).expect("ok"),
        "parallel forest fit diverged from serial"
    );

    let mut g = c.benchmark_group("train_forest_1500rows_16trees");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            let mut m = forest();
            m.fit_with(black_box(&data), &TrainContext::serial())
                .expect("ok");
            m
        })
    });
    g.bench_function(format!("t{threads}"), |b| {
        let ctx = TrainContext::new(Parallelism::new(threads));
        b.iter(|| {
            let mut m = forest();
            m.fit_with(black_box(&data), &ctx).expect("ok");
            m
        })
    });
    g.finish();
}

criterion_group!(benches, bench_forest_training);
criterion_main!(benches);
