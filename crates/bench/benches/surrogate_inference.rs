//! Micro-benchmark: per-model inference throughput — the mechanism behind
//! the paper's runtime gap between surrogate-driven search and EM
//! simulation, and between the MLP/XGB and 1D-CNN surrogates (Tables
//! VII/VIII runtime columns).

use criterion::{criterion_group, criterion_main, Criterion};
use isop::data::generate_dataset;
use isop_em::simulator::AnalyticalSolver;
use isop_ml::models::{Cnn1d, Cnn1dConfig, Mlp, MlpConfig, XgbRegressor};
use isop_ml::Regressor;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let data = generate_dataset(&isop::spaces::s1(), 600, &AnalyticalSolver::new(), 1)
        .expect("dataset");
    let probe = data.x.clone();

    let mut mlp = Mlp::new(MlpConfig {
        hidden: vec![96, 96, 48],
        epochs: 3,
        ..MlpConfig::default()
    });
    mlp.fit(&data).expect("mlp fits");

    let mut cnn = Cnn1d::new(Cnn1dConfig {
        epochs: 3,
        ..Cnn1dConfig::default()
    });
    cnn.fit(&data).expect("cnn fits");

    let mut xgb = XgbRegressor::new(60, 0.2, 6, 1.0, 0.0);
    xgb.fit(&data).expect("xgb fits");

    let mut g = c.benchmark_group("surrogate_inference_600rows");
    g.sample_size(20);
    g.bench_function("mlp", |b| b.iter(|| mlp.predict(black_box(&probe)).expect("ok")));
    g.bench_function("cnn1d", |b| b.iter(|| cnn.predict(black_box(&probe)).expect("ok")));
    g.bench_function("xgboost", |b| b.iter(|| xgb.predict(black_box(&probe)).expect("ok")));
    g.finish();

    c.bench_function("mlp_input_jacobian", |b| {
        use isop_ml::Differentiable;
        b.iter(|| mlp.input_jacobian(black_box(probe.row(0))).expect("ok"))
    });
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
