//! Micro-benchmark: per-model inference throughput — the mechanism behind
//! the paper's runtime gap between surrogate-driven search and EM
//! simulation, and between the MLP/XGB and 1D-CNN surrogates (Tables
//! VII/VIII runtime columns).

use criterion::{criterion_group, criterion_main, Criterion};
use isop::data::generate_dataset;
use isop::exec::{par_map_indexed, Parallelism};
use isop_em::simulator::AnalyticalSolver;
use isop_ml::linalg::Matrix;
use isop_ml::models::{Cnn1d, Cnn1dConfig, Mlp, MlpConfig, XgbRegressor};
use isop_ml::Regressor;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let data =
        generate_dataset(&isop::spaces::s1(), 600, &AnalyticalSolver::new(), 1).expect("dataset");
    let probe = data.x.clone();

    let mut mlp = Mlp::new(MlpConfig {
        hidden: vec![96, 96, 48],
        epochs: 3,
        ..MlpConfig::default()
    });
    mlp.fit(&data).expect("mlp fits");

    let mut cnn = Cnn1d::new(Cnn1dConfig {
        epochs: 3,
        ..Cnn1dConfig::default()
    });
    cnn.fit(&data).expect("cnn fits");

    let mut xgb = XgbRegressor::new(60, 0.2, 6, 1.0, 0.0);
    xgb.fit(&data).expect("xgb fits");

    let mut g = c.benchmark_group("surrogate_inference_600rows");
    g.sample_size(20);
    g.bench_function("mlp", |b| {
        b.iter(|| mlp.predict(black_box(&probe)).expect("ok"))
    });
    g.bench_function("cnn1d", |b| {
        b.iter(|| cnn.predict(black_box(&probe)).expect("ok"))
    });
    g.bench_function("xgboost", |b| {
        b.iter(|| xgb.predict(black_box(&probe)).expect("ok"))
    });
    g.finish();

    c.bench_function("mlp_input_jacobian", |b| {
        use isop_ml::Differentiable;
        b.iter(|| mlp.input_jacobian(black_box(probe.row(0))).expect("ok"))
    });

    // Batched forward vs. row-at-a-time, threaded at the width given by the
    // THREADS env var (default 1) — the levers the pipeline's stage-3
    // roll-out pulls. Run with e.g. `THREADS=4 cargo bench` to compare.
    let threads = Parallelism::from_env().threads;
    let rows: Vec<Vec<f64>> = (0..probe.rows()).map(|r| probe.row(r).to_vec()).collect();
    let mut g = c.benchmark_group("surrogate_inference_parallel");
    g.sample_size(20);
    g.bench_function("mlp_batched_forward", |b| {
        b.iter(|| mlp.predict(black_box(&probe)).expect("ok"))
    });
    g.bench_function(format!("mlp_per_row_t{threads}"), |b| {
        b.iter(|| {
            par_map_indexed(threads, black_box(&rows), |_, row| {
                mlp.predict(&Matrix::from_rows(std::slice::from_ref(row)))
                    .expect("ok")
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
