//! Micro-benchmark: the eye-diagram impulse response through the radix-2
//! inverse real FFT ([`EyeWorkspace`]) against the O(n²) naive weighted
//! sum ([`impulse_response_naive`]), plus the full peak-distortion eye
//! with a warm (zero-alloc) workspace.
//!
//! Numerical equivalence (~1e-12; the FFT is not bit-identical to the
//! naive sum, only to itself) is asserted before any timing.

use criterion::{criterion_group, criterion_main, Criterion};
use isop_em::channel::{Channel, Element};
use isop_em::eye::{impulse_response_naive, peak_distortion_eye_with, EyeWorkspace};
use isop_em::stackup::DiffStripline;
use std::hint::black_box;

fn line(inches: f64) -> Channel {
    Channel::new(vec![Element::Stripline {
        layer: DiffStripline::default(),
        length_inches: inches,
    }])
    .expect("valid channel")
}

fn bench_eye(c: &mut Criterion) {
    let mut g = c.benchmark_group("eye_fft");
    g.sample_size(10);
    let ch = line(6.0);
    for &n_freq in &[128usize, 512] {
        let f_max = 6.4e10;

        // Equivalence gate before timing.
        let mut ws = EyeWorkspace::new();
        let fast = ws.impulse_response(&ch, f_max, n_freq).to_vec();
        let slow = impulse_response_naive(&ch, f_max, n_freq);
        assert_eq!(fast.len(), slow.len());
        assert!(
            fast.iter().zip(&slow).all(|(a, b)| (a - b).abs() < 1e-9),
            "FFT impulse response must match the naive reference"
        );

        g.bench_function(format!("impulse_naive_{n_freq}"), |b| {
            b.iter(|| black_box(impulse_response_naive(black_box(&ch), f_max, n_freq)))
        });
        g.bench_function(format!("impulse_fft_warm_{n_freq}"), |b| {
            b.iter(|| {
                let h = ws.impulse_response(black_box(&ch), f_max, n_freq);
                black_box(h[0]);
            })
        });
    }
    g.bench_function("peak_distortion_eye_warm", |b| {
        let mut ws = EyeWorkspace::new();
        b.iter(|| {
            black_box(peak_distortion_eye_with(
                &mut ws,
                black_box(&ch),
                16.0,
                8,
                16,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_eye);
criterion_main!(benches);
