//! Micro-benchmark: batched structure-of-arrays frequency sweep
//! ([`SweepPlan`]) against the scalar per-point ABCD path, on a fleet of
//! link-level channels sharing layers and via prototypes.
//!
//! Bit-identity of the two paths is asserted before any timing — a
//! benchmark of a wrong kernel measures nothing.

use criterion::{criterion_group, criterion_main, Criterion};
use isop_em::channel::{Channel, Element};
use isop_em::stackup::DiffStripline;
use isop_em::sweep::SweepPlan;
use isop_em::via::Via;
use std::hint::black_box;

const N_FREQ: usize = 256;
const F_START: f64 = 1e8;
const F_STOP: f64 = 4e10;

/// A fleet of channels with shared layers, repeated segments, and mixed
/// stubbed/back-drilled vias — the structure the plan's interning exploits.
fn make_channels(n: usize) -> Vec<Channel> {
    let layers: Vec<DiffStripline> = (0..4)
        .map(|i| DiffStripline {
            trace_width: 4.0 + 0.5 * i as f64,
            ..DiffStripline::default()
        })
        .collect();
    (0..n)
        .map(|c| {
            let mut elems = Vec::new();
            for s in 0..4usize {
                elems.push(Element::Stripline {
                    layer: layers[(c + s) % layers.len()],
                    length_inches: 1.0 + ((c + 2 * s) % 3) as f64,
                });
                elems.push(Element::Via(Via {
                    stub_length: if (c + s) % 2 == 0 { 20.0 } else { 0.0 },
                    ..Via::default()
                }));
            }
            Channel::new(elems).expect("valid channel")
        })
        .collect()
}

fn scalar_sweep(channels: &[Channel], freqs: &[f64], out: &mut Vec<f64>) {
    out.clear();
    for ch in channels {
        let z = ch.reference_impedance();
        for &f in freqs {
            let (s11, s21, _, _) = ch.abcd(f).to_s_params(z);
            out.push(s21.re);
            out.push(s21.im);
            out.push(s11.re);
            out.push(s11.im);
        }
    }
}

fn batched_sweep(channels: &[Channel], plan: &mut SweepPlan, out: &mut Vec<f64>) {
    out.clear();
    for ch in channels {
        let view = plan.sweep(ch);
        for i in 0..view.len() {
            let (s11, s21) = (view.s11(i), view.s21(i));
            out.push(s21.re);
            out.push(s21.im);
            out.push(s11.re);
            out.push(s11.im);
        }
    }
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("em_sweep_batch");
    g.sample_size(10);
    for &n_chan in &[4usize, 16] {
        let channels = make_channels(n_chan);
        let freqs = SweepPlan::log_spaced(F_START, F_STOP, N_FREQ)
            .freqs()
            .to_vec();

        // Identity gate before timing.
        let mut scalar = Vec::new();
        scalar_sweep(&channels, &freqs, &mut scalar);
        let mut plan = SweepPlan::log_spaced(F_START, F_STOP, N_FREQ);
        let mut batched = Vec::new();
        batched_sweep(&channels, &mut plan, &mut batched);
        assert_eq!(scalar.len(), batched.len());
        assert!(
            scalar
                .iter()
                .zip(&batched)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "batched sweep must be bit-identical to the scalar path"
        );

        g.bench_function(format!("scalar_{n_chan}x{N_FREQ}"), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                scalar_sweep(black_box(&channels), black_box(&freqs), &mut out);
                black_box(&out);
            })
        });
        g.bench_function(format!("batched_warm_{n_chan}x{N_FREQ}"), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                batched_sweep(black_box(&channels), &mut plan, &mut out);
                black_box(&out);
            })
        });
        g.bench_function(format!("batched_cold_{n_chan}x{N_FREQ}"), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                let mut cold = SweepPlan::log_spaced(F_START, F_STOP, N_FREQ);
                batched_sweep(black_box(&channels), &mut cold, &mut out);
                black_box(&out);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
