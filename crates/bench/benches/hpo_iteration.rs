//! Micro-benchmark: per-sample cost of the search algorithms — Harmonica's
//! batch sampling vs SA's flip-eval loop vs TPE's sequential density
//! modelling. This is the structural reason BO observes far fewer samples
//! in matched wall-clock (paper Tables IV/V).

use criterion::{criterion_group, criterion_main, Criterion};
use isop_hpo::budget::Budget;
use isop_hpo::harmonica::{self, HarmonicaConfig};
use isop_hpo::objective::{BinaryFn, DiscreteFn};
use isop_hpo::sa::{self, SaConfig};
use isop_hpo::space::{BinarySpace, DiscreteSpace};
use isop_hpo::tpe::{Tpe, TpeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const N_BITS: usize = 40;

fn toy_binary() -> impl isop_hpo::objective::BinaryObjective {
    BinaryFn::new(N_BITS, |b: &[bool]| {
        Some(
            b.iter()
                .enumerate()
                .map(|(i, &x)| if x { (i % 7) as f64 } else { 0.0 })
                .sum(),
        )
    })
}

fn bench_hpo(c: &mut Criterion) {
    let mut g = c.benchmark_group("hpo_per_algorithm");
    g.sample_size(10);

    g.bench_function("harmonica_stage_200_samples", |b| {
        b.iter(|| {
            let mut obj = toy_binary();
            let cfg = HarmonicaConfig {
                stages: 1,
                samples_per_stage: 200,
                degree: 2,
                ..HarmonicaConfig::default()
            };
            let mut budget = Budget::unlimited();
            let mut rng = StdRng::seed_from_u64(1);
            harmonica::run(
                &mut obj,
                BinarySpace::free(N_BITS),
                &cfg,
                &mut budget,
                &mut rng,
                |_, _| {},
            )
        })
    });

    g.bench_function("sa_200_iterations", |b| {
        b.iter(|| {
            let mut obj = toy_binary();
            let cfg = SaConfig {
                iterations: 200,
                ..SaConfig::default()
            };
            let mut budget = Budget::unlimited();
            let mut rng = StdRng::seed_from_u64(2);
            sa::run(
                &mut obj,
                &BinarySpace::free(N_BITS),
                &cfg,
                &mut budget,
                &mut rng,
            )
        })
    });

    g.bench_function("tpe_200_iterations", |b| {
        b.iter(|| {
            let cards = vec![16usize; 10];
            let mut obj = DiscreteFn::new(cards.clone(), |l: &[usize]| {
                l.iter().map(|&x| (x as f64 - 7.0).abs()).sum()
            });
            let mut tpe = Tpe::new(DiscreteSpace::new(cards), TpeConfig::default());
            let mut budget = Budget::unlimited();
            let mut rng = StdRng::seed_from_u64(3);
            tpe.optimize(black_box(&mut obj), 200, &mut budget, &mut rng)
        })
    });

    g.finish();

    // Hyperband-style fidelity fan-out: the pipeline evaluates a
    // configuration's random 1-bit neighbours concurrently. Width comes from
    // the THREADS env var (default 1); `THREADS=4 cargo bench` shows the
    // parallel speedup, and results are index-ordered either way.
    let threads = isop::exec::Parallelism::from_env().threads;
    let mut rng = StdRng::seed_from_u64(4);
    let space = BinarySpace::free(N_BITS);
    let replicas: Vec<Vec<bool>> = (0..64).map(|_| space.sample(&mut rng)).collect();
    // Same shape as the toy objective above, but stateless so replicas can
    // be scored on any thread; repeated to make each replica non-trivial.
    let score = |bits: &[bool]| -> f64 {
        (0..256)
            .map(|_| {
                bits.iter()
                    .enumerate()
                    .map(|(i, &x)| if x { (i % 7) as f64 } else { 0.0 })
                    .sum::<f64>()
            })
            .sum()
    };
    let mut g = c.benchmark_group("hpo_parallel_fanout");
    g.sample_size(10);
    g.bench_function(format!("replica_eval_t{threads}"), |b| {
        b.iter(|| isop::exec::par_map_indexed(threads, black_box(&replicas), |_, bits| score(bits)))
    });
    g.finish();
}

criterion_group!(benches, bench_hpo);
criterion_main!(benches);
