//! Micro-benchmark: the active-set Lasso on sparse-recovery shapes where
//! the support is a tiny fraction of the columns — the regime Harmonica's
//! PSR lives in, and where active-set sweeps over the column-major layout
//! should beat full cyclic sweeps decisively.

use criterion::{criterion_group, criterion_main, Criterion};
use isop_hpo::lasso::lasso_coordinate_descent;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::hint::black_box;

/// Sparse ground truth: `k` active columns out of `d`.
fn sparse_problem(n: usize, d: usize, k: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<f64> = (0..n * d)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            (0..k)
                .map(|j| (j as f64 + 1.0) * x[i * d + j * (d / k)])
                .sum::<f64>()
                + 0.05 * rng.gen::<f64>()
        })
        .collect();
    (x, y)
}

fn bench_active_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("lasso_active_set");
    g.sample_size(10);
    // (samples, columns, true support) — the larger shape matches S1's
    // degree-2 parity features (~2700 monomials, support of a handful).
    for &(n, d, k) in &[(200usize, 500usize, 4usize), (300, 2700, 6)] {
        let (x, y) = sparse_problem(n, d, k, 11);
        g.bench_function(format!("active_set_{n}x{d}_k{k}"), |b| {
            b.iter(|| lasso_coordinate_descent(black_box(&x), black_box(&y), n, d, 0.05, 200, 1e-8))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_active_set);
criterion_main!(benches);
