//! Micro-benchmark: the Lasso polynomial-sparse-recovery subroutine at the
//! problem sizes Harmonica hits on `S_1` (degree-2 parity features over 73
//! bits ~ 2700 columns).

use criterion::{criterion_group, criterion_main, Criterion};
use isop_hpo::lasso::lasso_coordinate_descent;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::hint::black_box;

fn make_problem(n: usize, d: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<f64> = (0..n * d)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| 2.0 * x[i * d + 3] - x[i * d + 40] + 0.05 * rng.gen::<f64>())
        .collect();
    (x, y)
}

fn bench_lasso(c: &mut Criterion) {
    let mut g = c.benchmark_group("lasso_psr");
    g.sample_size(10);
    for &(n, d) in &[(200usize, 500usize), (300, 2700)] {
        let (x, y) = make_problem(n, d, 7);
        g.bench_function(format!("lasso_{n}x{d}"), |b| {
            b.iter(|| lasso_coordinate_descent(black_box(&x), black_box(&y), n, d, 0.02, 100, 1e-6))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lasso);
criterion_main!(benches);
