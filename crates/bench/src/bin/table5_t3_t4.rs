//! Regenerates paper **Table V**: T3/T4 on `S_1`/`S_2` — the harder tasks
//! with a NEXT constraint (T3) or a multi-objective FoM (T4).
//!
//! Shape checks vs the paper: ISOP+ keeps a 100% success rate where SA and
//! BO start failing T3, and its FoM advantage widens relative to Table IV.

use isop::tasks::TaskId;
use isop_bench::experiments::{render_comparison, run_comparison_cell};
use isop_bench::{cnn_surrogate, emit, isop_config, table_cells, training_dataset, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let data = training_dataset(&cfg);
    let surrogate = cnn_surrogate(&cfg, &data).expect("surrogate training");

    let mut cells = Vec::new();
    for (task, label, space) in table_cells([TaskId::T3, TaskId::T4]) {
        cells.push(run_comparison_cell(
            &cfg,
            &surrogate,
            task,
            label,
            &space,
            isop_config(),
        ));
    }
    let table = render_comparison(&cells, true);
    emit(
        &cfg,
        "table5_t3_t4",
        "Table V — T3/T4 method comparison",
        &table,
    );

    let isop_successes: Vec<String> = cells
        .iter()
        .filter_map(|c| {
            c.rows
                .iter()
                .find(|r| r.method == "ISOP+")
                .map(|r| format!("{}/{}: {}/{}", c.task, c.space, r.successes, r.trials))
        })
        .collect();
    println!(
        "\nShape check: ISOP+ success rates [{}] (paper: 10/10 everywhere while SA/BO drop on T3).",
        isop_successes.join(", ")
    );
}
