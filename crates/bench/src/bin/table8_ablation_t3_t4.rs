//! Regenerates paper **Table VIII**: the ISOP ablation of Table VII on the
//! harder T3/T4 tasks (NEXT constraint / multi-objective FoM), where the
//! paper reports the biggest gains for the full `H_GD + 1D-CNN` pipeline.

use isop::tasks::TaskId;
use isop_bench::experiments::{render_ablation, run_ablation_variant, AblationRow};
use isop_bench::{
    cnn_surrogate, emit, mlp_xgb_surrogate, table_cells, training_dataset, BenchConfig,
};

fn main() {
    let cfg = BenchConfig::from_env();
    let data = training_dataset(&cfg);
    let cnn = cnn_surrogate(&cfg, &data).expect("CNN trains");
    let mlp_xgb = mlp_xgb_surrogate(&cfg, &data).expect("MLP_XGB trains");

    // Shared EM-result cache, exactly as in table7: variants of one task
    // reuse each other's accurate sims, and the persistent store
    // (ISOP_CACHE_DIR) or legacy JSON spill shares them across the two
    // ablation binaries.
    let store = isop_bench::open_store(&cfg);
    let em_cache = match &store {
        Some(s) => isop::evalcache::EvalCache::with_store(std::sync::Arc::clone(s)),
        None => isop::evalcache::EvalCache::new(),
    };
    let spill = cfg.results_dir.join("em_cache.json");
    if store.is_none() {
        match em_cache.load_json(&spill) {
            Ok(n) if n > 0 => eprintln!("[isop-bench] em-cache: {n} spilled sims loaded"),
            Ok(_) => {}
            Err(e) => eprintln!("[isop-bench] em-cache: ignoring unreadable spill: {e}"),
        }
    }

    let mut rows: Vec<AblationRow> = Vec::new();
    for (task, label, space) in table_cells([TaskId::T3, TaskId::T4]) {
        for (technique, surrogate) in [
            ("H", &mlp_xgb as &dyn isop::surrogate::Surrogate),
            ("H", &cnn as &dyn isop::surrogate::Surrogate),
            ("H_GD", &cnn as &dyn isop::surrogate::Surrogate),
        ] {
            if let Some(row) = run_ablation_variant(
                &cfg,
                surrogate,
                technique,
                task,
                label,
                &space,
                &isop_telemetry::Telemetry::disabled(),
                &em_cache,
            ) {
                rows.push(row);
            }
        }
    }
    if store.is_some() {
        if let Err(e) = em_cache.persist() {
            eprintln!("[isop-bench] em-cache: store not flushed: {e}");
        }
    } else if let Err(e) = em_cache.save_json(&spill) {
        eprintln!("[isop-bench] em-cache: spill not written: {e}");
    }
    let table = render_ablation(&rows, true);
    emit(
        &cfg,
        "table8_ablation_t3_t4",
        "Table VIII — ISOP ablation on T3/T4",
        &table,
    );

    let wins = rows
        .chunks(3)
        .filter(|c| c.len() == 3 && c[2].stats.fom <= c[0].stats.fom + 1e-9)
        .count();
    println!(
        "\nShape check: H_GD+1D-CNN (ISOP+) <= H+MLP_XGB (ISOP DATE'23) FoM in {wins}/{} cells.",
        rows.len() / 3
    );
}
