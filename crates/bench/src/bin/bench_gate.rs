//! CI perf-regression gate: runs the seeded smoke pipeline with telemetry,
//! writes the machine-readable `BENCH_ci.json` run report, and diffs it
//! against the checked-in thresholds (`scripts/bench_thresholds.json`).
//!
//! Failure policy:
//!
//! * **Counters** are deterministic at a fixed seed (commutative atomic
//!   adds, any thread width), so any measured value *above* its threshold
//!   is a hard failure — the change made the pipeline do more work than
//!   the budget allows. Values below threshold only warn (run `--update`
//!   to tighten the budget).
//! * **Wall-clock** is noisy, so it fails only beyond a 10% margin over
//!   the threshold.
//!
//! The smoke workload runs the seeded pipeline **twice** on one telemetry
//! handle, sharing one evaluation cache and surrogate memo across the two
//! runs: the second run's roll-out is served entirely from cache, which is
//! what the `em.cache.*` budgets and the >= 20% saved-EM-seconds assertion
//! pin down. The gate also verifies the cache contract directly — both
//! runs must produce bit-identical candidates. `--no-cache` runs the same
//! protocol with the cache disabled; against a cache-enabled budget this
//! *fails* (`em.cache.misses` lands over budget), which is the CI tripwire
//! for the cache being silently turned off.
//!
//! A training smoke phase then gates the data-parallel training engine: a
//! random forest and a dropout MLP each train serially and at 4 workers,
//! the fits must be bit-identical, the phase's wall-clock has its own
//! budget (`max_train_seconds`), and — only on hosts that actually have
//! >= 4 cores — the forest fit must be at least 2x faster in parallel.
//!
//! A fault-injection smoke phase then gates the roll-out's fault
//! tolerance: a rate-0 run through the [`FaultInjector`] must be
//! bit-identical to a run without the fault layer (candidates, ledgers,
//! every counter), and at a fixed fault rate the outcome and all fault
//! counters must be bit-identical at 1 vs 4 threads, with retries actually
//! exercised. The faulted serial run's counters fold into the budgeted
//! report, so `em.retries` / `em.failures_*` / `em.topped_up` regressions
//! (e.g. a retry storm) trip the gate like any other counter; the phase's
//! wall-clock has its own budget (`max_fault_seconds`).
//!
//! A scheduler smoke phase then gates the async batched roll-out: under
//! the same fault config the async schedule must deliver the synchronous
//! schedule's candidate set while charging **strictly less** EM time (the
//! retry surcharge the batch stream exists to absorb), and the faulted
//! async run must be bit-identical at 1 vs 4 threads — candidates, both
//! ledgers, and every counter including the `em.sched.*` gauges. The
//! async serial run's counters fold into the budgeted report, so batch
//! and slack regressions trip the gate; the phase's wall-clock has its
//! own budget (`max_sched_seconds`).
//!
//! A batched-sweep smoke phase then gates the structure-of-arrays EM
//! frequency sweep: a fleet of link-level channels is swept once through
//! the scalar per-point path and once through a shared
//! [`SweepPlan`](isop_em::sweep::SweepPlan), the
//! two must agree **bit for bit** at every (channel, frequency) point, and
//! lane width 1 vs 4 must also be bit-identical. The identity checks run
//! on every build; the >= [`MIN_SWEEP_SPEEDUP`]x batched-over-scalar
//! throughput requirement is enforced only when the crate was compiled
//! with the `simd-lanes` feature (`lanes_compiled()`), mirroring how the
//! training speedup is only enforced on hosts with enough cores. The
//! phase's wall-clock has its own budget (`max_sweep_seconds`).
//!
//! A warm-store smoke phase then gates the persistent evaluation store and
//! the trained-model registry: the seeded pipeline runs cold against a
//! fresh store directory, then warm from fresh handles at 1 and 4 threads.
//! The warm runs must replay the cold candidates and ledger sum bit for
//! bit while eliding at least 90% of the cold run's charged EM seconds
//! (full-hit replay elides 100%), the two warm widths must agree on every
//! counter, and a zoo surrogate fitted through the registry must reload
//! warm with zero training work — no `ml.fit.*` span, `train.chunks` = 0 —
//! and bit-identical predictions. The phase's wall-clock has its own
//! budget (`max_store_seconds`), its serial handles' counters fold into
//! the budgeted report so the `store.*` read/write volumes are gated, and
//! the cold-vs-warm wall-clock comparison is written to `BENCH_pr8.json`
//! next to the CI report.
//!
//! A multi-job engine smoke phase then gates the shared-executor job
//! scheduler: a four-job mixed-space batch (two tenants, each one fresh
//! space and one rerun of it) runs once serially (one core permit, one
//! wave slot) and once concurrently (host cores, two wave slots), each
//! against its own fresh store. Always enforced: a job run **solo** is
//! bit-identical — candidates, both EM ledgers, every per-job counter —
//! to the same job running beside its wave neighbors, in both the serial
//! and the concurrent batch; the rerun jobs elide their accurate EM time
//! entirely through cross-job store hits; and the core budget's peak
//! outstanding permits never exceed the grant. Only on hosts with at
//! least [`ENGINE_SPEEDUP_CORES`] cores, the concurrent batch must beat
//! the serial batch by [`MIN_ENGINE_SPEEDUP`]x wall-clock. The serial
//! batch's per-job and engine counters fold into the budgeted report, the
//! phase's wall-clock has its own budget (`max_engine_seconds`), and the
//! serial-vs-concurrent comparison is written to `BENCH_pr9.json` next to
//! the CI report.
//!
//! A daemon smoke phase finally gates the live optimization daemon: a
//! real [`Daemon`] serves the four-job demo over a loopback TCP socket
//! (NDJSON submit/status/shutdown) until every job's `Finished` frame
//! lands in the journal; then a second daemon is deterministically killed
//! mid-epoch — right after wave 1's safe-point journal flush, via the
//! chaos knob — restarted on the same store directory, and must replay
//! the finished jobs and resume the interrupted wave to results
//! bit-identical to a never-killed daemon: candidates, both EM ledgers,
//! and every per-job counter, with the journal holding exactly one
//! `Finished` frame per job (zero double-charged EM seconds). The
//! synchronous legs' counters fold into the budgeted report, so the
//! `daemon.*` volumes are gated, the phase's wall-clock has its own
//! budget (`max_daemon_seconds`), and the kill-vs-calm comparison is
//! written to `BENCH_pr10.json` next to the CI report.
//!
//! ```text
//! bench_gate [--thresholds scripts/bench_thresholds.json]
//!            [--out results/BENCH_ci.json] [--update] [--no-cache]
//! ```
//!
//! `--update` reruns the smoke pipeline and rewrites the thresholds file
//! from the measurement (counters exact, wall-clock with 3x headroom).

use isop::data::generate_dataset;
use isop::evalcache::{EvalCache, SurrogateMemo};
use isop::prelude::*;
use isop_em::simulator::AnalyticalSolver;
use isop_hpo::budget::Budget;
use isop_hpo::harmonica::HarmonicaConfig;
use isop_hpo::hyperband::HyperbandConfig;
use isop_ml::models::{Mlp, MlpConfig, RandomForest, TreeConfig};
use isop_ml::registry::ModelRegistry;
use isop_ml::train::TrainContext;
use isop_ml::Regressor;
use isop_store::Store;
use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock headroom factor applied on top of the stored threshold.
const WALL_MARGIN: f64 = 1.10;
/// Headroom baked into the stored wall-clock threshold by `--update` —
/// generous because CI machines are slower than the laptop that recorded
/// the budget; the counters carry the tight, exact part of the gate.
const WALL_UPDATE_HEADROOM: f64 = 3.0;
/// Seed of the smoke run; thresholds are only meaningful at this seed.
const SMOKE_SEED: u64 = 3;
/// Worker threads of the smoke run (counters are width-independent).
const SMOKE_THREADS: usize = 2;
/// Worker threads of the training smoke (the data-parallel engine's gate).
const TRAIN_THREADS: usize = 4;
/// Minimum forest-training speedup at [`TRAIN_THREADS`] workers, enforced
/// only on hosts that actually have that many cores — bit-identity of the
/// fits is enforced everywhere.
const MIN_TRAIN_SPEEDUP: f64 = 2.0;
/// Transient fault rate of the fault-injection smoke — high enough to
/// guarantee retries at [`SMOKE_SEED`], low enough that the retry budget
/// usually rescues the candidate.
const FAULT_RATE: f64 = 0.35;
/// Per-design permanent ("doomed") fault rate of the fault-injection
/// smoke, exercising the top-up path.
const FAULT_PERMANENT_RATE: f64 = 0.30;
/// Seed of the injected fault stream (independent of the pipeline seed).
const FAULT_SEED: u64 = 2;
/// Minimum batched-over-scalar sweep speedup, enforced only when the
/// `simd-lanes` feature is compiled in ([`isop_em::sweep::lanes_compiled`])
/// — bit-identity of the two paths is enforced everywhere.
const MIN_SWEEP_SPEEDUP: f64 = 2.0;
/// Frequency points of the sweep smoke grid.
const SWEEP_POINTS: usize = 256;
/// Fraction of the cold run's charged EM seconds the warm-store replay
/// must elide (a full-hit replay elides 100%; 90% leaves room for a
/// future smoke tweak that adds a handful of fresh designs).
const STORE_MIN_ELIDED_FRACTION: f64 = 0.9;
/// Registry key of the store smoke's zoo surrogate (any stable value —
/// the registry only requires it to be consistent between cold and warm).
const STORE_ZOO_SPACE_ID: u64 = 0x5105;
/// Minimum serial-over-concurrent wall-clock speedup of the engine smoke's
/// four-job batch, enforced only on hosts with at least
/// [`ENGINE_SPEEDUP_CORES`] cores — solo-vs-concurrent bit-identity and
/// the cross-job EM elision are enforced everywhere.
const MIN_ENGINE_SPEEDUP: f64 = 1.5;
/// Core count a host needs before the engine throughput ratio is enforced
/// (two concurrent jobs x two leased threads each).
const ENGINE_SPEEDUP_CORES: usize = 4;

/// The checked-in perf budget the gate compares against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GateThresholds {
    /// Must match [`RunReport::SCHEMA_VERSION`] of the measuring binary.
    schema_version: u32,
    /// Seed the counter budget was recorded at.
    seed: u64,
    /// Wall-clock budget for the whole smoke run, seconds (compared with
    /// a [`WALL_MARGIN`] tolerance).
    max_wall_seconds: f64,
    /// Wall-clock budget for the training smoke (serial + parallel fits),
    /// seconds (compared with a [`WALL_MARGIN`] tolerance).
    max_train_seconds: f64,
    /// Wall-clock budget for the fault-injection smoke (four pipeline
    /// runs), seconds (compared with a [`WALL_MARGIN`] tolerance).
    max_fault_seconds: f64,
    /// Wall-clock budget for the scheduler smoke (sync-vs-async ledger
    /// comparison plus the 1-vs-4-thread async identity run), seconds
    /// (compared with a [`WALL_MARGIN`] tolerance).
    max_sched_seconds: f64,
    /// Wall-clock budget for the batched-sweep smoke (scalar + batched +
    /// lane-width passes), seconds (compared with a [`WALL_MARGIN`]
    /// tolerance).
    max_sweep_seconds: f64,
    /// Wall-clock budget for the warm-store smoke (cold run + two warm
    /// replays + registry round-trip), seconds (compared with a
    /// [`WALL_MARGIN`] tolerance).
    max_store_seconds: f64,
    /// Wall-clock budget for the multi-job engine smoke (solo reference +
    /// serial batch + concurrent batch), seconds (compared with a
    /// [`WALL_MARGIN`] tolerance).
    max_engine_seconds: f64,
    /// Wall-clock budget for the daemon smoke (TCP demo + kill/restart
    /// replay + calm reference), seconds (compared with a [`WALL_MARGIN`]
    /// tolerance).
    max_daemon_seconds: f64,
    /// Exact counter budget, one entry per [`Counter`].
    counters: Vec<isop_telemetry::CounterEntry>,
}

/// Cold-vs-warm measurement of the warm-store smoke, written to
/// `BENCH_pr8.json` next to the CI report so the cross-run speedup is a
/// tracked artifact rather than a log line.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoreSmokeSummary {
    /// Wall-clock of the cold pipeline run (store writes included), s.
    cold_wall_seconds: f64,
    /// Wall-clock of the warm serial replay (store reads included), s.
    warm_wall_seconds: f64,
    /// EM seconds the cold run charged.
    cold_em_charged_seconds: f64,
    /// EM seconds the warm replay still charged (0 at full hit rate).
    warm_em_charged_seconds: f64,
    /// EM seconds the warm replay served from the store.
    warm_em_saved_seconds: f64,
    /// Store records the warm replay was served from other "jobs".
    warm_cross_job_hits: u64,
    /// Wall-clock of the cold zoo fit (training + store write), s.
    cold_fit_wall_seconds: f64,
    /// Wall-clock of the warm zoo load (store read, zero training), s.
    warm_fit_wall_seconds: f64,
}

/// Serial-vs-concurrent measurement of the multi-job engine smoke,
/// written to `BENCH_pr9.json` next to the CI report so the batch
/// throughput and cross-job-elision numbers are tracked artifacts.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EngineSmokeSummary {
    /// Cores the host reported (the concurrent batch's permit budget).
    host_cores: usize,
    /// Wall-clock of the four-job batch at one permit, one wave slot, s.
    serial_wall_seconds: f64,
    /// Wall-clock of the same batch at host cores, two wave slots, s.
    concurrent_wall_seconds: f64,
    /// `serial_wall_seconds / concurrent_wall_seconds` (enforced >=
    /// [`MIN_ENGINE_SPEEDUP`] only at [`ENGINE_SPEEDUP_CORES`]+ cores).
    speedup: f64,
    /// Simulated EM seconds the concurrent batch charged.
    em_seconds_charged: f64,
    /// Simulated EM seconds the concurrent batch's rerun jobs elided.
    em_seconds_saved: f64,
    /// Store records the concurrent batch served across jobs.
    cross_job_hits: u64,
    /// Peak simultaneously leased core permits of the concurrent batch.
    peak_core_permits: usize,
    /// Admission waves of the concurrent batch.
    waves: u64,
}

/// Kill-vs-calm measurement of the daemon smoke, written to
/// `BENCH_pr10.json` next to the CI report so the journal-replay and
/// crash-recovery numbers are tracked artifacts.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DaemonSmokeSummary {
    /// Wall-clock of the live TCP leg (serve + stream + drain), s.
    tcp_wall_seconds: f64,
    /// Jobs the TCP daemon finished and journaled.
    tcp_jobs_finished: u64,
    /// Wall-clock of the kill + recover + resume leg, s.
    recovery_wall_seconds: f64,
    /// Finished jobs the restarted daemon replayed from the journal.
    jobs_replayed: u64,
    /// Interrupted jobs the restarted daemon re-ran in place.
    jobs_resumed: u64,
    /// EM seconds the never-killed reference daemon charged.
    calm_em_charged_seconds: f64,
    /// EM seconds the killed + restarted daemon charged in total (journal
    /// replay + resumed wave; must equal the calm ledger bit for bit).
    recovered_em_charged_seconds: f64,
    /// `Finished` journal frames after recovery (one per job — more would
    /// mean a double-charged EM second).
    finished_frames: u64,
}

/// Everything one full smoke pass measures: the budgeted report, each
/// phase's wall-clock, and the store/engine/daemon smokes' summaries.
struct SmokeMeasurement {
    report: RunReport,
    wall: f64,
    train_wall: f64,
    fault_wall: f64,
    sched_wall: f64,
    sweep_wall: f64,
    store_wall: f64,
    store: StoreSmokeSummary,
    engine_wall: f64,
    engine: EngineSmokeSummary,
    daemon_wall: f64,
    daemon: DaemonSmokeSummary,
}

/// Fraction of total EM wall-clock the cache must elide over the two-run
/// smoke protocol (run two's roll-out is all hits, so the honest value is
/// 0.5; 0.2 leaves room for a partial-hit batch without going stale).
const MIN_SAVED_FRACTION: f64 = 0.2;

/// A named serial/parallel model pair for the training smoke.
type TrainTwin = (&'static str, Box<dyn Regressor>, Box<dyn Regressor>);

/// The data-parallel training engine's smoke: fits a random forest and a
/// dropout MLP twice each — serial and at [`TRAIN_THREADS`] workers — on
/// `telemetry`, and fails unless every parallel fit is bit-identical to
/// its serial twin. On hosts with at least [`TRAIN_THREADS`] cores the
/// forest (the embarrassingly parallel workload) must also come back at
/// least [`MIN_TRAIN_SPEEDUP`]x faster. Returns the phase's total
/// wall-clock, seconds.
fn train_smoke(telemetry: &Telemetry) -> Result<f64, String> {
    let data = generate_dataset(
        &isop::spaces::s1(),
        1200,
        &AnalyticalSolver::new(),
        SMOKE_SEED,
    )
    .map_err(|e| format!("train smoke dataset: {e:?}"))?;
    let serial_ctx = TrainContext::serial().with_telemetry(telemetry.clone());
    let par_ctx =
        TrainContext::new(Parallelism::new(TRAIN_THREADS)).with_telemetry(telemetry.clone());
    let forest = || {
        RandomForest::new(
            12,
            TreeConfig {
                max_depth: 9,
                ..TreeConfig::default()
            },
            SMOKE_SEED,
        )
    };
    let mlp = || {
        Mlp::new(MlpConfig {
            hidden: vec![48, 48],
            epochs: 6,
            dropout: 0.05,
            seed: SMOKE_SEED,
            ..MlpConfig::default()
        })
    };
    let mut twins: Vec<TrainTwin> = vec![
        ("forest", Box::new(forest()), Box::new(forest())),
        ("mlp", Box::new(mlp()), Box::new(mlp())),
    ];
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut total = 0.0;
    for (name, serial, parallel) in &mut twins {
        let t0 = Instant::now();
        serial
            .fit_with(&data, &serial_ctx)
            .map_err(|e| format!("{name} serial fit: {e:?}"))?;
        let serial_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        parallel
            .fit_with(&data, &par_ctx)
            .map_err(|e| format!("{name} parallel fit: {e:?}"))?;
        let par_secs = t1.elapsed().as_secs_f64();
        total += serial_secs + par_secs;

        let a = serial.predict(&data.x).map_err(|e| format!("{e:?}"))?;
        let b = parallel.predict(&data.x).map_err(|e| format!("{e:?}"))?;
        if a != b {
            return Err(format!(
                "training determinism violation: {name} fit at {TRAIN_THREADS} threads \
                 diverged from the serial fit"
            ));
        }
        let speedup = serial_secs / par_secs.max(1e-9);
        if *name == "forest" && cores >= TRAIN_THREADS && speedup < MIN_TRAIN_SPEEDUP {
            return Err(format!(
                "training speedup regression: forest {speedup:.2}x < \
                 {MIN_TRAIN_SPEEDUP:.1}x at {TRAIN_THREADS} threads ({cores} cores)"
            ));
        }
        println!(
            "bench_gate: train smoke {name}: serial {serial_secs:.2}s, \
             {TRAIN_THREADS} threads {par_secs:.2}s ({speedup:.2}x, bit-identical)"
        );
    }
    if cores < TRAIN_THREADS {
        println!(
            "bench_gate: host has {cores} core(s) < {TRAIN_THREADS} — speedup ratio not \
             enforced (bit-identity still checked)"
        );
    }
    Ok(total)
}

/// Runs the seeded smoke pipeline twice on one telemetry handle, sharing
/// one evaluation cache + surrogate memo across the runs (both disabled
/// under `--no-cache`), then runs the [`train_smoke`] phase on the same
/// handle. Returns (report, pipeline wall seconds, training wall seconds),
/// or an error if the runs are not bit-identical, (cache on) the saved-EM
/// fraction falls under [`MIN_SAVED_FRACTION`], or the training smoke
/// breaks its determinism/speedup contract.
fn smoke_config(threads: usize) -> IsopConfig {
    IsopConfig {
        harmonica: HarmonicaConfig {
            stages: 2,
            samples_per_stage: 120,
            top_monomials: 6,
            bits_per_stage: 8,
            ..HarmonicaConfig::default()
        },
        hyperband: HyperbandConfig {
            max_resource: 3.0,
            eta: 3.0,
        },
        gd_candidates: 4,
        gd_epochs: 25,
        cand_num: 3,
        parallelism: Parallelism::new(threads),
        ..IsopConfig::default()
    }
}

fn run_smoke(use_cache: bool, journal_dir: &std::path::Path) -> Result<SmokeMeasurement, String> {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let telemetry = Telemetry::enabled();
    let simulator = AnalyticalSolver::new().with_telemetry(telemetry.clone());
    let config = smoke_config(SMOKE_THREADS);
    let cache = if use_cache {
        EvalCache::new()
    } else {
        EvalCache::disabled()
    };
    let memo = if use_cache {
        SurrogateMemo::new()
    } else {
        SurrogateMemo::disabled()
    };
    let t0 = Instant::now();
    let run = || {
        IsopOptimizer::new(&space, &surrogate, &simulator, config.clone())
            .with_telemetry(telemetry.clone())
            .with_eval_cache(cache.clone())
            .with_surrogate_memo(memo.clone())
            .run(
                isop::tasks::objective_for(TaskId::T1, vec![]),
                Budget::unlimited(),
                SMOKE_SEED,
            )
    };
    let first = run();
    let second = run();
    let wall = t0.elapsed().as_secs_f64();

    // The cache contract, checked on every gate invocation: a warm cache
    // must not change a single bit of the outcome.
    if first.candidates != second.candidates || first.success != second.success {
        return Err("cache contract violation: repeat run diverged from the first".into());
    }
    if (first.em_seconds + first.em_seconds_saved).to_bits()
        != (second.em_seconds + second.em_seconds_saved).to_bits()
    {
        return Err("cache contract violation: charged + saved EM differs between runs".into());
    }
    if use_cache {
        let charged = telemetry.em_seconds();
        let saved = telemetry.em_seconds_saved();
        let fraction = saved / (charged + saved);
        // NaN (0/0: no EM ran at all) must fail too, not just low fractions.
        if fraction.is_nan() || fraction < MIN_SAVED_FRACTION {
            return Err(format!(
                "cache ineffective: saved {saved:.2}s of {:.2}s total EM \
                 ({:.0}% < {:.0}% required)",
                charged + saved,
                fraction * 100.0,
                MIN_SAVED_FRACTION * 100.0
            ));
        }
        println!(
            "bench_gate: cache elided {saved:.2}s of {:.2}s EM ({:.0}%)",
            charged + saved,
            fraction * 100.0
        );
    }

    // Training phase on the same telemetry handle, so `train.chunks` (and
    // any future training counters) land in the budgeted report.
    let train_wall = train_smoke(&telemetry)?;

    // Fault-injection phase: runs on scratch handles, then folds the
    // faulted serial run's counters into the main handle so the retry
    // budgets land in the gated report.
    let fault_wall = fault_smoke(&telemetry)?;

    // Scheduler phase: sync-vs-async ledger comparison plus the async
    // thread-width identity run, folding the async counters into the
    // main handle so the `em.sched.*` budgets are gated.
    let sched_wall = sched_smoke(&telemetry)?;

    // Batched-sweep phase: pure-function identity checks, no telemetry.
    let sweep_wall = sweep_smoke()?;

    // Warm-store phase: cold-vs-warm persistent replay plus the model
    // registry round-trip, folding the store counters into the main
    // handle so the `store.*` budgets are gated.
    let (store_wall, store) = store_smoke(&telemetry)?;

    // Multi-job engine phase: solo-vs-batched bit-identity, cross-job EM
    // elision, and the serial-vs-concurrent throughput comparison, folding
    // the serial batch's counters into the main handle so the `engine.*`
    // budgets are gated.
    let (engine_wall, engine) = engine_smoke(&telemetry)?;

    // Daemon phase: a live TCP round-trip plus the deterministic
    // kill-mid-epoch / journal-replay contract, folding the synchronous
    // legs' counters into the main handle so the `daemon.*` budgets are
    // gated.
    let (daemon_wall, daemon) = daemon_smoke(&telemetry, journal_dir)?;

    let mut report = telemetry.run_report();
    report.task = TaskId::T1.to_string();
    report.space = "s1".to_string();
    report.seed = SMOKE_SEED;
    report.threads = SMOKE_THREADS;
    report.success = second.success;
    report.samples_seen = first.samples_seen + second.samples_seen;
    report.invalid_seen = first.invalid_seen + second.invalid_seen;
    report.algorithm_seconds = first.algorithm_seconds + second.algorithm_seconds;
    report.resolution = first.resolution.as_str().to_string();
    Ok(SmokeMeasurement {
        report,
        wall,
        train_wall,
        fault_wall,
        sched_wall,
        sweep_wall,
        store_wall,
        store,
        engine_wall,
        engine,
        daemon_wall,
        daemon,
    })
}

/// The fault-tolerant roll-out's smoke. Four pipeline runs on scratch
/// telemetry handles (no shared cache, so each roll-out is cold):
///
/// 1. a plain run without the fault layer;
/// 2. a rate-0 run *through* [`FaultInjector`] — must be bit-identical to
///    (1) in candidates, success, both EM ledgers, and every counter (the
///    disabled fault layer is invisible);
/// 3. a faulted run at 1 thread and 4. at 4 threads — the per-design fault
///    stream must make them bit-identical to each other, with retries and
///    transient failures actually observed.
///
/// Folds run (3)'s counters into `main`, so `em.retries` and friends are
/// gated by the checked-in counter budgets. Returns the phase wall-clock.
fn fault_smoke(main: &Telemetry) -> Result<f64, String> {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let t0 = Instant::now();
    let run = |rate: f64, permanent: f64, threads: usize, telemetry: &Telemetry| {
        let solver = AnalyticalSolver::new().with_telemetry(telemetry.clone());
        let injector = FaultInjector::new(
            solver,
            FaultConfig {
                transient_rate: rate,
                permanent_rate: permanent,
                seed: FAULT_SEED,
            },
        )
        .with_telemetry(telemetry.clone());
        IsopOptimizer::new(&space, &surrogate, &injector, smoke_config(threads))
            .with_telemetry(telemetry.clone())
            .run(
                isop::tasks::objective_for(TaskId::T1, vec![]),
                Budget::unlimited(),
                SMOKE_SEED,
            )
    };
    let plain_tele = Telemetry::enabled();
    let plain = {
        let solver = AnalyticalSolver::new().with_telemetry(plain_tele.clone());
        IsopOptimizer::new(&space, &surrogate, &solver, smoke_config(SMOKE_THREADS))
            .with_telemetry(plain_tele.clone())
            .run(
                isop::tasks::objective_for(TaskId::T1, vec![]),
                Budget::unlimited(),
                SMOKE_SEED,
            )
    };
    let zero_tele = Telemetry::enabled();
    let zero = run(0.0, 0.0, SMOKE_THREADS, &zero_tele);
    if zero.candidates != plain.candidates
        || zero.success != plain.success
        || zero.em_seconds.to_bits() != plain.em_seconds.to_bits()
        || zero.em_seconds_saved.to_bits() != plain.em_seconds_saved.to_bits()
        || zero.resolution != RolloutResolution::Full
    {
        return Err("fault transparency violation: rate-0 fault layer changed the outcome".into());
    }
    for c in Counter::ALL {
        if zero_tele.counter(c) != plain_tele.counter(c) {
            return Err(format!(
                "fault transparency violation: rate-0 fault layer moved counter {}",
                c.name()
            ));
        }
    }

    let serial_tele = Telemetry::enabled();
    let serial = run(FAULT_RATE, FAULT_PERMANENT_RATE, 1, &serial_tele);
    let wide_tele = Telemetry::enabled();
    let wide = run(FAULT_RATE, FAULT_PERMANENT_RATE, 4, &wide_tele);
    if serial.candidates != wide.candidates
        || serial.resolution != wide.resolution
        || serial.em_seconds.to_bits() != wide.em_seconds.to_bits()
        || serial.em_seconds_saved.to_bits() != wide.em_seconds_saved.to_bits()
    {
        return Err(
            "fault determinism violation: faulted outcome diverged between 1 and 4 threads".into(),
        );
    }
    for c in Counter::ALL {
        if serial_tele.counter(c) != wide_tele.counter(c) {
            return Err(format!(
                "fault determinism violation: counter {} diverged between 1 and 4 threads",
                c.name()
            ));
        }
    }
    if serial_tele.counter(Counter::EmRetries) == 0
        || serial_tele.counter(Counter::EmFailuresTransient) == 0
    {
        return Err(format!(
            "fault smoke inert: rate {FAULT_RATE} produced no retries at seed {SMOKE_SEED} — \
             the retry budgets below gate nothing"
        ));
    }
    for c in Counter::ALL {
        main.add(c, serial_tele.counter(c));
    }
    println!(
        "bench_gate: fault smoke: rate-0 transparent; 1 vs 4 threads bit-identical \
         ({} retries, {} transient, {} permanent, {} topped up, resolution {})",
        serial_tele.counter(Counter::EmRetries),
        serial_tele.counter(Counter::EmFailuresTransient),
        serial_tele.counter(Counter::EmFailuresPermanent),
        serial_tele.counter(Counter::EmToppedUp),
        serial.resolution
    );
    Ok(t0.elapsed().as_secs_f64())
}

/// The async batched scheduler's smoke. Three faulted pipeline runs on
/// scratch telemetry handles (no shared cache, so every roll-out is cold),
/// all at the [`FAULT_RATE`]/[`FAULT_PERMANENT_RATE`] fault config:
///
/// 1. the synchronous reference schedule at [`SMOKE_THREADS`];
/// 2. the async batched schedule at 1 thread and 3. at 4 threads.
///
/// Gated properties: the two async runs are bit-identical to each other
/// (candidates, both ledgers, every counter — batch composition is a pure
/// function of design identity and the logical clock, never thread
/// arrival order); the async schedule delivers the synchronous schedule's
/// candidate set; and — because retries genuinely fired — the async
/// charged ledger lands **strictly below** the synchronous one, whose
/// per-record retry surcharge and backoff the batch stream absorbs into
/// shared slots. Folds run (2)'s counters into `main`, so the
/// `em.sched.*` budgets gate batch-count and slack regressions like any
/// other counter. Returns the phase wall-clock.
fn sched_smoke(main: &Telemetry) -> Result<f64, String> {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let t0 = Instant::now();
    let run = |schedule: RolloutSchedule, threads: usize, telemetry: &Telemetry| {
        let solver = AnalyticalSolver::new().with_telemetry(telemetry.clone());
        let injector = FaultInjector::new(
            solver,
            FaultConfig {
                transient_rate: FAULT_RATE,
                permanent_rate: FAULT_PERMANENT_RATE,
                seed: FAULT_SEED,
            },
        )
        .with_telemetry(telemetry.clone());
        let config = IsopConfig {
            schedule,
            ..smoke_config(threads)
        };
        IsopOptimizer::new(&space, &surrogate, &injector, config)
            .with_telemetry(telemetry.clone())
            .run(
                isop::tasks::objective_for(TaskId::T1, vec![]),
                Budget::unlimited(),
                SMOKE_SEED,
            )
    };
    let sync_tele = Telemetry::enabled();
    let sync = run(RolloutSchedule::Synchronous, SMOKE_THREADS, &sync_tele);
    let serial_tele = Telemetry::enabled();
    let serial = run(RolloutSchedule::AsyncBatched, 1, &serial_tele);
    let wide_tele = Telemetry::enabled();
    let wide = run(RolloutSchedule::AsyncBatched, 4, &wide_tele);

    if serial.candidates != wide.candidates
        || serial.resolution != wide.resolution
        || serial.em_seconds.to_bits() != wide.em_seconds.to_bits()
        || serial.em_seconds_saved.to_bits() != wide.em_seconds_saved.to_bits()
    {
        return Err(
            "scheduler determinism violation: async outcome diverged between 1 and 4 threads"
                .into(),
        );
    }
    for c in Counter::ALL {
        if serial_tele.counter(c) != wide_tele.counter(c) {
            return Err(format!(
                "scheduler determinism violation: counter {} diverged between 1 and 4 threads",
                c.name()
            ));
        }
    }
    if serial.candidates != sync.candidates || serial.resolution != sync.resolution {
        return Err(
            "scheduler quality violation: async schedule changed the delivered candidate set"
                .into(),
        );
    }
    if serial_tele.counter(Counter::EmRetries) == 0 {
        return Err(format!(
            "scheduler smoke inert: rate {FAULT_RATE} produced no retries at seed \
             {SMOKE_SEED} — the ledger comparison below proves nothing"
        ));
    }
    if serial.em_seconds >= sync.em_seconds {
        return Err(format!(
            "scheduler ledger regression: async charged {:.2}s >= synchronous {:.2}s — \
             batching no longer absorbs the retry surcharge",
            serial.em_seconds, sync.em_seconds
        ));
    }
    if serial_tele.counter(Counter::EmSchedBatches) == 0 {
        return Err("scheduler smoke inert: async run formed no live batches".into());
    }
    for c in Counter::ALL {
        main.add(c, serial_tele.counter(c));
    }
    println!(
        "bench_gate: sched smoke: async charged {:.2}s < sync {:.2}s at equal candidates; \
         1 vs 4 threads bit-identical ({} batches, {} slack slots, {} interleaved)",
        serial.em_seconds,
        sync.em_seconds,
        serial_tele.counter(Counter::EmSchedBatches),
        serial_tele.counter(Counter::EmSchedSlackSlots),
        serial_tele.counter(Counter::EmSchedInterleaved),
    );
    Ok(t0.elapsed().as_secs_f64())
}

/// Appends the eight re/im bit patterns of a sweep point's four
/// S-parameters, the unit of the bitwise identity comparisons below.
fn collect_sweep_bits(view: isop_em::sweep::SweepView<'_>, out: &mut Vec<u64>) {
    for i in 0..view.len() {
        for s in [view.s11(i), view.s21(i), view.s12(i), view.s22(i)] {
            out.push(s.re.to_bits());
            out.push(s.im.to_bits());
        }
    }
}

/// The batched sweep's smoke: a fleet of link-level channels (shared
/// layers, repeated segments, stubbed and back-drilled vias) swept once
/// through the scalar per-point path and once through a shared cold
/// [`SweepPlan`](isop_em::sweep::SweepPlan).
///
/// Always enforced: the two passes are bit-identical at every (channel,
/// frequency) point, and lane width 1 equals lane width 4 bit for bit.
/// Enforced only when the `simd-lanes` feature is compiled in: the batched
/// pass (interning cost included) is at least [`MIN_SWEEP_SPEEDUP`]x
/// faster than the scalar pass. Returns the phase wall-clock, seconds.
fn sweep_smoke() -> Result<f64, String> {
    use isop_em::channel::{Channel, Element};
    use isop_em::stackup::DiffStripline;
    use isop_em::sweep::{lanes_compiled, LaneWidth, SweepPlan};
    use isop_em::via::Via;

    let t0 = Instant::now();
    let layers: Vec<DiffStripline> = (0..4)
        .map(|i| DiffStripline {
            trace_width: 4.0 + 0.5 * i as f64,
            ..DiffStripline::default()
        })
        .collect();
    let mut channels = Vec::new();
    for c in 0..16usize {
        let mut elems = Vec::new();
        for s in 0..4usize {
            elems.push(Element::Stripline {
                layer: layers[(c + s) % layers.len()],
                length_inches: 1.0 + ((c + 2 * s) % 3) as f64,
            });
            elems.push(Element::Via(Via {
                stub_length: if (c + s) % 2 == 0 { 20.0 } else { 0.0 },
                ..Via::default()
            }));
        }
        channels.push(Channel::new(elems).map_err(|e| format!("sweep smoke channel: {e}"))?);
    }
    let freqs = SweepPlan::log_spaced(1e8, 4e10, SWEEP_POINTS)
        .freqs()
        .to_vec();

    // Scalar reference pass: per-point ABCD chain + S-parameter conversion.
    let t_scalar = Instant::now();
    let mut scalar_bits: Vec<u64> = Vec::with_capacity(channels.len() * SWEEP_POINTS * 8);
    for ch in &channels {
        let z = ch.reference_impedance();
        for &f in &freqs {
            let (s11, s21, s12, s22) = ch.abcd(f).to_s_params(z);
            for s in [s11, s21, s12, s22] {
                scalar_bits.push(s.re.to_bits());
                scalar_bits.push(s.im.to_bits());
            }
        }
    }
    let scalar_secs = t_scalar.elapsed().as_secs_f64();

    // Batched pass through one cold plan (interning cost included).
    let t_batched = Instant::now();
    let mut plan = SweepPlan::log_spaced(1e8, 4e10, SWEEP_POINTS);
    let mut batched_bits: Vec<u64> = Vec::with_capacity(scalar_bits.len());
    plan.sweep_channels(&channels, |_, view| {
        collect_sweep_bits(view, &mut batched_bits)
    });
    let batched_secs = t_batched.elapsed().as_secs_f64();

    if scalar_bits != batched_bits {
        return Err("sweep identity violation: batched sweep diverged from the scalar path".into());
    }

    // Lane-determinism contract: width 1 must reproduce width 4 bit for bit.
    let mut narrow = SweepPlan::log_spaced(1e8, 4e10, SWEEP_POINTS).with_lanes(LaneWidth::W1);
    let mut narrow_bits: Vec<u64> = Vec::with_capacity(batched_bits.len());
    narrow.sweep_channels(&channels, |_, view| {
        collect_sweep_bits(view, &mut narrow_bits)
    });
    if narrow_bits != batched_bits {
        return Err("sweep lane determinism violation: lane width 1 diverged from width 4".into());
    }

    let speedup = scalar_secs / batched_secs.max(1e-9);
    if lanes_compiled() && speedup < MIN_SWEEP_SPEEDUP {
        return Err(format!(
            "sweep speedup regression: batched {speedup:.2}x < {MIN_SWEEP_SPEEDUP:.1}x \
             over the scalar path ({scalar_secs:.3}s vs {batched_secs:.3}s)"
        ));
    }
    println!(
        "bench_gate: sweep smoke: {} channels x {SWEEP_POINTS} points bit-identical, \
         lanes 1 == 4 (scalar {scalar_secs:.3}s, batched {batched_secs:.3}s, {speedup:.2}x{})",
        channels.len(),
        if lanes_compiled() {
            ""
        } else {
            "; lanes off — speedup not enforced"
        }
    );
    Ok(t0.elapsed().as_secs_f64())
}

/// The persistent store's smoke: the seeded pipeline runs **cold**
/// against a fresh store directory, then **warm** against the same
/// directory from fresh handles at 1 and at 4 threads — a separate
/// process would observe exactly the same bytes, so this is the
/// cross-run warm-start contract:
///
/// 1. the warm candidates, success, and charged+saved ledger sum are
///    bit-identical to the cold run's, with the replay eliding at least
///    [`STORE_MIN_ELIDED_FRACTION`] of the cold charged EM seconds and
///    at least one record served as a cross-job hit;
/// 2. the two warm widths agree bit for bit — candidates, both ledgers,
///    every counter (store hydration sits in the serial probe path, so
///    thread width cannot reorder it);
/// 3. a zoo surrogate fitted through the model registry reloads warm
///    with **zero** training work — no `ml.fit.*` span, `train.chunks`
///    still 0 on the warm handle — and predicts bit-identically.
///
/// Folds the cold and warm-serial handles' counters into `main` so the
/// `store.*` read/write volumes (and the registry hit/miss split) are
/// budgeted like any other counter. Returns the phase wall-clock and the
/// cold-vs-warm summary for `BENCH_pr8.json`.
fn store_smoke(main: &Telemetry) -> Result<(f64, StoreSmokeSummary), String> {
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let t0 = Instant::now();
    let dir = std::env::temp_dir().join(format!("isop-bench-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let run = |threads: usize, telemetry: &Telemetry, persist: bool| {
        let store = Arc::new(
            Store::open(&dir)
                .map_err(|e| format!("store smoke: open {}: {e}", dir.display()))?
                .with_telemetry(telemetry.clone()),
        );
        let cache = EvalCache::with_store(Arc::clone(&store));
        let solver = AnalyticalSolver::new().with_telemetry(telemetry.clone());
        let outcome = IsopOptimizer::new(&space, &surrogate, &solver, smoke_config(threads))
            .with_telemetry(telemetry.clone())
            .with_eval_cache(cache.clone())
            .run(
                isop::tasks::objective_for(TaskId::T1, vec![]),
                Budget::unlimited(),
                SMOKE_SEED,
            );
        if persist {
            cache
                .persist()
                .map_err(|e| format!("store smoke: flush: {e}"))?;
        }
        Ok::<_, String>(outcome)
    };

    let cold_tele = Telemetry::enabled();
    let t_cold = Instant::now();
    let cold = run(SMOKE_THREADS, &cold_tele, true)?;
    let cold_wall = t_cold.elapsed().as_secs_f64();
    if cold.em_seconds <= 0.0 {
        return Err("store smoke inert: the cold run charged no EM seconds".into());
    }

    // Cold zoo fit through the registry, persisted next to the eval
    // records (serial training context so the folded `train.*` counters
    // stay host-independent).
    let data = generate_dataset(&space, 300, &AnalyticalSolver::new(), SMOKE_SEED)
        .map_err(|e| format!("store smoke dataset: {e:?}"))?;
    let zoo_mlp = || {
        Mlp::new(MlpConfig {
            hidden: vec![16, 16],
            epochs: 4,
            seed: SMOKE_SEED,
            ..MlpConfig::default()
        })
    };
    let t_fit_cold = Instant::now();
    let cold_pred = {
        let store = Arc::new(
            Store::open(&dir)
                .map_err(|e| format!("store smoke: reopen for zoo: {e}"))?
                .with_telemetry(cold_tele.clone()),
        );
        let zoo = isop::surrogate::ModelZoo::new(Parallelism::serial())
            .with_telemetry(cold_tele.clone())
            .with_registry(ModelRegistry::new(store).with_telemetry(cold_tele.clone()));
        let (s, hit) = zoo
            .fit_neural_registered(STORE_ZOO_SPACE_ID, zoo_mlp(), &data)
            .map_err(|e| format!("store smoke: cold zoo fit: {e:?}"))?;
        if hit {
            return Err("store smoke: cold zoo fit was served from an empty store".into());
        }
        zoo.registry()
            .expect("registry attached above")
            .persist()
            .map_err(|e| format!("store smoke: zoo flush: {e}"))?;
        isop_ml::Regressor::predict(s.model(), &data.x).map_err(|e| format!("{e:?}"))?
    };
    let cold_fit_wall = t_fit_cold.elapsed().as_secs_f64();

    // Warm replays from fresh handles (no persist: the store stays
    // byte-identical between the two widths, and a full-hit replay has
    // nothing new to write anyway).
    let warm_tele = Telemetry::enabled();
    let t_warm = Instant::now();
    let warm = run(1, &warm_tele, false)?;
    let warm_wall = t_warm.elapsed().as_secs_f64();
    let wide_tele = Telemetry::enabled();
    let wide = run(4, &wide_tele, false)?;

    if warm.candidates != cold.candidates || warm.success != cold.success {
        return Err("store replay violation: warm run diverged from the cold run".into());
    }
    if (warm.em_seconds + warm.em_seconds_saved).to_bits()
        != (cold.em_seconds + cold.em_seconds_saved).to_bits()
    {
        return Err(
            "store replay violation: charged + saved EM differs between cold and warm".into(),
        );
    }
    let elided = 1.0 - warm.em_seconds / cold.em_seconds;
    if elided < STORE_MIN_ELIDED_FRACTION {
        return Err(format!(
            "store replay ineffective: warm run still charged {:.2}s of {:.2}s cold EM \
             ({:.0}% elided < {:.0}% required)",
            warm.em_seconds,
            cold.em_seconds,
            elided * 100.0,
            STORE_MIN_ELIDED_FRACTION * 100.0
        ));
    }
    if warm_tele.counter(Counter::StoreCrossJobHits) == 0 {
        return Err("store smoke inert: warm run observed no cross-job hits".into());
    }
    if warm.candidates != wide.candidates
        || warm.em_seconds.to_bits() != wide.em_seconds.to_bits()
        || warm.em_seconds_saved.to_bits() != wide.em_seconds_saved.to_bits()
    {
        return Err(
            "store determinism violation: warm outcome diverged between 1 and 4 threads".into(),
        );
    }
    for c in Counter::ALL {
        if warm_tele.counter(c) != wide_tele.counter(c) {
            return Err(format!(
                "store determinism violation: counter {} diverged between 1 and 4 threads",
                c.name()
            ));
        }
    }

    // Warm zoo load: zero training work, bit-identical predictions.
    let zoo_tele = Telemetry::enabled();
    let t_fit_warm = Instant::now();
    {
        let store = Arc::new(
            Store::open(&dir)
                .map_err(|e| format!("store smoke: reopen warm zoo: {e}"))?
                .with_telemetry(zoo_tele.clone()),
        );
        let zoo = isop::surrogate::ModelZoo::new(Parallelism::serial())
            .with_telemetry(zoo_tele.clone())
            .with_registry(ModelRegistry::new(store).with_telemetry(zoo_tele.clone()));
        let (s, hit) = zoo
            .fit_neural_registered(STORE_ZOO_SPACE_ID, zoo_mlp(), &data)
            .map_err(|e| format!("store smoke: warm zoo load: {e:?}"))?;
        if !hit {
            return Err(
                "store registry violation: warm zoo fit retrained instead of loading".into(),
            );
        }
        let warm_pred =
            isop_ml::Regressor::predict(s.model(), &data.x).map_err(|e| format!("{e:?}"))?;
        for r in 0..cold_pred.rows() {
            for (a, b) in cold_pred.row(r).iter().zip(warm_pred.row(r)) {
                if a.to_bits() != b.to_bits() {
                    return Err(
                        "store registry violation: warm surrogate predictions diverged".into(),
                    );
                }
            }
        }
    }
    let warm_fit_wall = t_fit_warm.elapsed().as_secs_f64();
    let zoo_report = zoo_tele.run_report();
    if zoo_report.counter("train.chunks") != 0
        || zoo_report
            .spans
            .iter()
            .any(|s| s.name.starts_with("ml.fit."))
    {
        return Err("store registry violation: warm zoo load performed training work".into());
    }

    for c in Counter::ALL {
        main.add(c, cold_tele.counter(c));
        main.add(c, warm_tele.counter(c));
        main.add(c, zoo_tele.counter(c));
    }
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "bench_gate: store smoke: warm replay elided {:.0}% of {:.2}s cold EM \
         ({} cross-job hits), zoo reload {:.3}s vs {:.3}s cold fit, \
         1 vs 4 threads bit-identical",
        elided * 100.0,
        cold.em_seconds,
        warm_tele.counter(Counter::StoreCrossJobHits),
        warm_fit_wall,
        cold_fit_wall,
    );
    Ok((
        t0.elapsed().as_secs_f64(),
        StoreSmokeSummary {
            cold_wall_seconds: cold_wall,
            warm_wall_seconds: warm_wall,
            cold_em_charged_seconds: cold.em_seconds,
            warm_em_charged_seconds: warm.em_seconds,
            warm_em_saved_seconds: warm.em_seconds_saved,
            warm_cross_job_hits: warm_tele.counter(Counter::StoreCrossJobHits),
            cold_fit_wall_seconds: cold_fit_wall,
            warm_fit_wall_seconds: warm_fit_wall,
        },
    ))
}

/// Compares one job's outcome across two engine runs: candidates, both EM
/// ledgers at exact bits, resolution, and every per-job counter.
fn engine_jobs_identical(a: &isop::engine::JobResult, b: &isop::engine::JobResult) -> bool {
    a.candidates == b.candidates
        && a.em_seconds_charged.to_bits() == b.em_seconds_charged.to_bits()
        && a.em_seconds_saved.to_bits() == b.em_seconds_saved.to_bits()
        && a.success == b.success
        && a.resolution == b.resolution
        && a.report.counters == b.report.counters
}

/// The multi-job engine's smoke. A four-job mixed-space batch — tenants
/// `acme` and `blue`, each submitting a fresh space and a rerun of it, so
/// fair admission at two slots puts the fresh pair in wave 0 and the
/// reruns in wave 1 — runs three ways against fresh store directories:
///
/// 1. job `acme-s1` **solo** (the reference the identity clause compares
///    against);
/// 2. the batch **serially**: one core permit, one wave slot;
/// 3. the batch **concurrently**: host cores, two wave slots.
///
/// Always enforced: the solo job is bit-identical — candidates, ledgers,
/// every per-job counter — to the same job inside both batches; the rerun
/// jobs charge zero EM seconds (served entirely from wave 0's flushed
/// records, observed as cross-job hits); and the permit high-water mark
/// respects the budget. On hosts with at least [`ENGINE_SPEEDUP_CORES`]
/// cores the concurrent batch must additionally beat the serial batch by
/// [`MIN_ENGINE_SPEEDUP`]x wall-clock. Folds the serial batch's per-job
/// and engine/store counters into `main` so the `engine.*` wave/job
/// counts and the batch's EM volumes are budgeted. Returns the phase
/// wall-clock and the serial-vs-concurrent summary for `BENCH_pr9.json`.
fn engine_smoke(main: &Telemetry) -> Result<(f64, EngineSmokeSummary), String> {
    use isop::engine::{Engine, EngineConfig};
    use isop::jobs::{JobQueue, JobSpec};

    let t0 = Instant::now();
    let scratch = std::env::temp_dir().join(format!("isop-bench-engine-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    let spec = |id: &str, tenant: &str, space: &str| JobSpec {
        id: id.to_string(),
        tenant: tenant.to_string(),
        space: space.to_string(),
        seed: SMOKE_SEED,
        threads: SMOKE_THREADS,
        ..JobSpec::default()
    };
    let batch = [
        spec("acme-s1", "acme", "s1"),
        spec("acme-s1-rerun", "acme", "s1"),
        spec("blue-s2", "blue", "s2"),
        spec("blue-s2-rerun", "blue", "s2"),
    ];
    let run = |label: &str, specs: &[JobSpec], cores: usize, wave_slots: usize| {
        let mut queue = JobQueue::new();
        for s in specs {
            queue.push(s.clone());
        }
        let telemetry = Telemetry::enabled();
        let store = Arc::new(
            Store::open(&scratch.join(label))
                .map_err(|e| format!("engine smoke: open {label} store: {e}"))?
                .with_telemetry(telemetry.clone()),
        );
        let report = Engine::new(EngineConfig {
            cores,
            wave_slots,
            pipeline: smoke_config(SMOKE_THREADS),
        })
        .with_telemetry(telemetry.clone())
        .with_store(store)
        .run(&queue)
        .map_err(|e| format!("engine smoke: {label} run: {e}"))?;
        Ok::<_, String>((report, telemetry))
    };

    let (solo, _) = run("solo", &batch[..1], 1, 1)?;
    let t_serial = Instant::now();
    let (serial, serial_tele) = run("serial", &batch, 1, 1)?;
    let serial_wall = t_serial.elapsed().as_secs_f64();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t_conc = Instant::now();
    let (concurrent, _) = run("concurrent", &batch, host_cores, 2)?;
    let concurrent_wall = t_conc.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&scratch).ok();

    // Identity clause: the wave-0 job must not feel its batch at all.
    let find = |rep: &isop::engine::EngineReport, id: &str| {
        rep.jobs
            .iter()
            .find(|j| j.id == id)
            .cloned()
            .ok_or_else(|| format!("engine smoke: job '{id}' missing"))
    };
    let reference = find(&solo, "acme-s1")?;
    for (label, rep) in [("serial", &serial), ("concurrent", &concurrent)] {
        if !engine_jobs_identical(&reference, &find(rep, "acme-s1")?) {
            return Err(format!(
                "engine identity violation: acme-s1 in the {label} batch diverged from \
                 running solo"
            ));
        }
    }

    // Elision clause: wave 1's reruns run entirely off wave 0's records.
    if concurrent.waves != 2 {
        return Err(format!(
            "engine smoke: expected 2 admission waves, got {}",
            concurrent.waves
        ));
    }
    for id in ["acme-s1-rerun", "blue-s2-rerun"] {
        let rerun = find(&concurrent, id)?;
        if rerun.em_seconds_charged.to_bits() != 0f64.to_bits() || rerun.em_seconds_saved <= 0.0 {
            return Err(format!(
                "engine elision violation: {id} charged {:.2}s EM despite an identical \
                 wave-0 predecessor (saved {:.2}s)",
                rerun.em_seconds_charged, rerun.em_seconds_saved
            ));
        }
    }
    if concurrent.cross_job_hits == 0 {
        return Err("engine smoke inert: concurrent batch observed no cross-job hits".into());
    }
    if concurrent.peak_core_permits > host_cores || serial.peak_core_permits > 1 {
        return Err(format!(
            "engine budget violation: peak permits {} (serial {}) exceeded the grant",
            concurrent.peak_core_permits, serial.peak_core_permits
        ));
    }

    // Throughput clause, only where the host can actually overlap jobs.
    let speedup = serial_wall / concurrent_wall.max(1e-9);
    if host_cores >= ENGINE_SPEEDUP_CORES && speedup < MIN_ENGINE_SPEEDUP {
        return Err(format!(
            "engine throughput regression: concurrent batch {speedup:.2}x < \
             {MIN_ENGINE_SPEEDUP:.1}x over serial ({serial_wall:.2}s vs \
             {concurrent_wall:.2}s on {host_cores} cores)"
        ));
    }

    // Budget fold: the serial batch's engine handle (engine.* + store.*)
    // plus each per-job report — all deterministic in serial admission.
    for c in Counter::ALL {
        main.add(c, serial_tele.counter(c));
        for job in &serial.jobs {
            main.add(c, job.report.counter(c.name()));
        }
    }
    println!(
        "bench_gate: engine smoke: 4-job batch serial {serial_wall:.2}s vs concurrent \
         {concurrent_wall:.2}s ({speedup:.2}x{}); reruns elided {:.2}s EM via {} cross-job \
         hits; solo == batched bit for bit",
        if host_cores >= ENGINE_SPEEDUP_CORES {
            ""
        } else {
            "; few cores — ratio not enforced"
        },
        concurrent.em_seconds_saved,
        concurrent.cross_job_hits
    );
    Ok((
        t0.elapsed().as_secs_f64(),
        EngineSmokeSummary {
            host_cores,
            serial_wall_seconds: serial_wall,
            concurrent_wall_seconds: concurrent_wall,
            speedup,
            em_seconds_charged: concurrent.em_seconds_charged,
            em_seconds_saved: concurrent.em_seconds_saved,
            cross_job_hits: concurrent.cross_job_hits,
            peak_core_permits: concurrent.peak_core_permits,
            waves: concurrent.waves,
        },
    ))
}

/// The live daemon's smoke, in two legs.
///
/// **TCP leg**: a real [`Daemon`] serves a loopback socket; the four-job
/// demo streams in as NDJSON `submit` lines, `status` is polled until all
/// four jobs finish, and `shutdown` drains the daemon. Proves the wire
/// path end to end — every response must be `"ok":true` and the journal
/// must hold a `Finished` frame per job. (Epoch composition on this leg
/// depends on request timing, so it asserts liveness, not bit-identity.)
///
/// **Kill/restart leg**, driven synchronously so the epoch layout is
/// deterministic: a victim daemon takes the same four jobs in one
/// two-wave epoch and dies mid-epoch via the chaos knob — immediately
/// after wave 1's safe-point journal flush, the worst crash window the
/// safety invariant allows. A restarted daemon on the same store must
/// recover exactly two replayed and two resumed jobs and finish the epoch
/// bit-identically to a never-killed reference daemon — candidates, both
/// EM ledgers, every per-job counter — with exactly one `Finished` frame
/// per job in the journal, i.e. zero double-charged EM seconds. Folds the
/// synchronous legs' counters into `main` so the `daemon.*` volumes are
/// budgeted, and copies the recovered journal's shards into `journal_dir`
/// so CI can upload the exact frames the replay identity was proven from.
/// Returns the phase wall-clock and the `BENCH_pr10.json` summary.
fn daemon_smoke(
    main: &Telemetry,
    journal_dir: &std::path::Path,
) -> Result<(f64, DaemonSmokeSummary), String> {
    use isop::jobs::JobSpec;
    use isop_store::JobState;
    use serde::json::Value;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    let t0 = Instant::now();
    let scratch = std::env::temp_dir().join(format!("isop-bench-daemon-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();

    let spec = |id: &str, tenant: &str, space: &str| JobSpec {
        id: id.to_string(),
        tenant: tenant.to_string(),
        space: space.to_string(),
        seed: SMOKE_SEED,
        threads: SMOKE_THREADS,
        ..JobSpec::default()
    };
    let demo = [
        spec("acme-s1", "acme", "s1"),
        spec("acme-s1-rerun", "acme", "s1"),
        spec("blue-s2", "blue", "s2"),
        spec("blue-s2-rerun", "blue", "s2"),
    ];
    let build = |label: &str, chaos: u64, telemetry: &Telemetry| -> Result<Daemon, String> {
        let store = Arc::new(
            Store::open(&scratch.join(label))
                .map_err(|e| format!("daemon smoke: open {label} store: {e}"))?
                .with_telemetry(telemetry.clone()),
        );
        Ok(Daemon::new(DaemonConfig {
            engine: isop::engine::EngineConfig {
                cores: SMOKE_THREADS,
                wave_slots: 2,
                pipeline: smoke_config(SMOKE_THREADS),
            },
            chaos_crash_after_waves: chaos,
            ..DaemonConfig::default()
        })
        .with_store(store)
        .with_telemetry(telemetry.clone()))
    };

    // TCP leg: stream the demo over a real socket and drain it.
    let t_tcp = Instant::now();
    let tcp_tele = Telemetry::enabled();
    let tcp_daemon = Arc::new(build("live", 0, &tcp_tele)?);
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("daemon smoke: bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("daemon smoke: local addr: {e}"))?;
    std::thread::scope(|scope| -> Result<(), String> {
        let server = {
            let daemon = Arc::clone(&tcp_daemon);
            scope.spawn(move || daemon.serve(listener))
        };
        let stream = TcpStream::connect(addr).map_err(|e| format!("daemon smoke: connect: {e}"))?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| format!("daemon smoke: clone stream: {e}"))?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let mut ask = |request: &str| -> Result<Value, String> {
            writer
                .write_all(request.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .map_err(|e| format!("daemon smoke: send: {e}"))?;
            line.clear();
            reader
                .read_line(&mut line)
                .map_err(|e| format!("daemon smoke: read: {e}"))?;
            let value = Value::parse(line.trim())
                .map_err(|e| format!("daemon smoke: bad response '{}': {e}", line.trim()))?;
            let ok = matches!(
                value.as_obj().map(|o| Value::field(o, "ok")),
                Some(Value::Bool(true))
            );
            if !ok {
                return Err(format!("daemon smoke: refused: {}", line.trim()));
            }
            Ok(value)
        };
        for s in &demo {
            ask(&format!(
                r#"{{"op":"submit","job":{}}}"#,
                s.to_value().to_json_string()
            ))?;
        }
        loop {
            let status = ask(r#"{"op":"status"}"#)?;
            let finished = status
                .as_obj()
                .and_then(|o| match Value::field(o, "finished") {
                    Value::Num(n) => Some(*n),
                    _ => None,
                })
                .unwrap_or(0.0);
            if finished as usize >= demo.len() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        ask(r#"{"op":"shutdown"}"#)?;
        drop(writer);
        drop(reader);
        server
            .join()
            .map_err(|_| "daemon smoke: server thread panicked".to_string())?
            .map_err(|e| format!("daemon smoke: serve: {e}"))
    })?;
    drop(tcp_daemon);
    let tcp_frames = Store::open(&scratch.join("live"))
        .map_err(|e| format!("daemon smoke: reopen live store: {e}"))?
        .load_jobs()
        .map_err(|e| format!("daemon smoke: live journal: {e}"))?;
    let tcp_finished = tcp_frames
        .iter()
        .filter(|f| f.state == JobState::Finished)
        .count() as u64;
    if tcp_finished != demo.len() as u64 {
        return Err(format!(
            "daemon smoke: TCP leg journaled {tcp_finished} Finished frames, expected {}",
            demo.len()
        ));
    }
    let tcp_wall = t_tcp.elapsed().as_secs_f64();

    // Kill/restart leg: deterministic single epoch, crash after wave 1.
    let t_recovery = Instant::now();
    let victim_tele = Telemetry::enabled();
    let victim = build("crash", 1, &victim_tele)?;
    for s in &demo {
        let response = victim.handle_request(Request::Submit(s.clone()));
        if let Some(kind) = response.error_kind() {
            return Err(format!("daemon smoke: victim refused '{}': {kind}", s.id));
        }
    }
    match victim.run_next_epoch() {
        Err(e) if e.contains("chaos") => {}
        other => {
            return Err(format!(
                "daemon smoke: victim survived the chaos crash: {other:?}"
            ))
        }
    }
    drop(victim);

    let revived_tele = Telemetry::enabled();
    let revived = build("crash", 0, &revived_tele)?;
    let recovery = revived
        .recover()
        .map_err(|e| format!("daemon smoke: recover: {e}"))?;
    if recovery.epochs_pending != 1 || recovery.jobs_replayed != 2 || recovery.jobs_resumed != 2 {
        return Err(format!(
            "daemon smoke: unexpected recovery {recovery:?} (want 1 epoch, 2 replayed, 2 resumed)"
        ));
    }
    let mut revived_jobs = Vec::new();
    while let Some((_, report)) = revived
        .run_next_epoch()
        .map_err(|e| format!("daemon smoke: resumed epoch: {e}"))?
    {
        revived_jobs.extend(report.jobs);
    }
    let recovery_wall = t_recovery.elapsed().as_secs_f64();

    // Reference: the same epoch on a daemon that was never killed.
    let calm_tele = Telemetry::enabled();
    let calm = build("calm", 0, &calm_tele)?;
    for s in &demo {
        let response = calm.handle_request(Request::Submit(s.clone()));
        if let Some(kind) = response.error_kind() {
            return Err(format!("daemon smoke: calm refused '{}': {kind}", s.id));
        }
    }
    let mut calm_jobs = Vec::new();
    while let Some((_, report)) = calm
        .run_next_epoch()
        .map_err(|e| format!("daemon smoke: calm epoch: {e}"))?
    {
        calm_jobs.extend(report.jobs);
    }

    let find = |jobs: &[isop::engine::JobResult], id: &str| {
        jobs.iter()
            .find(|j| j.id == id)
            .cloned()
            .ok_or_else(|| format!("daemon smoke: job '{id}' missing"))
    };
    for s in &demo {
        let replayed = find(&revived_jobs, &s.id)?;
        let reference = find(&calm_jobs, &s.id)?;
        if !engine_jobs_identical(&replayed, &reference)
            || replayed.disposition != reference.disposition
        {
            return Err(format!(
                "daemon replay violation: job '{}' after kill + restart diverged from the \
                 never-killed daemon",
                s.id
            ));
        }
    }
    let crash_frames = Store::open(&scratch.join("crash"))
        .map_err(|e| format!("daemon smoke: reopen crash store: {e}"))?
        .load_jobs()
        .map_err(|e| format!("daemon smoke: crash journal: {e}"))?;
    let mut finished_frames = 0u64;
    for s in &demo {
        let per_job = crash_frames
            .iter()
            .filter(|f| f.state == JobState::Finished && f.job_id == s.id)
            .count() as u64;
        if per_job != 1 {
            return Err(format!(
                "daemon double-charge violation: job '{}' has {per_job} Finished frames",
                s.id
            ));
        }
        finished_frames += per_job;
    }
    let charged =
        |jobs: &[isop::engine::JobResult]| jobs.iter().map(|j| j.em_seconds_charged).sum::<f64>();
    let calm_charged = charged(&calm_jobs);
    let recovered_charged = charged(&revived_jobs);
    if calm_charged.to_bits() != recovered_charged.to_bits() {
        return Err(format!(
            "daemon double-charge violation: recovered run charged {recovered_charged:.3}s \
             vs calm {calm_charged:.3}s"
        ));
    }

    for c in Counter::ALL {
        main.add(c, victim_tele.counter(c));
        main.add(c, revived_tele.counter(c));
        main.add(c, calm_tele.counter(c));
    }
    // Preserve the proven journal as a CI artifact before the scratch
    // directory goes away.
    std::fs::create_dir_all(journal_dir)
        .map_err(|e| format!("daemon smoke: create {}: {e}", journal_dir.display()))?;
    for entry in std::fs::read_dir(scratch.join("crash"))
        .map_err(|e| format!("daemon smoke: list crash store: {e}"))?
    {
        let entry = entry.map_err(|e| format!("daemon smoke: list crash store: {e}"))?;
        if entry.path().is_file() {
            std::fs::copy(entry.path(), journal_dir.join(entry.file_name()))
                .map_err(|e| format!("daemon smoke: export journal: {e}"))?;
        }
    }
    std::fs::remove_dir_all(&scratch).ok();
    println!(
        "bench_gate: daemon smoke: TCP leg drained {} jobs in {tcp_wall:.2}s; kill at wave 1 \
         replayed {} + resumed {} jobs bit-identically in {recovery_wall:.2}s \
         ({finished_frames} Finished frames, {recovered_charged:.2}s EM charged == calm)",
        demo.len(),
        recovery.jobs_replayed,
        recovery.jobs_resumed,
    );
    Ok((
        t0.elapsed().as_secs_f64(),
        DaemonSmokeSummary {
            tcp_wall_seconds: tcp_wall,
            tcp_jobs_finished: tcp_finished,
            recovery_wall_seconds: recovery_wall,
            jobs_replayed: recovery.jobs_replayed,
            jobs_resumed: recovery.jobs_resumed,
            calm_em_charged_seconds: calm_charged,
            recovered_em_charged_seconds: recovered_charged,
            finished_frames,
        },
    ))
}

fn write_file(path: &str, contents: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
    }
    std::fs::write(path, contents).map_err(|e| e.to_string())
}

fn gate(
    thresholds_path: &str,
    out_path: &str,
    update: bool,
    use_cache: bool,
) -> Result<(), String> {
    let SmokeMeasurement {
        report,
        wall,
        train_wall,
        fault_wall,
        sched_wall,
        sweep_wall,
        store_wall,
        store,
        engine_wall,
        engine,
        daemon_wall,
        daemon,
    } = run_smoke(
        use_cache,
        &std::path::Path::new(out_path).with_file_name("daemon_journal"),
    )?;
    write_file(out_path, &report.to_json().map_err(|e| format!("{e:?}"))?)?;
    let pr8_path = std::path::Path::new(out_path)
        .with_file_name("BENCH_pr8.json")
        .to_string_lossy()
        .into_owned();
    write_file(
        &pr8_path,
        &serde_json::to_string(&store).map_err(|e| format!("{e:?}"))?,
    )?;
    let pr9_path = std::path::Path::new(out_path)
        .with_file_name("BENCH_pr9.json")
        .to_string_lossy()
        .into_owned();
    write_file(
        &pr9_path,
        &serde_json::to_string(&engine).map_err(|e| format!("{e:?}"))?,
    )?;
    let pr10_path = std::path::Path::new(out_path)
        .with_file_name("BENCH_pr10.json")
        .to_string_lossy()
        .into_owned();
    write_file(
        &pr10_path,
        &serde_json::to_string(&daemon).map_err(|e| format!("{e:?}"))?,
    )?;
    println!(
        "bench_gate: smoke run took {wall:.2}s (+{train_wall:.2}s training, \
         +{fault_wall:.2}s faults, +{sched_wall:.2}s scheduler, +{sweep_wall:.2}s sweep, \
         +{store_wall:.2}s store, +{engine_wall:.2}s engine, +{daemon_wall:.2}s daemon), \
         report at {out_path}, cold-vs-warm at {pr8_path}, serial-vs-concurrent at \
         {pr9_path}, kill-vs-calm at {pr10_path}"
    );

    if update {
        let thresholds = GateThresholds {
            schema_version: RunReport::SCHEMA_VERSION,
            seed: SMOKE_SEED,
            max_wall_seconds: wall * WALL_UPDATE_HEADROOM,
            max_train_seconds: train_wall * WALL_UPDATE_HEADROOM,
            max_fault_seconds: fault_wall * WALL_UPDATE_HEADROOM,
            max_sched_seconds: sched_wall * WALL_UPDATE_HEADROOM,
            max_sweep_seconds: sweep_wall * WALL_UPDATE_HEADROOM,
            max_store_seconds: store_wall * WALL_UPDATE_HEADROOM,
            max_engine_seconds: engine_wall * WALL_UPDATE_HEADROOM,
            max_daemon_seconds: daemon_wall * WALL_UPDATE_HEADROOM,
            counters: report.counters.clone(),
        };
        let json = serde_json::to_string(&thresholds).map_err(|e| format!("{e:?}"))?;
        write_file(thresholds_path, &json)?;
        println!("bench_gate: wrote thresholds to {thresholds_path}");
        return Ok(());
    }

    let text = std::fs::read_to_string(thresholds_path)
        .map_err(|e| format!("{thresholds_path}: {e} (run with --update to create)"))?;
    let thresholds: GateThresholds =
        serde_json::from_str(&text).map_err(|e| format!("{thresholds_path}: {e:?}"))?;
    if thresholds.schema_version != RunReport::SCHEMA_VERSION {
        return Err(format!(
            "threshold schema v{} != report schema v{} (run --update)",
            thresholds.schema_version,
            RunReport::SCHEMA_VERSION
        ));
    }
    if thresholds.seed != SMOKE_SEED {
        return Err(format!(
            "thresholds recorded at seed {} but the smoke run uses seed {SMOKE_SEED}",
            thresholds.seed
        ));
    }

    let mut failures = Vec::new();
    for budget in &thresholds.counters {
        let measured = report.counter(&budget.name);
        if measured > budget.value {
            failures.push(format!(
                "counter regression: {} = {measured} > budget {}",
                budget.name, budget.value
            ));
        } else if measured < budget.value {
            println!(
                "bench_gate: note: {} = {measured} under budget {} (consider --update)",
                budget.name, budget.value
            );
        }
    }
    let wall_limit = thresholds.max_wall_seconds * WALL_MARGIN;
    if wall > wall_limit {
        failures.push(format!(
            "wall-clock regression: {wall:.2}s > {wall_limit:.2}s \
             ({:.2}s budget x {WALL_MARGIN} margin)",
            thresholds.max_wall_seconds
        ));
    } else {
        println!("bench_gate: wall-clock {wall:.2}s within {wall_limit:.2}s limit");
    }
    let train_limit = thresholds.max_train_seconds * WALL_MARGIN;
    if train_wall > train_limit {
        failures.push(format!(
            "training wall-clock regression: {train_wall:.2}s > {train_limit:.2}s \
             ({:.2}s budget x {WALL_MARGIN} margin)",
            thresholds.max_train_seconds
        ));
    } else {
        println!("bench_gate: training wall-clock {train_wall:.2}s within {train_limit:.2}s limit");
    }
    let fault_limit = thresholds.max_fault_seconds * WALL_MARGIN;
    if fault_wall > fault_limit {
        failures.push(format!(
            "fault-smoke wall-clock regression: {fault_wall:.2}s > {fault_limit:.2}s \
             ({:.2}s budget x {WALL_MARGIN} margin)",
            thresholds.max_fault_seconds
        ));
    } else {
        println!(
            "bench_gate: fault-smoke wall-clock {fault_wall:.2}s within {fault_limit:.2}s limit"
        );
    }
    let sched_limit = thresholds.max_sched_seconds * WALL_MARGIN;
    if sched_wall > sched_limit {
        failures.push(format!(
            "sched-smoke wall-clock regression: {sched_wall:.2}s > {sched_limit:.2}s \
             ({:.2}s budget x {WALL_MARGIN} margin)",
            thresholds.max_sched_seconds
        ));
    } else {
        println!(
            "bench_gate: sched-smoke wall-clock {sched_wall:.2}s within {sched_limit:.2}s limit"
        );
    }
    let sweep_limit = thresholds.max_sweep_seconds * WALL_MARGIN;
    if sweep_wall > sweep_limit {
        failures.push(format!(
            "sweep-smoke wall-clock regression: {sweep_wall:.2}s > {sweep_limit:.2}s \
             ({:.2}s budget x {WALL_MARGIN} margin)",
            thresholds.max_sweep_seconds
        ));
    } else {
        println!(
            "bench_gate: sweep-smoke wall-clock {sweep_wall:.2}s within {sweep_limit:.2}s limit"
        );
    }
    let store_limit = thresholds.max_store_seconds * WALL_MARGIN;
    if store_wall > store_limit {
        failures.push(format!(
            "store-smoke wall-clock regression: {store_wall:.2}s > {store_limit:.2}s \
             ({:.2}s budget x {WALL_MARGIN} margin)",
            thresholds.max_store_seconds
        ));
    } else {
        println!(
            "bench_gate: store-smoke wall-clock {store_wall:.2}s within {store_limit:.2}s limit"
        );
    }
    let engine_limit = thresholds.max_engine_seconds * WALL_MARGIN;
    if engine_wall > engine_limit {
        failures.push(format!(
            "engine-smoke wall-clock regression: {engine_wall:.2}s > {engine_limit:.2}s \
             ({:.2}s budget x {WALL_MARGIN} margin)",
            thresholds.max_engine_seconds
        ));
    } else {
        println!(
            "bench_gate: engine-smoke wall-clock {engine_wall:.2}s within {engine_limit:.2}s limit"
        );
    }
    let daemon_limit = thresholds.max_daemon_seconds * WALL_MARGIN;
    if daemon_wall > daemon_limit {
        failures.push(format!(
            "daemon-smoke wall-clock regression: {daemon_wall:.2}s > {daemon_limit:.2}s \
             ({:.2}s budget x {WALL_MARGIN} margin)",
            thresholds.max_daemon_seconds
        ));
    } else {
        println!(
            "bench_gate: daemon-smoke wall-clock {daemon_wall:.2}s within {daemon_limit:.2}s limit"
        );
    }

    if failures.is_empty() {
        println!(
            "bench_gate: OK ({} counters checked)",
            thresholds.counters.len()
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut thresholds_path = "scripts/bench_thresholds.json".to_string();
    let mut out_path = "results/BENCH_ci.json".to_string();
    let mut update = false;
    let mut use_cache = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--update" => {
                update = true;
                i += 1;
            }
            "--no-cache" => {
                use_cache = false;
                i += 1;
            }
            "--thresholds" if i + 1 < args.len() => {
                thresholds_path = args[i + 1].clone();
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("bench_gate: unknown argument '{other}'");
                eprintln!(
                    "usage: bench_gate [--thresholds FILE] [--out FILE] [--update] [--no-cache]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    match gate(&thresholds_path, &out_path, update, use_cache) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_gate: FAIL\n{e}");
            ExitCode::FAILURE
        }
    }
}
