//! Regenerates paper **Fig. 7**: bar-chart data of FoM per optimization
//! technique / surrogate combination across T1–T4 — the visual summary of
//! Tables VII and VIII.
//!
//! Runs the three ablation variants on every task (space `S_1`) and emits
//! one row per bar.

use isop::report::{fmt, Table};
use isop::tasks::TaskId;
use isop_bench::experiments::run_ablation_variant;
use isop_bench::{cnn_surrogate, emit, mlp_xgb_surrogate, training_dataset, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let data = training_dataset(&cfg);
    let cnn = cnn_surrogate(&cfg, &data).expect("CNN trains");
    let mlp_xgb = mlp_xgb_surrogate(&cfg, &data).expect("MLP_XGB trains");
    let s1 = isop::spaces::s1();
    // Variants within each task reuse each other's accurate simulations;
    // FoM bars are identical with or without the cache.
    let em_cache = isop::evalcache::EvalCache::new();

    let mut table = Table::new(vec!["Task", "Variant", "FoM"]);
    let mut per_task: Vec<(TaskId, Vec<(String, f64)>)> = Vec::new();
    for task in TaskId::all() {
        let mut bars = Vec::new();
        for (technique, surrogate) in [
            ("H", &mlp_xgb as &dyn isop::surrogate::Surrogate),
            ("H", &cnn as &dyn isop::surrogate::Surrogate),
            ("H_GD", &cnn as &dyn isop::surrogate::Surrogate),
        ] {
            if let Some(row) = run_ablation_variant(
                &cfg,
                surrogate,
                technique,
                task,
                "S1",
                &s1,
                &isop_telemetry::Telemetry::disabled(),
                &em_cache,
            ) {
                let label = format!("{}+{}", row.technique, row.model);
                table.push_row(vec![
                    task.name().to_string(),
                    label.clone(),
                    fmt(row.stats.fom, 3),
                ]);
                bars.push((label, row.stats.fom));
            }
        }
        per_task.push((task, bars));
    }
    emit(
        &cfg,
        "fig7_fom_summary",
        "Fig. 7 — FoM by technique and surrogate",
        &table,
    );

    let mut wins = 0usize;
    let mut cells = 0usize;
    for (task, bars) in &per_task {
        if let (Some(isop_plus), Some(isop_old)) = (
            bars.iter().find(|(l, _)| l.starts_with("H_GD")),
            bars.iter().find(|(l, _)| l.contains("MLP_XGB")),
        ) {
            cells += 1;
            if isop_plus.1 <= isop_old.1 + 1e-9 {
                wins += 1;
            }
            println!(
                "{task}: ISOP+ FoM {:.3} vs ISOP(DATE'23) {:.3}",
                isop_plus.1, isop_old.1
            );
        }
    }
    println!("\nShape check: ISOP+ <= ISOP FoM in {wins}/{cells} tasks (paper: all).");
}
