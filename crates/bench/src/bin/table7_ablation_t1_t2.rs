//! Regenerates paper **Table VII**: ablation of ISOP+ against the DATE'23
//! ISOP configuration on T1/T2 — `H + MLP_XGB` (the original), `H + 1D-CNN`
//! (surrogate upgrade only), and `H_GD + 1D-CNN` (the full ISOP+).
//!
//! `H_GD + MLP_XGB` is unrunnable by construction: the XGBoost component is
//! piecewise-constant, so the surrogate exposes no input gradient — our
//! pipeline detects this and skips GD, which would silently turn it into
//! `H + MLP_XGB` (the same observation the paper makes).

use isop::tasks::TaskId;
use isop_bench::experiments::{render_ablation, run_ablation_variant, AblationRow};
use isop_bench::{
    cnn_surrogate, emit, mlp_xgb_surrogate, table_cells, training_dataset, BenchConfig,
};

fn main() {
    let cfg = BenchConfig::from_env();
    let data = training_dataset(&cfg);
    let cnn = cnn_surrogate(&cfg, &data).expect("CNN trains");
    let mlp_xgb = mlp_xgb_surrogate(&cfg, &data).expect("MLP_XGB trains");

    // One EM-result cache across every variant of every cell: the three
    // ablations of a task round to the same handful of grid designs, so
    // later variants replay earlier accurate simulations instead of
    // re-running them. With ISOP_CACHE_DIR set the persistent sharded
    // store carries the reuse across invocations (and processes); without
    // it the legacy JSON spill does, as before. Outcomes are bit-identical
    // with or without either.
    let store = isop_bench::open_store(&cfg);
    let em_cache = match &store {
        Some(s) => isop::evalcache::EvalCache::with_store(std::sync::Arc::clone(s)),
        None => isop::evalcache::EvalCache::new(),
    };
    let spill = cfg.results_dir.join("em_cache.json");
    if store.is_none() {
        match em_cache.load_json(&spill) {
            Ok(n) if n > 0 => eprintln!("[isop-bench] em-cache: {n} spilled sims loaded"),
            Ok(_) => {}
            Err(e) => eprintln!("[isop-bench] em-cache: ignoring unreadable spill: {e}"),
        }
    }

    let mut rows: Vec<AblationRow> = Vec::new();
    for (task, label, space) in table_cells([TaskId::T1, TaskId::T2]) {
        for (technique, surrogate) in [
            ("H", &mlp_xgb as &dyn isop::surrogate::Surrogate),
            ("H", &cnn as &dyn isop::surrogate::Surrogate),
            ("H_GD", &cnn as &dyn isop::surrogate::Surrogate),
        ] {
            if let Some(row) = run_ablation_variant(
                &cfg,
                surrogate,
                technique,
                task,
                label,
                &space,
                &isop_telemetry::Telemetry::disabled(),
                &em_cache,
            ) {
                rows.push(row);
            }
        }
    }
    if store.is_some() {
        if let Err(e) = em_cache.persist() {
            eprintln!("[isop-bench] em-cache: store not flushed: {e}");
        }
    } else if let Err(e) = em_cache.save_json(&spill) {
        eprintln!("[isop-bench] em-cache: spill not written: {e}");
    }
    let table = render_ablation(&rows, false);
    emit(
        &cfg,
        "table7_ablation_t1_t2",
        "Table VII — ISOP ablation on T1/T2",
        &table,
    );

    let wins = rows
        .chunks(3)
        .filter(|c| c.len() == 3 && c[2].stats.fom <= c[0].stats.fom + 1e-9)
        .count();
    println!(
        "\nShape check: H_GD+1D-CNN (ISOP+) <= H+MLP_XGB (ISOP DATE'23) FoM in {wins}/{} cells.",
        rows.len() / 3
    );
}
