//! Regenerates paper **Table IV**: T1/T2 on `S_1`/`S_2`, comparing ISOP+
//! against runtime- and sample-matched SA and BO baselines, all sharing the
//! same 1D-CNN surrogate.
//!
//! Shape checks vs the paper: ISOP+ attains the lowest FoM in every cell,
//! every method succeeds on these two easier tasks, and the BO variants
//! observe orders of magnitude fewer samples in matched budgets.

use isop::tasks::TaskId;
use isop_bench::experiments::{render_comparison, run_comparison_cell};
use isop_bench::{cnn_surrogate, emit, isop_config, table_cells, training_dataset, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let data = training_dataset(&cfg);
    let surrogate = cnn_surrogate(&cfg, &data).expect("surrogate training");

    let mut cells = Vec::new();
    for (task, label, space) in table_cells([TaskId::T1, TaskId::T2]) {
        cells.push(run_comparison_cell(
            &cfg,
            &surrogate,
            task,
            label,
            &space,
            isop_config(),
        ));
    }
    let table = render_comparison(&cells, false);
    emit(
        &cfg,
        "table4_t1_t2",
        "Table IV — T1/T2 method comparison",
        &table,
    );

    // Shape summary against the paper's qualitative claims.
    let mut isop_wins = 0usize;
    let mut total = 0usize;
    for cell in &cells {
        if let Some(isop) = cell.rows.iter().find(|r| r.method == "ISOP+") {
            total += 1;
            if cell
                .rows
                .iter()
                .filter(|r| r.method != "ISOP+")
                .all(|r| isop.fom <= r.fom + 1e-9)
            {
                isop_wins += 1;
            }
        }
    }
    println!("\nShape check: ISOP+ best-FoM in {isop_wins}/{total} cells (paper: 4/4).");
}
