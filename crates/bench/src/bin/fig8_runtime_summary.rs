//! Regenerates paper **Fig. 8**: bar-chart data of average runtime per
//! optimization technique / surrogate combination across T1–T4 — the
//! runtime companion of Fig. 7.
//!
//! The paper's claim: `H_GD + 1D-CNN` (ISOP+) is the fastest variant because
//! gradient descent needs far fewer surrogate samples than a longer
//! Harmonica run, despite the CNN being slower per inference than MLP/XGB.
//!
//! Stage timings come from the telemetry [`RunReport`] attached to each
//! variant's trials (spans `pipeline.global` / `pipeline.local` /
//! `pipeline.rollout`), not from ad-hoc stopwatches around the driver.

use isop::report::{fmt, Table};
use isop::tasks::TaskId;
use isop_bench::experiments::run_ablation_variant;
use isop_bench::{
    cnn_surrogate_with, emit, env_zoo, mlp_xgb_surrogate_with, training_dataset, BenchConfig,
};
use isop_em::channel::{Channel, Element};
use isop_em::eye::{peak_distortion_eye_with, EyeWorkspace};
use isop_em::stackup::DiffStripline;
use isop_em::sweep::{lanes_compiled, SweepPlan};
use isop_em::via::Via;
use isop_telemetry::{RunReport, Telemetry};
use std::time::Instant;

/// Sweep grid for the link-level verification stage.
const LINK_N_FREQ: usize = 256;
const LINK_F_START_HZ: f64 = 1e8;
const LINK_F_STOP_HZ: f64 = 4e10;
/// Bit rate for the peak-distortion eye on each winning design, Gbps.
const LINK_EYE_GBPS: f64 = 16.0;

/// Routes a winning layer as a link-level escape: two segments of the
/// optimized stripline joined by a stubbed and a back-drilled via.
fn link_channel(layer: DiffStripline) -> Channel {
    Channel::new(vec![
        Element::Stripline {
            layer,
            length_inches: 3.0,
        },
        Element::Via(Via {
            stub_length: 20.0,
            ..Via::default()
        }),
        Element::Stripline {
            layer,
            length_inches: 2.0,
        },
        Element::Via(Via {
            stub_length: 0.0,
            ..Via::default()
        }),
    ])
    .expect("decoded design routes as a valid channel")
}

/// Sweeps every winning design through one shared [`SweepPlan`] (the
/// segments all reuse the same interned layer/via prototypes), checks the
/// batched path bit-for-bit against the scalar ABCD chain, and reports
/// insertion/return loss at the top of the band plus the peak-distortion
/// eye from a warm [`EyeWorkspace`].
fn verify_links(links: &[(String, Channel)]) {
    if links.is_empty() {
        return;
    }
    let mut plan = SweepPlan::log_spaced(LINK_F_START_HZ, LINK_F_STOP_HZ, LINK_N_FREQ);
    let freqs = plan.freqs().to_vec();

    let t0 = Instant::now();
    let mut scalar_bits: Vec<u64> = Vec::new();
    for (_, ch) in links {
        let z = ch.reference_impedance();
        for &f in &freqs {
            let (s11, s21, _, _) = ch.abcd(f).to_s_params(z);
            scalar_bits.push(s21.re.to_bits());
            scalar_bits.push(s21.im.to_bits());
            scalar_bits.push(s11.re.to_bits());
            scalar_bits.push(s11.im.to_bits());
        }
    }
    let scalar_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut batched_bits: Vec<u64> = Vec::new();
    for (_, ch) in links {
        let view = plan.sweep(ch);
        for i in 0..view.len() {
            let (s11, s21) = (view.s11(i), view.s21(i));
            batched_bits.push(s21.re.to_bits());
            batched_bits.push(s21.im.to_bits());
            batched_bits.push(s11.re.to_bits());
            batched_bits.push(s11.im.to_bits());
        }
    }
    let batched_secs = t1.elapsed().as_secs_f64();
    assert_eq!(
        scalar_bits, batched_bits,
        "batched sweep must be bit-identical to the scalar ABCD chain"
    );

    println!(
        "\nLink-level verification: {} designs x {} pts, scalar {:.1} ms vs batched {:.1} ms \
         ({:.1}x, lanes {}, {} interned prototypes)",
        links.len(),
        LINK_N_FREQ,
        scalar_secs * 1e3,
        batched_secs * 1e3,
        scalar_secs / batched_secs.max(1e-9),
        if lanes_compiled() { "on" } else { "off" },
        plan.interned_prototypes(),
    );
    let mut ws = EyeWorkspace::new();
    for (label, ch) in links {
        let view = plan.sweep(ch);
        let top = view.len() - 1;
        let (il, rl, f_top) = (view.il_db(top), view.rl_db(top), view.freq(top));
        let eye = peak_distortion_eye_with(&mut ws, ch, LINK_EYE_GBPS, 8, 16);
        println!(
            "  {label}: IL {il:.2} dB / RL {rl:.2} dB @ {:.0} GHz; \
             eye height {:.3} @ {LINK_EYE_GBPS} Gbps ({})",
            f_top / 1e9,
            eye.eye_height,
            if eye.is_open() { "open" } else { "closed" },
        );
    }
}

fn main() {
    let cfg = BenchConfig::from_env();
    let data = training_dataset(&cfg);
    // Surrogate training goes through the data-parallel model zoo (THREADS
    // env var) with its own telemetry handle, so the runtime summary can
    // report training spans alongside the pipeline stages.
    let train_tele = Telemetry::enabled();
    let zoo = env_zoo().with_telemetry(train_tele.clone());
    let cnn = cnn_surrogate_with(&cfg, &data, "full", &zoo).expect("CNN trains");
    let mlp_xgb = mlp_xgb_surrogate_with(&cfg, &data, "full", &zoo).expect("MLP_XGB trains");
    let s1 = isop::spaces::s1();
    // Fig. 8 measures wall-clock, so each variant re-simulates everything:
    // a shared cache here would report roll-out spans that depend on run
    // order. Keep the cache disabled for honest per-variant timings.
    let em_cache = isop::evalcache::EvalCache::disabled();

    let mut table = Table::new(vec![
        "Task",
        "Variant",
        "Ave. runtime (s)",
        "Ave. samples",
        "Global (s)",
        "Local (s)",
        "Roll-out (s)",
    ]);
    type TaskBars = Vec<(String, f64, f64)>;
    let mut per_task: Vec<(TaskId, TaskBars)> = Vec::new();
    let mut links: Vec<(String, Channel)> = Vec::new();
    for task in TaskId::all() {
        let mut bars = Vec::new();
        for (technique, surrogate) in [
            ("H", &mlp_xgb as &dyn isop::surrogate::Surrogate),
            ("H", &cnn as &dyn isop::surrogate::Surrogate),
            ("H_GD", &cnn as &dyn isop::surrogate::Surrogate),
        ] {
            // One telemetry handle per variant: spans aggregate across the
            // cell's trials, so dividing by trial count gives per-trial
            // stage averages.
            let tele = Telemetry::enabled();
            if let Some(row) = run_ablation_variant(
                &cfg, surrogate, technique, task, "S1", &s1, &tele, &em_cache,
            ) {
                let report: RunReport = tele.run_report();
                let trials = row.stats.trials.max(1) as f64;
                let label = format!("{}+{}", row.technique, row.model);
                table.push_row(vec![
                    task.name().to_string(),
                    label.clone(),
                    fmt(row.stats.avg_runtime, 2),
                    fmt(row.stats.avg_samples, 0),
                    fmt(report.span_seconds("pipeline.global") / trials, 2),
                    fmt(report.span_seconds("pipeline.local") / trials, 2),
                    fmt(report.span_seconds("pipeline.rollout") / trials, 2),
                ]);
                if let Ok(layer) = DiffStripline::from_vector(&row.best_design) {
                    links.push((format!("{}/{label}", task.name()), link_channel(layer)));
                }
                bars.push((label, row.stats.avg_runtime, row.stats.avg_samples));
            }
        }
        per_task.push((task, bars));
    }
    emit(
        &cfg,
        "fig8_runtime_summary",
        "Fig. 8 — runtime by technique and surrogate",
        &table,
    );

    // Training-side spans (zero when every surrogate came from the disk
    // cache): the `ml.fit.*` seconds the zoo recorded, plus the thread
    // width they ran at.
    let train_report: RunReport = train_tele.run_report();
    println!(
        "\nSurrogate training at {} thread(s): 1D-CNN {:.1}s, MLP {:.1}s, XGB {:.1}s ({} train chunks)",
        zoo.context().parallelism.threads,
        train_report.span_seconds("ml.fit.cnn"),
        train_report.span_seconds("ml.fit.mlp"),
        train_report.span_seconds("ml.fit.xgb"),
        train_report.counter("train.chunks"),
    );

    // Shape check: the GD variant sees no more samples than the H variants
    // (the paper's ~16.7k vs ~25k sample gap).
    let mut holds = 0usize;
    let mut cells = 0usize;
    for (task, bars) in &per_task {
        if let (Some(gd), Some(h_cnn)) = (
            bars.iter().find(|(l, _, _)| l.starts_with("H_GD")),
            bars.iter().find(|(l, _, _)| l.starts_with("H+1D-CNN")),
        ) {
            cells += 1;
            if gd.2 <= h_cnn.2 + 1e-9 {
                holds += 1;
            }
            println!("{task}: samples H_GD {:.0} vs H {:.0}", gd.2, h_cnn.2);
        }
    }
    println!("\nShape check: H_GD uses <= samples of H in {holds}/{cells} tasks (paper: always).");

    // Every variant's winning design, verified at the link level through
    // the batched sweep and the peak-distortion eye.
    verify_links(&links);
}
