//! Regenerates paper **Fig. 6**: predicted-versus-ground-truth scatter data
//! for the DATE'23 surrogates (MLP on Z/L, XGBoost on NEXT) and the ISOP+
//! 1D-CNN, on the held-out test split.
//!
//! Emits the six scatter panels as CSV plus per-panel R^2 — the paper's
//! figure shows tight diagonals with the 1D-CNN tighter than MLP/XGB.

use isop::report::{fmt, Table};
use isop::surrogate::Surrogate;
use isop_bench::{
    cnn_surrogate_tagged, emit, mlp_xgb_surrogate_tagged, training_dataset, BenchConfig,
};
use isop_ml::metrics::r2;

fn main() {
    let cfg = BenchConfig::from_env();
    let data = training_dataset(&cfg);
    let (train, test) = data.train_test_split(0.2, 0x5EED);
    eprintln!("[isop-bench] fitting surrogates on {} samples", train.len());
    let cnn = cnn_surrogate_tagged(&cfg, &train, "split80").expect("CNN trains");
    let mlp_xgb = mlp_xgb_surrogate_tagged(&cfg, &train, "split80").expect("MLP_XGB trains");

    // Scatter table: one row per test sample, truth and both predictions
    // for each metric.
    let mut table = Table::new(vec![
        "Z true",
        "Z mlp_xgb",
        "Z cnn",
        "L true",
        "L mlp_xgb",
        "L cnn",
        "NEXT true",
        "NEXT mlp_xgb",
        "NEXT cnn",
    ]);
    let n_points = test.len().min(1000);
    let mut truths: [Vec<f64>; 3] = Default::default();
    let mut pred_a: [Vec<f64>; 3] = Default::default();
    let mut pred_b: [Vec<f64>; 3] = Default::default();
    for r in 0..n_points {
        let x = test.x.row(r);
        let t = test.y.row(r);
        let a = mlp_xgb.predict(x).expect("predicts");
        let b = cnn.predict(x).expect("predicts");
        for m in 0..3 {
            truths[m].push(t[m]);
            pred_a[m].push(a[m]);
            pred_b[m].push(b[m]);
        }
        table.push_row(vec![
            fmt(t[0], 3),
            fmt(a[0], 3),
            fmt(b[0], 3),
            fmt(t[1], 4),
            fmt(a[1], 4),
            fmt(b[1], 4),
            fmt(t[2], 4),
            fmt(a[2], 4),
            fmt(b[2], 4),
        ]);
    }
    emit(
        &cfg,
        "fig6_pred_vs_truth",
        "Fig. 6 — predicted vs ground truth scatter data",
        &table,
    );

    let mut summary = Table::new(vec!["Panel", "Model", "R^2"]);
    let names = ["Z", "L", "NEXT"];
    for m in 0..3 {
        summary.push_row(vec![
            names[m].to_string(),
            "MLP_XGB".to_string(),
            fmt(r2(&truths[m], &pred_a[m]), 4),
        ]);
        summary.push_row(vec![
            names[m].to_string(),
            "1D-CNN".to_string(),
            fmt(r2(&truths[m], &pred_b[m]), 4),
        ]);
    }
    emit(&cfg, "fig6_r2_summary", "Fig. 6 — per-panel R^2", &summary);
    println!("\nShape check: all panels should show strong correlation (R^2 close to 1).");
}
