//! Regenerates paper **Table VI**: surrogate-model accuracy comparison —
//! eight regressors evaluated on a held-out 20% split with MAE/MAPE for `Z`
//! and `L` and MAE/sMAPE for `NEXT`.
//!
//! Shape check vs the paper: the neural models (MLPR, 1D-CNN) beat the tree
//! ensembles, which beat the linear/kernel baselines; 1D-CNN has the best
//! (or tied-best) MAPE/sMAPE.

use isop::report::{fmt, Table};
use isop_bench::{cnn_config, emit, env_zoo, mlp_config, training_dataset, BenchConfig};
use isop_ml::dataset::Dataset;
use isop_ml::metrics::{mae, mape, smape};
use isop_ml::models::{
    Cnn1d, DecisionTree, GradientBoosting, LinearSvr, Mlp, PolynomialRidge, RandomForest,
    TreeConfig, XgbRegressor,
};
use isop_ml::train::TrainContext;
use isop_ml::Regressor;

fn evaluate(
    model: &mut dyn Regressor,
    train: &Dataset,
    test: &Dataset,
    ctx: &TrainContext,
) -> [f64; 6] {
    model.fit_with(train, ctx).expect("model trains");
    let pred = model.predict(&test.x).expect("model predicts");
    let col = |c: usize| (test.y.col_vec(c), pred.col_vec(c));
    let (tz, pz) = col(0);
    let (tl, pl) = col(1);
    let (tn, pn) = col(2);
    [
        mae(&tz, &pz),
        mape(&tz, &pz),
        mae(&tl, &pl),
        mape(&tl, &pl),
        mae(&tn, &pn),
        smape(&tn, &pn),
    ]
}

fn main() {
    let cfg = BenchConfig::from_env();
    let data = training_dataset(&cfg);
    // The paper's 80/20 split.
    let (train, test) = data.train_test_split(0.2, 0x5EED);
    eprintln!(
        "[isop-bench] train {} / test {} samples",
        train.len(),
        test.len()
    );

    let mut models: Vec<(&str, Box<dyn Regressor>)> = vec![
        ("DTR", Box::new(DecisionTree::paper_default())),
        ("GBR", Box::new(GradientBoosting::paper_default())),
        ("PLR", Box::new(PolynomialRidge::paper_default())),
        (
            "RFR",
            Box::new(RandomForest::new(
                30,
                TreeConfig {
                    max_depth: 14,
                    ..TreeConfig::default()
                },
                0,
            )),
        ),
        ("SVR", Box::new(LinearSvr::paper_default())),
        (
            "XGBoost",
            Box::new(XgbRegressor::new(120, 0.15, 6, 1.0, 0.0)),
        ),
        ("MLPR", Box::new(Mlp::new(mlp_config(cfg.epochs)))),
        ("1D-CNN", Box::new(Cnn1d::new(cnn_config(cfg.epochs)))),
    ];

    let mut table = Table::new(vec![
        "ML Method",
        "Z MAE",
        "Z MAPE",
        "L MAE",
        "L MAPE",
        "NEXT MAE",
        "NEXT sMAPE",
    ]);
    // The whole zoo trains through the data-parallel engine (THREADS env
    // var); accuracy numbers are bit-identical at any thread count.
    let zoo = env_zoo();
    eprintln!(
        "[isop-bench] training at {} thread(s)",
        zoo.context().parallelism.threads
    );
    let mut scores = Vec::new();
    for (name, model) in &mut models {
        eprintln!("[isop-bench] training {name}...");
        let started = std::time::Instant::now();
        let m = evaluate(model.as_mut(), &train, &test, zoo.context());
        eprintln!(
            "[isop-bench] {name} trained in {:.2}s",
            started.elapsed().as_secs_f64()
        );
        scores.push((name.to_string(), m));
        table.push_row(vec![
            name.to_string(),
            fmt(m[0], 3),
            fmt(m[1], 3),
            fmt(m[2], 3),
            fmt(m[3], 3),
            fmt(m[4], 3),
            fmt(m[5], 3),
        ]);
    }

    emit(
        &cfg,
        "table6_model_accuracy",
        "Table VI — surrogate-model accuracy",
        &table,
    );

    // Shape check: neural models beat linear/kernel ones on Z MAPE.
    let get = |n: &str| scores.iter().find(|(name, _)| name == n).expect("ran").1;
    let neural_best = get("MLPR")[1].min(get("1D-CNN")[1]);
    let weak_best = get("PLR")[1].min(get("SVR")[1]);
    println!(
        "\nShape check: best neural Z-MAPE {:.4} vs best linear/kernel {:.4} (paper: neural wins decisively).",
        neural_best, weak_best
    );
}
