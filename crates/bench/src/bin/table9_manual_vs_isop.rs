//! Regenerates paper **Table IX**: the expert manual design versus
//! ISOP-generated designs, with and without the three expert input
//! constraints (`2 W_t + S_t <= 20`, `D_t <= 5 H_c`, `D_t <= 5 H_p`).
//!
//! Two layers of reproduction:
//!
//! 1. The **published design vectors** (the paper prints them in full) are
//!    re-simulated through our EM engine — a direct calibration check.
//! 2. Our own ISOP+ runs on `S_1` (no IC) and `S_1'` (with IC) regenerate
//!    fresh designs under the same protocol.

use isop::experiment::ExperimentContext;
use isop::manual;
use isop::report::{fmt, Table};
use isop::tasks::{objective_for, table_ix_input_constraints, TaskId};
use isop_bench::{cnn_surrogate, emit, isop_config, training_dataset, BenchConfig};
use isop_em::simulator::{AnalyticalSolver, EmSimulator};
use isop_em::stackup::DiffStripline;

fn design_row(
    table: &mut Table,
    task: &str,
    method: &str,
    values: &[f64],
    fom: impl Fn(&[f64; 3]) -> f64,
) {
    let sim = AnalyticalSolver::new();
    let layer = DiffStripline::from_vector(values).expect("valid design");
    let r = sim.simulate(&layer).expect("simulates");
    let metrics = r.to_array();
    table.push_row(vec![
        task.to_string(),
        method.to_string(),
        fmt(values[0], 1),
        fmt(values[1], 1),
        fmt(values[2], 0),
        fmt(values[3], 2),
        fmt(values[4], 1),
        fmt(values[5], 1),
        fmt(values[6], 1),
        format!("{:.1e}", values[7]),
        fmt(values[8], 1),
        fmt(r.z_diff, 2),
        fmt(r.insertion_loss, 3),
        fmt(r.next, 2),
        fmt(fom(&metrics), 3),
    ]);
}

fn main() {
    let cfg = BenchConfig::from_env();
    let data = training_dataset(&cfg);
    let surrogate = cnn_surrogate(&cfg, &data).expect("surrogate trains");
    let simulator = AnalyticalSolver::new();

    let mut table = Table::new(vec![
        "Task", "Method", "W_t", "S_t", "D_t", "E_t", "H_t", "H_c", "H_p", "sigma", "R_t", "Z",
        "L", "NEXT", "FoM",
    ]);

    // Published designs re-simulated (calibration layer).
    let l_fom = |m: &[f64; 3]| m[1].abs();
    let t4_fom = |m: &[f64; 3]| m[1].abs() + 2.0 * m[2].abs();
    design_row(
        &mut table,
        "T1",
        "Manual (paper)",
        &manual::MANUAL_VECTOR,
        l_fom,
    );
    design_row(
        &mut table,
        "T1",
        "ISOP paper (S1/no IC)",
        &manual::ISOP_T1_S1_VECTOR,
        l_fom,
    );
    design_row(
        &mut table,
        "T1",
        "ISOP paper (S1'/IC)",
        &manual::ISOP_T1_S1P_VECTOR,
        l_fom,
    );
    design_row(
        &mut table,
        "T3",
        "ISOP paper (S1/no IC)",
        &manual::ISOP_T3_S1_VECTOR,
        l_fom,
    );
    design_row(
        &mut table,
        "T4",
        "ISOP paper (S1/no IC)",
        &manual::ISOP_T4_S1_VECTOR,
        t4_fom,
    );

    // Fresh ISOP+ runs (reproduction layer): one representative trial per
    // cell, per the paper's "we investigate one trial case".
    let ctx = |space| ExperimentContext {
        space,
        surrogate: &surrogate,
        simulator: &simulator,
        isop_config: isop_config(),
        n_trials: 1,
        seed: 0x7AB9,
        telemetry: isop_telemetry::Telemetry::disabled(),
        eval_cache: isop::evalcache::EvalCache::new(),
        surrogate_memo: isop::evalcache::SurrogateMemo::new(),
    };
    let s1 = isop::spaces::s1();
    let s1p = isop::spaces::s1_prime();
    for task in [TaskId::T1, TaskId::T3, TaskId::T4] {
        let fom: &dyn Fn(&[f64; 3]) -> f64 = if task == TaskId::T4 { &t4_fom } else { &l_fom };
        // Without input constraints on S1.
        let res = ctx(&s1).run_isop(&objective_for(task, vec![])).results;
        if let Some(r) = res.first() {
            design_row(
                &mut table,
                task.name(),
                "ISOP+ ours (S1/no IC)",
                &r.design,
                fom,
            );
        }
        // With input constraints on S1'.
        let res = ctx(&s1p)
            .run_isop(&objective_for(task, table_ix_input_constraints()))
            .results;
        if let Some(r) = res.first() {
            design_row(
                &mut table,
                task.name(),
                "ISOP+ ours (S1'/IC)",
                &r.design,
                fom,
            );
            // Report IC satisfaction explicitly.
            let ics = table_ix_input_constraints();
            let ok = ics.iter().all(|c| c.satisfied(&r.design));
            eprintln!(
                "[isop-bench] {task} (S1'/IC): input constraints {}",
                if ok { "satisfied" } else { "VIOLATED" }
            );
        }
    }

    emit(
        &cfg,
        "table9_manual_vs_isop",
        "Table IX — manual vs ISOP designs",
        &table,
    );
    println!(
        "\nPaper reference (manual): Z=85.69, L=-0.434, NEXT=-2.77; ISOP matches manual L with far lower NEXT."
    );
}
