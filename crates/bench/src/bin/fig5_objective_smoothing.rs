//! Regenerates paper **Fig. 5**: the exact objective `g(.)` versus the
//! double-sigmoid smoothed `g_hat(.)` for several steepness values `gamma`,
//! swept over the constrained metric.
//!
//! Emits the plot series as CSV (one column per curve) — the exact data
//! behind the figure.

use isop::objective::{FomSpec, Metric, Objective, OutputConstraint};
use isop::report::{fmt, Table};
use isop_bench::{emit, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    // The paper's illustration: a Z = 85 +- 1 band with the FoM held fixed.
    let base = Objective::new(
        FomSpec {
            terms: vec![(Metric::L, 1.0)],
        },
        vec![OutputConstraint::band(Metric::Z, 85.0, 1.0)],
        vec![],
    );
    let l_fixed = -0.4;

    let gammas = [0.5, 1.0, 2.0, 5.0];
    let mut header = vec!["Z".to_string(), "g (exact clip)".to_string()];
    for g in gammas {
        header.push(format!("g_hat (gamma={g}/tol)"));
    }
    let mut table = Table::new(header);

    let steps = 161;
    for i in 0..steps {
        let z = 81.0 + 8.0 * i as f64 / (steps - 1) as f64;
        let metrics = [z, l_fixed, 0.0];
        let mut row = vec![fmt(z, 3), fmt(base.g_exact(&metrics, &[]), 4)];
        for g in gammas {
            let mut obj = base.clone();
            obj.gamma_scale = g;
            row.push(fmt(obj.g_hat(&metrics, &[]), 4));
        }
        table.push_row(row);
    }

    emit(
        &cfg,
        "fig5_objective_smoothing",
        "Fig. 5 — g vs g_hat under gamma sweep",
        &table,
    );

    // Shape check: larger gamma tracks the clip more closely (L1 distance).
    let distance = |gamma: f64| -> f64 {
        let mut obj = base.clone();
        obj.gamma_scale = gamma;
        (0..steps)
            .map(|i| {
                let z = 81.0 + 8.0 * i as f64 / (steps - 1) as f64;
                let m = [z, l_fixed, 0.0];
                (obj.g_hat(&m, &[]) - base.g_exact(&m, &[])).abs()
            })
            .sum::<f64>()
            / steps as f64
    };
    let d_soft = distance(0.5);
    let d_sharp = distance(5.0);
    println!(
        "\nShape check: mean |g_hat - g| at gamma=0.5/tol is {:.3}, at gamma=5/tol is {:.3} (sharper tracks tighter).",
        d_soft, d_sharp
    );
    assert!(
        d_sharp < d_soft,
        "steeper sigmoid must approximate the clip better"
    );
}
