//! Regenerates paper **Table III**: design-space parameter ranges,
//! increments, level counts, bit widths, and total space sizes for
//! `S_1`, `S_2`, `S_1'`, and the training ranges.

use isop::params::ParamSpace;
use isop::report::Table;
use isop_bench::{emit, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let spaces: [(&str, ParamSpace); 4] = [
        ("S1", isop::spaces::s1()),
        ("S2", isop::spaces::s2()),
        ("S1'", isop::spaces::s1_prime()),
        ("Training", isop::spaces::training_space()),
    ];

    let mut table = Table::new(vec![
        "Param",
        "S1 range/dx (case/bits)",
        "S2 range/dx (case/bits)",
        "S1' range/dx (case/bits)",
        "Training range/dx (case)",
    ]);
    let n = spaces[0].1.n_params();
    for i in 0..n {
        let cell = |s: &ParamSpace, with_bits: bool| {
            let p = &s.params()[i];
            if with_bits {
                format!(
                    "{}-{} / {} ({}/{})",
                    p.lo,
                    p.hi,
                    p.step,
                    p.n_levels(),
                    p.n_bits()
                )
            } else {
                format!("{}-{} / {} ({})", p.lo, p.hi, p.step, p.n_levels())
            }
        };
        table.push_row(vec![
            spaces[0].1.params()[i].name.clone(),
            cell(&spaces[0].1, true),
            cell(&spaces[1].1, true),
            cell(&spaces[2].1, true),
            cell(&spaces[3].1, false),
        ]);
    }
    table.push_row(vec![
        "TOTAL".to_string(),
        format!(
            "{:.2e} (2^{})",
            spaces[0].1.n_valid(),
            spaces[0].1.total_bits()
        ),
        format!(
            "{:.2e} (2^{})",
            spaces[1].1.n_valid(),
            spaces[1].1.total_bits()
        ),
        format!(
            "{:.2e} (2^{})",
            spaces[2].1.n_valid(),
            spaces[2].1.total_bits()
        ),
        format!("{:.2e}", spaces[3].1.n_valid()),
    ]);

    emit(
        &cfg,
        "table3_spaces",
        "Table III — design-space parameter ranges",
        &table,
    );
    println!(
        "\nPaper reference: S1 = 7.14e19 (2^73), S2 = 2.97e21 (2^78), S1' = 6.53e20 (2^78), training = 1.31e29."
    );
}
