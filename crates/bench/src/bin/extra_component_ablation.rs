//! Extension experiment (beyond the paper's tables): component-wise ablation
//! of ISOP+'s design choices on the hardest task (T3, NEXT-constrained).
//!
//! Variants:
//! * `full`          — Harmonica + adaptive weights + Hyperband + GD
//! * `no-weights`    — adaptive weight adjustment disabled (Sec. III-G off)
//! * `no-hyperband`  — GD seeds taken from the best raw Harmonica samples
//! * `no-gd`         — global stage only (the DATE'23 `H` technique)
//! * `nothing`       — all three off: plain Harmonica + roll-out
//!
//! Uses the oracle surrogate so the comparison isolates the *algorithmic*
//! contribution of each component from surrogate error.

use isop::experiment::{ExperimentContext, TrialStats};
use isop::prelude::*;
use isop::report::{fmt, fmt_mean_std, Table};
use isop_bench::{emit, isop_config, BenchConfig};
use isop_em::simulator::AnalyticalSolver;

fn main() {
    let cfg = BenchConfig::from_env();
    let space = isop::spaces::s1();
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let simulator = AnalyticalSolver::new();

    let variants: Vec<(&str, IsopConfig)> = vec![
        ("full", isop_config()),
        ("no-weights", {
            let mut c = isop_config();
            c.adapt_weights = false;
            c
        }),
        ("no-hyperband", {
            let mut c = isop_config();
            c.use_hyperband = false;
            c
        }),
        ("no-gd", {
            let mut c = isop_config();
            c.use_gradient_descent = false;
            c
        }),
        ("nothing", {
            let mut c = isop_config();
            c.adapt_weights = false;
            c.use_hyperband = false;
            c.use_gradient_descent = false;
            c
        }),
    ];

    let mut table = Table::new(vec![
        "Variant",
        "Success",
        "FoM",
        "dZ mean/std",
        "L mean/std",
        "NEXT mean/std",
        "Ave.samples",
    ]);
    let mut foms: Vec<(String, f64, f64)> = Vec::new();
    for (name, pipeline) in variants {
        eprintln!("[isop-bench] component ablation: {name}");
        let ctx = ExperimentContext {
            space: &space,
            surrogate: &surrogate,
            simulator: &simulator,
            isop_config: pipeline,
            n_trials: cfg.trials,
            seed: 0xC0DE,
            telemetry: isop_telemetry::Telemetry::disabled(),
            eval_cache: isop::evalcache::EvalCache::new(),
            surrogate_memo: isop::evalcache::SurrogateMemo::new(),
        };
        let objective = isop::tasks::objective_for(TaskId::T3, vec![]);
        let results = ctx.run_isop(&objective).results;
        if results.is_empty() {
            continue;
        }
        let stats = TrialStats::aggregate(name, &results, 85.0);
        table.push_row(vec![
            name.to_string(),
            format!("{}/{}", stats.successes, stats.trials),
            fmt(stats.fom, 3),
            fmt_mean_std(stats.delta_z.mean, stats.delta_z.std, 3),
            fmt_mean_std(stats.l.mean, stats.l.std, 3),
            fmt_mean_std(stats.next.mean, stats.next.std, 3),
            fmt(stats.avg_samples, 0),
        ]);
        foms.push((
            name.to_string(),
            stats.fom,
            stats.successes as f64 / stats.trials as f64,
        ));
    }
    emit(
        &cfg,
        "extra_component_ablation",
        "Extension — ISOP+ component ablation on T3/S1",
        &table,
    );

    if let (Some(full), Some(nothing)) = (
        foms.iter().find(|(n, _, _)| n == "full"),
        foms.iter().find(|(n, _, _)| n == "nothing"),
    ) {
        println!(
            "\nShape check: full FoM {:.3} (success {:.0}%) vs stripped {:.3} ({:.0}%).",
            full.1,
            100.0 * full.2,
            nothing.1,
            100.0 * nothing.2
        );
    }
}
