//! Internal scaling probe (not part of the experiment index): measures
//! dataset generation and surrogate training throughput/accuracy so the
//! defaults in `BenchConfig` stay laptop-honest.

use isop::data::{generate_dataset, generate_mixed_dataset};
use isop_bench::{cnn_config, mlp_config};
use isop_em::simulator::AnalyticalSolver;
use isop_ml::metrics::{mae, mape, smape};
use isop_ml::models::{Cnn1d, Mlp};
use isop_ml::Regressor;
use isop_telemetry::Telemetry;

fn main() {
    let n: usize = std::env::var("N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24_000);
    let epochs: usize = std::env::var("E")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let data = generate_mixed_dataset(
        &isop::spaces::training_space(),
        &isop::spaces::s2(),
        n,
        0.4,
        &AnalyticalSolver::new(),
        1,
    )
    .expect("ok");
    let (train, test) = data.train_test_split(0.2, 9);
    let region =
        generate_dataset(&isop::spaces::s2(), 3000, &AnalyticalSolver::new(), 77).expect("ok");

    let mut models: Vec<(&str, Box<dyn Regressor>)> = vec![
        ("mlp", Box::new(Mlp::new(mlp_config(epochs)))),
        ("cnn", Box::new(Cnn1d::new(cnn_config(epochs)))),
    ];
    // Timing goes through the telemetry span registry (the same surface the
    // run report aggregates) instead of an ad-hoc stopwatch.
    let tele = Telemetry::enabled();
    for (name, model) in &mut models {
        let label = match *name {
            "mlp" => "train.mlp",
            _ => "train.cnn",
        };
        {
            let _g = isop_telemetry::span!(tele, label);
            model.fit(&train).expect("ok");
        }
        let el = tele.run_report().span_seconds(label);
        let pred = model.predict(&test.x).expect("ok");
        let (tz, pz) = (test.y.col_vec(0), pred.col_vec(0));
        let (tl, pl) = (test.y.col_vec(1), pred.col_vec(1));
        let (tn, pn) = (test.y.col_vec(2), pred.col_vec(2));
        println!(
            "{name} n={n} e={epochs}: {el:.1}s  Z mae={:.3} mape={:.4}  L mae={:.4} mape={:.4}  NEXT mae={:.4} smape={:.3}",
            mae(&tz, &pz), mape(&tz, &pz), mae(&tl, &pl), mape(&tl, &pl), mae(&tn, &pn), smape(&tn, &pn)
        );
        let rp = model.predict(&region.x).expect("ok");
        println!(
            "{name} region(S2): Z mae={:.3}  L mae={:.4}  NEXT mae={:.4}",
            mae(&region.y.col_vec(0), &rp.col_vec(0)),
            mae(&region.y.col_vec(1), &rp.col_vec(1)),
            mae(&region.y.col_vec(2), &rp.col_vec(2)),
        );
    }
}
