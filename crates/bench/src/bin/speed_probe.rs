//! Internal scaling probe (not part of the experiment index): measures
//! dataset generation and surrogate training throughput/accuracy so the
//! defaults in `BenchConfig` stay laptop-honest. With `THREADS>1` it also
//! times the data-parallel training engine against the serial baseline and
//! checks the two fits are bit-identical.

use isop::data::{generate_dataset, generate_mixed_dataset};
use isop::exec::Parallelism;
use isop_bench::{cnn_config, mlp_config};
use isop_em::simulator::AnalyticalSolver;
use isop_ml::metrics::{mae, mape, smape};
use isop_ml::models::{Cnn1d, Mlp};
use isop_ml::train::TrainContext;
use isop_ml::Regressor;
use isop_telemetry::Telemetry;

/// A named serial/parallel model pair: the parallel engine trains a fresh
/// twin from the same seed as the serial baseline.
type TrainTwin = (&'static str, Box<dyn Regressor>, Box<dyn Regressor>);

fn main() {
    let n: usize = std::env::var("N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24_000);
    let epochs: usize = std::env::var("E")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let par = Parallelism::from_env();
    let data = generate_mixed_dataset(
        &isop::spaces::training_space(),
        &isop::spaces::s2(),
        n,
        0.4,
        &AnalyticalSolver::new(),
        1,
    )
    .expect("ok");
    let (train, test) = data.train_test_split(0.2, 9);
    let region =
        generate_dataset(&isop::spaces::s2(), 3000, &AnalyticalSolver::new(), 77).expect("ok");

    // Each entry carries a twin so the parallel engine trains a fresh model
    // from the same seed as the serial baseline.
    let mut models: Vec<TrainTwin> = vec![
        (
            "mlp",
            Box::new(Mlp::new(mlp_config(epochs))),
            Box::new(Mlp::new(mlp_config(epochs))),
        ),
        (
            "cnn",
            Box::new(Cnn1d::new(cnn_config(epochs))),
            Box::new(Cnn1d::new(cnn_config(epochs))),
        ),
    ];
    // Timing goes through the telemetry span registry (the same surface the
    // run report aggregates) instead of an ad-hoc stopwatch.
    let tele = Telemetry::enabled();
    for (name, model, twin) in &mut models {
        let label = match *name {
            "mlp" => "train.mlp",
            _ => "train.cnn",
        };
        {
            let _g = isop_telemetry::span!(tele, label);
            model.fit(&train).expect("ok");
        }
        let el = tele.run_report().span_seconds(label);
        if par.is_parallel() {
            let par_label = match *name {
                "mlp" => "train.mlp.par",
                _ => "train.cnn.par",
            };
            {
                let _g = isop_telemetry::span!(tele, par_label);
                twin.fit_with(&train, &TrainContext::new(par)).expect("ok");
            }
            let el_par = tele.run_report().span_seconds(par_label);
            let identical =
                model.predict(&test.x).expect("ok") == twin.predict(&test.x).expect("ok");
            println!(
                "{name} train: serial {el:.1}s, {} threads {el_par:.1}s (speedup {:.2}x, bit-identical: {identical})",
                par.threads,
                el / el_par.max(1e-9),
            );
            assert!(identical, "{name}: parallel fit diverged from serial fit");
        }
        let pred = model.predict(&test.x).expect("ok");
        let (tz, pz) = (test.y.col_vec(0), pred.col_vec(0));
        let (tl, pl) = (test.y.col_vec(1), pred.col_vec(1));
        let (tn, pn) = (test.y.col_vec(2), pred.col_vec(2));
        println!(
            "{name} n={n} e={epochs}: {el:.1}s  Z mae={:.3} mape={:.4}  L mae={:.4} mape={:.4}  NEXT mae={:.4} smape={:.3}",
            mae(&tz, &pz), mape(&tz, &pz), mae(&tl, &pl), mape(&tl, &pl), mae(&tn, &pn), smape(&tn, &pn)
        );
        let rp = model.predict(&region.x).expect("ok");
        println!(
            "{name} region(S2): Z mae={:.3}  L mae={:.4}  NEXT mae={:.4}",
            mae(&region.y.col_vec(0), &rp.col_vec(0)),
            mae(&region.y.col_vec(1), &rp.col_vec(1)),
            mae(&region.y.col_vec(2), &rp.col_vec(2)),
        );
    }
}
