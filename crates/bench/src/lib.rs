//! # isop-bench — experiment harnesses regenerating every paper table/figure
//!
//! Each `[[bin]]` target reproduces one artifact of the ISOP+ paper's
//! evaluation (see DESIGN.md §3 for the index). This library holds the
//! shared plumbing: environment-controlled scaling, surrogate training with
//! on-disk caching, and result writing.
//!
//! ## Scaling knobs (environment variables)
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `ISOP_TRIALS` | 5 | trials per experiment cell (paper: 10) |
//! | `ISOP_DATASET` | 32000 | surrogate-training samples (paper: 90 000) |
//! | `ISOP_EPOCHS` | 60 | neural-surrogate training epochs |
//! | `ISOP_RESULTS_DIR` | `results` | artifact output directory |
//! | `ISOP_CACHE_DIR` | unset | persistent sharded eval-store directory; when set, the ablation bins read/write it instead of the legacy `em_cache.json` spill |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use isop::data::generate_mixed_dataset;
use isop::params::ParamSpace;
use isop::surrogate::{MlpXgbSurrogate, ModelZoo, NeuralSurrogate};
use isop_em::simulator::AnalyticalSolver;
use isop_ml::dataset::Dataset;
use isop_ml::models::{Cnn1d, Cnn1dConfig, Mlp, MlpConfig, XgbRegressor};
use isop_ml::MlError;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// Experiment scale read from the environment.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Trials per experiment cell.
    pub trials: usize,
    /// Surrogate-training dataset size.
    pub dataset_size: usize,
    /// Neural-network training epochs.
    pub epochs: usize,
    /// Output directory for generated tables.
    pub results_dir: PathBuf,
    /// Persistent sharded eval-store directory (`ISOP_CACHE_DIR`); `None`
    /// keeps the legacy per-invocation JSON spill behavior.
    pub cache_dir: Option<PathBuf>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

impl BenchConfig {
    /// Reads the scaling knobs from the environment.
    pub fn from_env() -> Self {
        let get = |k: &str, default: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Self {
            trials: get("ISOP_TRIALS", 5),
            dataset_size: get("ISOP_DATASET", 32_000),
            epochs: get("ISOP_EPOCHS", 60),
            results_dir: std::env::var("ISOP_RESULTS_DIR")
                .unwrap_or_else(|_| "results".to_string())
                .into(),
            cache_dir: std::env::var("ISOP_CACHE_DIR").ok().map(PathBuf::from),
        }
    }

    /// The paper's full protocol (10 trials, 90 k samples).
    pub fn paper_scale() -> Self {
        Self {
            trials: 10,
            dataset_size: 90_000,
            epochs: 40,
            results_dir: "results".into(),
            cache_dir: None,
        }
    }
}

/// Generates (or reuses a cached) surrogate-training dataset over the Table
/// III training ranges.
pub fn training_dataset(cfg: &BenchConfig) -> Dataset {
    let cache = cache_path(&format!("dataset_{}.json", cfg.dataset_size));
    if let Ok(text) = fs::read_to_string(&cache) {
        if let Ok(d) = serde_json::from_str::<Dataset>(&text) {
            if d.len() == cfg.dataset_size {
                eprintln!("[isop-bench] reusing cached dataset ({} samples)", d.len());
                return d;
            }
        }
    }
    eprintln!(
        "[isop-bench] generating {} training samples via the EM simulator...",
        cfg.dataset_size
    );
    // 60% wide Table III training ranges + 40% optimization region (S_2,
    // the superset of S_1 and S_1') — see DESIGN.md for why this mixed
    // protocol substitutes for the paper's 90 k-sample uniform one.
    let d = generate_mixed_dataset(
        &isop::spaces::training_space(),
        &isop::spaces::s2(),
        cfg.dataset_size,
        0.4,
        &AnalyticalSolver::new(),
        0xDA7A,
    )
    .expect("dataset generation");
    let _ = fs::create_dir_all(cache.parent().expect("has parent"));
    let _ = fs::write(&cache, serde_json::to_string(&d).expect("serializable"));
    d
}

/// Cache file path under `target/isop-cache/`.
pub fn cache_path(name: &str) -> PathBuf {
    PathBuf::from("target").join("isop-cache").join(name)
}

/// Opens the persistent eval store named by `ISOP_CACHE_DIR`, or `None`
/// when the knob is unset or the directory is unusable (a warning is
/// printed — persistence is always best-effort for the harnesses).
pub fn open_store(cfg: &BenchConfig) -> Option<std::sync::Arc<isop_store::Store>> {
    let dir = cfg.cache_dir.as_ref()?;
    match isop_store::Store::open(dir) {
        Ok(store) => {
            eprintln!(
                "[isop-bench] eval-store: {} ({} shards)",
                dir.display(),
                store.n_shards()
            );
            Some(std::sync::Arc::new(store))
        }
        Err(e) => {
            eprintln!(
                "[isop-bench] eval-store: ignoring unusable {}: {e}",
                dir.display()
            );
            None
        }
    }
}

/// The MLP surrogate configuration used across experiments.
pub fn mlp_config(epochs: usize) -> MlpConfig {
    MlpConfig {
        hidden: vec![256, 256, 128],
        epochs,
        batch_size: 64,
        lr: 1.5e-3,
        leaky_slope: 0.01,
        dropout: 0.02,
        seed: 7,
    }
}

/// The 1D-CNN surrogate configuration used across experiments.
pub fn cnn_config(epochs: usize) -> Cnn1dConfig {
    Cnn1dConfig {
        expand: 192,
        channels: 8,
        conv_channels: 16,
        kernel: 3,
        head: 64,
        epochs,
        batch_size: 64,
        lr: 1.5e-3,
        leaky_slope: 0.01,
        dropout: 0.02,
        seed: 7,
    }
}

/// The harnesses' default training engine: a [`ModelZoo`] honouring the
/// `THREADS` environment variable, so the same binary can be timed serial
/// (`THREADS=1`) vs data-parallel (`THREADS=N`) — results are bit-identical
/// either way.
pub fn env_zoo() -> ModelZoo {
    ModelZoo::from_env()
}

fn announce_trained(what: &str, zoo: &ModelZoo, started: Instant) {
    eprintln!(
        "[isop-bench] trained {what} in {:.2}s at {} thread(s)",
        started.elapsed().as_secs_f64(),
        zoo.context().parallelism.threads
    );
}

fn load_model<M: serde::de::DeserializeOwned>(name: &str) -> Option<M> {
    let text = fs::read_to_string(cache_path(name)).ok()?;
    serde_json::from_str(&text).ok()
}

fn store_model<M: serde::Serialize>(name: &str, model: &M) {
    let path = cache_path(name);
    let _ = fs::create_dir_all(path.parent().expect("has parent"));
    let _ = fs::write(path, serde_json::to_string(model).expect("serializable"));
}

/// Trains (or loads from cache) the 1D-CNN surrogate.
///
/// # Errors
///
/// Propagates training failures.
pub fn cnn_surrogate(cfg: &BenchConfig, data: &Dataset) -> Result<NeuralSurrogate<Cnn1d>, MlError> {
    cnn_surrogate_tagged(cfg, data, "full")
}

/// [`cnn_surrogate`] with a cache tag distinguishing training subsets
/// (e.g. the 80% split of Fig. 6 vs the full dataset).
///
/// # Errors
///
/// Propagates training failures.
pub fn cnn_surrogate_tagged(
    cfg: &BenchConfig,
    data: &Dataset,
    tag: &str,
) -> Result<NeuralSurrogate<Cnn1d>, MlError> {
    cnn_surrogate_with(cfg, data, tag, &env_zoo())
}

/// [`cnn_surrogate_tagged`] training through an explicit [`ModelZoo`]
/// (thread knob + telemetry).
///
/// # Errors
///
/// Propagates training failures.
pub fn cnn_surrogate_with(
    cfg: &BenchConfig,
    data: &Dataset,
    tag: &str,
    zoo: &ModelZoo,
) -> Result<NeuralSurrogate<Cnn1d>, MlError> {
    let key = format!("cnn_{}_{}_{}.json", cfg.dataset_size, cfg.epochs, tag);
    if let Some(model) = load_model::<Cnn1d>(&key) {
        eprintln!("[isop-bench] reusing cached 1D-CNN surrogate");
        return Ok(NeuralSurrogate::new(model));
    }
    eprintln!(
        "[isop-bench] training 1D-CNN surrogate ({} epochs)...",
        cfg.epochs
    );
    let started = Instant::now();
    let s = zoo.fit_neural(Cnn1d::new(cnn_config(cfg.epochs)), data)?;
    announce_trained("1D-CNN surrogate", zoo, started);
    store_model(&key, s.model());
    Ok(s)
}

/// Trains (or loads from cache) the MLP surrogate.
///
/// # Errors
///
/// Propagates training failures.
pub fn mlp_surrogate(cfg: &BenchConfig, data: &Dataset) -> Result<NeuralSurrogate<Mlp>, MlError> {
    mlp_surrogate_with(cfg, data, &env_zoo())
}

/// [`mlp_surrogate`] training through an explicit [`ModelZoo`].
///
/// # Errors
///
/// Propagates training failures.
pub fn mlp_surrogate_with(
    cfg: &BenchConfig,
    data: &Dataset,
    zoo: &ModelZoo,
) -> Result<NeuralSurrogate<Mlp>, MlError> {
    let key = format!("mlp_{}_{}.json", cfg.dataset_size, cfg.epochs);
    if let Some(model) = load_model::<Mlp>(&key) {
        eprintln!("[isop-bench] reusing cached MLP surrogate");
        return Ok(NeuralSurrogate::new(model));
    }
    eprintln!(
        "[isop-bench] training MLP surrogate ({} epochs)...",
        cfg.epochs
    );
    let started = Instant::now();
    let s = zoo.fit_neural(Mlp::new(mlp_config(cfg.epochs)), data)?;
    announce_trained("MLP surrogate", zoo, started);
    store_model(&key, s.model());
    Ok(s)
}

/// Trains the DATE'23 `MLP_XGB` surrogate (MLP for Z/L, XGBoost for NEXT).
///
/// # Errors
///
/// Propagates training failures.
pub fn mlp_xgb_surrogate(cfg: &BenchConfig, data: &Dataset) -> Result<MlpXgbSurrogate, MlError> {
    mlp_xgb_surrogate_tagged(cfg, data, "full")
}

/// [`mlp_xgb_surrogate`] with a cache tag distinguishing training subsets.
///
/// # Errors
///
/// Propagates training failures.
pub fn mlp_xgb_surrogate_tagged(
    cfg: &BenchConfig,
    data: &Dataset,
    tag: &str,
) -> Result<MlpXgbSurrogate, MlError> {
    mlp_xgb_surrogate_with(cfg, data, tag, &env_zoo())
}

/// [`mlp_xgb_surrogate_tagged`] training through an explicit [`ModelZoo`].
///
/// # Errors
///
/// Propagates training failures.
pub fn mlp_xgb_surrogate_with(
    cfg: &BenchConfig,
    data: &Dataset,
    tag: &str,
    zoo: &ModelZoo,
) -> Result<MlpXgbSurrogate, MlError> {
    let key = format!("mlp_xgb_{}_{}_{}.json", cfg.dataset_size, cfg.epochs, tag);
    if let Some(model) = load_model::<MlpXgbSurrogate>(&key) {
        eprintln!("[isop-bench] reusing cached MLP_XGB surrogate");
        return Ok(model);
    }
    eprintln!("[isop-bench] training MLP_XGB surrogate...");
    let started = Instant::now();
    let s = zoo.fit_mlp_xgb(
        Mlp::new(mlp_config(cfg.epochs)),
        XgbRegressor::new(120, 0.15, 6, 1.0, 0.0),
        data,
    )?;
    announce_trained("MLP_XGB surrogate", zoo, started);
    store_model(&key, &s);
    Ok(s)
}

/// Writes a generated artifact (markdown + CSV) into the results directory
/// and echoes the markdown to stdout.
pub fn emit(cfg: &BenchConfig, name: &str, title: &str, table: &isop::report::Table) {
    println!("\n## {title}\n");
    print!("{}", table.to_markdown());
    let _ = fs::create_dir_all(&cfg.results_dir);
    let md_path = cfg.results_dir.join(format!("{name}.md"));
    let csv_path = cfg.results_dir.join(format!("{name}.csv"));
    let _ = fs::write(&md_path, format!("# {title}\n\n{}", table.to_markdown()));
    let _ = fs::write(&csv_path, table.to_csv());
    eprintln!(
        "[isop-bench] wrote {} and {}",
        md_path.display(),
        csv_path.display()
    );
}

/// The default ISOP+ pipeline configuration for experiment cells
/// (paper-protocol shape, laptop-scale sampling counts).
pub fn isop_config() -> isop::pipeline::IsopConfig {
    use isop_hpo::harmonica::HarmonicaConfig;
    use isop_hpo::hyperband::HyperbandConfig;
    isop::pipeline::IsopConfig {
        harmonica: HarmonicaConfig {
            stages: 3,
            samples_per_stage: 300,
            degree: 2,
            lambda: 0.02,
            top_monomials: 8,
            bits_per_stage: 8,
            max_resample: 16_384,
        },
        use_hyperband: true,
        hyperband: HyperbandConfig {
            max_resource: 9.0,
            eta: 3.0,
        },
        gd_candidates: 8,
        gd_epochs: 60,
        gd_lr: 0.02,
        use_gradient_descent: true,
        cand_num: 3,
        adapt_weights: true,
        weight_adapter: isop::weights::WeightAdapter::default(),
        // Experiment cells honour the THREADS env var so the same harness
        // can be timed serial vs. parallel; outcomes are identical either
        // way (see `isop::exec`).
        parallelism: isop::exec::Parallelism::from_env(),
        retry: isop::prelude::RetryPolicy::default(),
        schedule: isop::scheduler::RolloutSchedule::default(),
    }
}

/// Re-export commonly used space constructors for the bins.
pub mod spaces {
    pub use isop::spaces::{s1, s1_prime, s2, training_space};
}

/// Builds the four (task, space) cells of Table IV or Table V.
pub fn table_cells(
    tasks: [isop::tasks::TaskId; 2],
) -> Vec<(isop::tasks::TaskId, &'static str, ParamSpace)> {
    let mut cells = Vec::new();
    for t in tasks {
        cells.push((t, "S1", isop::spaces::s1()));
        cells.push((t, "S2", isop::spaces::s2()));
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_sane() {
        let cfg = BenchConfig::from_env();
        assert!(cfg.trials >= 1);
        assert!(cfg.dataset_size >= 100);
    }

    #[test]
    fn paper_scale_matches_protocol() {
        let cfg = BenchConfig::paper_scale();
        assert_eq!(cfg.trials, 10);
        assert_eq!(cfg.dataset_size, 90_000);
    }

    #[test]
    fn isop_config_enables_all_stages() {
        let cfg = isop_config();
        assert!(cfg.use_gradient_descent);
        assert!(cfg.use_hyperband);
        assert!(cfg.adapt_weights);
        assert_eq!(cfg.cand_num, 3, "paper verifies three candidates");
    }

    #[test]
    fn table_cells_cover_both_spaces() {
        let cells = table_cells([isop::tasks::TaskId::T1, isop::tasks::TaskId::T2]);
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].1, "S1");
        assert_eq!(cells[1].1, "S2");
    }
}

/// Experiment drivers shared by the table binaries.
pub mod experiments;
