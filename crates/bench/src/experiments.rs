//! Shared experiment drivers for the table-regenerating binaries.

use crate::{isop_config, BenchConfig};
use isop::evalcache::{EvalCache, SurrogateMemo};
use isop::experiment::{ExperimentContext, MatchMode, TrialStats};
use isop::objective::Objective;
use isop::params::ParamSpace;
use isop::pipeline::IsopConfig;
use isop::report::{fmt, fmt_mean_std, Table};
use isop::surrogate::Surrogate;
use isop::tasks::{objective_for, TaskId};
use isop_em::simulator::AnalyticalSolver;
use isop_telemetry::Telemetry;

/// One comparison cell: task x space, with stats for every method.
#[derive(Debug, Clone)]
pub struct ComparisonCell {
    /// Task id.
    pub task: TaskId,
    /// Space label (`"S1"` / `"S2"`).
    pub space: &'static str,
    /// Per-method statistics, ISOP+ last.
    pub rows: Vec<TrialStats>,
}

fn z_target(task: TaskId) -> f64 {
    match task {
        TaskId::T2 => 100.0,
        _ => 85.0,
    }
}

/// Runs the Table IV/V protocol for one (task, space) cell: ISOP+ first,
/// then SA-1/SA-2/BO-1/BO-2 matched to ISOP+'s runtime or sample count.
pub fn run_comparison_cell(
    cfg: &BenchConfig,
    surrogate: &dyn Surrogate,
    task: TaskId,
    space_label: &'static str,
    space: &ParamSpace,
    pipeline: IsopConfig,
) -> ComparisonCell {
    let simulator = AnalyticalSolver::new();
    let ctx = ExperimentContext {
        space,
        surrogate,
        simulator: &simulator,
        isop_config: pipeline,
        n_trials: cfg.trials,
        seed: 0x15_0b,
        telemetry: Telemetry::disabled(),
        // Fresh per cell: repeated ISOP+ trials within the cell reuse each
        // other's roll-out simulations (outcomes are identical either way).
        eval_cache: EvalCache::new(),
        surrogate_memo: SurrogateMemo::new(),
    };
    let objective: Objective = objective_for(task, vec![]);
    eprintln!(
        "[isop-bench] {task}/{space_label}: running ISOP+ x{}",
        cfg.trials
    );
    let isop_cell = ctx.run_isop(&objective);
    for (trial, resolution) in &isop_cell.degraded {
        eprintln!(
            "[isop-bench] {task}/{space_label}: trial {trial} roll-out degraded ({resolution})"
        );
    }
    let (isop_results, avg_samples, avg_algo) = (
        isop_cell.results,
        isop_cell.avg_samples,
        isop_cell.avg_algo_seconds,
    );

    let mut rows = Vec::new();
    for (label, runner) in [("SA-1", MatchMode::Runtime), ("SA-2", MatchMode::Samples)] {
        eprintln!("[isop-bench] {task}/{space_label}: running {label}");
        let results = ctx.run_sa(&objective, runner, avg_samples, avg_algo);
        if !results.is_empty() {
            rows.push(TrialStats::aggregate(label, &results, z_target(task)));
        }
    }
    for (label, runner) in [("BO-1", MatchMode::Runtime), ("BO-2", MatchMode::Samples)] {
        eprintln!("[isop-bench] {task}/{space_label}: running {label}");
        // BO-2 at full ISOP sample counts is prohibitively sequential (the
        // paper's BO-2 rows likewise stop at a few hundred); cap it.
        let (samples, algo) = match runner {
            MatchMode::Samples => (avg_samples.min(450.0), avg_algo),
            MatchMode::Runtime => (avg_samples, avg_algo),
        };
        let results = ctx.run_bo(&objective, runner, samples, algo);
        if !results.is_empty() {
            rows.push(TrialStats::aggregate(label, &results, z_target(task)));
        }
    }
    if !isop_results.is_empty() {
        rows.push(TrialStats::aggregate(
            "ISOP+",
            &isop_results,
            z_target(task),
        ));
    }
    ComparisonCell {
        task,
        space: space_label,
        rows,
    }
}

/// Renders comparison cells in the paper's Table IV/V layout.
pub fn render_comparison(cells: &[ComparisonCell], include_next: bool) -> Table {
    let mut header = vec![
        "Task/S".to_string(),
        "Method".to_string(),
        "Success".to_string(),
        "Ave.time(s)".to_string(),
        "Ave.samples".to_string(),
        "dZ mean/std".to_string(),
        "L mean/std".to_string(),
    ];
    if include_next {
        header.push("NEXT mean/std".to_string());
    }
    header.push("FoM".to_string());
    header.push("Impv.of ISOP+(%)".to_string());
    let mut table = Table::new(header);
    for cell in cells {
        let isop_fom = cell
            .rows
            .iter()
            .find(|r| r.method == "ISOP+")
            .map(|r| r.fom);
        for row in &cell.rows {
            let mut cells_out = vec![
                format!("{}/{}", cell.task, cell.space),
                row.method.clone(),
                format!("{}/{}", row.successes, row.trials),
                fmt(row.avg_runtime, 2),
                fmt(row.avg_samples, 0),
                fmt_mean_std(row.delta_z.mean, row.delta_z.std, 3),
                fmt_mean_std(row.l.mean, row.l.std, 3),
            ];
            if include_next {
                cells_out.push(fmt_mean_std(row.next.mean, row.next.std, 3));
            }
            cells_out.push(fmt(row.fom, 3));
            cells_out.push(match isop_fom {
                Some(f) if row.method != "ISOP+" => fmt(row.improvement_of(f), 1),
                _ => "-".to_string(),
            });
            table.push_row(cells_out);
        }
    }
    table
}

/// One ablation row (Tables VII/VIII): optimization technique x surrogate.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Cell label, e.g. `"T1/S1"`.
    pub cell: String,
    /// Optimization technique (`"H"` or `"H_GD"`).
    pub technique: &'static str,
    /// Surrogate name.
    pub model: String,
    /// Aggregated statistics.
    pub stats: TrialStats,
    /// Design vector of the lowest-FoM trial — the candidate the
    /// link-level verification stage routes and sweeps.
    pub best_design: Vec<f64>,
}

/// Runs one ablation variant over a (task, space) cell.
///
/// `telemetry` is attached to every ISOP+ trial; pass an enabled handle to
/// aggregate per-stage spans and counters across the cell (the runtime
/// figures read stage timings from the resulting
/// [`RunReport`](isop_telemetry::RunReport) instead of re-measuring), or
/// [`Telemetry::disabled()`] to record nothing.
///
/// `eval_cache` is shared across every trial of this variant; pass the
/// *same* handle to every variant of one (task, space) cell so ablations
/// reuse each other's accurate simulations (they all round to the same
/// handful of grid designs), or [`EvalCache::disabled()`] to re-simulate
/// everything. Outcomes are bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub fn run_ablation_variant(
    cfg: &BenchConfig,
    surrogate: &dyn Surrogate,
    technique: &'static str,
    task: TaskId,
    space_label: &str,
    space: &ParamSpace,
    telemetry: &Telemetry,
    eval_cache: &EvalCache,
) -> Option<AblationRow> {
    let simulator = AnalyticalSolver::new();
    let mut pipeline = isop_config();
    pipeline.use_gradient_descent = technique == "H_GD";
    if technique == "H" {
        // Without the gradient-descent stage the paper's H variants spend
        // their budget on additional global sampling (~25k vs ~16.7k
        // samples); mirror that 3:2 ratio here.
        pipeline.harmonica.samples_per_stage = pipeline.harmonica.samples_per_stage * 3 / 2;
    }
    let ctx = ExperimentContext {
        space,
        surrogate,
        simulator: &simulator,
        isop_config: pipeline,
        n_trials: cfg.trials,
        seed: 0xAB1A,
        telemetry: telemetry.clone(),
        eval_cache: eval_cache.clone(),
        surrogate_memo: SurrogateMemo::new(),
    };
    let objective = objective_for(task, vec![]);
    eprintln!(
        "[isop-bench] ablation {technique}+{} on {task}/{space_label}",
        surrogate.name()
    );
    let results = ctx.run_isop(&objective).results;
    if results.is_empty() {
        return None;
    }
    // FoM is minimized (total_cmp sorts NaN above +inf, so a NaN trial
    // can only win when every trial is NaN).
    let best_design = results
        .iter()
        .min_by(|a, b| a.fom.total_cmp(&b.fom))
        .map(|r| r.design.clone())
        .unwrap_or_default();
    Some(AblationRow {
        cell: format!("{task}/{space_label}"),
        technique,
        model: surrogate.name(),
        stats: TrialStats::aggregate(
            format!("{technique}+{}", surrogate.name()),
            &results,
            z_target(task),
        ),
        best_design,
    })
}

/// Renders ablation rows in the Table VII/VIII layout.
pub fn render_ablation(rows: &[AblationRow], include_next: bool) -> Table {
    let mut header = vec![
        "Task/S".to_string(),
        "Technique".to_string(),
        "ML model".to_string(),
        "Ave.time(s)".to_string(),
        "Ave.samples".to_string(),
        "dZ mean/std".to_string(),
        "L mean/std".to_string(),
    ];
    if include_next {
        header.push("NEXT mean/std".to_string());
    }
    header.push("FoM".to_string());
    header.push("Impv.of ISOP+(%)".to_string());
    let mut table = Table::new(header);

    // Group rows by cell to compute the per-cell ISOP+ (H_GD) reference.
    let mut cells: Vec<&str> = rows.iter().map(|r| r.cell.as_str()).collect();
    cells.dedup();
    for cell in cells {
        let in_cell: Vec<&AblationRow> = rows.iter().filter(|r| r.cell == cell).collect();
        let reference = in_cell
            .iter()
            .find(|r| r.technique == "H_GD")
            .map(|r| r.stats.fom);
        for row in in_cell {
            let mut out = vec![
                row.cell.clone(),
                row.technique.to_string(),
                row.model.clone(),
                fmt(row.stats.avg_runtime, 2),
                fmt(row.stats.avg_samples, 0),
                fmt_mean_std(row.stats.delta_z.mean, row.stats.delta_z.std, 3),
                fmt_mean_std(row.stats.l.mean, row.stats.l.std, 3),
            ];
            if include_next {
                out.push(fmt_mean_std(row.stats.next.mean, row.stats.next.std, 3));
            }
            out.push(fmt(row.stats.fom, 3));
            out.push(match reference {
                Some(f) if row.technique != "H_GD" => {
                    fmt(100.0 * (row.stats.fom - f) / row.stats.fom, 1)
                }
                _ => "-".to_string(),
            });
            table.push_row(out);
        }
    }
    table
}
