//! The paper's benchmark tasks T1–T4 (Table II).
//!
//! | Task | FoM | Constraints |
//! |---|---|---|
//! | T1 | `\|L\|` | `Z = 85 +- 1` |
//! | T2 | `\|L\|` | `Z = 100 +- 2` |
//! | T3 | `\|L\|` | `Z = 85 +- 1`, `NEXT = 0 +- 0.05` |
//! | T4 | `\|L\| + 2 \|NEXT\|` | `Z = 85 +- 1` |

use crate::objective::{FomSpec, InputConstraint, Metric, Objective, OutputConstraint};
use serde::{Deserialize, Serialize};

/// Identifier of a benchmark task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskId {
    /// Minimize loss at `Z = 85 +- 1`.
    T1,
    /// Minimize loss at `Z = 100 +- 2`.
    T2,
    /// Minimize loss at `Z = 85 +- 1` with `|NEXT| <= 0.05 mV`.
    T3,
    /// Minimize `|L| + 2 |NEXT|` at `Z = 85 +- 1`.
    T4,
}

impl TaskId {
    /// All four tasks in paper order.
    pub fn all() -> [TaskId; 4] {
        [TaskId::T1, TaskId::T2, TaskId::T3, TaskId::T4]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TaskId::T1 => "T1",
            TaskId::T2 => "T2",
            TaskId::T3 => "T3",
            TaskId::T4 => "T4",
        }
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the [`Objective`] of a task, optionally with extra input
/// constraints (the Table IX case study adds three).
pub fn objective_for(task: TaskId, input_constraints: Vec<InputConstraint>) -> Objective {
    let (fom, constraints) = match task {
        TaskId::T1 => (
            FomSpec {
                terms: vec![(Metric::L, 1.0)],
            },
            vec![OutputConstraint::band(Metric::Z, 85.0, 1.0)],
        ),
        TaskId::T2 => (
            FomSpec {
                terms: vec![(Metric::L, 1.0)],
            },
            vec![OutputConstraint::band(Metric::Z, 100.0, 2.0)],
        ),
        TaskId::T3 => (
            FomSpec {
                terms: vec![(Metric::L, 1.0)],
            },
            vec![
                OutputConstraint::band(Metric::Z, 85.0, 1.0),
                OutputConstraint::band(Metric::Next, 0.0, 0.05),
            ],
        ),
        TaskId::T4 => (
            FomSpec {
                terms: vec![(Metric::L, 1.0), (Metric::Next, 2.0)],
            },
            vec![OutputConstraint::band(Metric::Z, 85.0, 1.0)],
        ),
    };
    Objective::new(fom, constraints, input_constraints)
}

/// The three expert-defined input constraints of Section IV-D:
/// `2 W_t + S_t <= 20`, `D_t <= 5 H_c`, `D_t <= 5 H_p`.
///
/// Parameter indices follow [`isop_em::PARAM_NAMES`] order
/// (`W_t`=0, `S_t`=1, `D_t`=2, `H_c`=5, `H_p`=6).
pub fn table_ix_input_constraints() -> Vec<InputConstraint> {
    vec![
        InputConstraint::new(vec![(0, 2.0), (1, 1.0)], 20.0, "2*W_t + S_t <= 20"),
        InputConstraint::new(vec![(2, 1.0), (5, -5.0)], 0.0, "D_t - 5*H_c <= 0"),
        InputConstraint::new(vec![(2, 1.0), (6, -5.0)], 0.0, "D_t - 5*H_p <= 0"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_matches_table_ii() {
        let obj = objective_for(TaskId::T1, vec![]);
        assert_eq!(obj.output_constraints.len(), 1);
        let c = obj.output_constraints[0];
        assert_eq!(c.metric, Metric::Z);
        assert_eq!((c.target, c.tolerance), (85.0, 1.0));
        assert_eq!(obj.fom.terms, vec![(Metric::L, 1.0)]);
    }

    #[test]
    fn t2_uses_100_ohm_band() {
        let obj = objective_for(TaskId::T2, vec![]);
        let c = obj.output_constraints[0];
        assert_eq!((c.target, c.tolerance), (100.0, 2.0));
    }

    #[test]
    fn t3_adds_next_constraint() {
        let obj = objective_for(TaskId::T3, vec![]);
        assert_eq!(obj.output_constraints.len(), 2);
        let next = obj.output_constraints[1];
        assert_eq!(next.metric, Metric::Next);
        assert_eq!((next.target, next.tolerance), (0.0, 0.05));
    }

    #[test]
    fn t4_weights_next_double() {
        let obj = objective_for(TaskId::T4, vec![]);
        assert_eq!(obj.fom.terms, vec![(Metric::L, 1.0), (Metric::Next, 2.0)]);
        // Cross-check a Table V row: SA-1 on T4/S1 has L=-0.467,
        // NEXT=-0.006 -> FoM 0.479.
        let fom = obj.fom.value(&[85.0, -0.467, -0.006]);
        assert!((fom - 0.479).abs() < 1e-9);
    }

    #[test]
    fn table_ix_constraints_evaluate_correctly() {
        let ics = table_ix_input_constraints();
        // The T1 ISOP (S_1', IC) design of Table IX: W=7.2, S=5.5, D=35,
        // Hc=8.6, Hp=9.4 -> all three satisfied.
        let mut values = vec![0.0; 15];
        values[0] = 7.2;
        values[1] = 5.5;
        values[2] = 35.0;
        values[5] = 8.6;
        values[6] = 9.4;
        assert!(ics[0].satisfied(&values), "2W+S = 19.9 <= 20");
        assert!(ics[1].satisfied(&values), "35 <= 43");
        assert!(ics[2].satisfied(&values), "35 <= 47");
        // And a violating design: W=10, S=5 -> 2W+S = 25 > 20.
        values[0] = 10.0;
        assert!(!ics[0].satisfied(&values));
    }

    #[test]
    fn all_tasks_build_objectives_with_unit_weights() {
        for t in TaskId::all() {
            let obj = objective_for(t, vec![]);
            assert_eq!(obj.weights.fom, 1.0);
            assert!(obj.weights.oc.iter().all(|&w| w == 1.0));
        }
    }
}
