//! Baseline optimizers (Section IV-A): simulated annealing and TPE-based
//! Bayesian optimization, run against the **same surrogate and the same
//! smoothed objective** as ISOP+, then verified with accurate simulation at
//! the end — the paper's exact comparison protocol.

use crate::objective::Objective;
use crate::params::ParamSpace;
use crate::pipeline::DesignCandidate;
use crate::surrogate::Surrogate;
use isop_em::simulator::EmSimulator;
use isop_em::stackup::DiffStripline;
use isop_hpo::budget::Budget;
use isop_hpo::objective::{BinaryObjective, DiscreteObjective};
use isop_hpo::order::nan_last;
use isop_hpo::sa::{self, SaConfig};
use isop_hpo::space::{BinarySpace, DiscreteSpace};
use isop_hpo::tpe::{Tpe, TpeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Outcome of a baseline run, mirroring [`crate::pipeline::IsopOutcome`].
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Ranked roll-out candidates (best first).
    pub candidates: Vec<DesignCandidate>,
    /// Valid surrogate evaluations consumed.
    pub samples_seen: u64,
    /// Invalid encodings encountered (SA only; TPE levels are always valid).
    pub invalid_seen: u64,
    /// Real algorithm wall-clock, seconds.
    pub algorithm_seconds: f64,
    /// Simulated EM seconds at verification.
    pub em_seconds: f64,
    /// Constraint satisfaction of the best verified candidate.
    pub success: bool,
}

impl BaselineOutcome {
    /// The best candidate, if any.
    pub fn best(&self) -> Option<&DesignCandidate> {
        self.candidates.first()
    }

    /// Total reported runtime.
    pub fn total_seconds(&self) -> f64 {
        self.algorithm_seconds + self.em_seconds
    }
}

struct SurrogateBits<'a> {
    space: &'a ParamSpace,
    surrogate: &'a dyn Surrogate,
    objective: &'a Objective,
    valid: u64,
    invalid: u64,
    /// Best (value, design) pairs seen, kept small and sorted.
    top: Vec<(f64, Vec<f64>, [f64; 3])>,
}

impl SurrogateBits<'_> {
    fn note(&mut self, g: f64, values: Vec<f64>, metrics: [f64; 3]) {
        const KEEP: usize = 8;
        if self.top.len() < KEEP || g < self.top.last().expect("non-empty").0 {
            self.top.push((g, values, metrics));
            self.top.sort_by(|a, b| nan_last(a.0, b.0));
            self.top.truncate(KEEP);
        }
    }
}

impl BinaryObjective for SurrogateBits<'_> {
    fn eval(&mut self, bits: &[bool]) -> Option<f64> {
        let values = match self.space.decode_values(bits) {
            Some(v) => v,
            None => {
                self.invalid += 1;
                return None;
            }
        };
        let metrics = match self.surrogate.predict(&values) {
            Ok(m) => m,
            Err(_) => {
                self.invalid += 1;
                return None;
            }
        };
        self.valid += 1;
        let g = self.objective.g_hat(&metrics, &values);
        self.note(g, values, metrics);
        Some(g)
    }

    fn n_bits(&self) -> usize {
        self.space.total_bits()
    }
}

struct SurrogateLevels<'a> {
    space: &'a ParamSpace,
    surrogate: &'a dyn Surrogate,
    objective: &'a Objective,
    valid: u64,
    top: Vec<(f64, Vec<f64>, [f64; 3])>,
}

impl SurrogateLevels<'_> {
    fn note(&mut self, g: f64, values: Vec<f64>, metrics: [f64; 3]) {
        const KEEP: usize = 8;
        if self.top.len() < KEEP || g < self.top.last().expect("non-empty").0 {
            self.top.push((g, values, metrics));
            self.top.sort_by(|a, b| nan_last(a.0, b.0));
            self.top.truncate(KEEP);
        }
    }
}

impl DiscreteObjective for SurrogateLevels<'_> {
    fn eval(&mut self, levels: &[usize]) -> f64 {
        let values = self.space.values_of_levels(levels);
        let Ok(metrics) = self.surrogate.predict(&values) else {
            return f64::INFINITY;
        };
        self.valid += 1;
        let g = self.objective.g_hat(&metrics, &values);
        self.note(g, values, metrics);
        g
    }

    fn cardinalities(&self) -> Vec<usize> {
        self.space.cardinalities()
    }
}

/// Verifies the top surrogate candidates with the accurate simulator and
/// packages the outcome (three EM runs in one accounted parallel batch, as
/// in the paper).
#[allow(clippy::type_complexity)]
fn roll_out(
    top: Vec<(f64, Vec<f64>, [f64; 3])>,
    objective: &Objective,
    simulator: &dyn EmSimulator,
    n_verify: usize,
) -> (Vec<DesignCandidate>, f64, bool) {
    let mut em_seconds = 0.0;
    let mut candidates = Vec::new();
    for (_, values, predicted) in top.into_iter().take(n_verify) {
        let Ok(layer) = DiffStripline::from_vector(&values) else {
            continue;
        };
        let Ok(sim) = simulator.simulate(&layer) else {
            continue;
        };
        // Batches of up to three successful simulations run in parallel and
        // cost the wall-clock of one run (see the pipeline roll-out).
        if candidates.len().is_multiple_of(3) {
            em_seconds += simulator.nominal_seconds();
        }
        let metrics = sim.to_array();
        candidates.push(DesignCandidate {
            g_exact: objective.g_exact(&metrics, &values),
            values,
            predicted,
            simulated: Some(sim),
            attempts: 1,
        });
    }
    // Feasible-first ranking, then exact objective (see pipeline roll-out).
    let feasible = |c: &DesignCandidate| {
        objective.all_satisfied(&c.simulated.expect("simulated").to_array(), &c.values)
    };
    candidates.sort_by(|a, b| {
        feasible(b)
            .cmp(&feasible(a))
            .then(nan_last(a.g_exact, b.g_exact))
    });
    let success = candidates.first().is_some_and(feasible);
    (candidates, em_seconds, success)
}

/// Runs the paper's simulated-annealing baseline.
///
/// The budget expresses the match mode: `SA-1` caps samples at ISOP+'s
/// count; `SA-2` caps wall-clock at ISOP+'s runtime.
pub fn run_sa(
    space: &ParamSpace,
    surrogate: &dyn Surrogate,
    simulator: &dyn EmSimulator,
    objective: Objective,
    sa_cfg: &SaConfig,
    mut budget: Budget,
    seed: u64,
) -> BaselineOutcome {
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut obj = SurrogateBits {
        space,
        surrogate,
        objective: &objective,
        valid: 0,
        invalid: 0,
        top: Vec::new(),
    };
    let bin_space = BinarySpace::free(space.total_bits());
    let _ = sa::run(&mut obj, &bin_space, sa_cfg, &mut budget, &mut rng);
    let algorithm_seconds = t0.elapsed().as_secs_f64();
    let (candidates, em_seconds, success) =
        roll_out(std::mem::take(&mut obj.top), &objective, simulator, 3);
    BaselineOutcome {
        candidates,
        samples_seen: obj.valid,
        invalid_seen: obj.invalid,
        algorithm_seconds,
        em_seconds,
        success,
    }
}

/// Runs the paper's TPE-based Bayesian-optimization baseline (sequential:
/// one sample per iteration, as their Optuna setup).
#[allow(clippy::too_many_arguments)] // mirrors run_sa's harness signature
pub fn run_bo(
    space: &ParamSpace,
    surrogate: &dyn Surrogate,
    simulator: &dyn EmSimulator,
    objective: Objective,
    tpe_cfg: &TpeConfig,
    iterations: usize,
    mut budget: Budget,
    seed: u64,
) -> BaselineOutcome {
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut obj = SurrogateLevels {
        space,
        surrogate,
        objective: &objective,
        valid: 0,
        top: Vec::new(),
    };
    let mut tpe = Tpe::new(DiscreteSpace::new(space.cardinalities()), *tpe_cfg);
    let _ = tpe.optimize(&mut obj, iterations, &mut budget, &mut rng);
    let algorithm_seconds = t0.elapsed().as_secs_f64();
    let (candidates, em_seconds, success) =
        roll_out(std::mem::take(&mut obj.top), &objective, simulator, 3);
    BaselineOutcome {
        candidates,
        samples_seen: obj.valid,
        invalid_seen: 0,
        algorithm_seconds,
        em_seconds,
        success,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::s1;
    use crate::surrogate::OracleSurrogate;
    use crate::tasks::{objective_for, TaskId};
    use isop_em::simulator::AnalyticalSolver;

    #[test]
    fn sa_baseline_solves_t1() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let cfg = SaConfig {
            iterations: 3000,
            ..SaConfig::default()
        };
        let out = run_sa(
            &space,
            &surrogate,
            &simulator,
            objective_for(TaskId::T1, vec![]),
            &cfg,
            Budget::unlimited(),
            1,
        );
        let best = out.best().expect("found");
        let sim = best.simulated.expect("verified");
        assert!(out.success, "SA should satisfy T1: Z = {}", sim.z_diff);
        assert!(out.samples_seen > 1000);
    }

    #[test]
    fn bo_baseline_observes_fewer_samples_sequentially() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let out = run_bo(
            &space,
            &surrogate,
            &simulator,
            objective_for(TaskId::T1, vec![]),
            &TpeConfig::default(),
            150,
            Budget::unlimited(),
            2,
        );
        assert_eq!(out.samples_seen, 150);
        assert!(out.best().is_some());
    }

    #[test]
    fn sample_budget_matches_sa1_protocol() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let cfg = SaConfig {
            iterations: 1_000_000,
            ..SaConfig::default()
        };
        let out = run_sa(
            &space,
            &surrogate,
            &simulator,
            objective_for(TaskId::T1, vec![]),
            &cfg,
            Budget::unlimited().with_samples(500),
            3,
        );
        // Budgets count *valid* observations (the paper's "samples seen");
        // invalid encodings are tracked separately and can be numerous
        // (only ~0.76% of S_1 codes are valid designs).
        assert!(out.samples_seen >= 500);
        assert!(out.samples_seen <= 502);
        assert!(out.invalid_seen > 0);
    }

    #[test]
    fn candidates_carry_simulated_metrics() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let out = run_bo(
            &space,
            &surrogate,
            &simulator,
            objective_for(TaskId::T2, vec![]),
            &TpeConfig::default(),
            60,
            Budget::unlimited(),
            4,
        );
        for c in &out.candidates {
            assert!(c.simulated.is_some());
            assert!(c.g_exact.is_finite());
        }
    }
}
