//! # Deterministic EM roll-out scheduling
//!
//! Stage 3 of the pipeline hands the accurate simulator a stream of
//! surrogate-ranked designs. This module owns *when* each simulation runs
//! and what the paper's charging model bills for it, in two schedules:
//!
//! * [`run_synchronous`] — the classic wave loop: draw `cand_num` designs,
//!   let every retry chain finish, charge one `nominal_seconds()` per batch
//!   of three delivered designs plus a per-failure surcharge (each failed
//!   solver attempt costs a nominal run, and every re-issue waits out its
//!   exponential backoff). A transient failure stalls its whole wave.
//! * [`run_async`] — the asynchronous batched scheduler (the default): a
//!   global batch stream that interleaves fresh candidates, retry chains,
//!   and top-ups — and, across experiment cells, flights from multiple
//!   jobs — into full batches of [`EM_BATCH_SLOTS`]. Every batch of up to
//!   three concurrent solver attempts costs exactly one nominal charge;
//!   there is no separate failure surcharge and no backoff billing, because
//!   a retry simply occupies a slot in a later batch instead of idling a
//!   reserved wave. The charged ledger therefore lands at or strictly below
//!   the synchronous schedule for the same candidate set — strictly below
//!   whenever any retry fires (the synchronous schedule then pays backoff
//!   on top of per-attempt charges, while the async stream only pays for
//!   batches), and bit-identical when no fault fires (both schedules then
//!   run the same full batches).
//!
//! ## The logical clock, and why the async schedule is deterministic
//!
//! The scheduler never asks "which simulation finished first" — wall-clock
//! arrival order would make batch composition depend on thread scheduling.
//! Instead it advances a logical tick counter:
//!
//! 1. **Admission** (serial, job order): while a job has fewer than
//!    `target` designs delivered-or-in-flight, draw the next pool entry in
//!    surrogate-rank order. Cache hits deliver instantly and never occupy
//!    a batch slot; geometry-invalid designs fail instantly; everything
//!    else becomes a *flight* ready at the current tick.
//! 2. **Batch selection** (pure): the ready flights, sorted by
//!    `(job, rank)`, fill up to [`EM_BATCH_SLOTS`] slots — at most one
//!    flight per distinct design, so concurrent attempts can never race a
//!    per-design fault stream.
//! 3. **Execution** (parallel): each slot runs exactly one solver attempt;
//!    results collect by slot index, so the merge below is order-stable at
//!    any worker count.
//! 4. **Merge** (serial, slot order): successes deliver and enter the
//!    evaluation cache; transient failures re-enqueue at `tick + 1` while
//!    the retry budget lasts; permanent failures release their admission
//!    slot so the next tick tops the job back up.
//!
//! Batch composition is thus a pure function of design identity and the
//! tick counter, so candidates, both EM ledgers, and every telemetry
//! counter are bit-identical at any `--threads` width.
//!
//! ## Charging rules
//!
//! * Each **live batch** charges one `nominal_seconds()` to the charged
//!   ledger, split across the participating jobs by slot share (a
//!   single-job batch charges the job exactly one nominal). Live batches
//!   tick `em.batches_charged`, `em.sched.batches`, `em.sched.slack_slots`
//!   (empty slots), and `em.sched.interleaved` (batches spanning jobs).
//! * **Cache hits never occupy a slot.** After the live stream drains, a
//!   *replay pass* re-schedules each job's hits with oracle outcomes taken
//!   from their stored attempt counts; each replay batch books one nominal
//!   to the *saved* ledger and ticks `em.batches_charged` (but none of the
//!   `em.sched.*` counters, which count live work only). A fully-warm
//!   roll-out therefore reports the same `em.batches_charged` and the same
//!   `charged + saved` total as its cold twin, with `charged == 0`.

use crate::evalcache::{CachedSim, EvalCache};
use crate::exec::par_map_indexed;
use crate::params::ParamSpace;
use isop_em::fault::{PermanentFault, RetryPolicy, SimError};
use isop_em::simulator::{EmSimulator, SimulationResult};
use isop_em::stackup::DiffStripline;
use isop_telemetry::{Counter, Telemetry};
use serde::{Deserialize, Serialize};

/// Slots per charged EM batch — the paper's "three runs in parallel".
pub const EM_BATCH_SLOTS: usize = 3;

/// Which stage-3 schedule drives the accurate simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RolloutSchedule {
    /// The classic wave loop: retry chains complete inside their wave, and
    /// failed attempts are surcharged per run plus simulated backoff. Kept
    /// as the reference schedule the async ledger is compared against.
    Synchronous,
    /// The deterministic async batch stream (default): retries and top-ups
    /// share batches with fresh candidates, one nominal charge per batch,
    /// no surcharge and no backoff billing.
    #[default]
    AsyncBatched,
}

/// One surrogate-scored roll-out pool entry.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolEntry {
    /// Grid-valid design vector.
    pub values: Vec<f64>,
    /// Surrogate-predicted `[Z, L, NEXT]`.
    pub predicted: [f64; 3],
    /// Smoothed objective `g_hat` on the prediction (ranking key).
    pub g_hat: f64,
}

/// One roll-out job: a ranked pool (best `g_hat` first) and how many
/// successful accurate simulations it wants delivered.
#[derive(Debug, Clone, Copy)]
pub struct RolloutJob<'p> {
    /// Surrogate-ranked candidate pool; indices are the admission order.
    pub pool: &'p [PoolEntry],
    /// Successful simulations to deliver (`cand_num`, at least 1).
    pub target: usize,
}

/// One successful accurate simulation delivered to a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveredSim {
    /// Index of the design in the job's pool.
    pub pool_index: usize,
    /// The accurate simulation result.
    pub result: SimulationResult,
    /// Solver attempts the design took (cache hits replay the stored
    /// count from the original run).
    pub attempts: u32,
    /// Whether the evaluation cache served this delivery.
    pub from_cache: bool,
}

/// Per-job outcome of one scheduler pass, with the fault and ledger
/// accounting [`IsopOutcome`](crate::pipeline::IsopOutcome) reports.
#[derive(Debug, Clone, Default)]
pub struct JobRollout {
    /// Successful simulations in delivery order.
    pub delivered: Vec<DeliveredSim>,
    /// Charged EM seconds attributed to this job.
    pub em_seconds: f64,
    /// EM seconds the evaluation cache elided for this job.
    pub em_seconds_saved: f64,
    /// Re-issued attempts after transient failures.
    pub em_retries: u64,
    /// Transient failure events observed.
    pub em_failures_transient: u64,
    /// Designs abandoned for good (permanent failure, exhausted retry
    /// budget, or geometry rejection).
    pub em_failures_permanent: u64,
    /// Pool entries drawn beyond the initial `target`-sized wave.
    pub em_topped_up: u64,
    /// Pool entries drawn in total.
    pub drawn: usize,
    /// Live batches this job had at least one slot in.
    pub sched_batches: u64,
}

/// Shared engines and knobs of one scheduler pass. Jobs scheduled together
/// (e.g. interleaved experiment trials) share all of these.
pub struct SchedulerCtx<'a> {
    /// The accurate simulator.
    pub simulator: &'a dyn EmSimulator,
    /// Parameter space (cache keys are grid coordinates in it).
    pub space: &'a ParamSpace,
    /// Accurate-EM result cache; hits deliver without occupying slots.
    pub eval_cache: &'a EvalCache,
    /// Telemetry handle for counters and both EM ledgers.
    pub telemetry: &'a Telemetry,
    /// Retry budget for transient failures.
    pub retry: RetryPolicy,
    /// Worker threads for the per-batch parallel section.
    pub threads: usize,
}

/// Outcome of one fresh (uncached) roll-out evaluation: either the full
/// retry chain of the synchronous schedule, or the accumulated attempts of
/// one async flight.
#[derive(Debug, Clone, Copy)]
struct RolloutSim {
    /// Final successful simulation, if any attempt succeeded.
    result: Option<SimulationResult>,
    /// Attempts issued, including the final one (0 when the design never
    /// formed a valid layer).
    attempts: u32,
    /// Transient failures observed across the attempts.
    transient_failures: u32,
    /// The design never reached the solver: vector-to-layer conversion or
    /// fail-fast geometry validation rejected it, so no solver time is
    /// charged for the rejecting attempt.
    geometry_rejected: bool,
}

/// One in-flight design of the async scheduler.
struct Flight {
    /// Owning job index.
    job: usize,
    /// Pool index within the job (admission rank).
    rank: usize,
    /// Completed solver attempts so far.
    attempts: u32,
    /// Transient failures observed so far.
    transient_failures: u32,
    /// Earliest tick this flight may occupy a batch slot.
    ready_at: u64,
    /// The validated layer the solver runs.
    layer: DiffStripline,
    /// Cache key for inserting a success (None when caching is disabled).
    key: Option<crate::evalcache::DesignKey>,
}

/// Per-job admission state of the async scheduler.
#[derive(Default, Clone, Copy)]
struct JobState {
    /// Next pool index to draw.
    next: usize,
    /// Successful deliveries so far.
    delivered: usize,
    /// Flights currently in the air.
    active: usize,
}

/// Runs one design through the accurate simulator under `policy`:
/// transient failures retry up to the attempt budget, permanent failures
/// abort immediately (they would recur forever). Nothing sleeps here —
/// backoff is charged as simulated seconds by the synchronous schedule's
/// serial accounting section. The async schedule never calls this: each
/// flight attempt is a single `simulate` call in its own batch slot.
fn simulate_with_retry(sim: &dyn EmSimulator, x: &[f64], policy: RetryPolicy) -> RolloutSim {
    let mut out = RolloutSim {
        result: None,
        attempts: 0,
        transient_failures: 0,
        geometry_rejected: false,
    };
    let Ok(layer) = DiffStripline::from_vector(x) else {
        out.geometry_rejected = true;
        return out;
    };
    let budget = policy.attempt_budget();
    loop {
        out.attempts += 1;
        match sim.simulate(&layer) {
            Ok(r) => {
                out.result = Some(r);
                return out;
            }
            Err(SimError::Transient(_)) => {
                out.transient_failures += 1;
                if out.attempts >= budget {
                    return out;
                }
            }
            Err(SimError::Permanent(p)) => {
                out.geometry_rejected = matches!(p, PermanentFault::Geometry(_));
                return out;
            }
        }
    }
}

/// Folds a job's fresh-simulation records into its rollout accounting and
/// the telemetry counters (serial, so totals are width-independent).
fn fold_fault_accounting(out: &mut JobRollout, fresh: &[RolloutSim], ctx: &SchedulerCtx<'_>) {
    out.em_retries = fresh
        .iter()
        .map(|r| u64::from(r.attempts.saturating_sub(1)))
        .sum();
    out.em_failures_transient = fresh.iter().map(|r| u64::from(r.transient_failures)).sum();
    out.em_failures_permanent = fresh.iter().filter(|r| r.result.is_none()).count() as u64;
    ctx.telemetry.add(Counter::EmRetries, out.em_retries);
    ctx.telemetry
        .add(Counter::EmFailuresTransient, out.em_failures_transient);
    ctx.telemetry
        .add(Counter::EmFailuresPermanent, out.em_failures_permanent);
    ctx.telemetry.add(Counter::EmToppedUp, out.em_topped_up);
}

/// The classic synchronous wave schedule, bit-for-bit the pre-scheduler
/// pipeline behavior: draw a wave, let every retry chain finish, charge
/// one nominal per batch of three delivered designs plus the per-failure
/// surcharge (failed attempts at nominal cost, re-issues at simulated
/// backoff). Retained as the reference the async ledger is gated against.
pub fn run_synchronous(job: RolloutJob<'_>, ctx: &SchedulerCtx<'_>) -> JobRollout {
    let mut out = JobRollout::default();
    let target = job.target.max(1);
    let first_wave = target.min(job.pool.len());
    let mut served_from_cache: Vec<bool> = Vec::new();
    let mut fresh_records: Vec<RolloutSim> = Vec::new();
    let mut next = 0usize;
    let mut delivered = 0usize;
    while delivered < target && next < job.pool.len() {
        let take = (target - delivered).min(job.pool.len() - next);
        let wave = &job.pool[next..next + take];
        let wave_base = next;
        next += take;
        // Probe the evaluation cache serially, in draw order, before the
        // parallel section — hit/miss counters come out identical at any
        // thread width. Only successful simulations are ever cached, so a
        // hit replays the simulator's counter footprint (attempted +
        // succeeded) and the stored attempt count while bypassing the
        // retry path entirely.
        let probes: Vec<_> = wave
            .iter()
            .map(|e| ctx.eval_cache.probe(ctx.space, &e.values, ctx.telemetry))
            .collect();
        for p in &probes {
            if p.hit.is_some() {
                ctx.telemetry.incr(Counter::EmSimAttempted);
                ctx.telemetry.incr(Counter::EmSimSucceeded);
            }
        }
        // Simulate only the cache misses, concurrently — one worker owns a
        // design's whole retry chain and results collect by index, so the
        // merge below sees the same order at any thread count.
        let miss_inputs: Vec<Vec<f64>> = wave
            .iter()
            .zip(&probes)
            .filter(|(_, p)| p.hit.is_none())
            .map(|(e, _)| e.values.clone())
            .collect();
        let miss_runs = par_map_indexed(ctx.threads, &miss_inputs, |_, x| {
            simulate_with_retry(ctx.simulator, x, ctx.retry)
        });
        // Merge hits and fresh outcomes back into draw order; fresh
        // successes enter the cache serially, after the parallel section.
        let mut fresh = miss_runs.into_iter();
        for (offset, probe) in probes.into_iter().enumerate() {
            let pool_index = wave_base + offset;
            let (sim, attempts, from_cache) = if let Some(hit) = probe.hit {
                (Some(hit.result), hit.attempts, true)
            } else {
                let run = fresh.next().expect("one outcome per cache miss");
                if let (Some(result), Some(key)) = (run.result, probe.key) {
                    ctx.eval_cache.insert(
                        key,
                        CachedSim {
                            result,
                            attempts: run.attempts,
                        },
                    );
                }
                fresh_records.push(run);
                (run.result, run.attempts, false)
            };
            let Some(sim) = sim else {
                continue;
            };
            delivered += 1;
            served_from_cache.push(from_cache);
            out.delivered.push(DeliveredSim {
                pool_index,
                result: sim,
                attempts,
                from_cache,
            });
        }
    }
    out.drawn = next;
    out.em_topped_up = (next - first_wave) as u64;
    fold_fault_accounting(&mut out, &fresh_records, ctx);
    // EM wall-clock: each batch of up to three *successful* simulations
    // runs in parallel and occupies the wall-clock of a single run. Charge
    // once per batch, not per run, and not for designs the simulator
    // rejected. A batch served entirely from cache costs nothing — its
    // wall-clock lands in the saved ledger instead, so charged + saved is
    // invariant under toggling the cache.
    for batch in served_from_cache.chunks(EM_BATCH_SLOTS) {
        let nominal = ctx.simulator.nominal_seconds();
        ctx.telemetry.incr(Counter::EmBatchesCharged);
        if batch.iter().all(|&from_cache| from_cache) {
            out.em_seconds_saved += nominal;
            ctx.telemetry.save_em_seconds(nominal);
        } else {
            out.em_seconds += nominal;
            ctx.telemetry.charge_em_seconds(nominal);
        }
    }
    // Retry surcharge: every failed attempt that reached the tool costs
    // one nominal run, and each re-issue waits out its exponential backoff
    // — all charged as *simulated* seconds (no real sleeps). The final
    // successful attempt is already covered by its batch charge above, and
    // fail-fast geometry rejections never reach the solver. Accumulated
    // serially in draw order so the f64 ledger is bit-identical at any
    // thread width.
    let nominal = ctx.simulator.nominal_seconds();
    for r in &fresh_records {
        let charged_runs = r
            .attempts
            .saturating_sub(u32::from(r.geometry_rejected))
            .saturating_sub(u32::from(r.result.is_some()));
        let surcharge = f64::from(charged_runs) * nominal + ctx.retry.total_backoff(r.attempts);
        if surcharge > 0.0 {
            out.em_seconds += surcharge;
            ctx.telemetry.charge_em_seconds(surcharge);
        }
    }
    out
}

/// The deterministic asynchronous batched scheduler. Runs every job's
/// roll-out as one global batch stream (see the module docs for the tick
/// loop and charging rules) and returns one [`JobRollout`] per job, in job
/// order.
pub fn run_async(jobs: &[RolloutJob<'_>], ctx: &SchedulerCtx<'_>) -> Vec<JobRollout> {
    let nominal = ctx.simulator.nominal_seconds();
    let n = jobs.len();
    let mut out: Vec<JobRollout> = (0..n).map(|_| JobRollout::default()).collect();
    let mut state: Vec<JobState> = vec![JobState::default(); n];
    let mut flights: Vec<Flight> = Vec::new();
    // Cache-hit attempt counts per job, in admission order — the replay
    // pass re-schedules these after the live stream drains.
    let mut hit_attempts: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut fresh_records: Vec<Vec<RolloutSim>> = vec![Vec::new(); n];
    let mut tick: u64 = 0;
    loop {
        // --- 1. Admission (serial, job order): top every job up to
        // `target` delivered-or-in-flight designs. Hits deliver instantly
        // and never fly; geometry-invalid designs fail instantly.
        for (j, job) in jobs.iter().enumerate() {
            let target = job.target.max(1);
            let s = &mut state[j];
            while s.delivered + s.active < target && s.next < job.pool.len() {
                let rank = s.next;
                s.next += 1;
                let entry = &job.pool[rank];
                let probe = ctx
                    .eval_cache
                    .probe(ctx.space, &entry.values, ctx.telemetry);
                if let Some(hit) = probe.hit {
                    ctx.telemetry.incr(Counter::EmSimAttempted);
                    ctx.telemetry.incr(Counter::EmSimSucceeded);
                    s.delivered += 1;
                    out[j].delivered.push(DeliveredSim {
                        pool_index: rank,
                        result: hit.result,
                        attempts: hit.attempts,
                        from_cache: true,
                    });
                    hit_attempts[j].push(hit.attempts);
                    continue;
                }
                let Ok(layer) = DiffStripline::from_vector(&entry.values) else {
                    fresh_records[j].push(RolloutSim {
                        result: None,
                        attempts: 0,
                        transient_failures: 0,
                        geometry_rejected: true,
                    });
                    continue;
                };
                flights.push(Flight {
                    job: j,
                    rank,
                    attempts: 0,
                    transient_failures: 0,
                    ready_at: tick,
                    layer,
                    key: probe.key,
                });
                s.active += 1;
            }
        }
        if flights.is_empty() {
            break;
        }
        // --- 2. Batch selection (pure): ready flights by (job, rank), at
        // most one flight per distinct design so per-design fault streams
        // and cache inserts can never race inside the parallel section.
        let mut order: Vec<usize> = (0..flights.len()).collect();
        order.sort_unstable_by_key(|&i| (flights[i].job, flights[i].rank));
        let mut batch: Vec<usize> = Vec::with_capacity(EM_BATCH_SLOTS);
        for &i in &order {
            if batch.len() == EM_BATCH_SLOTS {
                break;
            }
            if flights[i].ready_at > tick {
                continue;
            }
            let values = &jobs[flights[i].job].pool[flights[i].rank].values;
            let dup = batch
                .iter()
                .any(|&b| &jobs[flights[b].job].pool[flights[b].rank].values == values);
            if dup {
                continue;
            }
            batch.push(i);
        }
        if batch.is_empty() {
            // Every remaining flight was deferred past this tick; advance.
            tick += 1;
            continue;
        }
        // --- 3. Execution (parallel): one solver attempt per slot,
        // collected by slot index.
        let layers: Vec<DiffStripline> = batch.iter().map(|&i| flights[i].layer).collect();
        let results = par_map_indexed(ctx.threads, &layers, |_, layer| {
            ctx.simulator.simulate(layer)
        });
        // --- 4. Merge (serial, slot order) and charge the batch: one
        // nominal, split across the participating jobs by slot share (a
        // single-job batch charges that job exactly one nominal).
        let occupied = batch.len();
        ctx.telemetry.incr(Counter::EmBatchesCharged);
        ctx.telemetry.incr(Counter::EmSchedBatches);
        ctx.telemetry.add(
            Counter::EmSchedSlackSlots,
            (EM_BATCH_SLOTS - occupied) as u64,
        );
        ctx.telemetry.charge_em_seconds(nominal);
        let mut slots_of: Vec<(usize, usize)> = Vec::with_capacity(occupied);
        for &i in &batch {
            match slots_of.iter_mut().find(|(j, _)| *j == flights[i].job) {
                Some((_, c)) => *c += 1,
                None => slots_of.push((flights[i].job, 1)),
            }
        }
        if slots_of.len() > 1 {
            ctx.telemetry.incr(Counter::EmSchedInterleaved);
        }
        for &(j, slots) in &slots_of {
            out[j].em_seconds += nominal * (slots as f64 / occupied as f64);
            out[j].sched_batches += 1;
        }
        let mut dead = vec![false; flights.len()];
        for (slot, &i) in batch.iter().enumerate() {
            let f = &mut flights[i];
            f.attempts += 1;
            match results[slot] {
                Ok(result) => {
                    if let Some(key) = f.key.clone() {
                        ctx.eval_cache.insert(
                            key,
                            CachedSim {
                                result,
                                attempts: f.attempts,
                            },
                        );
                    }
                    state[f.job].active -= 1;
                    state[f.job].delivered += 1;
                    out[f.job].delivered.push(DeliveredSim {
                        pool_index: f.rank,
                        result,
                        attempts: f.attempts,
                        from_cache: false,
                    });
                    fresh_records[f.job].push(RolloutSim {
                        result: Some(result),
                        attempts: f.attempts,
                        transient_failures: f.transient_failures,
                        geometry_rejected: false,
                    });
                    dead[i] = true;
                }
                Err(SimError::Transient(_)) => {
                    f.transient_failures += 1;
                    if ctx.retry.retries_remaining(f.attempts) > 0 {
                        f.ready_at = tick + 1;
                    } else {
                        state[f.job].active -= 1;
                        fresh_records[f.job].push(RolloutSim {
                            result: None,
                            attempts: f.attempts,
                            transient_failures: f.transient_failures,
                            geometry_rejected: false,
                        });
                        dead[i] = true;
                    }
                }
                Err(SimError::Permanent(ref p)) => {
                    state[f.job].active -= 1;
                    fresh_records[f.job].push(RolloutSim {
                        result: None,
                        attempts: f.attempts,
                        transient_failures: f.transient_failures,
                        geometry_rejected: matches!(p, PermanentFault::Geometry(_)),
                    });
                    dead[i] = true;
                }
            }
        }
        let mut idx = 0;
        flights.retain(|_| {
            let keep = !dead[idx];
            idx += 1;
            keep
        });
        tick += 1;
    }
    // --- Accounting and the cache-hit replay pass, per job in job order.
    for (j, job) in jobs.iter().enumerate() {
        let target = job.target.max(1);
        out[j].drawn = state[j].next;
        out[j].em_topped_up =
            (state[j].next - target.min(job.pool.len()).min(state[j].next)) as u64;
        let records = std::mem::take(&mut fresh_records[j]);
        fold_fault_accounting(&mut out[j], &records, ctx);
        // Replay: re-schedule the hits with oracle outcomes from their
        // stored attempt counts — the batches the cache elided. Each
        // replay batch books one nominal to the saved ledger and ticks
        // `em.batches_charged` (never the live `em.sched.*` counters), so
        // a fully-warm roll-out reports the same batch count and the same
        // charged + saved total as its cold twin.
        let mut remaining: Vec<u32> = hit_attempts[j].iter().map(|&a| a.max(1)).collect();
        while !remaining.is_empty() {
            let slots = remaining.len().min(EM_BATCH_SLOTS);
            ctx.telemetry.incr(Counter::EmBatchesCharged);
            ctx.telemetry.save_em_seconds(nominal);
            out[j].em_seconds_saved += nominal;
            for a in remaining.iter_mut().take(slots) {
                *a -= 1;
            }
            remaining.retain(|&a| a > 0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_serde_defaults_to_async() {
        assert_eq!(RolloutSchedule::default(), RolloutSchedule::AsyncBatched);
        let json = serde_json::to_string(&RolloutSchedule::AsyncBatched).expect("serializes");
        assert_eq!(json, "\"AsyncBatched\"");
        let back: RolloutSchedule = serde_json::from_str("\"Synchronous\"").expect("parses");
        assert_eq!(back, RolloutSchedule::Synchronous);
    }

    #[test]
    fn batch_width_matches_paper_charging_model() {
        // The charging model divides PAPER_EM_BATCH_SECONDS across three
        // concurrent runs; the scheduler must pack to the same width.
        assert_eq!(EM_BATCH_SLOTS, 3);
    }
}
