//! The multi-job concurrent execution engine: many [`IsopOptimizer`]
//! pipelines multiplexed over one shared executor, one core budget, and
//! one persistent store.
//!
//! The engine turns the pipeline into a service-shaped library. A
//! [`JobQueue`] is partitioned into deterministic
//! admission waves (weighted-fair across tenants, FIFO within one); each
//! wave's jobs run **concurrently** on dedicated threads, every job
//! leasing its worker width from a global
//! [`CoreBudget`] so J jobs x T threads can never
//! oversubscribe the machine. Jobs tagged with the same design space
//! warm-start each other through a shared [`Store`]: the evaluations a
//! wave flushes are served to every later wave as cross-job cache hits.
//!
//! ## The determinism argument
//!
//! Each job through the engine produces candidates, charged+saved EM
//! ledgers, and counters **bit-identical to running it alone** (same wave
//! position, same initial store), at any core-permit width. Four
//! structural facts make that true:
//!
//! 1. **Private state per job.** Every job gets its own [`Telemetry`]
//!    handle, its own seed, and its own [`EvalCache`] handle — nothing a
//!    neighbor records lands in this job's report.
//! 2. **Admission-time hydration.** A job's cache is hydrated from the
//!    shared store once, at the **serial** admission point of its wave
//!    ([`EvalCache::hydrate_space`]). Because the store surfaces pending
//!    (unflushed) appends, hydrating lazily mid-run would race with
//!    concurrent neighbors' inserts; hydrating at admission freezes the
//!    job's view of the store before any neighbor starts.
//! 3. **Flush between waves.** The store flushes after each wave joins, so
//!    the records a later wave hydrates are exactly the completed earlier
//!    waves' — a pure function of wave composition, which is itself a pure
//!    function of the queue ([`JobQueue::fair_waves`]).
//! 4. **Width-independent parallel sections.** A job's lease width only
//!    sets how many workers its `par_map_*` sections use, and every such
//!    section reassembles results by index; all RNG draws happen before
//!    parallel sections. Whatever the budget grants, the outcome is the
//!    serial outcome bit for bit.
//!
//! Within one wave, concurrent jobs therefore cannot observe each other at
//! all (they warm-start only from *earlier* waves), and a fault-injected
//! job perturbs nothing but its own report — properties pinned by
//! `tests/engine_concurrency.rs` and the bench-gate engine smoke.

use crate::evalcache::EvalCache;
use crate::exec::{ControlState, CoreBudget, RunControl};
use crate::jobs::{JobQueue, JobSpec};
use crate::pipeline::{DesignCandidate, IsopConfig, IsopOptimizer};
use crate::surrogate::OracleSurrogate;
use isop_em::fault::{FaultConfig, FaultInjector};
use isop_em::simulator::{AnalyticalSolver, EmSimulator};
use isop_hpo::budget::Budget;
use isop_store::Store;
use isop_telemetry::{Counter, RunReport, Telemetry};
use serde::{Deserialize, Serialize};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// Sizing knobs of the engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Total core permits shared by every concurrently running job
    /// (0 = the host's available parallelism).
    pub cores: usize,
    /// Jobs admitted per wave (the worker-pool width). Within a wave jobs
    /// run concurrently; waves run in sequence and are the warm-start
    /// boundary for shared-space jobs.
    pub wave_slots: usize,
    /// Pipeline configuration template every job runs with; the
    /// `parallelism` field is overridden per job from its core lease.
    pub pipeline: IsopConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cores: 0,
            wave_slots: 4,
            pipeline: IsopConfig::default(),
        }
    }
}

/// Outcome of one job through the engine: the pipeline's candidate set and
/// ledgers plus the tagged per-job [`RunReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Job id (from the spec, or queue-assigned).
    pub id: String,
    /// Tenant the job was admitted under.
    pub tenant: String,
    /// Task label the job ran.
    pub task: String,
    /// Space label the job searched.
    pub space: String,
    /// Seed of the job's pipeline run.
    pub seed: u64,
    /// Admission wave the job ran in (0-based).
    pub wave: usize,
    /// Whether the best verified design satisfied every constraint.
    pub success: bool,
    /// How the job left the engine: `completed` (ran to the end),
    /// `cancelled` (its control token was cancelled), `deadline_expired`
    /// (its deadline passed at a wave-admission or stage-boundary check),
    /// or `failed` (the worker panicked; contained to this job).
    pub disposition: String,
    /// Roll-out resolution label (`full` / `degraded` /
    /// `all_simulations_failed`).
    pub resolution: String,
    /// Simulated EM seconds the job charged.
    pub em_seconds_charged: f64,
    /// Simulated EM seconds the job's cache hits elided.
    pub em_seconds_saved: f64,
    /// Roll-out candidates ranked by exact objective (best first) — the
    /// payload the bit-identity contracts compare.
    pub candidates: Vec<DesignCandidate>,
    /// The job's full telemetry report, tagged with `job` / `tenant`.
    pub report: RunReport,
}

/// Aggregated outcome of one engine run over a queue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineReport {
    /// Mirrors [`RunReport::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Core permits the run was budgeted.
    pub cores: usize,
    /// Wave width the run admitted at.
    pub wave_slots: usize,
    /// Waves executed.
    pub waves: u64,
    /// Real wall-clock of the whole run, seconds.
    pub wall_seconds: f64,
    /// Summed charged EM seconds across every job.
    pub em_seconds_charged: f64,
    /// Summed elided EM seconds across every job.
    pub em_seconds_saved: f64,
    /// Cache hits served from store records written by another job or a
    /// previous process during this run — the cross-job locality gauge.
    pub cross_job_hits: u64,
    /// High-water mark of simultaneously leased core permits (never above
    /// `cores` by construction).
    pub peak_core_permits: usize,
    /// Per-job outcomes, in queue submission order.
    pub jobs: Vec<JobResult>,
}

/// Per-tenant fold of a set of per-job reports — the
/// `isop report --aggregate` dashboard rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSummary {
    /// Tenant label (reports with an empty tenant fold under `default`).
    pub tenant: String,
    /// Reports folded.
    pub jobs: u64,
    /// Jobs whose best design satisfied every constraint.
    pub succeeded: u64,
    /// Jobs that resolved `full` (or predate resolution tracking).
    pub full: u64,
    /// Jobs that resolved `degraded`.
    pub degraded: u64,
    /// Jobs that resolved `all_simulations_failed`.
    pub failed: u64,
    /// Summed charged EM seconds.
    pub em_seconds_charged: f64,
    /// Summed elided EM seconds.
    pub em_seconds_saved: f64,
    /// Summed `em.cache.hits`.
    pub cache_hits: u64,
    /// Summed `em.cache.misses`.
    pub cache_misses: u64,
}

impl TenantSummary {
    /// Cache hit rate over the tenant's roll-out probes (0 when none ran).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Folds per-job reports into per-tenant rows, sorted by tenant label.
#[must_use]
pub fn aggregate_by_tenant(reports: &[RunReport]) -> Vec<TenantSummary> {
    let mut by_tenant: std::collections::BTreeMap<String, TenantSummary> =
        std::collections::BTreeMap::new();
    for rep in reports {
        let tenant = if rep.tenant.is_empty() {
            "default".to_string()
        } else {
            rep.tenant.clone()
        };
        let row = by_tenant
            .entry(tenant.clone())
            .or_insert_with(|| TenantSummary {
                tenant,
                jobs: 0,
                succeeded: 0,
                full: 0,
                degraded: 0,
                failed: 0,
                em_seconds_charged: 0.0,
                em_seconds_saved: 0.0,
                cache_hits: 0,
                cache_misses: 0,
            });
        row.jobs += 1;
        row.succeeded += u64::from(rep.success);
        match rep.resolution.as_str() {
            "degraded" => row.degraded += 1,
            "all_simulations_failed" => row.failed += 1,
            _ => row.full += 1,
        }
        row.em_seconds_charged += rep.em_seconds_charged;
        row.em_seconds_saved += rep.em_seconds_saved;
        row.cache_hits += rep.counter("em.cache.hits");
        row.cache_misses += rep.counter("em.cache.misses");
    }
    by_tenant.into_values().collect()
}

/// One admitted job, fully prepared at the wave's serial admission point.
struct AdmittedJob {
    queue_index: usize,
    wave: usize,
    spec: JobSpec,
    cache: EvalCache,
    telemetry: Telemetry,
    control: RunControl,
}

/// Per-job execution controls a service layer hands
/// [`Engine::run_with`]: live cancellation tokens and already-finished
/// results to replay instead of re-running.
#[derive(Debug, Default)]
pub struct JobControls {
    /// Cancellation tokens by job id. A job without a token gets a fresh
    /// one (armed with the spec's `deadline_seconds`, if any); a job with
    /// one shares it, so the daemon can cancel mid-epoch.
    pub tokens: std::collections::BTreeMap<String, RunControl>,
    /// Finished results by job id, replayed **verbatim** in place of
    /// running the job — the journal-replay half of crash recovery. A
    /// replayed job is never spawned, charges nothing, and keeps its
    /// original wave tag, so a restarted epoch reproduces the
    /// uninterrupted run bit for bit.
    pub completed: std::collections::BTreeMap<String, JobResult>,
}

/// The multi-job engine. Construct with [`Engine::new`], optionally attach
/// a shared persistent [`Store`] (jobs on the same space then warm-start
/// each other across waves and across engine runs) and an engine-level
/// [`Telemetry`] handle (collects `engine.*` wave/job counters and the
/// shared store's `store.*` traffic when the store carries the same
/// handle), then [`Engine::run`] a queue.
pub struct Engine {
    config: EngineConfig,
    store: Option<Arc<Store>>,
    telemetry: Telemetry,
}

impl Engine {
    /// An engine with the given sizing; no store, no telemetry.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            store: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches the shared persistent store. Every job's cache hydrates
    /// from it at admission and appends to it; the engine flushes it
    /// between waves. To have the store's `store.*` counters land in the
    /// engine report, open it with the engine's telemetry handle.
    #[must_use]
    pub fn with_store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches an engine-level telemetry handle for the `engine.*`
    /// counters. Per-job recordings never land here — each job runs on its
    /// own private handle so per-job reports stay neighbor-independent.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Runs every queued job to completion and returns the aggregated
    /// report (per-job results in submission order).
    ///
    /// # Errors
    ///
    /// Returns a message when a spec names an unknown task or space (the
    /// queue is validated up front — nothing runs on a partially valid
    /// batch).
    pub fn run(&self, queue: &JobQueue) -> Result<EngineReport, String> {
        self.run_with(queue, None, |_, _| Ok(()))
    }

    /// [`Engine::run`] with service hooks: per-job [`JobControls`]
    /// (cancellation tokens, deadline arming, journal-replayed results)
    /// and an `on_wave` callback invoked after each wave's store flush
    /// with the wave's **newly produced** results (replays excluded) — the
    /// daemon journals `Finished` frames there, so evaluations always hit
    /// disk before the journal marks their job done.
    ///
    /// Control tokens are polled at wave admission and at pipeline stage
    /// boundaries only; a cancelled or expired job reports its disposition
    /// without ever tearing down wave neighbors, and a panicking job is
    /// contained to a `failed` disposition.
    ///
    /// # Errors
    ///
    /// Returns a message when a spec names an unknown task or space (the
    /// queue is validated up front), on a store flush failure, or when
    /// `on_wave` fails.
    pub fn run_with(
        &self,
        queue: &JobQueue,
        controls: Option<&JobControls>,
        mut on_wave: impl FnMut(usize, &[JobResult]) -> Result<(), String>,
    ) -> Result<EngineReport, String> {
        for spec in queue.jobs() {
            if spec.task_id().is_none() {
                return Err(format!("job '{}': unknown task '{}'", spec.id, spec.task));
            }
            if spec.param_space().is_none() {
                return Err(format!("job '{}': unknown space '{}'", spec.id, spec.space));
            }
        }
        let cores = if self.config.cores == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.cores
        };
        let budget = CoreBudget::new(cores);
        let cross_hits_before = self.telemetry.counter(Counter::StoreCrossJobHits);
        let waves = queue.fair_waves(self.config.wave_slots);
        let t0 = Instant::now();
        let mut results: Vec<Option<JobResult>> = (0..queue.len()).map(|_| None).collect();
        for (wave_idx, wave) in waves.iter().enumerate() {
            // Serial admission: private telemetry + cache per job, the
            // cache pre-hydrated for the job's space so its view of the
            // shared store is frozen before any neighbor runs. Replayed
            // and already-stopped jobs are settled here without spawning.
            let mut replayed: Vec<bool> = vec![false; wave.len()];
            let mut admitted: Vec<AdmittedJob> = Vec::new();
            for (slot, &queue_index) in wave.iter().enumerate() {
                let spec = queue.jobs()[queue_index].clone();
                if let Some(done) = controls.and_then(|c| c.completed.get(&spec.id)) {
                    replayed[slot] = true;
                    results[queue_index] = Some(done.clone());
                    continue;
                }
                let control = controls
                    .and_then(|c| c.tokens.get(&spec.id).cloned())
                    .unwrap_or_default();
                if spec.deadline_seconds > 0.0 {
                    control.arm_deadline(spec.deadline_seconds);
                }
                // Wave-admission control check: a job cancelled (or
                // already past its deadline) before admission never
                // hydrates a cache or leases a core.
                match control.state() {
                    ControlState::Cancelled => {
                        results[queue_index] = Some(stub_result(&spec, wave_idx, "cancelled"));
                        continue;
                    }
                    ControlState::Expired => {
                        results[queue_index] =
                            Some(stub_result(&spec, wave_idx, "deadline_expired"));
                        continue;
                    }
                    ControlState::Live => {}
                }
                let cache = match &self.store {
                    Some(store) => {
                        let cache = EvalCache::with_store(Arc::clone(store));
                        let space = spec.param_space().expect("validated above");
                        cache.hydrate_space(&space);
                        cache
                    }
                    None => EvalCache::new(),
                };
                admitted.push(AdmittedJob {
                    queue_index,
                    wave: wave_idx,
                    spec,
                    cache,
                    telemetry: Telemetry::enabled(),
                    control,
                });
            }

            // Concurrent execution: one thread per admitted job, each
            // leasing its width from the shared budget. A panicking job is
            // caught on its own thread and reported as `failed` — the
            // neighbors, the wave, and the store never see the unwind.
            let (tx, rx) = mpsc::channel::<(usize, JobResult)>();
            std::thread::scope(|scope| {
                for job in admitted {
                    let tx = tx.clone();
                    let budget = budget.clone();
                    let pipeline = self.config.pipeline.clone();
                    scope.spawn(move || {
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_job(&job, &budget, pipeline)
                        }))
                        .unwrap_or_else(|_| stub_result(&job.spec, job.wave, "failed"));
                        // Receiver outlives the scope; a send cannot fail.
                        let _ = tx.send((job.queue_index, result));
                    });
                }
            });
            drop(tx);
            for (queue_index, result) in rx {
                results[queue_index] = Some(result);
            }
            // Newly produced results (stubs included, replays excluded) in
            // wave order, so `on_wave` consumers journal deterministically.
            let fresh: Vec<JobResult> = wave
                .iter()
                .enumerate()
                .filter(|&(slot, _)| !replayed[slot])
                .map(|(_, &queue_index)| {
                    results[queue_index]
                        .clone()
                        .expect("every non-replayed wave job settled above")
                })
                .collect();

            // Publish the wave's evaluations before the next wave hydrates:
            // later waves warm-start deterministically from completed ones.
            if let Some(store) = &self.store {
                store
                    .flush()
                    .map_err(|e| format!("engine: store flush after wave {wave_idx}: {e}"))?;
            }
            self.telemetry.incr(Counter::EngineWaves);
            self.telemetry
                .add(Counter::EngineJobsCompleted, wave.len() as u64);
            on_wave(wave_idx, &fresh)?;
        }
        let wall_seconds = t0.elapsed().as_secs_f64();
        let jobs: Vec<JobResult> = results
            .into_iter()
            .map(|r| r.expect("every queued job ran in exactly one wave"))
            .collect();
        Ok(EngineReport {
            schema_version: RunReport::SCHEMA_VERSION,
            cores,
            wave_slots: self.config.wave_slots.max(1),
            waves: waves.len() as u64,
            wall_seconds,
            em_seconds_charged: jobs.iter().map(|j| j.em_seconds_charged).sum(),
            em_seconds_saved: jobs.iter().map(|j| j.em_seconds_saved).sum(),
            cross_job_hits: self.telemetry.counter(Counter::StoreCrossJobHits) - cross_hits_before,
            peak_core_permits: budget.peak_outstanding(),
            jobs,
        })
    }
}

/// Runs one admitted job: leases a width, builds the job's simulator stack
/// (fault layer only when the spec asks for it), runs the pipeline, and
/// snapshots the tagged report. Everything here reads only the job's
/// private state plus the immutable spec, so neighbors cannot perturb it.
fn run_job(job: &AdmittedJob, budget: &CoreBudget, pipeline: IsopConfig) -> JobResult {
    let spec = &job.spec;
    let space = spec.param_space().expect("validated at run start");
    let task = spec.task_id().expect("validated at run start");
    if spec.chaos_panic {
        panic!("chaos: job '{}' panicked by request", spec.id);
    }
    let lease = budget.lease(spec.threads);
    let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
    let solver = AnalyticalSolver::new().with_telemetry(job.telemetry.clone());
    let simulator: Box<dyn EmSimulator> =
        if spec.em_fault_rate > 0.0 || spec.em_permanent_rate > 0.0 {
            Box::new(
                FaultInjector::new(
                    solver,
                    FaultConfig {
                        transient_rate: spec.em_fault_rate,
                        permanent_rate: spec.em_permanent_rate,
                        seed: spec.seed,
                    },
                )
                .with_telemetry(job.telemetry.clone()),
            )
        } else {
            Box::new(solver)
        };
    let outcome = IsopOptimizer::new(&space, &surrogate, &*simulator, pipeline)
        .with_parallelism(lease.parallelism())
        .with_telemetry(job.telemetry.clone())
        .with_eval_cache(job.cache.clone())
        .with_control(job.control.clone())
        .run(
            crate::tasks::objective_for(task, vec![]),
            Budget::unlimited(),
            spec.seed,
        );
    drop(lease);
    // A stop observed at a stage boundary surfaces as the disposition; a
    // run that went the distance is `completed` even if its token fires
    // the instant after (the work is done — report it).
    let disposition = match job.control.state() {
        _ if !outcome.candidates.is_empty() => "completed",
        ControlState::Cancelled => "cancelled",
        ControlState::Expired => "deadline_expired",
        ControlState::Live => "completed",
    };

    let mut report = job.telemetry.run_report();
    report.task = task.to_string();
    report.space = spec.space.clone();
    report.job = spec.id.clone();
    report.tenant = spec.tenant.clone();
    report.seed = spec.seed;
    // Requested width, not the lease grant: grants vary with neighbor
    // timing, and the report must be bit-identical with or without them.
    report.threads = spec.threads;
    report.success = outcome.success;
    report.resolution = outcome.resolution.as_str().to_string();
    report.samples_seen = outcome.samples_seen;
    report.invalid_seen = outcome.invalid_seen;
    report.algorithm_seconds = outcome.algorithm_seconds;
    JobResult {
        id: spec.id.clone(),
        tenant: spec.tenant.clone(),
        task: spec.task.clone(),
        space: spec.space.clone(),
        seed: spec.seed,
        wave: job.wave,
        success: outcome.success,
        disposition: disposition.to_string(),
        resolution: outcome.resolution.as_str().to_string(),
        em_seconds_charged: outcome.em_seconds,
        em_seconds_saved: outcome.em_seconds_saved,
        candidates: outcome.candidates,
        report,
    }
}

/// A zero-work [`JobResult`] for a job that never ran (cancelled or
/// expired at wave admission) or whose worker panicked: empty candidates,
/// zero ledgers, an empty tagged report, and the telling `disposition`.
fn stub_result(spec: &JobSpec, wave: usize, disposition: &str) -> JobResult {
    let mut report = RunReport::empty();
    report.task = spec.task.clone();
    report.space = spec.space.clone();
    report.job = spec.id.clone();
    report.tenant = spec.tenant.clone();
    report.seed = spec.seed;
    report.threads = spec.threads;
    JobResult {
        id: spec.id.clone(),
        tenant: spec.tenant.clone(),
        task: spec.task.clone(),
        space: spec.space.clone(),
        seed: spec.seed,
        wave,
        success: false,
        disposition: disposition.to_string(),
        resolution: String::new(),
        em_seconds_charged: 0.0,
        em_seconds_saved: 0.0,
        candidates: Vec::new(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobQueue;
    use isop_hpo::harmonica::HarmonicaConfig;
    use isop_hpo::hyperband::HyperbandConfig;

    /// A pipeline config small enough for unit tests.
    fn tiny_pipeline() -> IsopConfig {
        IsopConfig {
            harmonica: HarmonicaConfig {
                stages: 1,
                samples_per_stage: 40,
                top_monomials: 4,
                bits_per_stage: 6,
                ..HarmonicaConfig::default()
            },
            hyperband: HyperbandConfig {
                max_resource: 2.0,
                eta: 2.0,
            },
            gd_candidates: 2,
            gd_epochs: 5,
            cand_num: 2,
            ..IsopConfig::default()
        }
    }

    fn spec(id: &str, tenant: &str, seed: u64) -> JobSpec {
        JobSpec {
            id: id.to_string(),
            tenant: tenant.to_string(),
            seed,
            threads: 2,
            ..JobSpec::default()
        }
    }

    #[test]
    fn engine_runs_a_batch_and_reports_in_submission_order() {
        let mut queue = JobQueue::new();
        queue.push(spec("a", "t1", 1));
        queue.push(spec("b", "t2", 2));
        queue.push(spec("c", "t1", 3));
        let tele = Telemetry::enabled();
        let report = Engine::new(EngineConfig {
            cores: 2,
            wave_slots: 2,
            pipeline: tiny_pipeline(),
        })
        .with_telemetry(tele.clone())
        .run(&queue)
        .expect("engine run");
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.waves, 2);
        assert_eq!(report.cores, 2);
        let ids: Vec<&str> = report.jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids, ["a", "b", "c"]);
        assert!(report.peak_core_permits <= report.cores);
        assert_eq!(tele.counter(Counter::EngineJobsCompleted), 3);
        assert_eq!(tele.counter(Counter::EngineWaves), 2);
        for job in &report.jobs {
            assert!(!job.candidates.is_empty(), "job {} found nothing", job.id);
            assert_eq!(job.report.job, job.id);
            assert_eq!(job.report.tenant, job.tenant);
            assert_eq!(job.report.seed, job.seed);
        }
        // Engine-level charged EM is the per-job sum.
        let sum: f64 = report.jobs.iter().map(|j| j.em_seconds_charged).sum();
        assert!((report.em_seconds_charged - sum).abs() < 1e-12);
    }

    /// One wave holding a healthy job, a panicking job, an
    /// already-expired deadline, and a pre-cancelled token: each stopped
    /// job reports its own disposition with zero ledgers while the healthy
    /// neighbor completes normally — nothing tears down the wave.
    #[test]
    fn controls_surface_dispositions_without_touching_neighbors() {
        let mut queue = JobQueue::new();
        queue.push(spec("ok", "t", 1));
        queue.push(JobSpec {
            chaos_panic: true,
            ..spec("boom", "t", 2)
        });
        queue.push(JobSpec {
            deadline_seconds: 1e-9,
            ..spec("late", "t", 3)
        });
        queue.push(spec("gone", "t", 4));
        let mut controls = JobControls::default();
        let token = RunControl::none();
        token.cancel();
        controls.tokens.insert("gone".to_string(), token);
        let engine = Engine::new(EngineConfig {
            cores: 2,
            wave_slots: 4,
            pipeline: tiny_pipeline(),
        });
        let report = engine
            .run_with(&queue, Some(&controls), |_, _| Ok(()))
            .expect("engine run");
        let by = |id: &str| {
            report
                .jobs
                .iter()
                .find(|j| j.id == id)
                .unwrap_or_else(|| panic!("job {id}"))
        };
        assert_eq!(by("ok").disposition, "completed");
        assert!(!by("ok").candidates.is_empty());
        assert_eq!(by("boom").disposition, "failed");
        assert_eq!(by("late").disposition, "deadline_expired");
        assert_eq!(by("gone").disposition, "cancelled");
        for id in ["boom", "late", "gone"] {
            assert!(by(id).candidates.is_empty(), "{id} must produce nothing");
            assert_eq!(by(id).em_seconds_charged, 0.0, "{id} must charge nothing");
            assert!(!by(id).success);
        }

        // Journal-replay half: hand the healthy job's finished result back
        // as `completed` — it is replayed verbatim (same wave tag, same
        // bits) and excluded from the on_wave "fresh" stream.
        let mut replay = JobControls::default();
        replay.completed.insert("ok".to_string(), by("ok").clone());
        let mut fresh_ids: Vec<String> = Vec::new();
        let rerun = engine
            .run_with(&queue, Some(&replay), |_, fresh| {
                fresh_ids.extend(fresh.iter().map(|j| j.id.clone()));
                Ok(())
            })
            .expect("replay run");
        let ok = rerun.jobs.iter().find(|j| j.id == "ok").expect("ok");
        assert_eq!(ok, by("ok"), "replayed result must be verbatim");
        assert!(!fresh_ids.contains(&"ok".to_string()));
        assert!(fresh_ids.contains(&"boom".to_string()));
    }

    #[test]
    fn engine_rejects_bad_specs_before_running_anything() {
        let mut queue = JobQueue::new();
        queue.push(JobSpec {
            id: "bad".to_string(),
            task: "t9".to_string(),
            ..JobSpec::default()
        });
        let err = Engine::new(EngineConfig::default())
            .run(&queue)
            .unwrap_err();
        assert!(err.contains("unknown task"), "{err}");
    }

    #[test]
    fn tenant_aggregation_folds_reports() {
        let mut a = RunReport::empty();
        a.tenant = "x".to_string();
        a.success = true;
        a.resolution = "full".to_string();
        a.em_seconds_charged = 10.0;
        let mut b = RunReport::empty();
        b.tenant = "x".to_string();
        b.resolution = "degraded".to_string();
        b.em_seconds_saved = 5.0;
        let mut c = RunReport::empty();
        c.resolution = "all_simulations_failed".to_string();
        let rows = aggregate_by_tenant(&[a, b, c]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].tenant, "default");
        assert_eq!(rows[0].failed, 1);
        assert_eq!(rows[1].tenant, "x");
        assert_eq!(rows[1].jobs, 2);
        assert_eq!(rows[1].succeeded, 1);
        assert_eq!(rows[1].full, 1);
        assert_eq!(rows[1].degraded, 1);
        assert!((rows[1].em_seconds_charged - 10.0).abs() < 1e-12);
        assert!((rows[1].em_seconds_saved - 5.0).abs() < 1e-12);
        assert_eq!(rows[1].cache_hit_rate(), 0.0);
    }
}
