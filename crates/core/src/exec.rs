//! Deterministic parallel execution for the pipeline's embarrassingly
//! parallel sections (stage-2 Adam refinements, stage-3 roll-out, Hyperband
//! fidelity replicas).
//!
//! Built on `std::thread::scope` plus an `mpsc` channel — no external
//! thread-pool crate. Determinism contract: [`par_map_indexed`] returns
//! results **in input order** regardless of thread count or scheduling, and
//! the pipeline draws every random number *before* entering a parallel
//! section. `threads = 1` therefore produces bit-identical outcomes to
//! `threads = N` for a fixed seed, and the single-thread path runs inline
//! with zero spawn overhead.

use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Thread-count knob for the pipeline's parallel sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Parallelism {
    /// Worker threads for parallel sections (1 = fully serial).
    pub threads: usize,
}

impl Parallelism {
    /// A knob with `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Reads the `THREADS` environment variable, falling back to serial
    /// execution when unset or unparsable. Benches use this so one harness
    /// can be timed at several widths.
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var("THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        Self::new(threads)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self { threads: 1 }
    }
}

// Hand-written so configs serialized before this knob existed (no
// "parallelism" key -> Null) still deserialize, defaulting to serial.
impl Deserialize for Parallelism {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(Self::default()),
            other => {
                let obj = other
                    .as_obj()
                    .ok_or_else(|| Error::mismatch("object (Parallelism)", other))?;
                let threads = usize::from_value(Value::field(obj, "threads"))?;
                Ok(Self::new(threads))
            }
        }
    }
}

/// Maps `f` over `items` on up to `threads` workers, returning results in
/// input order.
///
/// Workers claim indices from a shared atomic counter and send
/// `(index, result)` pairs over a channel; the caller reassembles them by
/// index, so the output is independent of scheduling. `f` must be pure with
/// respect to ordering (no interior mutability whose effects depend on
/// which thread runs first) — everything order-sensitive (RNG draws,
/// counters, accounting) belongs in the caller, before or after this call.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A send can only fail if the receiver is gone, which
                // cannot happen while the scope borrows it.
                let _ = tx.send((i, f(i, &items[i])));
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_at_any_width() {
        let items: Vec<usize> = (0..97).collect();
        let serial = par_map_indexed(1, &items, |i, &x| i * 1000 + x * x);
        for threads in [2, 4, 8] {
            let parallel = par_map_indexed(threads, &items, |i, &x| i * 1000 + x * x);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_indexed(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_indexed(32, &[1, 2, 3], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    /// Telemetry recording from inside `par_map_indexed` workers: counter
    /// increments are commutative atomic adds and span stats fold under one
    /// registry lock, so 1-thread and 4-thread sweeps over the same items
    /// report identical counter totals and span counts.
    #[test]
    fn telemetry_totals_identical_across_widths() {
        use isop_telemetry::{Counter, Telemetry};
        let items: Vec<u64> = (0..113).collect();
        let reports: Vec<_> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let tele = Telemetry::enabled();
                let out = par_map_indexed(threads, &items, |_, &x| {
                    let _g = isop_telemetry::span!(tele, "exec.worker");
                    tele.incr(Counter::SurrogatePredict);
                    tele.add(Counter::SurrogatePredictBatchRows, x);
                    x * 2
                });
                assert_eq!(out.len(), items.len());
                tele.run_report()
            })
            .collect();
        let (serial, parallel) = (&reports[0], &reports[1]);
        assert_eq!(serial.counters, parallel.counters);
        assert_eq!(serial.counter("surrogate.predict"), 113);
        assert_eq!(
            serial.counter("surrogate.predict_batch_rows"),
            (0..113).sum::<u64>()
        );
        assert_eq!(serial.span("exec.worker").expect("span").count, 113);
        assert_eq!(parallel.span("exec.worker").expect("span").count, 113);
    }

    #[test]
    fn parallelism_knob_clamps_and_reads_env() {
        assert_eq!(Parallelism::new(0).threads, 1);
        assert_eq!(Parallelism::default().threads, 1);
        // from_env falls back to serial when THREADS is unset/garbage; the
        // suite does not set the variable, so only the fallback is asserted
        // (mutating the environment would race with other tests).
        assert!(Parallelism::from_env().threads >= 1);
    }

    #[test]
    fn parallelism_deserializes_missing_as_default() {
        use serde::json::Value;
        use serde::Deserialize;
        assert_eq!(
            Parallelism::from_value(&Value::Null).unwrap(),
            Parallelism::default()
        );
        let v = Value::parse("{\"threads\": 4}").unwrap();
        assert_eq!(Parallelism::from_value(&v).unwrap().threads, 4);
    }
}
