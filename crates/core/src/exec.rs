//! Deterministic parallel execution — re-exported from the leaf crate
//! [`isop_exec`] so existing `isop::exec::*` paths (and the prelude's
//! `Parallelism`) keep working after the executor moved out of core.
//!
//! The move lets `isop-ml`'s data-parallel training engine share the exact
//! executor the pipeline uses without a core -> ml -> core cycle. See
//! `crates/exec/src/lib.rs` for the determinism contract.

pub use isop_exec::{
    fixed_chunks, par_map_indexed, par_map_indexed_with, par_map_mut, ControlState, CoreBudget,
    CoreLease, Parallelism, RunControl,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// The shim must hand back the same types the rest of core links
    /// against: `IsopConfig.parallelism` and `isop-ml`'s `TrainContext`
    /// share one `Parallelism`, so a knob built here drives training too.
    #[test]
    fn reexported_executor_is_the_shared_one() {
        let knob = Parallelism::new(3);
        let ctx = isop_ml::train::TrainContext::new(knob);
        assert_eq!(ctx.parallelism, knob);
        let out = par_map_indexed(knob.threads, &[1u32, 2, 3], |i, &x| x as usize + i);
        assert_eq!(out, vec![1, 3, 5]);
    }
}
