//! Experiment harness: repeated trials, aggregate statistics, and the
//! FoM-improvement metric (Eq. 12) behind Tables IV, V, VII, and VIII.

use crate::baselines::{run_bo, run_sa, BaselineOutcome};
use crate::evalcache::{EvalCache, SurrogateMemo};
use crate::objective::{Metric, Objective};
use crate::params::ParamSpace;
use crate::pipeline::{DesignCandidate, IsopConfig, IsopOptimizer, IsopOutcome, RolloutResolution};
use crate::scheduler::{self, RolloutJob, SchedulerCtx};
use crate::surrogate::Surrogate;
use isop_em::simulator::EmSimulator;
use isop_hpo::budget::Budget;
use isop_hpo::sa::SaConfig;
use isop_hpo::tpe::TpeConfig;
use isop_telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Result of one optimization trial, in the units of the paper's tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// Constraints satisfied by the verified best design.
    pub success: bool,
    /// Total reported runtime (algorithm + accounted EM), seconds.
    pub runtime_seconds: f64,
    /// Valid surrogate samples observed.
    pub samples_seen: u64,
    /// Verified metrics `[Z, L, NEXT]` of the best design.
    pub metrics: [f64; 3],
    /// FoM of the best design (per the task's FoM spec).
    pub fom: f64,
    /// The winning design vector.
    pub design: Vec<f64>,
    /// Roll-out resolution label (`"full"` / `"degraded"`); baselines have
    /// no fault layer and always report `"full"`. A trial whose every
    /// simulation failed produces no `TrialResult` at all — it is surfaced
    /// through [`IsopCellOutcome::degraded`] instead of masquerading as an
    /// ordinary infeasible trial.
    pub resolution: String,
}

impl TrialResult {
    fn from_candidate(
        c: &DesignCandidate,
        objective: &Objective,
        success: bool,
        runtime_seconds: f64,
        samples_seen: u64,
        resolution: RolloutResolution,
    ) -> Self {
        let metrics = c.simulated.expect("verified candidate").to_array();
        Self {
            success,
            runtime_seconds,
            samples_seen,
            metrics,
            fom: objective.fom.value(&metrics),
            design: c.values.clone(),
            resolution: resolution.as_str().to_string(),
        }
    }

    /// Converts an ISOP+ outcome.
    pub fn from_isop(outcome: &IsopOutcome, objective: &Objective) -> Option<Self> {
        outcome.best().map(|c| {
            Self::from_candidate(
                c,
                objective,
                outcome.success,
                outcome.total_seconds(),
                outcome.samples_seen,
                outcome.resolution,
            )
        })
    }

    /// Converts a baseline outcome.
    pub fn from_baseline(outcome: &BaselineOutcome, objective: &Objective) -> Option<Self> {
        outcome.best().map(|c| {
            Self::from_candidate(
                c,
                objective,
                outcome.success,
                outcome.total_seconds(),
                outcome.samples_seen,
                RolloutResolution::Full,
            )
        })
    }
}

/// Mean and (population) standard deviation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

fn mean_std(values: impl Iterator<Item = f64> + Clone) -> MeanStd {
    let n = values.clone().count().max(1) as f64;
    let mean = values.clone().sum::<f64>() / n;
    let var = values.map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    MeanStd {
        mean,
        std: var.sqrt(),
    }
}

/// Aggregated statistics over repeated trials — one table row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialStats {
    /// Method label (e.g. `"SA-1"`).
    pub method: String,
    /// Successful trials.
    pub successes: usize,
    /// Total trials.
    pub trials: usize,
    /// Average reported runtime, seconds.
    pub avg_runtime: f64,
    /// Average valid samples seen.
    pub avg_samples: f64,
    /// `|Z - Z_o|` statistics.
    pub delta_z: MeanStd,
    /// `L` statistics.
    pub l: MeanStd,
    /// `NEXT` statistics.
    pub next: MeanStd,
    /// Mean FoM of the per-trial best designs.
    pub fom: f64,
}

impl TrialStats {
    /// Aggregates `results` for a task whose Z target is `z_target`.
    ///
    /// # Panics
    ///
    /// Panics on an empty result list.
    pub fn aggregate(method: impl Into<String>, results: &[TrialResult], z_target: f64) -> Self {
        assert!(!results.is_empty(), "need at least one trial");
        let n = results.len();
        Self {
            method: method.into(),
            successes: results.iter().filter(|r| r.success).count(),
            trials: n,
            avg_runtime: results.iter().map(|r| r.runtime_seconds).sum::<f64>() / n as f64,
            avg_samples: results.iter().map(|r| r.samples_seen as f64).sum::<f64>() / n as f64,
            delta_z: mean_std(results.iter().map(move |r| (r.metrics[0] - z_target).abs())),
            l: mean_std(results.iter().map(|r| r.metrics[1])),
            next: mean_std(results.iter().map(|r| r.metrics[2])),
            fom: results.iter().map(|r| r.fom).sum::<f64>() / n as f64,
        }
    }

    /// The paper's Eq. 12: percentage FoM improvement of ISOP+ over this
    /// method. Positive = ISOP+ better.
    pub fn improvement_of(&self, isop_fom: f64) -> f64 {
        100.0 * (self.fom - isop_fom) / self.fom
    }
}

/// Which baseline budget-matching mode to use (the paper's `-1` / `-2`
/// suffixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchMode {
    /// Match ISOP+'s wall-clock (`SA-1`, `BO-1`-style).
    Runtime,
    /// Match ISOP+'s observed sample count (`SA-2`, `BO-2`-style).
    Samples,
}

/// Everything needed to run one (task, space, method) experiment cell.
pub struct ExperimentContext<'a> {
    /// Search space.
    pub space: &'a ParamSpace,
    /// Shared surrogate (same across all methods, per the paper).
    pub surrogate: &'a dyn Surrogate,
    /// Accurate verifier.
    pub simulator: &'a dyn EmSimulator,
    /// ISOP+ pipeline configuration.
    pub isop_config: IsopConfig,
    /// Trials per cell (the paper uses 10).
    pub n_trials: usize,
    /// Base RNG seed; trial `i` uses `seed + i`.
    pub seed: u64,
    /// Telemetry handle attached to every ISOP+ trial. Defaults to
    /// disabled; enable it to aggregate counters and stage spans across
    /// the cell's trials (the bench harness reads stage timings here).
    pub telemetry: Telemetry,
    /// Accurate-EM result cache shared by every ISOP+ trial in this cell.
    /// Repeated trials (and, when the handle is shared wider, repeated
    /// ablation variants of one task) serve identical grid designs from
    /// cache; outcomes are bit-identical either way. Defaults to disabled.
    pub eval_cache: EvalCache,
    /// Surrogate-prediction memo shared by every ISOP+ trial in this cell.
    /// Defaults to disabled.
    pub surrogate_memo: SurrogateMemo,
}

/// Outcome of one ISOP+ experiment cell: per-trial results, the
/// budget-matching averages the baselines consume, and every roll-out that
/// did not fully resolve.
#[derive(Debug, Clone)]
pub struct IsopCellOutcome {
    /// Per-trial results (trials whose every simulation failed yield no
    /// result and appear only in [`degraded`](Self::degraded)).
    pub results: Vec<TrialResult>,
    /// Average valid samples per trial — the baselines' sample budget.
    pub avg_samples: f64,
    /// Average algorithm wall-clock per trial, seconds — the baselines'
    /// runtime budget.
    pub avg_algo_seconds: f64,
    /// `(trial index, resolution)` for every trial whose roll-out was
    /// degraded or failed entirely. Consumers must report these instead of
    /// folding them into the ordinary failure count.
    pub degraded: Vec<(usize, RolloutResolution)>,
}

impl ExperimentContext<'_> {
    /// Runs ISOP+ for `n_trials` and returns per-trial results, the average
    /// (samples, algorithm wall-clock) the baselines will match, and the
    /// degraded-roll-out record.
    pub fn run_isop(&self, objective: &Objective) -> IsopCellOutcome {
        let mut results = Vec::with_capacity(self.n_trials);
        let mut degraded = Vec::new();
        let mut total_samples = 0.0;
        let mut total_algo = 0.0;
        for i in 0..self.n_trials {
            let opt = IsopOptimizer::new(
                self.space,
                self.surrogate,
                self.simulator,
                self.isop_config.clone(),
            )
            .with_telemetry(self.telemetry.clone())
            .with_eval_cache(self.eval_cache.clone())
            .with_surrogate_memo(self.surrogate_memo.clone());
            let outcome = opt.run(objective.clone(), Budget::unlimited(), self.seed + i as u64);
            total_samples += outcome.samples_seen as f64;
            total_algo += outcome.algorithm_seconds;
            if outcome.resolution != RolloutResolution::Full {
                degraded.push((i, outcome.resolution));
            }
            if let Some(r) = TrialResult::from_isop(&outcome, objective) {
                results.push(r);
            }
        }
        let n = self.n_trials.max(1) as f64;
        IsopCellOutcome {
            results,
            avg_samples: total_samples / n,
            avg_algo_seconds: total_algo / n,
            degraded,
        }
    }

    /// Runs ISOP+ for `n_trials` like [`run_isop`](Self::run_isop), but
    /// drives every trial's stage-3 roll-out through *one* async scheduler
    /// pass, so flights from different trials interleave into full EM
    /// batches (`em.sched.interleaved` counts the batches that span
    /// trials). Stages 1–2 still run per trial at `seed + i`, so the
    /// candidate pools — and hence the delivered candidate sets — match
    /// the sequential cell; only batch packing (and with it the charged
    /// ledger) changes. The config's
    /// [`schedule`](crate::pipeline::IsopConfig::schedule) knob is ignored
    /// here: interleaving across trials is only defined for the async
    /// scheduler. Per-trial `algorithm_seconds` covers that trial's own
    /// stages 1–2; the shared scheduler pass is simulated EM time and lands
    /// in the EM ledgers, not the algorithm clock.
    pub fn run_isop_interleaved(&self, objective: &Objective) -> IsopCellOutcome {
        let opts: Vec<IsopOptimizer<'_>> = (0..self.n_trials)
            .map(|_| {
                IsopOptimizer::new(
                    self.space,
                    self.surrogate,
                    self.simulator,
                    self.isop_config.clone(),
                )
                .with_telemetry(self.telemetry.clone())
                .with_eval_cache(self.eval_cache.clone())
                .with_surrogate_memo(self.surrogate_memo.clone())
            })
            .collect();
        let mut preps = Vec::with_capacity(self.n_trials);
        let mut algo_seconds = Vec::with_capacity(self.n_trials);
        for (i, opt) in opts.iter().enumerate() {
            let t0 = std::time::Instant::now();
            preps.push(opt.prepare(objective.clone(), Budget::unlimited(), self.seed + i as u64));
            algo_seconds.push(t0.elapsed().as_secs_f64());
        }
        let target = self.isop_config.cand_num.max(1);
        let rollouts = {
            let _span = isop_telemetry::span!(self.telemetry, "pipeline.rollout");
            let jobs: Vec<RolloutJob<'_>> = preps
                .iter()
                .map(|p| RolloutJob {
                    pool: &p.pool,
                    target,
                })
                .collect();
            let ctx = SchedulerCtx {
                simulator: self.simulator,
                space: self.space,
                eval_cache: &self.eval_cache,
                telemetry: &self.telemetry,
                retry: self.isop_config.retry,
                threads: self.isop_config.parallelism.threads,
            };
            scheduler::run_async(&jobs, &ctx)
        };
        let mut results = Vec::with_capacity(self.n_trials);
        let mut degraded = Vec::new();
        let mut total_samples = 0.0;
        let mut total_algo = 0.0;
        for (i, ((opt, prep), rollout)) in opts.iter().zip(preps).zip(rollouts).enumerate() {
            let outcome = opt.finalize(prep, rollout, algo_seconds[i]);
            total_samples += outcome.samples_seen as f64;
            total_algo += outcome.algorithm_seconds;
            if outcome.resolution != RolloutResolution::Full {
                degraded.push((i, outcome.resolution));
            }
            if let Some(r) = TrialResult::from_isop(&outcome, objective) {
                results.push(r);
            }
        }
        let n = self.n_trials.max(1) as f64;
        IsopCellOutcome {
            results,
            avg_samples: total_samples / n,
            avg_algo_seconds: total_algo / n,
            degraded,
        }
    }

    /// Runs the SA baseline matched to ISOP+'s budget.
    pub fn run_sa(
        &self,
        objective: &Objective,
        mode: MatchMode,
        isop_samples: f64,
        isop_algo_seconds: f64,
    ) -> Vec<TrialResult> {
        let cfg = SaConfig {
            iterations: usize::MAX >> 8,
            ..SaConfig::default()
        };
        (0..self.n_trials)
            .filter_map(|i| {
                let budget = match mode {
                    MatchMode::Samples => {
                        Budget::unlimited().with_samples(isop_samples.round() as u64)
                    }
                    MatchMode::Runtime => Budget::unlimited()
                        .with_wall_clock(Duration::from_secs_f64(isop_algo_seconds.max(0.05))),
                };
                let out = run_sa(
                    self.space,
                    self.surrogate,
                    self.simulator,
                    objective.clone(),
                    &cfg,
                    budget,
                    self.seed + 1000 + i as u64,
                );
                TrialResult::from_baseline(&out, objective)
            })
            .collect()
    }

    /// Runs the BO (TPE) baseline matched to ISOP+'s budget.
    pub fn run_bo(
        &self,
        objective: &Objective,
        mode: MatchMode,
        isop_samples: f64,
        isop_algo_seconds: f64,
    ) -> Vec<TrialResult> {
        (0..self.n_trials)
            .filter_map(|i| {
                let (iterations, budget) = match mode {
                    MatchMode::Samples => (
                        isop_samples.round() as usize,
                        Budget::unlimited().with_samples(isop_samples.round() as u64),
                    ),
                    MatchMode::Runtime => (
                        usize::MAX >> 8,
                        Budget::unlimited()
                            .with_wall_clock(Duration::from_secs_f64(isop_algo_seconds.max(0.05))),
                    ),
                };
                // The BO baseline suggests EM_BATCH_SLOTS points per KDE
                // refit, mirroring the async scheduler's batch width — it
                // observes exactly as many samples as the sequential loop
                // (evaluations stay individual), it just keeps a batched
                // simulator full, so the Table VII/VIII comparison stays
                // honest against batched ISOP+.
                let out = run_bo(
                    self.space,
                    self.surrogate,
                    self.simulator,
                    objective.clone(),
                    &TpeConfig {
                        batch_size: crate::scheduler::EM_BATCH_SLOTS,
                        ..TpeConfig::default()
                    },
                    iterations,
                    budget,
                    self.seed + 2000 + i as u64,
                );
                TrialResult::from_baseline(&out, objective)
            })
            .collect()
    }
}

/// The paper's Eq. 12 as a free function.
pub fn fom_improvement(method_fom: f64, isop_fom: f64) -> f64 {
    100.0 * (method_fom - isop_fom) / method_fom
}

/// Helper: `|Z - target|` for a result's metrics.
pub fn delta_z(metrics: &[f64; 3], target: f64) -> f64 {
    (metrics[Metric::Z.index()] - target).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_result(z: f64, l: f64, next: f64, success: bool) -> TrialResult {
        TrialResult {
            success,
            runtime_seconds: 10.0,
            samples_seen: 100,
            metrics: [z, l, next],
            fom: -l,
            design: vec![],
            resolution: "full".to_string(),
        }
    }

    #[test]
    fn aggregate_computes_table_columns() {
        let results = vec![
            fake_result(85.5, -0.40, -0.01, true),
            fake_result(84.7, -0.44, -0.02, true),
            fake_result(86.4, -0.42, -0.03, false),
        ];
        let stats = TrialStats::aggregate("test", &results, 85.0);
        assert_eq!(stats.successes, 2);
        assert_eq!(stats.trials, 3);
        let expected_dz = (0.5 + 0.3 + 1.4) / 3.0;
        assert!((stats.delta_z.mean - expected_dz).abs() < 1e-12);
        assert!((stats.l.mean - (-0.42)).abs() < 1e-12);
        assert!((stats.fom - 0.42).abs() < 1e-12);
    }

    #[test]
    fn improvement_formula_matches_eq12() {
        // Table IV T1/S1: SA-1 FoM 0.446, ISOP+ 0.436 -> 2.2%.
        let impv = fom_improvement(0.446, 0.436);
        assert!((impv - 2.24).abs() < 0.05, "impv = {impv}");
        // BO-2: 0.630 vs 0.436 -> 30.8%.
        let impv2 = fom_improvement(0.630, 0.436);
        assert!((impv2 - 30.79).abs() < 0.05, "impv = {impv2}");
    }

    #[test]
    fn improvement_negative_when_isop_worse() {
        assert!(fom_improvement(0.4, 0.5) < 0.0);
    }

    #[test]
    fn mean_std_of_constant_is_zero() {
        let results = vec![fake_result(85.0, -0.4, 0.0, true); 5];
        let stats = TrialStats::aggregate("x", &results, 85.0);
        assert_eq!(stats.l.std, 0.0);
        assert_eq!(stats.delta_z.std, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn empty_aggregate_panics() {
        let _ = TrialStats::aggregate("x", &[], 85.0);
    }
}
