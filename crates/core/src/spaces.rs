//! The paper's search spaces (Table III): `S_1`, `S_2`, `S_1'`, and the
//! surrogate-training ranges.
//!
//! Parameter order matches [`isop_em::PARAM_NAMES`]:
//! `W_t S_t D_t E_t H_t H_c H_p sigma_t R_t Dk_t Dk_c Dk_p Df_t Df_c Df_p`.

use crate::params::{ParamDef, ParamSpace};

fn space(rows: [(&str, f64, f64, f64); 15]) -> ParamSpace {
    ParamSpace::new(
        rows.iter()
            .map(|&(name, lo, hi, step)| ParamDef::new(name, lo, hi, step))
            .collect(),
    )
}

/// Search space `S_1` (73 bits, `7.14e19` valid designs).
pub fn s1() -> ParamSpace {
    space([
        ("W_t", 2.0, 5.0, 0.1),
        ("S_t", 2.0, 10.0, 0.5),
        ("D_t", 30.0, 40.0, 5.0),
        ("E_t", 0.0, 0.3, 0.05),
        ("H_t", 0.6, 1.5, 0.1),
        ("H_c", 2.0, 8.0, 0.2),
        ("H_p", 2.0, 8.0, 0.2),
        ("sigma_t", 3.8e7, 5.8e7, 1e6),
        ("R_t", -14.5, 14.0, 0.5),
        ("Dk_t", 2.5, 4.5, 0.05),
        ("Dk_c", 2.5, 4.5, 0.05),
        ("Dk_p", 2.5, 4.5, 0.05),
        ("Df_t", 0.001, 0.02, 0.001),
        ("Df_c", 0.001, 0.02, 0.001),
        ("Df_p", 0.001, 0.02, 0.001),
    ])
}

/// Search space `S_2` (78 bits, `2.97e21` valid designs) — a superset of
/// `S_1`.
pub fn s2() -> ParamSpace {
    space([
        ("W_t", 2.0, 10.0, 0.1),
        ("S_t", 2.0, 10.0, 0.5),
        ("D_t", 15.0, 40.0, 5.0),
        ("E_t", 0.0, 0.3, 0.05),
        ("H_t", 0.6, 1.5, 0.1),
        ("H_c", 2.0, 10.0, 0.2),
        ("H_p", 2.0, 10.0, 0.2),
        ("sigma_t", 3.0e7, 5.8e7, 1e6),
        ("R_t", -14.5, 14.0, 0.5),
        ("Dk_t", 2.0, 5.0, 0.05),
        ("Dk_c", 2.0, 5.0, 0.05),
        ("Dk_p", 2.0, 5.0, 0.05),
        ("Df_t", 0.001, 0.02, 0.001),
        ("Df_c", 0.001, 0.02, 0.001),
        ("Df_p", 0.001, 0.02, 0.001),
    ])
}

/// Search space `S_1'` (78 bits, `6.53e20` valid designs) — wider physical
/// dimensions than `S_1` but the `S_1` material ranges; used together with
/// the input parameter constraints in the Table IX case study.
pub fn s1_prime() -> ParamSpace {
    space([
        ("W_t", 2.0, 10.0, 0.1),
        ("S_t", 2.0, 10.0, 0.5),
        ("D_t", 15.0, 40.0, 5.0),
        ("E_t", 0.0, 0.3, 0.05),
        ("H_t", 0.6, 1.5, 0.1),
        ("H_c", 2.0, 10.0, 0.2),
        ("H_p", 2.0, 10.0, 0.2),
        ("sigma_t", 3.8e7, 5.8e7, 1e6),
        ("R_t", -14.5, 14.0, 0.5),
        ("Dk_t", 2.5, 4.5, 0.05),
        ("Dk_c", 2.5, 4.5, 0.05),
        ("Dk_p", 2.5, 4.5, 0.05),
        ("Df_t", 0.001, 0.02, 0.001),
        ("Df_c", 0.001, 0.02, 0.001),
        ("Df_p", 0.001, 0.02, 0.001),
    ])
}

/// The surrogate-training ranges (rightmost Table III column): a much wider
/// space (`1.31e29` designs) than any optimization target, so the surrogate
/// generalizes across all of them.
pub fn training_space() -> ParamSpace {
    space([
        ("W_t", 1.0, 29.0, 0.5),
        ("S_t", 1.0, 64.0, 0.5),
        ("D_t", 1.0, 100.0, 1.0),
        ("E_t", 0.0, 0.7, 0.1),
        ("H_t", 0.3, 3.9, 0.1),
        ("H_c", 1.0, 40.0, 1.0),
        ("H_p", 1.0, 40.0, 1.0),
        ("sigma_t", 3.0e7, 5.8e7, 1e6),
        ("R_t", -14.5, 14.0, 0.5),
        ("Dk_t", 1.0, 7.0, 0.1),
        ("Dk_c", 1.0, 7.0, 0.1),
        ("Dk_p", 1.0, 7.0, 0.1),
        ("Df_t", 0.0001, 0.1, 0.0001),
        ("Df_c", 0.0001, 0.1, 0.0001),
        ("Df_p", 0.0001, 0.1, 0.0001),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s1_matches_paper_bits_and_size() {
        let s = s1();
        assert_eq!(s.total_bits(), 73, "Table III: S_1 is a 2^73 cube");
        let size = s.n_valid();
        assert!(
            (size / 7.14e19 - 1.0).abs() < 0.01,
            "S_1 valid designs: got {size:e}, paper 7.14e19"
        );
    }

    #[test]
    fn s2_matches_paper_bits_and_size() {
        let s = s2();
        assert_eq!(s.total_bits(), 78, "Table III: S_2 is a 2^78 cube");
        let size = s.n_valid();
        assert!(
            (size / 2.97e21 - 1.0).abs() < 0.01,
            "S_2 valid designs: got {size:e}, paper 2.97e21"
        );
    }

    #[test]
    fn s1_prime_matches_paper_bits_and_size() {
        let s = s1_prime();
        assert_eq!(s.total_bits(), 78, "Table III: S_1' is a 2^78 cube");
        let size = s.n_valid();
        assert!(
            (size / 6.53e20 - 1.0).abs() < 0.01,
            "S_1' valid designs: got {size:e}, paper 6.53e20"
        );
    }

    #[test]
    fn training_space_matches_paper_size() {
        let s = training_space();
        let size = s.n_valid();
        assert!(
            (size / 1.31e29 - 1.0).abs() < 0.02,
            "training designs: got {size:e}, paper 1.31e29"
        );
    }

    #[test]
    fn s2_contains_s1_bounds() {
        let inner = s1();
        let outer = s2();
        for (pi, po) in inner.params().iter().zip(outer.params()) {
            assert!(po.lo <= pi.lo + 1e-12, "{}: S2 lo above S1 lo", pi.name);
            assert!(po.hi >= pi.hi - 1e-12, "{}: S2 hi below S1 hi", pi.name);
        }
    }

    #[test]
    fn param_order_matches_em_names() {
        let s = s1();
        for (p, name) in s.params().iter().zip(isop_em::PARAM_NAMES) {
            assert_eq!(p.name, name);
        }
    }

    #[test]
    fn table_ix_designs_lie_on_their_grids() {
        // ISOP (S_1, no IC) T1 row of Table IX.
        let t1 = [
            5.0, 6.5, 30.0, 0.0, 1.5, 6.2, 8.0, 5.8e7, -14.5, 4.5, 4.5, 3.55, 0.001, 0.001, 0.001,
        ];
        assert!(s1().contains(&t1), "T1/S_1 design must be valid in S_1");
        // ISOP (S_1', with IC) T3 row.
        let t3 = [
            8.2, 3.5, 40.0, 0.30, 0.7, 8.0, 8.0, 5.7e7, -14.5, 2.5, 2.8, 3.35, 0.001, 0.001, 0.001,
        ];
        assert!(
            s1_prime().contains(&t3),
            "T3/S_1' design must be valid in S_1'"
        );
    }
}
