//! Optimization objectives: the exact `g(.)` (Eq. 8), its smoothed surrogate
//! companion `g_hat(.)` (Eqs. 9–10, Fig. 5), and input-parameter constraints
//! (Eq. 11), with analytic gradients for the local-exploration stage.
//!
//! Conventions (matching the paper's tables):
//!
//! * Metrics are `[Z, L, NEXT]` with `L` and `NEXT` non-positive.
//! * The FoM is a weighted sum of metric **magnitudes** (`T1`–`T3`: `|L|`;
//!   `T4`: `|L| + 2 |NEXT|`); lower is better.
//! * Output constraints are tolerance bands `|m - target| <= tol`, relaxed
//!   into clip penalties in `g` and double-sigmoid penalties in `g_hat`.
//! * Input constraints are first-order polynomial bounds
//!   `sum_i c_i x_i <= A` on the design vector, kept as hard clips in both.

use isop_ml::linalg::Matrix;
use serde::{Deserialize, Serialize};

/// The three stack-up performance metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Differential impedance, ohms.
    Z,
    /// Insertion loss at 16 GHz, dB/inch (negative).
    L,
    /// Near-end crosstalk, mV (negative).
    Next,
}

impl Metric {
    /// Index of the metric in a `[Z, L, NEXT]` vector.
    pub fn index(self) -> usize {
        match self {
            Metric::Z => 0,
            Metric::L => 1,
            Metric::Next => 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Z => "Z",
            Metric::L => "L",
            Metric::Next => "NEXT",
        }
    }
}

/// Figure-of-merit specification: `sum_i c_i |metric_i|`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FomSpec {
    /// `(metric, coefficient)` terms.
    pub terms: Vec<(Metric, f64)>,
}

impl FomSpec {
    /// FoM of a metric vector.
    pub fn value(&self, metrics: &[f64; 3]) -> f64 {
        self.terms
            .iter()
            .map(|&(m, c)| c * metrics[m.index()].abs())
            .sum()
    }

    /// Gradient of the FoM with respect to the metric vector.
    pub fn grad_metrics(&self, metrics: &[f64; 3]) -> [f64; 3] {
        let mut g = [0.0; 3];
        for &(m, c) in &self.terms {
            let v = metrics[m.index()];
            g[m.index()] += c * if v >= 0.0 { 1.0 } else { -1.0 };
        }
        g
    }
}

/// A tolerance-band output constraint `|metric - target| <= tolerance`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutputConstraint {
    /// Constrained metric.
    pub metric: Metric,
    /// Band centre (e.g. `Z_o = 85`).
    pub target: f64,
    /// Acceptable deviation (e.g. `Z_pm = 1`).
    pub tolerance: f64,
}

impl OutputConstraint {
    /// Creates a band constraint.
    ///
    /// # Panics
    ///
    /// Panics unless `tolerance > 0`.
    pub fn band(metric: Metric, target: f64, tolerance: f64) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        Self {
            metric,
            target,
            tolerance,
        }
    }

    /// Hard clip penalty `max(|m - target| - tol, 0)` (Eq. 8).
    pub fn violation(&self, metrics: &[f64; 3]) -> f64 {
        ((metrics[self.metric.index()] - self.target).abs() - self.tolerance).max(0.0)
    }

    /// `true` when the metric sits inside the band.
    pub fn satisfied(&self, metrics: &[f64; 3]) -> bool {
        self.violation(metrics) <= 1e-9
    }

    /// Double-sigmoid smoothed penalty (Eq. 9, Fig. 5):
    /// `S(gamma (dev - tol)) + S(gamma (-dev - tol))`, range `(0, 2)`.
    ///
    /// `gamma` defaults to `1 / tolerance` in the framework, making the
    /// transition width proportional to the band (the paper's choice).
    pub fn smoothed(&self, metrics: &[f64; 3], gamma: f64) -> f64 {
        let dev = metrics[self.metric.index()] - self.target;
        sigmoid(gamma * (dev - self.tolerance)) + sigmoid(gamma * (-dev - self.tolerance))
    }

    /// Derivative of [`smoothed`](Self::smoothed) with respect to the metric.
    pub fn smoothed_grad(&self, metrics: &[f64; 3], gamma: f64) -> f64 {
        let dev = metrics[self.metric.index()] - self.target;
        gamma
            * (sigmoid_deriv(gamma * (dev - self.tolerance))
                - sigmoid_deriv(gamma * (-dev - self.tolerance)))
    }

    /// The boundary penalty value `C_max` used by the adaptive-weight rule:
    /// the smoothed penalty evaluated exactly on the band edge.
    pub fn boundary_penalty(&self, gamma: f64) -> f64 {
        sigmoid(0.0) + sigmoid(-2.0 * gamma * self.tolerance)
    }
}

/// A first-order input-parameter constraint `sum_i c_i x_i <= bound`
/// (Eq. 11), e.g. `2 W_t + S_t <= 20`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputConstraint {
    /// `(parameter index, coefficient)` terms of the linear form.
    pub terms: Vec<(usize, f64)>,
    /// Upper bound `A`.
    pub bound: f64,
    /// Human-readable description for reports.
    pub label: String,
}

impl InputConstraint {
    /// Creates a linear input constraint.
    pub fn new(terms: Vec<(usize, f64)>, bound: f64, label: impl Into<String>) -> Self {
        Self {
            terms,
            bound,
            label: label.into(),
        }
    }

    /// The linear form `y(x)`.
    pub fn linear_form(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|&(i, c)| c * values[i]).sum()
    }

    /// Clip penalty `max(y(x) - A, 0)`.
    pub fn violation(&self, values: &[f64]) -> f64 {
        (self.linear_form(values) - self.bound).max(0.0)
    }

    /// `true` when the constraint holds.
    pub fn satisfied(&self, values: &[f64]) -> bool {
        self.violation(values) <= 1e-9
    }

    /// Gradient of the penalty with respect to the design vector.
    pub fn grad(&self, values: &[f64], out: &mut [f64]) {
        if self.violation(values) > 0.0 {
            for &(i, c) in &self.terms {
                out[i] += c;
            }
        }
    }
}

/// Objective weights (`w^FoM`, `w^OC`, `w^IC`) — adaptively tuned by
/// Algorithm 2 during the global stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// FoM weight.
    pub fom: f64,
    /// One weight per output constraint.
    pub oc: Vec<f64>,
    /// One weight per input constraint.
    pub ic: Vec<f64>,
}

/// The full optimization objective for one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// FoM specification.
    pub fom: FomSpec,
    /// Output constraints.
    pub output_constraints: Vec<OutputConstraint>,
    /// Input constraints.
    pub input_constraints: Vec<InputConstraint>,
    /// Current weights.
    pub weights: Weights,
    /// Sigmoid steepness scale: `gamma_j = gamma_scale / tolerance_j`.
    pub gamma_scale: f64,
}

impl Objective {
    /// Builds an objective with equal initial weights (the paper's choice)
    /// and `gamma = 1 / tolerance`.
    pub fn new(
        fom: FomSpec,
        output_constraints: Vec<OutputConstraint>,
        input_constraints: Vec<InputConstraint>,
    ) -> Self {
        let weights = Weights {
            fom: 1.0,
            oc: vec![1.0; output_constraints.len()],
            ic: vec![1.0; input_constraints.len()],
        };
        Self {
            fom,
            output_constraints,
            input_constraints,
            weights,
            gamma_scale: 1.0,
        }
    }

    /// Per-constraint sigmoid steepness.
    pub fn gamma(&self, constraint: &OutputConstraint) -> f64 {
        self.gamma_scale / constraint.tolerance
    }

    /// The exact roll-out objective `g` (Eq. 8 plus the IC term): FoM plus
    /// weighted clip penalties.
    pub fn g_exact(&self, metrics: &[f64; 3], values: &[f64]) -> f64 {
        let mut total = self.weights.fom * self.fom.value(metrics);
        for (c, w) in self.output_constraints.iter().zip(&self.weights.oc) {
            total += w * c.violation(metrics);
        }
        for (c, w) in self.input_constraints.iter().zip(&self.weights.ic) {
            total += w * c.violation(values);
        }
        total
    }

    /// The smoothed exploration objective `g_hat` (Eqs. 9–10).
    pub fn g_hat(&self, metrics: &[f64; 3], values: &[f64]) -> f64 {
        let mut total = self.weights.fom * self.fom.value(metrics);
        for (c, w) in self.output_constraints.iter().zip(&self.weights.oc) {
            total += w * c.smoothed(metrics, self.gamma(c));
        }
        for (c, w) in self.input_constraints.iter().zip(&self.weights.ic) {
            total += w * c.violation(values);
        }
        total
    }

    /// Gradient of `g_hat` with respect to the **design vector**, given the
    /// surrogate's metric prediction and its input Jacobian (`3 x d`).
    ///
    /// # Panics
    ///
    /// Panics if `jacobian` is not `3 x values.len()`.
    pub fn grad_g_hat(&self, metrics: &[f64; 3], jacobian: &Matrix, values: &[f64]) -> Vec<f64> {
        assert_eq!(jacobian.rows(), 3, "jacobian must have 3 metric rows");
        assert_eq!(jacobian.cols(), values.len(), "jacobian width mismatch");
        // d g_hat / d metrics.
        let mut dm = self.fom.grad_metrics(metrics);
        for m in &mut dm {
            *m *= self.weights.fom;
        }
        for (c, w) in self.output_constraints.iter().zip(&self.weights.oc) {
            dm[c.metric.index()] += w * c.smoothed_grad(metrics, self.gamma(c));
        }
        // Chain through the Jacobian.
        let mut grad = vec![0.0; values.len()];
        for (row, &dmi) in dm.iter().enumerate() {
            if dmi == 0.0 {
                continue;
            }
            for (g, j) in grad.iter_mut().zip(jacobian.row(row)) {
                *g += dmi * j;
            }
        }
        // Input constraints act on the design vector directly.
        let mut scratch = vec![0.0; values.len()];
        for (c, w) in self.input_constraints.iter().zip(&self.weights.ic) {
            scratch.iter_mut().for_each(|v| *v = 0.0);
            c.grad(values, &mut scratch);
            for (g, s) in grad.iter_mut().zip(&scratch) {
                *g += w * s;
            }
        }
        grad
    }

    /// `true` when every output and input constraint is satisfied — the
    /// paper's success criterion.
    pub fn all_satisfied(&self, metrics: &[f64; 3], values: &[f64]) -> bool {
        self.output_constraints.iter().all(|c| c.satisfied(metrics))
            && self.input_constraints.iter().all(|c| c.satisfied(values))
    }
}

#[inline]
fn sigmoid(t: f64) -> f64 {
    1.0 / (1.0 + (-t).exp())
}

#[inline]
fn sigmoid_deriv(t: f64) -> f64 {
    let s = sigmoid(t);
    s * (1.0 - s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z_band() -> OutputConstraint {
        OutputConstraint::band(Metric::Z, 85.0, 1.0)
    }

    fn t1_objective() -> Objective {
        Objective::new(
            FomSpec {
                terms: vec![(Metric::L, 1.0)],
            },
            vec![z_band()],
            vec![],
        )
    }

    #[test]
    fn fom_uses_magnitudes() {
        let fom = FomSpec {
            terms: vec![(Metric::L, 1.0), (Metric::Next, 2.0)],
        };
        // T4 convention: |L| + 2 |NEXT|.
        assert!((fom.value(&[85.0, -0.467, -0.006]) - 0.479).abs() < 1e-12);
    }

    #[test]
    fn violation_clip_shape() {
        let c = z_band();
        assert_eq!(c.violation(&[85.0, 0.0, 0.0]), 0.0);
        assert_eq!(c.violation(&[85.9, 0.0, 0.0]), 0.0);
        assert!((c.violation(&[87.0, 0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((c.violation(&[82.0, 0.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn smoothed_penalty_approximates_clip() {
        let c = z_band();
        let gamma = 4.0; // steep
        let inside = c.smoothed(&[85.0, 0.0, 0.0], gamma);
        let edge = c.smoothed(&[86.0, 0.0, 0.0], gamma);
        let outside = c.smoothed(&[89.0, 0.0, 0.0], gamma);
        assert!(inside < edge, "{inside} !< {edge}");
        assert!(edge < outside);
        assert!(outside > 0.9 && outside < 2.0);
        assert!(inside < 0.1);
    }

    #[test]
    fn smoothed_penalty_is_symmetric() {
        let c = z_band();
        let hi = c.smoothed(&[87.3, 0.0, 0.0], 1.0);
        let lo = c.smoothed(&[82.7, 0.0, 0.0], 1.0);
        assert!((hi - lo).abs() < 1e-12);
    }

    #[test]
    fn steeper_gamma_sharpens_transition() {
        // Fig. 5: larger gamma -> closer to the hard clip.
        let c = z_band();
        let soft = c.smoothed(&[86.5, 0.0, 0.0], 0.5) - c.smoothed(&[85.5, 0.0, 0.0], 0.5);
        let sharp = c.smoothed(&[86.5, 0.0, 0.0], 5.0) - c.smoothed(&[85.5, 0.0, 0.0], 5.0);
        assert!(sharp > soft, "sharp {sharp} !> soft {soft}");
    }

    #[test]
    fn smoothed_grad_matches_finite_difference() {
        let c = z_band();
        for &z in &[83.0, 84.9, 85.0, 86.1, 88.0] {
            for &gamma in &[0.5, 1.0, 3.0] {
                let h = 1e-6;
                let fd = (c.smoothed(&[z + h, 0.0, 0.0], gamma)
                    - c.smoothed(&[z - h, 0.0, 0.0], gamma))
                    / (2.0 * h);
                let an = c.smoothed_grad(&[z, 0.0, 0.0], gamma);
                assert!((fd - an).abs() < 1e-6, "z={z} gamma={gamma}: {an} vs {fd}");
            }
        }
    }

    #[test]
    fn input_constraint_penalty_and_grad() {
        // 2 W + S <= 20 with W = x0, S = x1.
        let ic = InputConstraint::new(vec![(0, 2.0), (1, 1.0)], 20.0, "2W+S<=20");
        assert_eq!(ic.violation(&[5.0, 6.0]), 0.0);
        assert!((ic.violation(&[8.0, 6.0]) - 2.0).abs() < 1e-12);
        let mut g = vec![0.0; 2];
        ic.grad(&[8.0, 6.0], &mut g);
        assert_eq!(g, vec![2.0, 1.0]);
        let mut g2 = vec![0.0; 2];
        ic.grad(&[5.0, 6.0], &mut g2);
        assert_eq!(g2, vec![0.0, 0.0], "no gradient when satisfied");
    }

    #[test]
    fn g_exact_combines_terms() {
        let obj = t1_objective();
        // In-band: g = |L|.
        let g_in = obj.g_exact(&[85.0, -0.4, 0.0], &[]);
        assert!((g_in - 0.4).abs() < 1e-12);
        // Out of band by 1 ohm: g = |L| + 1.
        let g_out = obj.g_exact(&[87.0, -0.4, 0.0], &[]);
        assert!((g_out - 1.4).abs() < 1e-12);
    }

    #[test]
    fn g_hat_prefers_feasible_low_loss() {
        let obj = t1_objective();
        let feasible = obj.g_hat(&[85.0, -0.35, 0.0], &[]);
        let infeasible = obj.g_hat(&[89.0, -0.35, 0.0], &[]);
        let lossy = obj.g_hat(&[85.0, -0.9, 0.0], &[]);
        assert!(feasible < infeasible);
        assert!(feasible < lossy);
    }

    #[test]
    fn grad_g_hat_matches_finite_difference_through_surrogate() {
        // Fake linear surrogate: Z = 80 + 2 x0, L = -0.3 - 0.1 x1, NEXT = 0.
        let predict = |x: &[f64]| -> [f64; 3] { [80.0 + 2.0 * x[0], -0.3 - 0.1 * x[1], 0.0] };
        let jac = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, -0.1], vec![0.0, 0.0]]);
        let obj = t1_objective();
        let x = vec![2.1, 0.7];
        let grad = obj.grad_g_hat(&predict(&x), &jac, &x);
        for c in 0..2 {
            let h = 1e-6;
            let mut hi = x.clone();
            let mut lo = x.clone();
            hi[c] += h;
            lo[c] -= h;
            let fd = (obj.g_hat(&predict(&hi), &hi) - obj.g_hat(&predict(&lo), &lo)) / (2.0 * h);
            assert!((grad[c] - fd).abs() < 1e-5, "dim {c}: {} vs {fd}", grad[c]);
        }
    }

    #[test]
    fn all_satisfied_checks_everything() {
        let mut obj = t1_objective();
        obj.input_constraints
            .push(InputConstraint::new(vec![(0, 1.0)], 3.0, "x0<=3"));
        obj.weights.ic.push(1.0);
        assert!(obj.all_satisfied(&[85.2, -0.4, 0.0], &[2.0]));
        assert!(
            !obj.all_satisfied(&[87.0, -0.4, 0.0], &[2.0]),
            "Z out of band"
        );
        assert!(
            !obj.all_satisfied(&[85.2, -0.4, 0.0], &[4.0]),
            "IC violated"
        );
    }

    #[test]
    fn boundary_penalty_is_half_ish() {
        let c = z_band();
        let b = c.boundary_penalty(1.0);
        assert!(b > 0.5 && b < 0.7, "C_max = {b}");
    }
}
