//! Discrete design-parameter spaces and their binary encoding (paper
//! Eqs. 4–6).
//!
//! Each stack-up parameter is a uniform grid `{x_L, x_L + dx, ..., x_U}`.
//! A parameter with `c` grid levels occupies `ceil(log2(c))` bits; a design
//! vector concatenates all parameter codes into one bitstring, giving the
//! binary cube Harmonica searches. Codes that decode past the last level are
//! **invalid** (Table III's `2^73` codes vs `7.14e19` valid designs in `S_1`)
//! and are excluded from evaluation, exactly as Section IV-A prescribes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One discrete design parameter (a uniform grid).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDef {
    /// Parameter name (matches `isop_em::PARAM_NAMES`).
    pub name: String,
    /// Lower bound `x_L`.
    pub lo: f64,
    /// Upper bound `x_U`.
    pub hi: f64,
    /// Increment `dx`.
    pub step: f64,
}

/// Error for values/codes outside a parameter grid.
#[derive(Debug, Clone, PartialEq)]
pub struct OutOfRangeError {
    param: String,
    value: f64,
}

impl fmt::Display for OutOfRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {} outside the grid of parameter {}",
            self.value, self.param
        )
    }
}

impl std::error::Error for OutOfRangeError {}

impl ParamDef {
    /// Creates a grid parameter.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and `step > 0`.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64, step: f64) -> Self {
        assert!(step > 0.0, "step must be positive");
        assert!(lo < hi, "lo must be below hi");
        Self {
            name: name.into(),
            lo,
            hi,
            step,
        }
    }

    /// Number of grid levels `(x_U - x_L)/dx + 1` (paper Table III "case").
    pub fn n_levels(&self) -> usize {
        (((self.hi - self.lo) / self.step).round() as usize) + 1
    }

    /// Bits needed to encode every level (paper Table III "bits").
    pub fn n_bits(&self) -> usize {
        let c = self.n_levels();
        if c <= 1 {
            0
        } else {
            (usize::BITS - (c - 1).leading_zeros()) as usize
        }
    }

    /// Value of grid level `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= n_levels()`.
    pub fn value_of(&self, level: usize) -> f64 {
        assert!(level < self.n_levels(), "level out of range");
        self.lo + level as f64 * self.step
    }

    /// Grid level of (approximately) `value`, or an error when it falls
    /// outside `[x_L, x_U]`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRangeError`] outside the grid span (half a step of
    /// slack is allowed at both ends).
    pub fn level_of(&self, value: f64) -> Result<usize, OutOfRangeError> {
        let level = ((value - self.lo) / self.step).round();
        if level < -0.01 || level > (self.n_levels() - 1) as f64 + 0.01 {
            return Err(OutOfRangeError {
                param: self.name.clone(),
                value,
            });
        }
        Ok(level.clamp(0.0, (self.n_levels() - 1) as f64) as usize)
    }

    /// Rounds a continuous value onto the grid, clamping to the span
    /// (paper Eq. 6).
    pub fn round_to_grid(&self, value: f64) -> f64 {
        let level = ((value - self.lo) / self.step).round();
        let level = level.clamp(0.0, (self.n_levels() - 1) as f64);
        self.lo + level * self.step
    }

    /// `true` when `value` sits on the grid (within floating tolerance).
    pub fn contains(&self, value: f64) -> bool {
        if value < self.lo - 1e-9 || value > self.hi + 1e-9 {
            return false;
        }
        let level = (value - self.lo) / self.step;
        (level - level.round()).abs() < 1e-6
    }
}

/// An ordered collection of [`ParamDef`]s: the design search space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpace {
    params: Vec<ParamDef>,
}

impl ParamSpace {
    /// Creates a space from parameter definitions.
    ///
    /// # Panics
    ///
    /// Panics on an empty parameter list.
    pub fn new(params: Vec<ParamDef>) -> Self {
        assert!(!params.is_empty(), "space needs at least one parameter");
        Self { params }
    }

    /// The parameters, in encoding order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// Total bits of the binary encoding (Table III's per-space sum).
    pub fn total_bits(&self) -> usize {
        self.params.iter().map(ParamDef::n_bits).sum()
    }

    /// Number of *valid* designs (product of level counts), as `f64`.
    pub fn n_valid(&self) -> f64 {
        self.params.iter().map(|p| p.n_levels() as f64).product()
    }

    /// Per-parameter level counts (for [`isop_hpo::DiscreteSpace`]).
    pub fn cardinalities(&self) -> Vec<usize> {
        self.params.iter().map(ParamDef::n_levels).collect()
    }

    /// Encodes grid `levels` into the concatenated bitstring (little-endian
    /// per parameter), paper Eq. 4.
    ///
    /// # Panics
    ///
    /// Panics if a level is out of range or the count mismatches.
    pub fn encode_levels(&self, levels: &[usize]) -> Vec<bool> {
        assert_eq!(levels.len(), self.params.len(), "level count mismatch");
        let mut bits = Vec::with_capacity(self.total_bits());
        for (p, &level) in self.params.iter().zip(levels) {
            assert!(
                level < p.n_levels(),
                "level {level} out of range for {}",
                p.name
            );
            for b in 0..p.n_bits() {
                bits.push((level >> b) & 1 == 1);
            }
        }
        bits
    }

    /// Decodes a bitstring into grid levels; `None` when any parameter's
    /// code exceeds its level count (an invalid design).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != total_bits()`.
    pub fn decode_levels(&self, bits: &[bool]) -> Option<Vec<usize>> {
        assert_eq!(bits.len(), self.total_bits(), "bit length mismatch");
        let mut levels = Vec::with_capacity(self.params.len());
        let mut offset = 0;
        for p in &self.params {
            let nb = p.n_bits();
            let mut code = 0usize;
            for b in 0..nb {
                if bits[offset + b] {
                    code |= 1 << b;
                }
            }
            offset += nb;
            if code >= p.n_levels() {
                return None;
            }
            levels.push(code);
        }
        Some(levels)
    }

    /// Encodes real values into the bitstring (rounding onto the grid).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRangeError`] when a value lies outside its span.
    pub fn encode_values(&self, values: &[f64]) -> Result<Vec<bool>, OutOfRangeError> {
        assert_eq!(values.len(), self.params.len(), "value count mismatch");
        let levels: Result<Vec<usize>, _> = self
            .params
            .iter()
            .zip(values)
            .map(|(p, &v)| p.level_of(v))
            .collect();
        Ok(self.encode_levels(&levels?))
    }

    /// Decodes a bitstring directly into parameter values (paper Eq. 5);
    /// `None` for invalid codes.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != total_bits()`.
    pub fn decode_values(&self, bits: &[bool]) -> Option<Vec<f64>> {
        let levels = self.decode_levels(bits)?;
        Some(
            self.params
                .iter()
                .zip(&levels)
                .map(|(p, &l)| p.value_of(l))
                .collect(),
        )
    }

    /// Converts grid levels to values.
    ///
    /// # Panics
    ///
    /// Panics on level-count mismatch or out-of-range levels.
    pub fn values_of_levels(&self, levels: &[usize]) -> Vec<f64> {
        assert_eq!(levels.len(), self.params.len(), "level count mismatch");
        self.params
            .iter()
            .zip(levels)
            .map(|(p, &l)| p.value_of(l))
            .collect()
    }

    /// Rounds a continuous design onto the grid (paper Eq. 6), clamping to
    /// each span.
    ///
    /// # Panics
    ///
    /// Panics on a value-count mismatch.
    pub fn round_to_grid(&self, values: &[f64]) -> Vec<f64> {
        assert_eq!(values.len(), self.params.len(), "value count mismatch");
        self.params
            .iter()
            .zip(values)
            .map(|(p, &v)| p.round_to_grid(v))
            .collect()
    }

    /// `true` when every value is on its grid.
    pub fn contains(&self, values: &[f64]) -> bool {
        values.len() == self.params.len()
            && self.params.iter().zip(values).all(|(p, &v)| p.contains(v))
    }

    /// Per-parameter `(lo, hi)` bounds.
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        self.params.iter().map(|p| (p.lo, p.hi)).collect()
    }

    /// Clamps a continuous design into the (continuous) box `[lo, hi]^d` —
    /// used between gradient-descent steps.
    pub fn clamp(&self, values: &mut [f64]) {
        for (p, v) in self.params.iter().zip(values.iter_mut()) {
            *v = v.clamp(p.lo, p.hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::new("a", 2.0, 5.0, 0.1),   // 31 levels, 5 bits
            ParamDef::new("b", 30.0, 40.0, 5.0), // 3 levels, 2 bits
            ParamDef::new("c", 0.0, 0.3, 0.05),  // 7 levels, 3 bits
        ])
    }

    #[test]
    fn table_iii_level_and_bit_counts() {
        // Spot-checks against the printed Table III "case/bits" column.
        let cases = [
            (2.0, 5.0, 0.1, 31, 5),
            (2.0, 10.0, 0.1, 81, 7),
            (2.0, 10.0, 0.5, 17, 5),
            (30.0, 40.0, 5.0, 3, 2),
            (0.0, 0.3, 0.05, 7, 3),
            (0.6, 1.5, 0.1, 10, 4),
            (2.0, 8.0, 0.2, 31, 5),
            (3.8e7, 5.8e7, 1e6, 21, 5),
            (-14.5, 14.0, 0.5, 58, 6),
            (2.5, 4.5, 0.05, 41, 6),
            (0.001, 0.02, 0.001, 20, 5),
        ];
        for &(lo, hi, step, levels, bits) in &cases {
            let p = ParamDef::new("x", lo, hi, step);
            assert_eq!(p.n_levels(), levels, "levels of [{lo},{hi}]/{step}");
            assert_eq!(p.n_bits(), bits, "bits of [{lo},{hi}]/{step}");
        }
    }

    #[test]
    fn value_level_roundtrip() {
        let p = ParamDef::new("w", 2.0, 5.0, 0.1);
        for level in 0..p.n_levels() {
            let v = p.value_of(level);
            assert_eq!(p.level_of(v).expect("in range"), level);
        }
    }

    #[test]
    fn level_of_rejects_out_of_range() {
        let p = ParamDef::new("w", 2.0, 5.0, 0.1);
        assert!(p.level_of(1.0).is_err());
        assert!(p.level_of(5.6).is_err());
    }

    #[test]
    fn round_to_grid_snaps_and_clamps() {
        let p = ParamDef::new("w", 2.0, 5.0, 0.1);
        assert!((p.round_to_grid(3.149) - 3.1).abs() < 1e-12);
        assert_eq!(p.round_to_grid(-10.0), 2.0);
        assert_eq!(p.round_to_grid(99.0), 5.0);
    }

    #[test]
    fn encode_decode_roundtrip_all_levels() {
        let s = simple_space();
        for a in 0..31 {
            for b in 0..3 {
                for c in 0..7 {
                    let levels = vec![a, b, c];
                    let bits = s.encode_levels(&levels);
                    assert_eq!(bits.len(), s.total_bits());
                    assert_eq!(s.decode_levels(&bits), Some(levels));
                }
            }
        }
    }

    #[test]
    fn invalid_codes_decode_to_none() {
        let s = simple_space();
        // Parameter b has 3 levels in 2 bits: code 3 is invalid.
        let mut bits = s.encode_levels(&[0, 0, 0]);
        bits[5] = true; // b's low bit
        bits[6] = true; // b's high bit -> code 3
        assert_eq!(s.decode_levels(&bits), None);
    }

    #[test]
    fn invalid_fraction_matches_theory() {
        // 31/32 * 3/4 * 7/8 of codes are valid.
        let s = simple_space();
        let total = 1usize << s.total_bits();
        let mut valid = 0usize;
        for code in 0..total {
            let bits: Vec<bool> = (0..s.total_bits()).map(|b| (code >> b) & 1 == 1).collect();
            if s.decode_levels(&bits).is_some() {
                valid += 1;
            }
        }
        assert_eq!(valid as f64, s.n_valid());
        assert_eq!(valid, 31 * 3 * 7);
    }

    #[test]
    fn encode_values_rounds_onto_grid() {
        let s = simple_space();
        let bits = s.encode_values(&[3.13, 34.0, 0.12]).expect("in range");
        let back = s.decode_values(&bits).expect("valid");
        assert!((back[0] - 3.1).abs() < 1e-9);
        assert!((back[1] - 35.0).abs() < 1e-9);
        assert!((back[2] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn encode_values_out_of_range_errors() {
        let s = simple_space();
        assert!(s.encode_values(&[1.0, 35.0, 0.1]).is_err());
    }

    #[test]
    fn contains_checks_grid_membership() {
        let s = simple_space();
        assert!(s.contains(&[2.5, 35.0, 0.05]));
        assert!(!s.contains(&[2.55, 35.0, 0.05]), "off-grid value");
        assert!(!s.contains(&[2.5, 35.0])); // wrong arity
    }

    #[test]
    fn clamp_limits_to_box() {
        let s = simple_space();
        let mut v = vec![99.0, 20.0, 0.15];
        s.clamp(&mut v);
        assert_eq!(v, vec![5.0, 30.0, 0.15]);
    }

    #[test]
    fn single_level_param_takes_zero_bits() {
        let p = ParamDef::new("fixed", 0.0, 0.2, 0.5);
        assert_eq!(p.n_levels(), 1);
        assert_eq!(p.n_bits(), 0);
    }
}
