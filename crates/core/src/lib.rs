//! # isop — inverse stack-up optimization for advanced package design
//!
//! A full reproduction of **ISOP+** (Chae et al., DATE'23 / TCAD'23): given
//! performance targets for a differential-stripline PCB layer — impedance
//! `Z`, insertion loss `L` at 16 GHz, near-end crosstalk `NEXT` — search a
//! discrete 15-parameter design space for the stack-up that minimizes a
//! figure of merit subject to tolerance constraints.
//!
//! The crate wires together the three substrates:
//!
//! * [`isop_em`] — the EM simulator (the paper's ICAT-tool substitute);
//! * [`isop_ml`] — surrogate models (1D-CNN, MLP, XGBoost, ...);
//! * [`isop_hpo`] — search algorithms (Harmonica, Hyperband, SA, TPE).
//!
//! and implements everything specific to the paper:
//!
//! * [`params`] / [`spaces`] — discrete spaces with binary encoding
//!   (Eqs. 4–6, Table III);
//! * [`objective`] — `g` / `g_hat` with double-sigmoid smoothing and input
//!   constraints (Eqs. 8–11, Fig. 5);
//! * [`weights`] — adaptive weight adjustment (Algorithm 2);
//! * [`tasks`] — benchmark tasks T1–T4 (Table II);
//! * [`surrogate`] / [`data`] — surrogate training against the simulator;
//! * [`pipeline`] — the three-stage ISOP+ optimizer (Algorithm 1);
//! * [`scheduler`] — deterministic EM roll-out scheduling: the reference
//!   synchronous waves and the default async batch stream;
//! * [`baselines`] / [`experiment`] — the SA/BO comparison protocol and
//!   statistics of Tables IV/V/VII/VIII;
//! * [`manual`] — the published Table IX reference designs;
//! * [`jobs`] / [`engine`] — the multi-job concurrent execution engine:
//!   a weighted-fair job queue multiplexing many pipelines over one
//!   shared core budget and one persistent store;
//! * [`daemon`] — the live optimization daemon: streamed epoch admission
//!   over NDJSON/TCP, cancellation and deadlines, rolling tenant quotas,
//!   and a crash-safe job journal with bit-identical restart replay.
//!
//! ## Quickstart
//!
//! ```
//! use isop::prelude::*;
//! use isop_em::simulator::AnalyticalSolver;
//! use isop_hpo::budget::Budget;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Small-budget demonstration: optimize T1 (min |L| at Z = 85 +- 1) on
//! // S_1 using the simulator itself as a perfect surrogate.
//! let space = isop::spaces::s1();
//! let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
//! let simulator = AnalyticalSolver::new();
//! let mut config = IsopConfig::default();
//! config.harmonica.samples_per_stage = 60;
//! config.harmonica.stages = 1;
//! config.gd_epochs = 10;
//! let optimizer = IsopOptimizer::new(&space, &surrogate, &simulator, config);
//! let outcome = optimizer.run(
//!     isop::tasks::objective_for(TaskId::T1, vec![]),
//!     Budget::unlimited(),
//!     0,
//! );
//! let best = outcome.best().expect("found a design");
//! println!("Z = {:.2}", best.simulated.expect("verified").z_diff);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod board;
pub mod daemon;
pub mod data;
pub mod engine;
pub mod evalcache;
pub mod exec;
pub mod experiment;
pub mod jobs;
pub mod manual;
pub mod objective;
pub mod params;
pub mod pipeline;
pub mod report;
pub mod scheduler;
pub mod spaces;
pub mod surrogate;
pub mod tasks;
pub mod weights;

/// Convenience re-exports for typical use.
pub mod prelude {
    pub use crate::daemon::{Daemon, DaemonConfig, Request, Response};
    pub use crate::engine::{
        aggregate_by_tenant, Engine, EngineConfig, EngineReport, JobControls, JobResult,
        TenantSummary,
    };
    pub use crate::evalcache::{CachedSim, DesignKey, EvalCache, MemoizedSurrogate, SurrogateMemo};
    pub use crate::exec::{ControlState, CoreBudget, CoreLease, Parallelism, RunControl};
    pub use crate::experiment::{
        ExperimentContext, IsopCellOutcome, MatchMode, TrialResult, TrialStats,
    };
    pub use crate::jobs::{JobQueue, JobSpec};
    pub use crate::objective::{FomSpec, InputConstraint, Metric, Objective, OutputConstraint};
    pub use crate::params::{ParamDef, ParamSpace};
    pub use crate::pipeline::{
        DesignCandidate, IsopConfig, IsopOptimizer, IsopOutcome, PreparedRollout, RolloutResolution,
    };
    pub use crate::scheduler::{
        JobRollout, PoolEntry, RolloutJob, RolloutSchedule, SchedulerCtx, EM_BATCH_SLOTS,
    };
    pub use crate::surrogate::{
        CnnSurrogate, InstrumentedSurrogate, MlpSurrogate, MlpXgbSurrogate, NeuralSurrogate,
        OracleSurrogate, Surrogate,
    };
    pub use crate::tasks::TaskId;
    pub use crate::weights::WeightAdapter;
    pub use isop_em::fault::{FaultConfig, FaultInjector, RetryPolicy, SimError};
    pub use isop_telemetry::{Counter, RunReport, Telemetry};
}
