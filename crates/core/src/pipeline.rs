//! The ISOP+ optimization pipeline (paper Algorithm 1).
//!
//! Three stages:
//!
//! 1. **Global exploration** — Harmonica over the binary-encoded space with
//!    the smoothed objective `g_hat` evaluated on the surrogate, adaptive
//!    weight adjustment after every stage (Algorithm 2), and a Hyperband
//!    pass that picks the `p` most promising candidates out of the reduced
//!    space.
//! 2. **Local exploration** — decode to the continuous domain and run Adam
//!    on each candidate, differentiating `g_hat` through the surrogate's
//!    input Jacobian. Skipped when the surrogate is not differentiable
//!    (the `H + MLP_XGB` ablation) or disabled (`H + 1D-CNN`).
//! 3. **Candidate roll-out** — round to the grid (Eq. 6), evaluate the
//!    `cand_num` best with the *accurate* simulator, rank by the exact
//!    objective `g`.

use crate::objective::Objective;
use crate::params::ParamSpace;
use crate::surrogate::Surrogate;
use crate::weights::{SampleRecord, WeightAdapter};
use isop_em::simulator::{EmSimulator, SimulationResult};
use isop_em::stackup::DiffStripline;
use isop_hpo::budget::Budget;
use isop_hpo::harmonica::{self, HarmonicaConfig};
use isop_hpo::hyperband::{self, HyperbandConfig};
use isop_hpo::objective::BinaryObjective;
use isop_hpo::space::BinarySpace;
use isop_ml::optim::Adam;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::time::Instant;

/// ISOP+ pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsopConfig {
    /// Global-stage Harmonica settings.
    pub harmonica: HarmonicaConfig,
    /// Use Hyperband (vs plain random sampling) to pick GD seeds.
    pub use_hyperband: bool,
    /// Hyperband settings.
    pub hyperband: HyperbandConfig,
    /// Number of candidates fed to the local stage (`p`).
    pub gd_candidates: usize,
    /// Adam epochs in the local stage (`epoch_num`).
    pub gd_epochs: usize,
    /// Adam learning rate in *normalized* coordinates (each parameter span
    /// maps to `[0, 1]`).
    pub gd_lr: f64,
    /// Enable the gradient-descent stage (`H_GD` vs `H`).
    pub use_gradient_descent: bool,
    /// Designs evaluated with the accurate simulator at roll-out
    /// (`cand_num`).
    pub cand_num: usize,
    /// Enable adaptive weight adjustment (Algorithm 2).
    pub adapt_weights: bool,
    /// Adaptive-weight parameters.
    pub weight_adapter: WeightAdapter,
}

impl Default for IsopConfig {
    fn default() -> Self {
        Self {
            harmonica: HarmonicaConfig::default(),
            use_hyperband: true,
            hyperband: HyperbandConfig {
                max_resource: 9.0,
                eta: 3.0,
            },
            gd_candidates: 8,
            gd_epochs: 60,
            gd_lr: 0.02,
            use_gradient_descent: true,
            cand_num: 3,
            adapt_weights: true,
            weight_adapter: WeightAdapter::default(),
        }
    }
}

/// One final design candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignCandidate {
    /// Grid-valid design vector.
    pub values: Vec<f64>,
    /// Surrogate-predicted `[Z, L, NEXT]`.
    pub predicted: [f64; 3],
    /// Accurate simulation result (present after roll-out).
    pub simulated: Option<SimulationResult>,
    /// Exact objective `g` on the simulated metrics.
    pub g_exact: f64,
}

/// Full pipeline outcome with the accounting the paper's tables report.
#[derive(Debug, Clone)]
pub struct IsopOutcome {
    /// Roll-out candidates ranked by exact objective (best first).
    pub candidates: Vec<DesignCandidate>,
    /// Valid surrogate evaluations consumed.
    pub samples_seen: u64,
    /// Invalid encodings encountered.
    pub invalid_seen: u64,
    /// Real algorithm wall-clock, seconds.
    pub algorithm_seconds: f64,
    /// Simulated EM time at roll-out, seconds (batches of three in
    /// parallel, as in the paper).
    pub em_seconds: f64,
    /// Final adapted objective (weights frozen after the global stage).
    pub final_objective: Objective,
    /// Whether the best candidate satisfies every constraint under the
    /// accurate simulator.
    pub success: bool,
}

impl IsopOutcome {
    /// The best candidate, if any survived roll-out.
    pub fn best(&self) -> Option<&DesignCandidate> {
        self.candidates.first()
    }

    /// Total reported runtime: algorithm + accounted EM seconds.
    pub fn total_seconds(&self) -> f64 {
        self.algorithm_seconds + self.em_seconds
    }
}

/// The ISOP+ optimizer.
pub struct IsopOptimizer<'a> {
    space: &'a ParamSpace,
    surrogate: &'a dyn Surrogate,
    simulator: &'a dyn EmSimulator,
    config: IsopConfig,
}

/// Binary objective bridging bits -> design values -> surrogate -> `g_hat`,
/// recording per-sample metrics for the weight adapter.
struct SurrogateBinaryObjective<'a> {
    space: &'a ParamSpace,
    surrogate: &'a dyn Surrogate,
    objective: &'a RefCell<Objective>,
    records: &'a RefCell<Vec<SampleRecord>>,
    valid: u64,
    invalid: u64,
}

impl BinaryObjective for SurrogateBinaryObjective<'_> {
    fn eval(&mut self, bits: &[bool]) -> Option<f64> {
        let values = match self.space.decode_values(bits) {
            Some(v) => v,
            None => {
                self.invalid += 1;
                return None;
            }
        };
        let metrics = match self.surrogate.predict(&values) {
            Ok(m) => m,
            Err(_) => {
                self.invalid += 1;
                return None;
            }
        };
        self.valid += 1;
        let g = self.objective.borrow().g_hat(&metrics, &values);
        self.records.borrow_mut().push(SampleRecord {
            metrics,
            values,
        });
        Some(g)
    }

    fn n_bits(&self) -> usize {
        self.space.total_bits()
    }
}

impl<'a> IsopOptimizer<'a> {
    /// Creates an optimizer over `space` with the given engines.
    pub fn new(
        space: &'a ParamSpace,
        surrogate: &'a dyn Surrogate,
        simulator: &'a dyn EmSimulator,
        config: IsopConfig,
    ) -> Self {
        Self {
            space,
            surrogate,
            simulator,
            config,
        }
    }

    /// Runs the full three-stage pipeline on `objective`.
    ///
    /// `budget` bounds the global stage (samples and/or wall-clock); the
    /// local stage and roll-out always complete.
    pub fn run(&self, objective: Objective, mut budget: Budget, seed: u64) -> IsopOutcome {
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let obj_cell = RefCell::new(objective);
        let records = RefCell::new(Vec::new());

        // ---- Stage 1: global exploration (Harmonica + weights + Hyperband).
        let mut bin_obj = SurrogateBinaryObjective {
            space: self.space,
            surrogate: self.surrogate,
            objective: &obj_cell,
            records: &records,
            valid: 0,
            invalid: 0,
        };
        let adapter = self.config.weight_adapter;
        let adapt = self.config.adapt_weights;
        let init_space = BinarySpace::free(self.space.total_bits());
        let result = harmonica::run(
            &mut bin_obj,
            init_space,
            &self.config.harmonica,
            &mut budget,
            &mut rng,
            |_stage, _samples| {
                if adapt {
                    let batch: Vec<SampleRecord> = records.borrow_mut().drain(..).collect();
                    adapter.update(&mut obj_cell.borrow_mut(), &batch);
                } else {
                    records.borrow_mut().clear();
                }
            },
        );
        records.borrow_mut().clear();

        // Pick p seeds from the reduced space.
        let reduced = result.space.clone();
        let mut seeds: Vec<(Vec<bool>, f64)> = Vec::new();
        if self.config.use_hyperband {
            let ranked = hyperband::run(
                &self.config.hyperband,
                &mut rng,
                |r| reduced.sample(r),
                |bits, resource| {
                    // Fidelity axis: average g_hat over the point and
                    // (resource - 1) random 1-bit neighbours — higher
                    // resource probes the surrounding basin more thoroughly.
                    let reps = resource.round().max(1.0) as usize;
                    let mut total = 0.0;
                    let mut count = 0usize;
                    let mut local = bits.clone();
                    for rep in 0..reps {
                        if rep > 0 {
                            local.clone_from(bits);
                            let flip = rep % local.len();
                            if reduced.restriction(flip).is_none() {
                                local[flip] = !local[flip];
                            }
                        }
                        if let Some(v) = bin_obj.eval(&local) {
                            total += v;
                            count += 1;
                        }
                    }
                    if count == 0 {
                        f64::INFINITY
                    } else {
                        total / count as f64
                    }
                },
            );
            for r in ranked.into_iter().take(self.config.gd_candidates) {
                if r.loss.is_finite() {
                    seeds.push((r.config, r.loss));
                }
            }
        }
        // Fall back / top up with best Harmonica history points.
        if seeds.len() < self.config.gd_candidates {
            let mut hist = result.history.clone();
            hist.sort_by(|a, b| a.value.partial_cmp(&b.value).expect("finite"));
            for s in hist {
                if seeds.len() >= self.config.gd_candidates {
                    break;
                }
                if !seeds.iter().any(|(b, _)| *b == s.bits) {
                    seeds.push((s.bits, s.value));
                }
            }
        }
        records.borrow_mut().clear();
        let samples_seen = bin_obj.valid;
        let invalid_seen = bin_obj.invalid;
        drop(bin_obj);

        // Weights are frozen from here on (paper Section III-G).
        let final_objective = obj_cell.borrow().clone();

        // ---- Stage 2: local exploration (Adam through the surrogate).
        let bounds = self.space.bounds();
        let spans: Vec<f64> = bounds.iter().map(|(lo, hi)| hi - lo).collect();
        let mut refined: Vec<Vec<f64>> = Vec::new();
        for (bits, _) in &seeds {
            let Some(mut x) = self.space.decode_values(bits) else {
                continue;
            };
            let differentiable = self.surrogate.jacobian(&x).is_some();
            if self.config.use_gradient_descent && differentiable {
                // Optimize in normalized coordinates u = (x - lo) / span.
                let mut u: Vec<f64> = x
                    .iter()
                    .zip(&bounds)
                    .map(|(v, (lo, hi))| (v - lo) / (hi - lo))
                    .collect();
                let mut adam = Adam::new(self.config.gd_lr, u.len());
                for _ in 0..self.config.gd_epochs {
                    let x_now: Vec<f64> = u
                        .iter()
                        .zip(&bounds)
                        .map(|(ui, (lo, hi))| lo + ui * (hi - lo))
                        .collect();
                    let Ok(metrics) = self.surrogate.predict(&x_now) else {
                        break;
                    };
                    let Some(Ok(jac)) = self.surrogate.jacobian(&x_now) else {
                        break;
                    };
                    let grad_x = final_objective.grad_g_hat(&metrics, &jac, &x_now);
                    let grad_u: Vec<f64> =
                        grad_x.iter().zip(&spans).map(|(g, s)| g * s).collect();
                    adam.step(&mut u, &grad_u);
                    for ui in &mut u {
                        *ui = ui.clamp(0.0, 1.0);
                    }
                }
                x = u
                    .iter()
                    .zip(&bounds)
                    .map(|(ui, (lo, hi))| lo + ui * (hi - lo))
                    .collect();
            }
            refined.push(x);
        }

        // ---- Stage 3: roll-out (round, dedupe, simulate, rank by g).
        let mut rounded: Vec<Vec<f64>> = Vec::new();
        for x in refined {
            let r = self.space.round_to_grid(&x);
            if !rounded.contains(&r) {
                rounded.push(r);
            }
        }
        // Gradient descent can collapse several seeds onto one grid point;
        // top the pool back up with the (distinct) pre-GD seeds so the
        // accurate simulator still sees cand_num diverse candidates.
        if rounded.len() < self.config.cand_num {
            for (bits, _) in &seeds {
                if rounded.len() >= self.config.cand_num {
                    break;
                }
                if let Some(x) = self.space.decode_values(bits) {
                    let r = self.space.round_to_grid(&x);
                    if !rounded.contains(&r) {
                        rounded.push(r);
                    }
                }
            }
        }
        // Rank by surrogate g_hat and simulate the top cand_num.
        let mut scored: Vec<(Vec<f64>, [f64; 3], f64)> = rounded
            .into_iter()
            .filter_map(|x| {
                let m = self.surrogate.predict(&x).ok()?;
                let g = final_objective.g_hat(&m, &x);
                Some((x, m, g))
            })
            .collect();
        scored.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
        scored.truncate(self.config.cand_num.max(1));

        let mut em_seconds = 0.0;
        let mut candidates: Vec<DesignCandidate> = Vec::new();
        for (i, (x, predicted, _)) in scored.into_iter().enumerate() {
            let Ok(layer) = DiffStripline::from_vector(&x) else {
                continue;
            };
            let Ok(sim) = self.simulator.simulate(&layer) else {
                continue;
            };
            // Paper: three EM simulations run in parallel; account a batch
            // cost once per group of three.
            if i % 3 == 0 {
                // One parallel batch of three simulations costs
                // 3 * nominal_seconds (= the paper's 45.5 s per batch).
                em_seconds += self.simulator.nominal_seconds() * 3.0;
            }
            let metrics = sim.to_array();
            let g = final_objective.g_exact(&metrics, &x);
            candidates.push(DesignCandidate {
                values: x,
                predicted,
                simulated: Some(sim),
                g_exact: g,
            });
        }
        // Rank feasible candidates ahead of infeasible ones, then by exact
        // objective — the paper's success criterion counts a trial as
        // successful when *a* constraint-satisfying solution is discovered.
        let feasible = |c: &DesignCandidate| {
            let m = c.simulated.expect("simulated at roll-out").to_array();
            final_objective.all_satisfied(&m, &c.values)
        };
        candidates.sort_by(|a, b| {
            feasible(b)
                .cmp(&feasible(a))
                .then(a.g_exact.partial_cmp(&b.g_exact).expect("finite"))
        });
        let success = candidates.first().is_some_and(feasible);

        IsopOutcome {
            candidates,
            samples_seen,
            invalid_seen,
            algorithm_seconds: t0.elapsed().as_secs_f64(),
            em_seconds,
            final_objective,
            success,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::s1;
    use crate::surrogate::OracleSurrogate;
    use crate::tasks::{objective_for, TaskId};
    use isop_em::simulator::AnalyticalSolver;

    fn fast_config() -> IsopConfig {
        IsopConfig {
            harmonica: HarmonicaConfig {
                stages: 2,
                samples_per_stage: 120,
                top_monomials: 6,
                bits_per_stage: 8,
                ..HarmonicaConfig::default()
            },
            hyperband: HyperbandConfig {
                max_resource: 3.0,
                eta: 3.0,
            },
            gd_candidates: 4,
            gd_epochs: 25,
            cand_num: 3,
            ..IsopConfig::default()
        }
    }

    /// End-to-end smoke test on T1 with the oracle surrogate: the pipeline
    /// must find a constraint-satisfying design with decent loss.
    #[test]
    fn solves_t1_with_oracle_surrogate() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let opt = IsopOptimizer::new(&space, &surrogate, &simulator, fast_config());
        let outcome = opt.run(objective_for(TaskId::T1, vec![]), Budget::unlimited(), 3);
        let best = outcome.best().expect("found a candidate");
        let sim = best.simulated.expect("rolled out");
        assert!(
            outcome.success,
            "must satisfy Z=85+-1; got Z={} L={}",
            sim.z_diff, sim.insertion_loss
        );
        assert!((sim.z_diff - 85.0).abs() <= 1.0 + 1e-6);
        assert!(sim.insertion_loss < 0.0);
        assert!(outcome.samples_seen > 0);
        assert!(outcome.em_seconds > 0.0);
    }

    #[test]
    fn candidates_are_grid_valid_and_ranked() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let opt = IsopOptimizer::new(&space, &surrogate, &simulator, fast_config());
        let outcome = opt.run(objective_for(TaskId::T1, vec![]), Budget::unlimited(), 5);
        for c in &outcome.candidates {
            assert!(space.contains(&c.values), "off-grid candidate {:?}", c.values);
        }
        for w in outcome.candidates.windows(2) {
            assert!(w[0].g_exact <= w[1].g_exact);
        }
    }

    #[test]
    fn gradient_descent_improves_over_global_only() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();

        let mut no_gd_cfg = fast_config();
        no_gd_cfg.use_gradient_descent = false;
        let with_gd_cfg = fast_config();

        // Average exact objective across seeds; GD must not be worse.
        let (mut g_no, mut g_gd) = (0.0, 0.0);
        for seed in [11, 12, 13] {
            let no_gd = IsopOptimizer::new(&space, &surrogate, &simulator, no_gd_cfg.clone())
                .run(objective_for(TaskId::T1, vec![]), Budget::unlimited(), seed);
            let gd = IsopOptimizer::new(&space, &surrogate, &simulator, with_gd_cfg.clone())
                .run(objective_for(TaskId::T1, vec![]), Budget::unlimited(), seed);
            g_no += no_gd.best().map_or(10.0, |c| c.g_exact);
            g_gd += gd.best().map_or(10.0, |c| c.g_exact);
        }
        assert!(
            g_gd <= g_no + 0.15,
            "GD degraded results: {g_gd} vs {g_no}"
        );
    }

    #[test]
    fn budget_limits_global_samples() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let opt = IsopOptimizer::new(&space, &surrogate, &simulator, fast_config());
        let budget = Budget::unlimited().with_samples(100);
        let outcome = opt.run(objective_for(TaskId::T1, vec![]), budget, 7);
        // Hyperband and fallback still run, so allow headroom over 100.
        assert!(outcome.samples_seen < 400, "saw {}", outcome.samples_seen);
    }

    #[test]
    fn weights_adapt_during_global_stage() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let opt = IsopOptimizer::new(&space, &surrogate, &simulator, fast_config());
        let outcome = opt.run(objective_for(TaskId::T1, vec![]), Budget::unlimited(), 9);
        // T1's Z band is generous enough that some batch satisfies it and
        // the weight decays below its initial 1.0 (or stays — but never
        // grows).
        assert!(outcome.final_objective.weights.oc[0] <= 1.0 + 1e-12);
    }
}
