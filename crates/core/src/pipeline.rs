//! The ISOP+ optimization pipeline (paper Algorithm 1).
//!
//! Three stages:
//!
//! 1. **Global exploration** — Harmonica over the binary-encoded space with
//!    the smoothed objective `g_hat` evaluated on the surrogate, adaptive
//!    weight adjustment after every stage (Algorithm 2), and a Hyperband
//!    pass that picks the `p` most promising candidates out of the reduced
//!    space.
//! 2. **Local exploration** — decode to the continuous domain and run Adam
//!    on each candidate, differentiating `g_hat` through the surrogate's
//!    input Jacobian. Skipped when the surrogate is not differentiable
//!    (the `H + MLP_XGB` ablation) or disabled (`H + 1D-CNN`).
//! 3. **Candidate roll-out** — round to the grid (Eq. 6), evaluate the
//!    `cand_num` best with the *accurate* simulator, rank by the exact
//!    objective `g`. The roll-out is fault-tolerant: transient simulator
//!    failures retry under a bounded exponential-backoff policy (charged
//!    as simulated seconds, never slept), permanently failed designs are
//!    replaced by the next-best from the surplus surrogate-scored pool,
//!    and the outcome reports an explicit resolution (full / degraded /
//!    all simulations failed).

use crate::evalcache::{EvalCache, MemoizedSurrogate, SurrogateMemo};
use crate::exec::{par_map_indexed, Parallelism, RunControl};
use crate::objective::Objective;
use crate::params::ParamSpace;
use crate::scheduler::{self, JobRollout, PoolEntry, RolloutJob, RolloutSchedule, SchedulerCtx};
use crate::surrogate::{InstrumentedSurrogate, Surrogate};
use crate::weights::{SampleRecord, WeightAdapter};
use isop_em::fault::RetryPolicy;
use isop_em::simulator::{EmSimulator, SimulationResult};
use isop_hpo::budget::Budget;
use isop_hpo::harmonica::{self, HarmonicaConfig};
use isop_hpo::hyperband::{self, HyperbandConfig};
use isop_hpo::objective::BinaryObjective;
use isop_hpo::order::nan_last;
use isop_hpo::space::BinarySpace;
use isop_ml::optim::Adam;
use isop_telemetry::{Counter, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::time::Instant;

/// ISOP+ pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsopConfig {
    /// Global-stage Harmonica settings.
    pub harmonica: HarmonicaConfig,
    /// Use Hyperband (vs plain random sampling) to pick GD seeds.
    pub use_hyperband: bool,
    /// Hyperband settings.
    pub hyperband: HyperbandConfig,
    /// Number of candidates fed to the local stage (`p`).
    pub gd_candidates: usize,
    /// Adam epochs in the local stage (`epoch_num`).
    pub gd_epochs: usize,
    /// Adam learning rate in *normalized* coordinates (each parameter span
    /// maps to `[0, 1]`).
    pub gd_lr: f64,
    /// Enable the gradient-descent stage (`H_GD` vs `H`).
    pub use_gradient_descent: bool,
    /// Designs evaluated with the accurate simulator at roll-out
    /// (`cand_num`).
    pub cand_num: usize,
    /// Enable adaptive weight adjustment (Algorithm 2).
    pub adapt_weights: bool,
    /// Adaptive-weight parameters.
    pub weight_adapter: WeightAdapter,
    /// Worker threads for the parallel sections (Hyperband fidelity
    /// replicas, stage-2 Adam refinements, stage-3 roll-out). Outcomes are
    /// identical for any thread count at a fixed seed.
    pub parallelism: Parallelism,
    /// Retry schedule for transient EM failures at roll-out. Backoff is
    /// charged to the EM ledger as simulated seconds, never slept.
    pub retry: RetryPolicy,
    /// Which stage-3 schedule drives the accurate simulator. The default
    /// async batched scheduler interleaves retries and top-ups into full
    /// batches; the synchronous wave loop is kept as the reference its
    /// ledger is gated against.
    pub schedule: RolloutSchedule,
}

impl IsopConfig {
    /// A [`ModelZoo`](crate::surrogate::ModelZoo) training surrogates on
    /// this config's parallelism knob, so surrogate fitting and pipeline
    /// search share one thread setting.
    #[must_use]
    pub fn model_zoo(&self) -> crate::surrogate::ModelZoo {
        crate::surrogate::ModelZoo::new(self.parallelism)
    }
}

impl Default for IsopConfig {
    fn default() -> Self {
        Self {
            harmonica: HarmonicaConfig::default(),
            use_hyperband: true,
            hyperband: HyperbandConfig {
                max_resource: 9.0,
                eta: 3.0,
            },
            gd_candidates: 8,
            gd_epochs: 60,
            gd_lr: 0.02,
            use_gradient_descent: true,
            cand_num: 3,
            adapt_weights: true,
            weight_adapter: WeightAdapter::default(),
            parallelism: Parallelism::default(),
            retry: RetryPolicy::default(),
            schedule: RolloutSchedule::default(),
        }
    }
}

/// One final design candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignCandidate {
    /// Grid-valid design vector.
    pub values: Vec<f64>,
    /// Surrogate-predicted `[Z, L, NEXT]`.
    pub predicted: [f64; 3],
    /// Accurate simulation result (present after roll-out).
    pub simulated: Option<SimulationResult>,
    /// Exact objective `g` on the simulated metrics.
    pub g_exact: f64,
    /// Accurate-simulator attempts this design took (including the final
    /// successful one). Greater than 1 exactly when transient failures
    /// forced retries; cache hits replay the original run's count.
    pub attempts: u32,
}

/// How the stage-3 roll-out resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RolloutResolution {
    /// Every requested slot was filled by a successful accurate simulation
    /// (possibly after retries and top-ups).
    Full,
    /// Permanent simulator failures left the roll-out short of `cand_num`
    /// even after drawing every available backup from the scored pool.
    Degraded,
    /// No accurate simulation succeeded at all; the run's `success=false`
    /// is a simulator outage, not an ordinary infeasible trial.
    AllSimulationsFailed,
}

impl RolloutResolution {
    /// Stable label used in `RunReport.resolution` and trial records.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RolloutResolution::Full => "full",
            RolloutResolution::Degraded => "degraded",
            RolloutResolution::AllSimulationsFailed => "all_simulations_failed",
        }
    }
}

impl std::fmt::Display for RolloutResolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Full pipeline outcome with the accounting the paper's tables report.
#[derive(Debug, Clone)]
pub struct IsopOutcome {
    /// Roll-out candidates ranked by exact objective (best first).
    pub candidates: Vec<DesignCandidate>,
    /// Valid surrogate evaluations consumed.
    pub samples_seen: u64,
    /// Invalid encodings encountered.
    pub invalid_seen: u64,
    /// Real algorithm wall-clock, seconds.
    pub algorithm_seconds: f64,
    /// Simulated EM time at roll-out, seconds (batches of three in
    /// parallel, as in the paper).
    pub em_seconds: f64,
    /// EM time elided by the evaluation cache, seconds. A batch served
    /// entirely from cache moves its `nominal_seconds` here instead of
    /// [`em_seconds`](Self::em_seconds); `em_seconds + em_seconds_saved`
    /// is invariant under toggling the cache.
    pub em_seconds_saved: f64,
    /// Final adapted objective (weights frozen after the global stage).
    pub final_objective: Objective,
    /// Whether the best candidate satisfies every constraint under the
    /// accurate simulator.
    pub success: bool,
    /// Roll-out retry attempts (re-issued simulations after transient
    /// failures); mirrors the `em.retries` counter.
    pub em_retries: u64,
    /// Transient EM failures observed at roll-out; mirrors
    /// `em.failures_transient`.
    pub em_failures_transient: u64,
    /// Designs abandoned for good at roll-out (permanent failure or
    /// exhausted retry budget); mirrors `em.failures_permanent`.
    pub em_failures_permanent: u64,
    /// Backup designs drawn from the surplus scored pool; mirrors
    /// `em.topped_up`.
    pub em_topped_up: u64,
    /// How the roll-out resolved (full / degraded / all failed).
    pub resolution: RolloutResolution,
}

impl IsopOutcome {
    /// The best candidate, if any survived roll-out.
    pub fn best(&self) -> Option<&DesignCandidate> {
        self.candidates.first()
    }

    /// Total reported runtime: algorithm + accounted EM seconds.
    pub fn total_seconds(&self) -> f64 {
        self.algorithm_seconds + self.em_seconds
    }
}

/// The ISOP+ optimizer.
pub struct IsopOptimizer<'a> {
    space: &'a ParamSpace,
    surrogate: &'a dyn Surrogate,
    simulator: &'a dyn EmSimulator,
    config: IsopConfig,
    telemetry: Telemetry,
    eval_cache: EvalCache,
    surrogate_memo: SurrogateMemo,
    control: RunControl,
}

/// Binary objective bridging bits -> design values -> surrogate -> `g_hat`,
/// recording per-sample metrics for the weight adapter.
struct SurrogateBinaryObjective<'a> {
    space: &'a ParamSpace,
    surrogate: &'a dyn Surrogate,
    objective: &'a RefCell<Objective>,
    records: &'a RefCell<Vec<SampleRecord>>,
    valid: u64,
    invalid: u64,
}

impl BinaryObjective for SurrogateBinaryObjective<'_> {
    fn eval(&mut self, bits: &[bool]) -> Option<f64> {
        let values = match self.space.decode_values(bits) {
            Some(v) => v,
            None => {
                self.invalid += 1;
                return None;
            }
        };
        let metrics = match self.surrogate.predict(&values) {
            Ok(m) => m,
            Err(_) => {
                self.invalid += 1;
                return None;
            }
        };
        self.valid += 1;
        let g = self.objective.borrow().g_hat(&metrics, &values);
        self.records
            .borrow_mut()
            .push(SampleRecord { metrics, values });
        Some(g)
    }

    fn n_bits(&self) -> usize {
        self.space.total_bits()
    }
}

impl<'a> IsopOptimizer<'a> {
    /// Creates an optimizer over `space` with the given engines.
    pub fn new(
        space: &'a ParamSpace,
        surrogate: &'a dyn Surrogate,
        simulator: &'a dyn EmSimulator,
        config: IsopConfig,
    ) -> Self {
        Self {
            space,
            surrogate,
            simulator,
            config,
            telemetry: Telemetry::disabled(),
            eval_cache: EvalCache::disabled(),
            surrogate_memo: SurrogateMemo::disabled(),
            control: RunControl::none(),
        }
    }

    /// Attaches a telemetry handle; every stage span, surrogate call,
    /// Adam step, and charged EM batch is recorded on it. Counter totals
    /// are bit-identical at any `parallelism.threads` for a fixed seed;
    /// span timings are wall-clock.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches an accurate-EM result cache consulted at roll-out. Hits
    /// replay the stored simulation bit-exactly (including the simulator's
    /// counter footprint, provided the simulator shares this optimizer's
    /// telemetry handle) and move the elided batch wall-clock into the
    /// seconds-saved ledger. Outcomes are identical with the cache enabled,
    /// disabled, or shared across runs.
    #[must_use]
    pub fn with_eval_cache(mut self, cache: EvalCache) -> Self {
        self.eval_cache = cache;
        self
    }

    /// Attaches a surrogate-prediction memo consulted from the serial
    /// Harmonica sampling loop (stage 1). Repeated bitstrings replay the
    /// surrogate's metric predictions bit-exactly; `surrogate.predict`
    /// totals are unchanged because the memo sits *inside* the counting
    /// wrapper.
    #[must_use]
    pub fn with_surrogate_memo(mut self, memo: SurrogateMemo) -> Self {
        self.surrogate_memo = memo;
        self
    }

    /// Attaches a cancellation/deadline token. The pipeline polls it only
    /// at **stage boundaries** — before stages 1–2 and before the
    /// accurate-simulator roll-out — never inside a parallel section, so a
    /// stop lands at a deterministic point: a stopped run skips whole
    /// stages and reports empty candidates through the normal
    /// [`finalize`](Self::finalize) path, and everything a completed stage
    /// recorded stays bit-identical to an uninterrupted run.
    #[must_use]
    pub fn with_control(mut self, control: RunControl) -> Self {
        self.control = control;
        self
    }

    /// Overrides the parallelism knob after construction. This is the
    /// leased-executor hook: the multi-job engine sizes it from a
    /// [`CoreBudget`](crate::exec::CoreBudget) lease
    /// ([`CoreLease::parallelism`](crate::exec::CoreLease::parallelism)),
    /// and because every `par_map_*` call site in the pipeline — Hyperband
    /// fidelity replicas, stage-2 Adam refinements, the roll-out
    /// scheduler's slot fan-out — reads this one knob, the whole run stays
    /// inside its lease. Clamping the width never changes the outcome: all
    /// parallel sections are width-independent by construction.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Runs the full three-stage pipeline on `objective`.
    ///
    /// `budget` bounds the global stage (samples and/or wall-clock); the
    /// local stage and roll-out always complete. Equivalent to
    /// [`prepare`](Self::prepare) → [`roll_out`](Self::roll_out) →
    /// [`finalize`](Self::finalize); experiment cells that interleave
    /// several trials into one scheduler pass call the pieces directly.
    pub fn run(&self, objective: Objective, budget: Budget, seed: u64) -> IsopOutcome {
        let t0 = Instant::now();
        // Stage-boundary control polls: a stop observed here skips the
        // remaining stages entirely and flows an empty roll-out through
        // `finalize`, so the outcome shape (and ledgers: all zero for the
        // skipped work) is the same as any other run.
        if self.control.should_stop() {
            let prep = PreparedRollout {
                pool: Vec::new(),
                final_objective: objective,
                samples_seen: 0,
                invalid_seen: 0,
            };
            return self.finalize(prep, JobRollout::default(), t0.elapsed().as_secs_f64());
        }
        let prep = self.prepare(objective, budget, seed);
        let rollout = if self.control.should_stop() {
            JobRollout::default()
        } else {
            self.roll_out(&prep)
        };
        self.finalize(prep, rollout, t0.elapsed().as_secs_f64())
    }

    /// Stages 1–2 plus the surrogate-ranked pool build: everything before
    /// the accurate simulator runs. The returned [`PreparedRollout`] holds
    /// the scheduler's input; [`roll_out`](Self::roll_out) consumes it for
    /// this optimizer alone, while
    /// [`run_isop_interleaved`](crate::experiment::ExperimentContext::run_isop_interleaved)
    /// batches several trials' pools into one scheduler pass.
    pub fn prepare(&self, objective: Objective, mut budget: Budget, seed: u64) -> PreparedRollout {
        let mut rng = StdRng::seed_from_u64(seed);
        let obj_cell = RefCell::new(objective);
        let records = RefCell::new(Vec::new());
        // Every surrogate call in the pipeline goes through the counting
        // wrapper; with a disabled handle it adds one branch per call.
        let instrumented = InstrumentedSurrogate::new(self.surrogate, self.telemetry.clone());
        // Harmonica's serial sampling loop additionally consults the
        // prediction memo. The memo sits *inside* the counting wrapper so
        // `surrogate.predict` totals are identical with the memo on or off,
        // and it is kept out of the parallel sections (Hyperband, Adam,
        // roll-out) where concurrent miss-then-insert races on one key
        // would make hit/miss totals depend on thread interleaving.
        let memoized = MemoizedSurrogate::new(
            self.surrogate,
            self.surrogate_memo.clone(),
            self.telemetry.clone(),
        );
        let memo_instrumented = InstrumentedSurrogate::new(&memoized, self.telemetry.clone());

        // ---- Stage 1: global exploration (Harmonica + weights + Hyperband).
        let global_span = isop_telemetry::span!(self.telemetry, "pipeline.global");
        let mut bin_obj = SurrogateBinaryObjective {
            space: self.space,
            surrogate: &memo_instrumented,
            objective: &obj_cell,
            records: &records,
            valid: 0,
            invalid: 0,
        };
        let adapter = self.config.weight_adapter;
        let adapt = self.config.adapt_weights;
        let init_space = BinarySpace::free(self.space.total_bits());
        let result = harmonica::run_traced(
            &mut bin_obj,
            init_space,
            &self.config.harmonica,
            &mut budget,
            &mut rng,
            &self.telemetry,
            |_stage, _samples| {
                if adapt {
                    let batch: Vec<SampleRecord> = records.borrow_mut().drain(..).collect();
                    adapter.update(&mut obj_cell.borrow_mut(), &batch);
                } else {
                    records.borrow_mut().clear();
                }
            },
        );
        records.borrow_mut().clear();

        // Pick p seeds from the reduced space.
        let reduced = result.space.clone();
        let mut seeds: Vec<(Vec<bool>, f64)> = Vec::new();
        if self.config.use_hyperband {
            let _hb_span = isop_telemetry::span!(self.telemetry, "pipeline.hyperband");
            // The weight adapter only runs between Harmonica stages, so the
            // objective is frozen for the whole Hyperband pass — a clone can
            // be shared read-only across worker threads.
            let hb_objective = obj_cell.borrow().clone();
            let free_bits: Vec<usize> = (0..self.space.total_bits())
                .filter(|&i| reduced.restriction(i).is_none())
                .collect();
            let threads = self.config.parallelism.threads;
            let space = self.space;
            let surrogate = &instrumented;
            // Counters fold serially after each parallel batch; sample
            // records are not collected here because the adapter never
            // consumes Hyperband-phase records (they were always cleared
            // before use).
            let mut valid = 0u64;
            let mut invalid = 0u64;
            let ranked = hyperband::run_traced(
                &self.config.hyperband,
                &mut rng,
                &self.telemetry,
                |r| reduced.sample(r),
                |rng, bits, resource| {
                    // Fidelity axis: average g_hat over the point and
                    // (resource - 1) random 1-bit neighbours — higher
                    // resource probes the surrounding basin more thoroughly.
                    // Flips draw from the run RNG over the *unrestricted*
                    // bits only; Harmonica-fixed bits would decode to the
                    // same design (or an invalid one) and waste the probe.
                    let reps = resource.round().max(1.0) as usize;
                    let mut variants: Vec<Vec<bool>> = Vec::with_capacity(reps);
                    variants.push(bits.clone());
                    for _ in 1..reps {
                        let mut local = bits.clone();
                        if !free_bits.is_empty() {
                            let flip = free_bits[rng.gen_range(0..free_bits.len())];
                            local[flip] = !local[flip];
                        }
                        variants.push(local);
                    }
                    // Every RNG draw happened above; the fan-out below is
                    // pure, and the fold runs in variant order — so the
                    // loss is identical at any thread count.
                    let scored = par_map_indexed(threads, &variants, |_, v| {
                        let values = space.decode_values(v)?;
                        let metrics = surrogate.predict(&values).ok()?;
                        Some(hb_objective.g_hat(&metrics, &values))
                    });
                    let mut total = 0.0;
                    let mut count = 0usize;
                    for g in scored {
                        match g {
                            Some(g) => {
                                valid += 1;
                                total += g;
                                count += 1;
                            }
                            None => invalid += 1,
                        }
                    }
                    if count == 0 {
                        f64::INFINITY
                    } else {
                        total / count as f64
                    }
                },
            );
            bin_obj.valid += valid;
            bin_obj.invalid += invalid;
            for r in ranked.into_iter().take(self.config.gd_candidates) {
                if r.loss.is_finite() {
                    seeds.push((r.config, r.loss));
                }
            }
        }
        // Fall back / top up with best Harmonica history points.
        if seeds.len() < self.config.gd_candidates {
            let mut hist = result.history.clone();
            hist.sort_by(|a, b| nan_last(a.value, b.value));
            for s in hist {
                if seeds.len() >= self.config.gd_candidates {
                    break;
                }
                if !seeds.iter().any(|(b, _)| *b == s.bits) {
                    seeds.push((s.bits, s.value));
                }
            }
        }
        records.borrow_mut().clear();
        let samples_seen = bin_obj.valid;
        let invalid_seen = bin_obj.invalid;
        drop(global_span);

        // Weights are frozen from here on (paper Section III-G).
        let final_objective = obj_cell.borrow().clone();

        // ---- Stage 2: local exploration (Adam through the surrogate).
        // Decode serially (order-sensitive: failed decodes drop out), then
        // refine each seed on its own worker — refinements share nothing
        // but the read-only surrogate and objective, and results come back
        // in seed order.
        let local_span = isop_telemetry::span!(self.telemetry, "pipeline.local");
        let bounds = self.space.bounds();
        let spans: Vec<f64> = bounds.iter().map(|(lo, hi)| hi - lo).collect();
        let decoded: Vec<Vec<f64>> = seeds
            .iter()
            .filter_map(|(bits, _)| self.space.decode_values(bits))
            .collect();
        let refined: Vec<Vec<f64>> =
            par_map_indexed(self.config.parallelism.threads, &decoded, |_, start| {
                let mut x = start.clone();
                // Short-circuit order matters: the differentiability probe
                // costs a full Jacobian per seed, so it must not run when
                // the GD stage is disabled and the answer is unused.
                if self.config.use_gradient_descent && instrumented.jacobian(&x).is_some() {
                    // Optimize in normalized coordinates u = (x - lo) / span.
                    let mut u: Vec<f64> = x
                        .iter()
                        .zip(&bounds)
                        .map(|(v, (lo, hi))| (v - lo) / (hi - lo))
                        .collect();
                    let mut adam = Adam::new(self.config.gd_lr, u.len());
                    for _ in 0..self.config.gd_epochs {
                        let x_now: Vec<f64> = u
                            .iter()
                            .zip(&bounds)
                            .map(|(ui, (lo, hi))| lo + ui * (hi - lo))
                            .collect();
                        let Ok(metrics) = instrumented.predict(&x_now) else {
                            break;
                        };
                        let Some(Ok(jac)) = instrumented.jacobian(&x_now) else {
                            break;
                        };
                        let grad_x = final_objective.grad_g_hat(&metrics, &jac, &x_now);
                        let grad_u: Vec<f64> =
                            grad_x.iter().zip(&spans).map(|(g, s)| g * s).collect();
                        adam.step(&mut u, &grad_u);
                        self.telemetry.incr(Counter::AdamSteps);
                        for ui in &mut u {
                            *ui = ui.clamp(0.0, 1.0);
                        }
                    }
                    x = u
                        .iter()
                        .zip(&bounds)
                        .map(|(ui, (lo, hi))| lo + ui * (hi - lo))
                        .collect();
                }
                x
            });
        drop(local_span);

        // ---- Pool build for stage 3 (round, dedupe, rank by g_hat).
        let mut rounded: Vec<Vec<f64>> = Vec::new();
        for x in refined {
            let r = self.space.round_to_grid(&x);
            if !rounded.contains(&r) {
                rounded.push(r);
            }
        }
        // Gradient descent can collapse several seeds onto one grid point;
        // top the pool back up with the (distinct) pre-GD seeds so the
        // accurate simulator still sees cand_num diverse candidates.
        if rounded.len() < self.config.cand_num {
            for (bits, _) in &seeds {
                if rounded.len() >= self.config.cand_num {
                    break;
                }
                if let Some(x) = self.space.decode_values(bits) {
                    let r = self.space.round_to_grid(&x);
                    if !rounded.contains(&r) {
                        rounded.push(r);
                    }
                }
            }
        }
        // Rank by surrogate g_hat (one batched forward pass). The whole
        // scored pool is retained — the rows beyond cand_num were already
        // paid for by the single predict_batch above, and the surplus is
        // exactly the backup stock the fault-tolerant top-up draws from
        // when a permanent simulator failure empties a roll-out slot.
        let predictions = instrumented.predict_batch(&rounded);
        let mut pool: Vec<PoolEntry> = rounded
            .into_iter()
            .zip(predictions)
            .filter_map(|(x, m)| {
                let m = m.ok()?;
                let g = final_objective.g_hat(&m, &x);
                Some(PoolEntry {
                    values: x,
                    predicted: m,
                    g_hat: g,
                })
            })
            .collect();
        pool.sort_by(|a, b| nan_last(a.g_hat, b.g_hat));

        PreparedRollout {
            pool,
            final_objective,
            samples_seen,
            invalid_seen,
        }
    }

    /// The scheduler context this optimizer's roll-out runs under — the
    /// simulator, cache, telemetry, retry policy, and thread width shared
    /// by every flight. Experiment cells build one from their first trial
    /// and schedule all trials' jobs through it.
    #[must_use]
    pub fn scheduler_ctx(&self) -> SchedulerCtx<'_> {
        SchedulerCtx {
            simulator: self.simulator,
            space: self.space,
            eval_cache: &self.eval_cache,
            telemetry: &self.telemetry,
            retry: self.config.retry,
            threads: self.config.parallelism.threads,
        }
    }

    /// Stage 3: drives the accurate simulator over the prepared pool under
    /// the configured [`RolloutSchedule`], drawing in score order until
    /// `cand_num` designs have been successfully simulated or the pool runs
    /// dry (every draw past the first wave is a top-up replacing a
    /// permanently failed design).
    #[must_use]
    pub fn roll_out(&self, prep: &PreparedRollout) -> JobRollout {
        let _rollout_span = isop_telemetry::span!(self.telemetry, "pipeline.rollout");
        let ctx = self.scheduler_ctx();
        let job = RolloutJob {
            pool: &prep.pool,
            target: self.config.cand_num.max(1),
        };
        match self.config.schedule {
            RolloutSchedule::Synchronous => scheduler::run_synchronous(job, &ctx),
            RolloutSchedule::AsyncBatched => scheduler::run_async(&[job], &ctx)
                .pop()
                .expect("one rollout per job"),
        }
    }

    /// Turns a scheduler roll-out into the final [`IsopOutcome`]: exact
    /// objectives on the delivered simulations, feasible-first ranking, and
    /// the resolution / fault accounting the paper's tables report.
    /// `algorithm_seconds` is the caller-measured real wall-clock (the
    /// scheduler's EM ledgers are simulated seconds and land in
    /// [`em_seconds`](IsopOutcome::em_seconds) /
    /// [`em_seconds_saved`](IsopOutcome::em_seconds_saved)).
    #[must_use]
    pub fn finalize(
        &self,
        prep: PreparedRollout,
        rollout: JobRollout,
        algorithm_seconds: f64,
    ) -> IsopOutcome {
        let PreparedRollout {
            pool,
            final_objective,
            samples_seen,
            invalid_seen,
        } = prep;
        let target = self.config.cand_num.max(1);
        let mut candidates: Vec<DesignCandidate> = rollout
            .delivered
            .iter()
            .map(|d| {
                let entry = &pool[d.pool_index];
                let metrics = d.result.to_array();
                DesignCandidate {
                    values: entry.values.clone(),
                    predicted: entry.predicted,
                    simulated: Some(d.result),
                    g_exact: final_objective.g_exact(&metrics, &entry.values),
                    attempts: d.attempts,
                }
            })
            .collect();
        let resolution = if candidates.is_empty() && rollout.drawn > 0 {
            RolloutResolution::AllSimulationsFailed
        } else if candidates.len() < target && rollout.em_failures_permanent > 0 {
            RolloutResolution::Degraded
        } else {
            RolloutResolution::Full
        };
        // Rank feasible candidates ahead of infeasible ones, then by exact
        // objective — the paper's success criterion counts a trial as
        // successful when *a* constraint-satisfying solution is discovered.
        let feasible = |c: &DesignCandidate| {
            let m = c.simulated.expect("simulated at roll-out").to_array();
            final_objective.all_satisfied(&m, &c.values)
        };
        candidates.sort_by(|a, b| {
            feasible(b)
                .cmp(&feasible(a))
                .then(nan_last(a.g_exact, b.g_exact))
        });
        let success = candidates.first().is_some_and(feasible);

        IsopOutcome {
            candidates,
            samples_seen,
            invalid_seen,
            algorithm_seconds,
            em_seconds: rollout.em_seconds,
            em_seconds_saved: rollout.em_seconds_saved,
            final_objective,
            success,
            em_retries: rollout.em_retries,
            em_failures_transient: rollout.em_failures_transient,
            em_failures_permanent: rollout.em_failures_permanent,
            em_topped_up: rollout.em_topped_up,
            resolution,
        }
    }
}

/// Everything stage 3 needs, produced by
/// [`IsopOptimizer::prepare`](IsopOptimizer::prepare): the surrogate-ranked
/// candidate pool plus the frozen objective and stage-1 sample accounting
/// that [`IsopOptimizer::finalize`] folds into the outcome.
#[derive(Debug, Clone)]
pub struct PreparedRollout {
    /// Surrogate-scored candidate pool, best `g_hat` first. The rows
    /// beyond `cand_num` are the backup stock top-ups draw from.
    pub pool: Vec<PoolEntry>,
    /// The adapted objective, frozen after the global stage.
    pub final_objective: Objective,
    /// Valid surrogate evaluations consumed by stages 1–2.
    pub samples_seen: u64,
    /// Invalid encodings encountered by stages 1–2.
    pub invalid_seen: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::s1;
    use crate::surrogate::OracleSurrogate;
    use crate::tasks::{objective_for, TaskId};
    use isop_em::simulator::AnalyticalSolver;

    fn fast_config() -> IsopConfig {
        IsopConfig {
            harmonica: HarmonicaConfig {
                stages: 2,
                samples_per_stage: 120,
                top_monomials: 6,
                bits_per_stage: 8,
                ..HarmonicaConfig::default()
            },
            hyperband: HyperbandConfig {
                max_resource: 3.0,
                eta: 3.0,
            },
            gd_candidates: 4,
            gd_epochs: 25,
            cand_num: 3,
            ..IsopConfig::default()
        }
    }

    /// End-to-end smoke test on T1 with the oracle surrogate: the pipeline
    /// must find a constraint-satisfying design with decent loss.
    #[test]
    fn solves_t1_with_oracle_surrogate() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let opt = IsopOptimizer::new(&space, &surrogate, &simulator, fast_config());
        let outcome = opt.run(objective_for(TaskId::T1, vec![]), Budget::unlimited(), 3);
        let best = outcome.best().expect("found a candidate");
        let sim = best.simulated.expect("rolled out");
        assert!(
            outcome.success,
            "must satisfy Z=85+-1; got Z={} L={}",
            sim.z_diff, sim.insertion_loss
        );
        assert!((sim.z_diff - 85.0).abs() <= 1.0 + 1e-6);
        assert!(sim.insertion_loss < 0.0);
        assert!(outcome.samples_seen > 0);
        assert!(outcome.em_seconds > 0.0);
    }

    #[test]
    fn candidates_are_grid_valid_and_ranked() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let opt = IsopOptimizer::new(&space, &surrogate, &simulator, fast_config());
        let outcome = opt.run(objective_for(TaskId::T1, vec![]), Budget::unlimited(), 5);
        for c in &outcome.candidates {
            assert!(
                space.contains(&c.values),
                "off-grid candidate {:?}",
                c.values
            );
        }
        for w in outcome.candidates.windows(2) {
            assert!(w[0].g_exact <= w[1].g_exact);
        }
    }

    #[test]
    fn gradient_descent_improves_over_global_only() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();

        let mut no_gd_cfg = fast_config();
        no_gd_cfg.use_gradient_descent = false;
        let with_gd_cfg = fast_config();

        // Average exact objective across seeds; GD must not be worse.
        let (mut g_no, mut g_gd) = (0.0, 0.0);
        for seed in [11, 12, 13] {
            let no_gd = IsopOptimizer::new(&space, &surrogate, &simulator, no_gd_cfg.clone()).run(
                objective_for(TaskId::T1, vec![]),
                Budget::unlimited(),
                seed,
            );
            let gd = IsopOptimizer::new(&space, &surrogate, &simulator, with_gd_cfg.clone()).run(
                objective_for(TaskId::T1, vec![]),
                Budget::unlimited(),
                seed,
            );
            g_no += no_gd.best().map_or(10.0, |c| c.g_exact);
            g_gd += gd.best().map_or(10.0, |c| c.g_exact);
        }
        assert!(g_gd <= g_no + 0.15, "GD degraded results: {g_gd} vs {g_no}");
    }

    #[test]
    fn budget_limits_global_samples() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let opt = IsopOptimizer::new(&space, &surrogate, &simulator, fast_config());
        let budget = Budget::unlimited().with_samples(100);
        let outcome = opt.run(objective_for(TaskId::T1, vec![]), budget, 7);
        // Hyperband and fallback still run, so allow headroom over 100.
        assert!(outcome.samples_seen < 400, "saw {}", outcome.samples_seen);
    }

    /// The tentpole determinism contract: for a fixed seed, the parallel
    /// path must be bit-identical to the serial one — same candidates (values,
    /// predictions, exact objectives, ranking), same sample accounting, same
    /// EM wall-clock.
    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let outcomes: Vec<IsopOutcome> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let config = IsopConfig {
                    parallelism: Parallelism::new(threads),
                    ..fast_config()
                };
                IsopOptimizer::new(&space, &surrogate, &simulator, config).run(
                    objective_for(TaskId::T1, vec![]),
                    Budget::unlimited(),
                    3,
                )
            })
            .collect();
        let (serial, parallel) = (&outcomes[0], &outcomes[1]);
        assert!(!serial.candidates.is_empty());
        assert_eq!(serial.candidates, parallel.candidates);
        assert_eq!(serial.samples_seen, parallel.samples_seen);
        assert_eq!(serial.invalid_seen, parallel.invalid_seen);
        assert_eq!(serial.em_seconds.to_bits(), parallel.em_seconds.to_bits());
        assert_eq!(serial.success, parallel.success);
    }

    /// Roll-out EM accounting: up to three simulations run in parallel and
    /// cost the wall-clock of a single run, so a 3-candidate roll-out is
    /// exactly one `nominal_seconds()` charge.
    #[test]
    fn three_candidate_roll_out_charges_one_em_batch() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let opt = IsopOptimizer::new(&space, &surrogate, &simulator, fast_config());
        let outcome = opt.run(objective_for(TaskId::T1, vec![]), Budget::unlimited(), 3);
        assert_eq!(outcome.candidates.len(), 3, "expected a full roll-out");
        assert!(
            (outcome.em_seconds - simulator.nominal_seconds()).abs() < 1e-12,
            "3 parallel simulations must cost one batch, got {} vs {}",
            outcome.em_seconds,
            simulator.nominal_seconds()
        );
    }

    /// A surrogate that emits NaN for roughly half its inputs. Ranking must
    /// not panic (the seed code used `partial_cmp(..).expect("finite")`) and
    /// NaN-scored designs must rank last rather than poisoning the order.
    struct NanSurrogate {
        inner: OracleSurrogate<AnalyticalSolver>,
    }

    impl Surrogate for NanSurrogate {
        fn predict(&self, x: &[f64]) -> Result<[f64; 3], isop_ml::MlError> {
            // Deterministically poison about half the predictions.
            let parity = x.iter().map(|v| v.to_bits().count_ones()).sum::<u32>() % 2;
            if parity == 0 {
                Ok([f64::NAN, f64::NAN, f64::NAN])
            } else {
                self.inner.predict(x)
            }
        }

        fn jacobian(&self, x: &[f64]) -> Option<Result<isop_ml::linalg::Matrix, isop_ml::MlError>> {
            self.inner.jacobian(x)
        }

        fn name(&self) -> String {
            "nan-stub".to_string()
        }
    }

    #[test]
    fn nan_emitting_surrogate_does_not_panic_ranking() {
        let space = s1();
        let surrogate = NanSurrogate {
            inner: OracleSurrogate::new(AnalyticalSolver::new()),
        };
        let simulator = AnalyticalSolver::new();
        let opt = IsopOptimizer::new(&space, &surrogate, &simulator, fast_config());
        // The seed code panicked inside sort comparators here; the run must
        // now complete, and any finite-scored candidates stay ranked.
        let outcome = opt.run(objective_for(TaskId::T1, vec![]), Budget::unlimited(), 5);
        for w in outcome.candidates.windows(2) {
            assert!(
                nan_last(w[0].g_exact, w[1].g_exact) != std::cmp::Ordering::Greater,
                "NaN must sort last: {} before {}",
                w[0].g_exact,
                w[1].g_exact
            );
        }
    }

    /// Telemetry counter totals are commutative atomic adds, so a 4-thread
    /// run must report bit-identical counters and charged EM seconds to the
    /// serial run at the same seed — the contract the CI bench gate diffs on.
    #[test]
    fn telemetry_counters_identical_across_thread_widths() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let reports: Vec<isop_telemetry::RunReport> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let config = IsopConfig {
                    parallelism: Parallelism::new(threads),
                    ..fast_config()
                };
                let tele = Telemetry::enabled();
                let _ = IsopOptimizer::new(&space, &surrogate, &simulator, config)
                    .with_telemetry(tele.clone())
                    .run(objective_for(TaskId::T1, vec![]), Budget::unlimited(), 3);
                tele.run_report()
            })
            .collect();
        let (serial, parallel) = (&reports[0], &reports[1]);
        assert_eq!(serial.counters, parallel.counters);
        assert_eq!(
            serial.em_seconds_charged.to_bits(),
            parallel.em_seconds_charged.to_bits()
        );
        // The run actually exercised every stage.
        assert!(serial.counter("surrogate.predict") > 0);
        assert!(serial.counter("harmonica.lasso_solves") > 0);
        assert!(serial.counter("adam.steps") > 0);
        assert!(serial.counter("em.batches_charged") > 0);
        for label in [
            "pipeline.global",
            "pipeline.hyperband",
            "pipeline.local",
            "pipeline.rollout",
        ] {
            assert!(serial.span(label).is_some(), "missing span {label}");
        }
    }

    /// The evaluation-cache contract: a run with a cache is bit-identical
    /// to a run without one, and a second run sharing the cache serves its
    /// roll-out from hits — moving the batch charge into the saved ledger
    /// while `charged + saved` stays invariant.
    #[test]
    fn shared_eval_cache_elides_repeat_roll_outs_bit_exactly() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let baseline = IsopOptimizer::new(&space, &surrogate, &simulator, fast_config()).run(
            objective_for(TaskId::T1, vec![]),
            Budget::unlimited(),
            3,
        );

        let cache = crate::evalcache::EvalCache::new();
        let memo = crate::evalcache::SurrogateMemo::new();
        let run = |tele: &Telemetry| {
            IsopOptimizer::new(&space, &surrogate, &simulator, fast_config())
                .with_telemetry(tele.clone())
                .with_eval_cache(cache.clone())
                .with_surrogate_memo(memo.clone())
                .run(objective_for(TaskId::T1, vec![]), Budget::unlimited(), 3)
        };
        let tele_a = Telemetry::enabled();
        let cold = run(&tele_a);
        let tele_b = Telemetry::enabled();
        let warm = run(&tele_b);

        // Candidates, FoM, and ranking are bit-identical across all three.
        assert_eq!(baseline.candidates, cold.candidates);
        assert_eq!(cold.candidates, warm.candidates);
        assert_eq!(cold.success, warm.success);

        // Cold run: every probe missed, everything was charged.
        assert_eq!(cold.em_seconds.to_bits(), baseline.em_seconds.to_bits());
        assert_eq!(cold.em_seconds_saved, 0.0);
        assert_eq!(tele_a.counter(Counter::EmCacheHits), 0);
        assert!(tele_a.counter(Counter::EmCacheMisses) > 0);

        // Warm run: the whole roll-out came from the cache.
        assert_eq!(warm.em_seconds, 0.0);
        assert!(warm.em_seconds_saved > 0.0);
        assert!(tele_b.counter(Counter::EmCacheHits) > 0);
        assert_eq!(
            (warm.em_seconds + warm.em_seconds_saved).to_bits(),
            cold.em_seconds.to_bits(),
            "charged + saved must be invariant under the cache"
        );
        // Batch accounting is unchanged: same number of logical batches.
        assert_eq!(
            tele_a.counter(Counter::EmBatchesCharged),
            tele_b.counter(Counter::EmBatchesCharged)
        );
        // The memo replayed repeated Harmonica bitstrings on the warm run.
        assert!(tele_b.counter(Counter::SurrogateMemoHits) > 0);
        assert_eq!(
            tele_a.counter(Counter::SurrogateMemoHits)
                + tele_a.counter(Counter::SurrogateMemoMisses),
            tele_b.counter(Counter::SurrogateMemoHits)
                + tele_b.counter(Counter::SurrogateMemoMisses),
            "memo probe totals are a property of the seed, not the memo state"
        );
    }

    /// An optimizer without `with_telemetry` records nothing anywhere.
    #[test]
    fn default_optimizer_runs_untraced() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let outcome = IsopOptimizer::new(&space, &surrogate, &simulator, fast_config()).run(
            objective_for(TaskId::T1, vec![]),
            Budget::unlimited(),
            3,
        );
        assert!(outcome.best().is_some());
    }

    #[test]
    fn weights_adapt_during_global_stage() {
        let space = s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let opt = IsopOptimizer::new(&space, &surrogate, &simulator, fast_config());
        let outcome = opt.run(objective_for(TaskId::T1, vec![]), Budget::unlimited(), 9);
        // T1's Z band is generous enough that some batch satisfies it and
        // the weight decays below its initial 1.0 (or stays — but never
        // grows).
        assert!(outcome.final_objective.weights.oc[0] <= 1.0 + 1e-12);
    }
}
