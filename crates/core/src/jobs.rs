//! Job specifications and the weighted-fair admission queue of the
//! multi-job engine.
//!
//! A [`JobSpec`] is one optimization request — target task, design space,
//! seed, fault knobs, and the scheduling metadata (tenant, weight,
//! requested threads) the engine admits it by. A [`JobQueue`] holds a batch
//! of specs and partitions them into deterministic **admission waves** via
//! weighted deficit round-robin across tenants ([`JobQueue::fair_waves`]):
//! a round-robin pointer visits backlogged tenants in first-submission
//! order, each visit grants exactly one quantum of credit (= the tenant's
//! weight, never banked across visits) and admits one job per credit, and
//! the resulting admission stream is chunked into `wave_slots`-sized
//! waves. Over a backlog the admitted share converges to the weight ratio
//! while submission order is preserved within a tenant, and a light tenant
//! is never starved behind a heavy one's banked burst. Wave composition is
//! a pure function of the
//! queue contents — never of thread timing — which is the first half of
//! the engine's concurrent-neighbor bit-identity argument (see
//! [`engine`](crate::engine) for the second half).
//!
//! Specs parse from JSON (`isop serve --jobs FILE`) with every field but
//! optional: an empty object is a valid job (task `t1` on `s1`, seed 0,
//! weight 1, one thread), so job files stay terse and old files keep
//! parsing as knobs are added.

use crate::params::ParamSpace;
use crate::tasks::TaskId;
use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Resolves a space label (`s1`, `s2`, `s1p`/`s1'`/`s1prime`, `training`)
/// to its [`ParamSpace`]. Shared by the CLI and the job queue so both
/// accept the same names.
#[must_use]
pub fn space_by_name(name: &str) -> Option<ParamSpace> {
    match name {
        "s1" => Some(crate::spaces::s1()),
        "s2" => Some(crate::spaces::s2()),
        "s1p" | "s1'" | "s1prime" => Some(crate::spaces::s1_prime()),
        "training" => Some(crate::spaces::training_space()),
        _ => None,
    }
}

/// Resolves a task label (`t1`..`t4`, case-insensitive) to its [`TaskId`].
#[must_use]
pub fn task_by_name(name: &str) -> Option<TaskId> {
    match name.to_lowercase().as_str() {
        "t1" => Some(TaskId::T1),
        "t2" => Some(TaskId::T2),
        "t3" => Some(TaskId::T3),
        "t4" => Some(TaskId::T4),
        _ => None,
    }
}

/// One optimization request submitted to the engine.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobSpec {
    /// Job identifier, unique within a queue (the queue assigns `job-N`
    /// when empty). Tags the job's [`RunReport`](isop_telemetry::RunReport).
    pub id: String,
    /// Tenant the job is admitted under; fairness is weighted across
    /// tenants, FIFO within one. Defaults to `"default"`.
    pub tenant: String,
    /// Benchmark task label (`t1`..`t4`).
    pub task: String,
    /// Design-space label (see [`space_by_name`]).
    pub space: String,
    /// RNG seed of the job's pipeline run.
    pub seed: u64,
    /// Fairness weight of the job's tenant (a tenant's effective weight is
    /// the maximum over its jobs; >= 1).
    pub weight: u64,
    /// Worker threads the job *requests*. The engine leases
    /// `min(requested, free permits)` from the global core budget at start
    /// — never less than 1, possibly less than requested under load.
    pub threads: usize,
    /// Transient EM fault rate injected into the job's verifying simulator
    /// (0 = no fault layer), keyed by design identity and `seed`.
    pub em_fault_rate: f64,
    /// Permanent ("doomed design") EM fault rate of the fault layer.
    pub em_permanent_rate: f64,
    /// Wall-clock deadline in seconds from the moment the engine starts
    /// the batch/epoch (0 = no deadline). Checked at wave admission and
    /// between pipeline stages; an expired job reports the
    /// `deadline_expired` disposition without touching its neighbors.
    pub deadline_seconds: f64,
    /// Test/chaos knob: the job's worker panics mid-run instead of
    /// optimizing. The engine must contain the panic as a `failed`
    /// disposition rather than unwind through the wave.
    pub chaos_panic: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            id: String::new(),
            tenant: "default".to_string(),
            task: "t1".to_string(),
            space: "s1".to_string(),
            seed: 0,
            weight: 1,
            threads: 1,
            em_fault_rate: 0.0,
            em_permanent_rate: 0.0,
            deadline_seconds: 0.0,
            chaos_panic: false,
        }
    }
}

impl JobSpec {
    /// The job's resolved task, if the label is known.
    #[must_use]
    pub fn task_id(&self) -> Option<TaskId> {
        task_by_name(&self.task)
    }

    /// The job's resolved design space, if the label is known.
    #[must_use]
    pub fn param_space(&self) -> Option<ParamSpace> {
        space_by_name(&self.space)
    }
}

fn opt_field<T: Deserialize>(obj: &[(String, Value)], key: &str, default: T) -> Result<T, Error> {
    match Value::field(obj, key) {
        Value::Null => Ok(default),
        v => T::from_value(v),
    }
}

// Hand-written so every field is optional: job files list only the knobs
// they care about, and files written before a knob existed keep parsing.
impl Deserialize for JobSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_obj()
            .ok_or_else(|| Error::mismatch("object (JobSpec)", v))?;
        let d = JobSpec::default();
        Ok(Self {
            id: opt_field(obj, "id", d.id)?,
            tenant: opt_field(obj, "tenant", d.tenant)?,
            task: opt_field(obj, "task", d.task)?,
            space: opt_field(obj, "space", d.space)?,
            seed: opt_field(obj, "seed", d.seed)?,
            weight: opt_field::<u64>(obj, "weight", d.weight)?.max(1),
            threads: opt_field::<usize>(obj, "threads", d.threads)?.max(1),
            em_fault_rate: opt_field(obj, "em_fault_rate", d.em_fault_rate)?,
            em_permanent_rate: opt_field(obj, "em_permanent_rate", d.em_permanent_rate)?,
            deadline_seconds: opt_field(obj, "deadline_seconds", d.deadline_seconds)?,
            chaos_panic: opt_field(obj, "chaos_panic", d.chaos_panic)?,
        })
    }
}

/// Parses a jobs file: either a bare JSON array of [`JobSpec`] objects or
/// `{"jobs": [...]}`. Jobs with an empty `id` are assigned `job-N` by
/// submission index, and duplicate ids are rejected (reports would
/// otherwise overwrite each other).
///
/// # Errors
///
/// Returns a message on malformed JSON, an unknown task/space label, or a
/// duplicate id.
pub fn parse_jobs(text: &str) -> Result<Vec<JobSpec>, String> {
    let value = Value::parse(text).map_err(|e| format!("jobs file: {e:?}"))?;
    let arr = match &value {
        Value::Arr(_) => &value,
        other => match other.as_obj() {
            Some(obj) => Value::field(obj, "jobs"),
            None => return Err("jobs file: expected an array or {\"jobs\": [...]}".to_string()),
        },
    };
    let mut jobs: Vec<JobSpec> =
        Vec::<JobSpec>::from_value(arr).map_err(|e| format!("jobs file: {e:?}"))?;
    let mut seen = std::collections::HashSet::new();
    for (i, job) in jobs.iter_mut().enumerate() {
        if job.id.is_empty() {
            job.id = format!("job-{i}");
        }
        if !seen.insert(job.id.clone()) {
            return Err(format!("jobs file: duplicate job id '{}'", job.id));
        }
        if job.task_id().is_none() {
            return Err(format!("job '{}': unknown task '{}'", job.id, job.task));
        }
        if job.param_space().is_none() {
            return Err(format!("job '{}': unknown space '{}'", job.id, job.space));
        }
    }
    Ok(jobs)
}

/// A batch of jobs awaiting admission.
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    jobs: Vec<JobSpec>,
}

impl JobQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A queue holding `jobs` in submission order.
    #[must_use]
    pub fn from_specs(jobs: Vec<JobSpec>) -> Self {
        Self { jobs }
    }

    /// Appends a job.
    pub fn push(&mut self, spec: JobSpec) {
        self.jobs.push(spec);
    }

    /// Queued jobs, in submission order.
    #[must_use]
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Partitions the queue into admission waves of at most `wave_slots`
    /// jobs by weighted deficit round-robin across tenants.
    ///
    /// A round-robin pointer visits tenants in order of first submission.
    /// On arrival at a backlogged tenant the pointer grants exactly one
    /// quantum of credit — the tenant's weight (the maximum weight over
    /// its jobs) — and admits one queued job per credit, FIFO within the
    /// tenant; unspent credit is discarded when the pointer moves on, so
    /// no tenant banks credit across visits and a light tenant is admitted
    /// every round-robin cycle even under `wave_slots = 1`. The admission
    /// stream is then chunked into `wave_slots`-sized waves, which makes
    /// every wave but the last full (work-conserving) by construction.
    /// The result depends only on the queue contents — the returned
    /// indices into [`JobQueue::jobs`] are what the engine executes wave
    /// by wave.
    #[must_use]
    pub fn fair_waves(&self, wave_slots: usize) -> Vec<Vec<usize>> {
        let wave_slots = wave_slots.max(1);
        // Tenant order = first submission; pending lists keep FIFO order.
        let mut tenant_order: Vec<&str> = Vec::new();
        let mut pending: BTreeMap<&str, std::collections::VecDeque<usize>> = BTreeMap::new();
        let mut weight: BTreeMap<&str, u64> = BTreeMap::new();
        for (i, job) in self.jobs.iter().enumerate() {
            let t = job.tenant.as_str();
            if !pending.contains_key(t) {
                tenant_order.push(t);
            }
            pending.entry(t).or_default().push_back(i);
            let w = weight.entry(t).or_insert(1);
            *w = (*w).max(job.weight.max(1));
        }

        let mut stream = Vec::with_capacity(self.jobs.len());
        let mut remaining = self.jobs.len();
        while remaining > 0 {
            for &t in &tenant_order {
                let queue = pending.get_mut(t).expect("pending entry");
                if queue.is_empty() {
                    continue;
                }
                // One quantum per visit, never carried: the deficit
                // round-robin cap that keeps a tenant throttled by tight
                // wave_slots from banking credits and monopolizing later
                // admission.
                let mut credit = weight[t];
                while credit >= 1 {
                    let Some(idx) = queue.pop_front() else { break };
                    stream.push(idx);
                    credit -= 1;
                    remaining -= 1;
                }
            }
        }
        stream.chunks(wave_slots).map(<[usize]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: &str, tenant: &str, weight: u64) -> JobSpec {
        JobSpec {
            id: id.to_string(),
            tenant: tenant.to_string(),
            weight,
            ..JobSpec::default()
        }
    }

    #[test]
    fn specs_parse_with_defaults_and_assigned_ids() {
        let jobs = parse_jobs(r#"[{}, {"task": "t2", "space": "s2", "seed": 7}]"#).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, "job-0");
        assert_eq!(jobs[0].task, "t1");
        assert_eq!(jobs[0].tenant, "default");
        assert_eq!(jobs[0].weight, 1);
        assert_eq!(jobs[0].threads, 1);
        assert_eq!(jobs[1].id, "job-1");
        assert_eq!(jobs[1].task, "t2");
        assert_eq!(jobs[1].space, "s2");
        assert_eq!(jobs[1].seed, 7);
        // Wrapped form parses too.
        let wrapped = parse_jobs(r#"{"jobs": [{"id": "a", "tenant": "x"}]}"#).unwrap();
        assert_eq!(wrapped[0].id, "a");
        assert_eq!(wrapped[0].tenant, "x");
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        assert!(parse_jobs("not json").is_err());
        assert!(parse_jobs(r#"[{"task": "t9"}]"#)
            .unwrap_err()
            .contains("unknown task"));
        assert!(parse_jobs(r#"[{"space": "mars"}]"#)
            .unwrap_err()
            .contains("unknown space"));
        assert!(parse_jobs(r#"[{"id": "a"}, {"id": "a"}]"#)
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn fair_waves_split_share_by_weight() {
        // Tenant a (weight 2) and b (weight 1), both backlogged: every
        // 3-slot wave should admit 2 of a's jobs and 1 of b's.
        let mut q = JobQueue::new();
        for i in 0..6 {
            q.push(job(&format!("a{i}"), "a", 2));
        }
        for i in 0..3 {
            q.push(job(&format!("b{i}"), "b", 1));
        }
        let waves = q.fair_waves(3);
        assert_eq!(waves.len(), 3);
        for wave in &waves {
            let a = wave.iter().filter(|&&i| q.jobs()[i].tenant == "a").count();
            let b = wave.iter().filter(|&&i| q.jobs()[i].tenant == "b").count();
            assert_eq!((a, b), (2, 1), "wave {wave:?}");
        }
        // FIFO within each tenant.
        let order: Vec<&str> = waves
            .iter()
            .flatten()
            .map(|&i| q.jobs()[i].id.as_str())
            .collect();
        let a_order: Vec<&&str> = order.iter().filter(|id| id.starts_with('a')).collect();
        assert_eq!(a_order, [&"a0", &"a1", &"a2", &"a3", &"a4", &"a5"]);
    }

    #[test]
    fn fair_waves_are_work_conserving() {
        // One tenant with weight 1 and 5 jobs, 4 slots per wave: credits
        // alone would admit 1 per wave; top-up must fill the slots.
        let mut q = JobQueue::new();
        for i in 0..5 {
            q.push(job(&format!("j{i}"), "solo", 1));
        }
        let waves = q.fair_waves(4);
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0].len(), 4);
        assert_eq!(waves[1].len(), 1);
        // Every job admitted exactly once.
        let mut all: Vec<usize> = waves.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    /// Regression: under `wave_slots = 1` the old per-wave accrual banked
    /// the heavy tenant's unspent credits, so it kept winning the first
    /// admission pass wave after wave and the light tenant was starved
    /// until the heavy backlog drained entirely
    /// (`[h0][h1][h2][l0][l1][l2]`). Capping credit at one quantum per
    /// pointer visit admits the light tenant every round-robin cycle.
    #[test]
    fn fair_waves_do_not_starve_a_light_tenant_under_tight_slots() {
        let mut q = JobQueue::new();
        for i in 0..3 {
            q.push(job(&format!("h{i}"), "heavy", 2));
        }
        for i in 0..3 {
            q.push(job(&format!("l{i}"), "light", 1));
        }
        let waves = q.fair_waves(1);
        let order: Vec<&str> = waves
            .iter()
            .flatten()
            .map(|&i| q.jobs()[i].id.as_str())
            .collect();
        assert_eq!(order, ["h0", "h1", "l0", "h2", "l1", "l2"]);
        let first_light = order.iter().position(|id| id.starts_with('l')).unwrap();
        assert!(
            first_light <= 2,
            "light tenant must be admitted within the first round-robin \
             cycle, got wave {first_light}"
        );
    }

    #[test]
    fn fair_waves_are_deterministic_and_cover_the_queue() {
        let mut q = JobQueue::new();
        for i in 0..4 {
            q.push(job(&format!("x{i}"), "x", 3));
            q.push(job(&format!("y{i}"), "y", 1));
        }
        let a = q.fair_waves(2);
        let b = q.fair_waves(2);
        assert_eq!(a, b);
        let mut all: Vec<usize> = a.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }
}
