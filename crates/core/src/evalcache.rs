//! Deterministic evaluation caches for the expensive halves of the pipeline.
//!
//! ISOP's premise is that accurate EM simulation is the scarce resource; yet
//! the pipeline keeps re-evaluating *identical discrete designs* — roll-out
//! rounds every refined candidate back onto the manufacturing grid, repeated
//! trials revisit the same optima, and the ablation variants of one task all
//! converge on the same handful of grid points. Two caches remove the
//! duplicate work without changing a single bit of any outcome:
//!
//! * [`EvalCache`] — a thread-safe EM-result cache keyed by [`DesignKey`],
//!   the **canonical discrete grid indices** of a design (never raw floats:
//!   two values a rounding error apart would silently be distinct keys,
//!   while two grids can produce bit-different floats for the same level).
//!   Hits replay the exact stored [`SimulationResult`] (and the attempt
//!   count of the original evaluation, via [`CachedSim`]), tick the same
//!   simulator counters a real run would, and move the batch wall-clock into
//!   the *seconds-saved* ledger instead of the charged one. Only **final
//!   successes** are cached; a hit bypasses the fault-tolerant retry path
//!   entirely, so retry counters and backoff charges never replay. An
//!   optional JSON spill (`results/em_cache.json`) lets the table VII/VIII
//!   ablation bins reuse simulations across variants of the same task.
//! * [`SurrogateMemo`] + [`MemoizedSurrogate`] — a sibling memo for repeated
//!   designs inside Harmonica's adaptive-reweighting loop. It stores the
//!   surrogate's *metrics* (`[Z, L, NEXT]`), never the weighted objective
//!   `g_hat`, so adaptive weight updates between stages stay exact.
//!
//! Both caches are **seed-independent** (keys never involve RNG state) and
//! purely eliding: a lookup either returns the bit-exact value the
//! computation would produce or falls through to the computation. A
//! *disabled* cache still counts every probe as a miss — that is what lets
//! the CI bench gate fail when the cache is turned off (miss count over
//! budget) rather than silently passing with zeroed counters.

use crate::params::ParamSpace;
use crate::surrogate::Surrogate;
use isop_em::simulator::SimulationResult;
use isop_ml::linalg::Matrix;
use isop_ml::MlError;
use isop_store::{EvalRecord, Store};
use isop_telemetry::{Counter, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The canonical identity of a discrete design: one grid level per
/// parameter plus a fingerprint of the space that defined the grid.
///
/// Keys are grid *indices*, not floats — `level_of` collapses every
/// float that rounds to the same grid point onto one key, and the space
/// fingerprint keeps level `3` of `S1` distinct from level `3` of `S2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DesignKey {
    /// Fingerprint of the defining [`ParamSpace`] (FNV-1a over every
    /// parameter's name and grid, masked to 48 bits so it survives a
    /// JSON round-trip through an `f64` mantissa).
    pub space_id: u64,
    /// Grid level of each parameter, in space order.
    pub levels: Vec<u32>,
}

/// Fingerprints a space: FNV-1a over each parameter's name bytes and the
/// bit patterns of its `lo`/`hi`/`step`.
fn space_fingerprint(space: &ParamSpace) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    };
    for p in space.params() {
        for b in p.name.bytes() {
            eat(b);
        }
        for v in [p.lo, p.hi, p.step] {
            for b in v.to_bits().to_le_bytes() {
                eat(b);
            }
        }
        eat(0xFF); // parameter separator
    }
    h & ((1u64 << 48) - 1)
}

/// A cached accurate simulation: the final successful result plus the
/// attempt count the fresh run needed to obtain it.
///
/// Only **final successes** ever enter the cache — transiently failed
/// attempts are never stored, and a hit bypasses the retry path entirely
/// (no retry counters tick, no backoff is charged). The stored `attempts`
/// exist so a warm run can replay the candidate's attempt count
/// bit-exactly and produce candidates identical to the cold run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CachedSim {
    /// The successful simulation.
    pub result: SimulationResult,
    /// Attempts the original (uncached) evaluation took, including the
    /// final successful one.
    pub attempts: u32,
}

/// Outcome of one [`EvalCache::probe`]: the design's key (when it sits on
/// the grid) and the cached result, if any.
#[derive(Debug, Clone)]
pub struct CacheProbe {
    /// Canonical key, `None` when any coordinate falls off the grid span
    /// (such designs are never cached — the simulator rejects them anyway).
    pub key: Option<DesignKey>,
    /// The stored simulation, present only on a hit.
    pub hit: Option<CachedSim>,
}

/// One entry of the JSON spill file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SpillEntry {
    space_id: u64,
    levels: Vec<u32>,
    result: SimulationResult,
    attempts: u32,
}

/// On-disk shape of the spill (`results/em_cache.json`).
#[derive(Debug, Serialize, Deserialize)]
struct SpillFile {
    schema_version: u32,
    entries: Vec<SpillEntry>,
}

/// v2: entries carry the attempt count of the original evaluation.
const SPILL_SCHEMA_VERSION: u32 = 2;

/// Where a cached entry came from: this process (`Local`) or a
/// persistent-store record written by a previous one (`CrossJob`). Hits on
/// `CrossJob` entries are the cross-run reuse the store accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Local,
    CrossJob,
}

/// Shared state behind an enabled [`EvalCache`] handle.
#[derive(Debug)]
struct CacheInner {
    map: Mutex<HashMap<DesignKey, (CachedSim, Origin)>>,
    /// Set on `insert`, cleared on save/load — a warm [`EvalCache::save_json`]
    /// with no new entries skips the disk entirely.
    dirty: AtomicBool,
    /// The persistent backing store, when attached.
    store: Option<Arc<Store>>,
    /// Space fingerprints already hydrated from the store (each shard read
    /// happens at most once per space per cache).
    hydrated: Mutex<HashSet<u64>>,
}

/// A thread-safe, seed-independent cache of accurate EM results keyed by
/// [`DesignKey`]. Clones share one store; the default/`disabled` handle
/// stores nothing and reports every probe as a miss.
///
/// With a persistent [`Store`] attached ([`EvalCache::with_store`]), probes
/// lazily hydrate the probed space's shard, hits served from a previous
/// process's records are reported to the store's cross-job ledger, and
/// inserts are mirrored into the store's append buffer (persisted by
/// [`EvalCache::persist`]).
#[derive(Debug, Clone, Default)]
pub struct EvalCache {
    inner: Option<Arc<CacheInner>>,
}

impl EvalCache {
    /// An empty, collecting cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(CacheInner {
                map: Mutex::new(HashMap::new()),
                dirty: AtomicBool::new(false),
                store: None,
                hydrated: Mutex::new(HashSet::new()),
            })),
        }
    }

    /// An empty cache backed by the persistent `store`: probes hydrate
    /// per-space from its shards and inserts append to it.
    #[must_use]
    pub fn with_store(store: Arc<Store>) -> Self {
        Self {
            inner: Some(Arc::new(CacheInner {
                map: Mutex::new(HashMap::new()),
                dirty: AtomicBool::new(false),
                store: Some(store),
                hydrated: Mutex::new(HashSet::new()),
            })),
        }
    }

    /// A pass-through handle: never stores, never hits, counts every probe
    /// as a miss (same as `EvalCache::default()`).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle can store and serve results.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The attached persistent store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.inner.as_ref().and_then(|i| i.store.as_ref())
    }

    /// Number of cached designs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.map.lock().expect("eval cache lock").len())
    }

    /// `true` when nothing is cached (always for a disabled handle).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical key for `values` in `space`, or `None` when any
    /// coordinate falls outside its grid span.
    #[must_use]
    pub fn key_for(space: &ParamSpace, values: &[f64]) -> Option<DesignKey> {
        if values.len() != space.params().len() {
            return None;
        }
        let mut levels = Vec::with_capacity(values.len());
        for (p, &v) in space.params().iter().zip(values) {
            levels.push(u32::try_from(p.level_of(v).ok()?).ok()?);
        }
        Some(DesignKey {
            space_id: space_fingerprint(space),
            levels,
        })
    }

    /// Merges the persistent store's records for `space_id` into the map
    /// (insert-if-absent, tagged [`Origin::CrossJob`]); at most one shard
    /// read per space per cache. Store read errors degrade to "no stored
    /// entries" — corruption is already skip-counted inside the store.
    fn hydrate(inner: &CacheInner, space_id: u64) {
        let Some(store) = &inner.store else { return };
        let mut hydrated = inner.hydrated.lock().expect("hydration lock");
        if !hydrated.insert(space_id) {
            return;
        }
        let Ok(records) = store.load_evals(space_id) else {
            return;
        };
        let mut map = inner.map.lock().expect("eval cache lock");
        for rec in records {
            let [z_diff, insertion_loss, next] = rec.metrics;
            map.entry(DesignKey {
                space_id: rec.space_id,
                levels: rec.levels,
            })
            .or_insert((
                CachedSim {
                    result: SimulationResult {
                        z_diff,
                        insertion_loss,
                        next,
                    },
                    attempts: rec.attempts,
                },
                Origin::CrossJob,
            ));
        }
    }

    /// Eagerly merges the persistent store's records for `space` into the
    /// map, exactly as the first probe of that space would. No-op without a
    /// store, and at most one store read per space per cache either way.
    ///
    /// This is the multi-job engine's determinism hook: because
    /// [`Store::load_evals`] also surfaces *pending* (unflushed) appends,
    /// lazily hydrating mid-run while a concurrent neighbor appends to the
    /// shared store would make a job's cache contents timing-dependent.
    /// Calling this at the engine's **serial admission point** freezes the
    /// job's view of the store before any neighbor runs; the `hydrated`
    /// guard then keeps the cache from ever re-reading the store mid-run.
    pub fn hydrate_space(&self, space: &ParamSpace) {
        if let Some(inner) = &self.inner {
            Self::hydrate(inner, space_fingerprint(space));
        }
    }

    /// Looks up `values` and ticks `em.cache.hits` / `em.cache.misses` on
    /// `telemetry`. Off-grid designs and every probe of a disabled cache
    /// count as misses. With a store attached, the probed space's shard is
    /// hydrated first, and a hit on a record written by a previous process
    /// is additionally reported to the store's cross-job ledger.
    #[must_use]
    pub fn probe(&self, space: &ParamSpace, values: &[f64], telemetry: &Telemetry) -> CacheProbe {
        let key = Self::key_for(space, values);
        let hit = match (&self.inner, &key) {
            (Some(inner), Some(k)) => {
                Self::hydrate(inner, k.space_id);
                let hit = inner.map.lock().expect("eval cache lock").get(k).copied();
                if let Some((_, Origin::CrossJob)) = hit {
                    if let Some(store) = &inner.store {
                        store.note_cross_job_hit();
                    }
                }
                hit.map(|(sim, _)| sim)
            }
            _ => None,
        };
        if hit.is_some() {
            telemetry.incr(Counter::EmCacheHits);
        } else {
            telemetry.incr(Counter::EmCacheMisses);
        }
        CacheProbe { key, hit }
    }

    /// Stores a fresh accurate result under `key`. Only final successes
    /// reach this point — callers never cache failed attempts. No-op when
    /// disabled. Marks the cache dirty and, with a store attached, buffers
    /// the record for the store's next flush.
    pub fn insert(&self, key: DesignKey, sim: CachedSim) {
        if let Some(inner) = &self.inner {
            if let Some(store) = &inner.store {
                store.append_eval(&EvalRecord {
                    space_id: key.space_id,
                    levels: key.levels.clone(),
                    metrics: sim.result.to_array(),
                    attempts: sim.attempts,
                });
            }
            inner
                .map
                .lock()
                .expect("eval cache lock")
                .insert(key, (sim, Origin::Local));
            inner.dirty.store(true, Ordering::Release);
        }
    }

    /// Flushes buffered store appends (and the cross-job hit tally) to
    /// disk. No-op without an attached store.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn persist(&self) -> std::io::Result<()> {
        if let Some(store) = self.store() {
            store.flush()?;
        }
        Ok(())
    }

    /// Serializes every entry to `path` as schema-versioned JSON — but only
    /// when the cache is *dirty* (new entries since the last save/load).
    /// A warm save with nothing new is a complete no-op that returns
    /// `Ok(false)`; disabled handles never write. The write itself is
    /// atomic: a temp file in the target directory is renamed into place,
    /// so a killed run can never leave a torn spill.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<bool> {
        let Some(inner) = &self.inner else {
            return Ok(false);
        };
        if !inner.dirty.load(Ordering::Acquire) {
            return Ok(false);
        }
        self.export_json(path)?;
        inner.dirty.store(false, Ordering::Release);
        Ok(true)
    }

    /// Unconditionally serializes every entry to `path` (the legacy JSON
    /// spill shape, now the import/export format), atomically, creating
    /// parent directories as needed. A disabled handle exports an empty
    /// spill.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn export_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut entries: Vec<SpillEntry> = self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.map
                .lock()
                .expect("eval cache lock")
                .iter()
                .map(|(k, (v, _))| SpillEntry {
                    space_id: k.space_id,
                    levels: k.levels.clone(),
                    result: v.result,
                    attempts: v.attempts,
                })
                .collect()
        });
        // Deterministic file contents regardless of hash-map iteration order.
        entries.sort_by(|a, b| (a.space_id, &a.levels).cmp(&(b.space_id, &b.levels)));
        let file = SpillFile {
            schema_version: SPILL_SCHEMA_VERSION,
            entries,
        };
        let json =
            serde_json::to_string(&file).map_err(|e| std::io::Error::other(format!("{e:?}")))?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("em_cache.json");
        let tmp = path.with_file_name(format!("{file_name}.tmp"));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }

    /// Merges entries from a spill file written by [`EvalCache::save_json`]
    /// into this cache, returning how many were loaded. Missing files load
    /// zero entries (not an error); a disabled handle loads nothing.
    ///
    /// # Errors
    ///
    /// Returns an error on unreadable or malformed JSON, or on a spill
    /// schema mismatch.
    pub fn load_json(&self, path: &std::path::Path) -> std::io::Result<usize> {
        let Some(inner) = &self.inner else {
            return Ok(0);
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let file: SpillFile = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::other(format!("{}: {e:?}", path.display())))?;
        if file.schema_version != SPILL_SCHEMA_VERSION {
            return Err(std::io::Error::other(format!(
                "spill schema v{} != supported v{SPILL_SCHEMA_VERSION}",
                file.schema_version
            )));
        }
        let n = file.entries.len();
        let mut guard = inner.map.lock().expect("eval cache lock");
        for e in file.entries {
            // Imported entries mirror into an attached store (that is what
            // `isop cache import` does with the legacy spill); they count as
            // Local — this process put them there, not a previous run's
            // shard record.
            if let Some(store) = &inner.store {
                store.append_eval(&EvalRecord {
                    space_id: e.space_id,
                    levels: e.levels.clone(),
                    metrics: e.result.to_array(),
                    attempts: e.attempts,
                });
            }
            guard.insert(
                DesignKey {
                    space_id: e.space_id,
                    levels: e.levels,
                },
                (
                    CachedSim {
                        result: e.result,
                        attempts: e.attempts,
                    },
                    Origin::Local,
                ),
            );
        }
        Ok(n)
    }
}

/// Memo store: design-vector bit patterns -> predicted `(Z, IL, NEXT)`.
type MemoStore = HashMap<Vec<u64>, [f64; 3]>;

/// A thread-safe memo of surrogate *metric* predictions keyed by the exact
/// bit patterns of the design vector. Clones share one store; the
/// default/`disabled` handle counts every probe as a miss.
///
/// Only successful predictions are stored — errors re-run so their counter
/// footprint stays identical with the memo on or off.
#[derive(Debug, Clone, Default)]
pub struct SurrogateMemo {
    inner: Option<Arc<Mutex<MemoStore>>>,
}

impl SurrogateMemo {
    /// An empty, collecting memo.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(HashMap::new()))),
        }
    }

    /// A pass-through handle (same as `SurrogateMemo::default()`).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle can store and serve predictions.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of memoized designs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |m| m.lock().expect("surrogate memo lock").len())
    }

    /// `true` when nothing is memoized (always for a disabled handle).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn key(x: &[f64]) -> Vec<u64> {
        x.iter().map(|v| v.to_bits()).collect()
    }

    fn get(&self, key: &[u64]) -> Option<[f64; 3]> {
        self.inner
            .as_ref()
            .and_then(|m| m.lock().expect("surrogate memo lock").get(key).copied())
    }

    fn put(&self, key: Vec<u64>, metrics: [f64; 3]) {
        if let Some(m) = &self.inner {
            m.lock().expect("surrogate memo lock").insert(key, metrics);
        }
    }
}

/// A memoizing decorator over any [`Surrogate`]: `predict` consults the
/// [`SurrogateMemo`] before the wrapped model, ticking
/// `surrogate.memo_hits` / `surrogate.memo_misses`; every other method
/// forwards untouched.
///
/// Layer it *inside* the counting wrapper
/// ([`InstrumentedSurrogate`](crate::surrogate::InstrumentedSurrogate)) so
/// `surrogate.predict` totals stay identical with the memo on or off — the
/// memo elides the model's arithmetic, not the logical call.
///
/// The pipeline consults the memo only from its **serial** Harmonica
/// section: a concurrent miss-then-insert race on one key would make
/// hit/miss totals depend on thread interleaving, which would break the
/// bit-identical-counters contract the bench gate diffs on.
pub struct MemoizedSurrogate<'a> {
    inner: &'a dyn Surrogate,
    memo: SurrogateMemo,
    telemetry: Telemetry,
}

impl<'a> MemoizedSurrogate<'a> {
    /// Wraps `inner`, serving repeated `predict` calls from `memo`.
    pub fn new(inner: &'a dyn Surrogate, memo: SurrogateMemo, telemetry: Telemetry) -> Self {
        Self {
            inner,
            memo,
            telemetry,
        }
    }
}

impl Surrogate for MemoizedSurrogate<'_> {
    fn predict(&self, x: &[f64]) -> Result<[f64; 3], MlError> {
        let key = SurrogateMemo::key(x);
        if let Some(metrics) = self.memo.get(&key) {
            self.telemetry.incr(Counter::SurrogateMemoHits);
            return Ok(metrics);
        }
        self.telemetry.incr(Counter::SurrogateMemoMisses);
        let out = self.inner.predict(x);
        if let Ok(metrics) = out {
            self.memo.put(key, metrics);
        }
        out
    }

    fn jacobian(&self, x: &[f64]) -> Option<Result<Matrix, MlError>> {
        self.inner.jacobian(x)
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Result<[f64; 3], MlError>> {
        self.inner.predict_batch(xs)
    }

    fn jacobian_batch(&self, xs: &[Vec<f64>]) -> Vec<Option<Result<Matrix, MlError>>> {
        self.inner.jacobian_batch(xs)
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::{s1, s2};
    use crate::surrogate::OracleSurrogate;
    use isop_em::simulator::{AnalyticalSolver, EmSimulator};
    use isop_em::stackup::DiffStripline;

    fn grid_design(space: &ParamSpace) -> Vec<f64> {
        space.round_to_grid(&crate::manual::MANUAL_VECTOR)
    }

    fn simulate(x: &[f64]) -> CachedSim {
        CachedSim {
            result: AnalyticalSolver::new()
                .simulate(&DiffStripline::from_vector(x).expect("valid"))
                .expect("simulates"),
            attempts: 1,
        }
    }

    #[test]
    fn key_uses_grid_indices_not_floats() {
        let space = s1();
        // Start from the low corner so stepping up stays on the grid.
        let x: Vec<f64> = space.params().iter().map(|p| p.lo).collect();
        let key = EvalCache::key_for(&space, &x).expect("on grid");
        assert!(key.levels.iter().all(|&l| l == 0));
        // Perturbations below half a grid step collapse onto the same key.
        let mut wobbled = x.clone();
        wobbled[0] += space.params()[0].step * 0.25;
        assert_eq!(EvalCache::key_for(&space, &wobbled), Some(key.clone()));
        // A full step moves exactly one level.
        let mut stepped = x.clone();
        stepped[0] += space.params()[0].step;
        let other = EvalCache::key_for(&space, &stepped).expect("on grid");
        assert_eq!(other.levels[0], key.levels[0] + 1);
        assert_eq!(&other.levels[1..], &key.levels[1..]);
    }

    #[test]
    fn keys_distinguish_spaces_with_identical_levels() {
        let (a, b) = (s1(), s2());
        let xa = grid_design(&a);
        let ka = EvalCache::key_for(&a, &xa).expect("on grid");
        let kb = EvalCache::key_for(&b, &b.round_to_grid(&xa)).expect("on grid");
        assert_ne!(ka.space_id, kb.space_id, "space fingerprints must differ");
    }

    #[test]
    fn off_grid_design_has_no_key() {
        let space = s1();
        let mut x = grid_design(&space);
        x[0] = space.params()[0].hi + 10.0 * space.params()[0].step;
        assert!(EvalCache::key_for(&space, &x).is_none());
        assert!(EvalCache::key_for(&space, &x[..3]).is_none(), "bad width");
    }

    #[test]
    fn probe_hits_after_insert_and_counts_both_ways() {
        let space = s1();
        let x = grid_design(&space);
        let cache = EvalCache::new();
        let tele = Telemetry::enabled();

        let miss = cache.probe(&space, &x, &tele);
        assert!(miss.hit.is_none());
        cache.insert(miss.key.expect("on grid"), simulate(&x));
        let hit = cache.probe(&space, &x, &tele);
        assert_eq!(hit.hit.expect("cached"), simulate(&x));
        assert_eq!(tele.counter(Counter::EmCacheHits), 1);
        assert_eq!(tele.counter(Counter::EmCacheMisses), 1);
        assert_eq!(cache.len(), 1);

        // Clones share the store.
        assert_eq!(cache.clone().probe(&space, &x, &tele).hit, hit.hit);
    }

    #[test]
    fn disabled_cache_counts_every_probe_as_miss() {
        let space = s1();
        let x = grid_design(&space);
        let cache = EvalCache::disabled();
        let tele = Telemetry::enabled();
        let probe = cache.probe(&space, &x, &tele);
        cache.insert(probe.key.expect("keys still form"), simulate(&x));
        assert!(cache.probe(&space, &x, &tele).hit.is_none());
        assert_eq!(tele.counter(Counter::EmCacheHits), 0);
        assert_eq!(tele.counter(Counter::EmCacheMisses), 2);
        assert!(!cache.is_enabled());
        assert!(cache.is_empty());
    }

    #[test]
    fn json_spill_round_trips() {
        let space = s1();
        let x = grid_design(&space);
        let cache = EvalCache::new();
        let tele = Telemetry::disabled();
        let probe = cache.probe(&space, &x, &tele);
        // A retried entry: the attempt count must survive the spill so warm
        // runs replay candidates bit-exactly.
        let retried = CachedSim {
            attempts: 3,
            ..simulate(&x)
        };
        cache.insert(probe.key.expect("on grid"), retried);

        let dir = std::env::temp_dir().join("isop-evalcache-test");
        let path = dir.join("em_cache.json");
        cache.save_json(&path).expect("writes");

        let fresh = EvalCache::new();
        assert_eq!(fresh.load_json(&path).expect("reads"), 1);
        assert_eq!(
            fresh.probe(&space, &x, &tele).hit.expect("reloaded"),
            retried
        );
        // Missing files are an empty load, not an error.
        assert_eq!(fresh.load_json(&dir.join("absent.json")).expect("ok"), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_save_with_no_new_entries_is_a_noop() {
        let space = s1();
        let x = grid_design(&space);
        let cache = EvalCache::new();
        let tele = Telemetry::disabled();
        let dir = std::env::temp_dir().join(format!("isop-dirty-{}", std::process::id()));
        let path = dir.join("em_cache.json");
        std::fs::remove_dir_all(&dir).ok();

        // A fresh cache is clean: saving writes nothing, not even an empty
        // spill.
        assert!(!cache.save_json(&path).expect("clean save"));
        assert!(!path.exists());

        let probe = cache.probe(&space, &x, &tele);
        cache.insert(probe.key.expect("on grid"), simulate(&x));
        assert!(
            cache.save_json(&path).expect("dirty save"),
            "first save writes"
        );
        let stamp = std::fs::metadata(&path).expect("exists").modified().ok();

        // No inserts since: the warm save must not touch the file.
        assert!(!cache.save_json(&path).expect("warm save"));
        assert_eq!(
            std::fs::metadata(&path).expect("exists").modified().ok(),
            stamp
        );
        // Re-inserting the same entry still marks dirty (by design — the
        // flag tracks writes, not semantic novelty).
        let probe = cache.probe(&space, &x, &tele);
        cache.insert(probe.key.expect("on grid"), simulate(&x));
        assert!(cache.save_json(&path).expect("re-dirty save"));
        // A disabled handle never writes; export_json always does.
        assert!(!EvalCache::disabled().save_json(&path).expect("disabled"));
        cache.export_json(&path).expect("export");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_backed_cache_hydrates_and_counts_cross_job_hits() {
        let space = s1();
        let x = grid_design(&space);
        let dir = std::env::temp_dir().join(format!("isop-ec-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let tele = Telemetry::enabled();

        // "Previous process": populate the store through one cache, persist,
        // drop every in-memory handle.
        {
            let store = Arc::new(isop_store::Store::open(&dir).expect("opens"));
            let cache = EvalCache::with_store(Arc::clone(&store));
            let probe = cache.probe(&space, &x, &tele);
            assert!(probe.hit.is_none());
            cache.insert(probe.key.expect("on grid"), simulate(&x));
            // Inserts by this process are *not* cross-job hits.
            assert!(cache.probe(&space, &x, &tele).hit.is_some());
            cache.persist().expect("flushes");
            assert_eq!(store.stats().expect("stats").cross_job_hits, 0);
        }

        // "Next process": a fresh store + cache over the same directory.
        let store = Arc::new(
            isop_store::Store::open(&dir)
                .expect("reopens")
                .with_telemetry(tele.clone()),
        );
        let warm = EvalCache::with_store(Arc::clone(&store));
        let hit = warm.probe(&space, &x, &tele);
        assert_eq!(
            hit.hit.expect("served from disk"),
            simulate(&x),
            "hydrated entry must replay the stored simulation bit-exactly"
        );
        assert_eq!(tele.counter(Counter::StoreCrossJobHits), 1);
        assert_eq!(tele.counter(Counter::StoreShardLoads), 1);
        // The tally persists across the flush for `isop cache stats`.
        warm.persist().expect("flushes");
        assert_eq!(store.stats().expect("stats").cross_job_hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memo_replays_exact_predictions_and_counts() {
        let space = s1();
        let x = grid_design(&space);
        let inner = OracleSurrogate::new(AnalyticalSolver::new());
        let tele = Telemetry::enabled();
        let memo = SurrogateMemo::new();
        let wrapped = MemoizedSurrogate::new(&inner, memo.clone(), tele.clone());

        let first = wrapped.predict(&x).expect("predicts");
        let second = wrapped.predict(&x).expect("predicts");
        assert_eq!(first, second, "memo must replay bit-exactly");
        assert_eq!(first, inner.predict(&x).expect("predicts"));
        assert_eq!(tele.counter(Counter::SurrogateMemoHits), 1);
        assert_eq!(tele.counter(Counter::SurrogateMemoMisses), 1);
        assert_eq!(memo.len(), 1);
        assert_eq!(wrapped.name(), inner.name());
        // Batch and Jacobian calls bypass the memo untouched.
        let batch = wrapped.predict_batch(std::slice::from_ref(&x));
        assert_eq!(batch[0].as_ref().expect("ok"), &first);
        assert!(wrapped.jacobian(&x).is_some());
        assert_eq!(tele.counter(Counter::SurrogateMemoHits), 1);
    }

    #[test]
    fn disabled_memo_never_hits() {
        let space = s1();
        let x = grid_design(&space);
        let inner = OracleSurrogate::new(AnalyticalSolver::new());
        let tele = Telemetry::enabled();
        let wrapped = MemoizedSurrogate::new(&inner, SurrogateMemo::disabled(), tele.clone());
        let _ = wrapped.predict(&x);
        let _ = wrapped.predict(&x);
        assert_eq!(tele.counter(Counter::SurrogateMemoHits), 0);
        assert_eq!(tele.counter(Counter::SurrogateMemoMisses), 2);
    }

    #[test]
    fn errors_are_not_memoized() {
        let space = s1();
        let mut x = grid_design(&space);
        x[0] = -1.0; // invalid geometry -> oracle errors
        let inner = OracleSurrogate::new(AnalyticalSolver::new());
        let tele = Telemetry::enabled();
        let memo = SurrogateMemo::new();
        let wrapped = MemoizedSurrogate::new(&inner, memo.clone(), tele.clone());
        assert!(wrapped.predict(&x).is_err());
        assert!(wrapped.predict(&x).is_err());
        assert_eq!(memo.len(), 0);
        assert_eq!(tele.counter(Counter::SurrogateMemoMisses), 2);
    }
}
