//! Board-level planning: optimize several layer classes of one stack-up in
//! a single call.
//!
//! A real HDI board carries different signal classes on different layers —
//! e.g. 85-ohm SerDes pairs, 100-ohm DDR pairs, a crosstalk-critical
//! breakout layer. Each class is one inverse-design problem; a
//! [`BoardPlan`] bundles them, runs the ISOP+ pipeline per class, and
//! produces a combined, verifiable report. This is the workflow wrapper the
//! paper's introduction motivates ("a modern HDI PCB may have over 20
//! layers, each with its unique stack-up").

use crate::objective::{InputConstraint, Objective};
use crate::params::ParamSpace;
use crate::pipeline::{DesignCandidate, IsopConfig, IsopOptimizer};
use crate::surrogate::Surrogate;
use crate::tasks::{objective_for, TaskId};
use isop_em::simulator::EmSimulator;
use serde::{Deserialize, Serialize};

/// One signal-class requirement of the board.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerRequirement {
    /// Human-readable layer-class name (e.g. `"serdes-85"`).
    pub name: String,
    /// The benchmark task shape defining FoM and output constraints.
    pub task: TaskId,
    /// Extra input constraints (routing pitch, aspect-ratio rules, ...).
    pub input_constraints: Vec<InputConstraint>,
}

impl LayerRequirement {
    /// Creates a requirement with no extra input constraints.
    pub fn new(name: impl Into<String>, task: TaskId) -> Self {
        Self {
            name: name.into(),
            task,
            input_constraints: Vec::new(),
        }
    }

    /// Adds input constraints, builder-style.
    #[must_use]
    pub fn with_input_constraints(mut self, ics: Vec<InputConstraint>) -> Self {
        self.input_constraints = ics;
        self
    }

    /// The objective this requirement induces.
    pub fn objective(&self) -> Objective {
        objective_for(self.task, self.input_constraints.clone())
    }
}

/// Result for one planned layer class.
#[derive(Debug, Clone)]
pub struct PlannedLayer {
    /// The requirement this solves.
    pub requirement: LayerRequirement,
    /// The winning, simulator-verified design (if one survived roll-out).
    pub design: Option<DesignCandidate>,
    /// Whether the verified design satisfies every constraint.
    pub success: bool,
    /// Valid surrogate samples spent on this layer.
    pub samples_seen: u64,
}

/// A bundle of layer requirements planned against one search space.
#[derive(Debug, Clone)]
pub struct BoardPlan {
    requirements: Vec<LayerRequirement>,
}

impl BoardPlan {
    /// Creates a plan.
    ///
    /// # Panics
    ///
    /// Panics on an empty requirement list.
    pub fn new(requirements: Vec<LayerRequirement>) -> Self {
        assert!(!requirements.is_empty(), "plan needs at least one layer");
        Self { requirements }
    }

    /// The requirements, in planning order.
    pub fn requirements(&self) -> &[LayerRequirement] {
        &self.requirements
    }

    /// Optimizes every layer class with the shared engines. Layer `i` uses
    /// seed `seed + i` so classes decorrelate but the plan stays
    /// reproducible.
    pub fn solve(
        &self,
        space: &ParamSpace,
        surrogate: &dyn Surrogate,
        simulator: &dyn EmSimulator,
        config: &IsopConfig,
        seed: u64,
    ) -> Vec<PlannedLayer> {
        self.requirements
            .iter()
            .enumerate()
            .map(|(i, req)| {
                let optimizer = IsopOptimizer::new(space, surrogate, simulator, config.clone());
                let outcome = optimizer.run(
                    req.objective(),
                    isop_hpo::budget::Budget::unlimited(),
                    seed + i as u64,
                );
                PlannedLayer {
                    requirement: req.clone(),
                    design: outcome.best().cloned(),
                    success: outcome.success,
                    samples_seen: outcome.samples_seen,
                }
            })
            .collect()
    }

    /// Renders a plan result as a report table.
    pub fn report(layers: &[PlannedLayer]) -> crate::report::Table {
        let mut table = crate::report::Table::new(vec![
            "Layer", "Task", "Success", "Z", "L", "NEXT", "W_t", "S_t", "D_t", "H_c", "H_p",
        ]);
        for l in layers {
            let (z, loss, next, w, s, d, hc, hp) = match &l.design {
                Some(c) => {
                    let m = c.simulated.map(|r| r.to_array()).unwrap_or([f64::NAN; 3]);
                    (
                        m[0],
                        m[1],
                        m[2],
                        c.values[0],
                        c.values[1],
                        c.values[2],
                        c.values[5],
                        c.values[6],
                    )
                }
                None => (
                    f64::NAN,
                    f64::NAN,
                    f64::NAN,
                    f64::NAN,
                    f64::NAN,
                    f64::NAN,
                    f64::NAN,
                    f64::NAN,
                ),
            };
            table.push_row(vec![
                l.requirement.name.clone(),
                l.requirement.task.name().to_string(),
                l.success.to_string(),
                format!("{z:.2}"),
                format!("{loss:.3}"),
                format!("{next:.3}"),
                format!("{w:.1}"),
                format!("{s:.1}"),
                format!("{d:.0}"),
                format!("{hc:.1}"),
                format!("{hp:.1}"),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate::OracleSurrogate;
    use isop_em::simulator::AnalyticalSolver;
    use isop_hpo::harmonica::HarmonicaConfig;

    fn fast_config() -> IsopConfig {
        IsopConfig {
            harmonica: HarmonicaConfig {
                stages: 2,
                samples_per_stage: 120,
                ..HarmonicaConfig::default()
            },
            gd_epochs: 20,
            ..IsopConfig::default()
        }
    }

    #[test]
    fn plans_two_layer_classes() {
        let plan = BoardPlan::new(vec![
            LayerRequirement::new("serdes-85", TaskId::T1),
            LayerRequirement::new("ddr-100", TaskId::T2),
        ]);
        let space = crate::spaces::s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let layers = plan.solve(&space, &surrogate, &simulator, &fast_config(), 3);
        assert_eq!(layers.len(), 2);
        for l in &layers {
            let d = l.design.as_ref().expect("each class gets a design");
            let sim = d.simulated.expect("verified");
            let target = if l.requirement.task == TaskId::T1 {
                85.0
            } else {
                100.0
            };
            assert!(
                (sim.z_diff - target).abs() < 5.0,
                "{}: Z = {} far from {target}",
                l.requirement.name,
                sim.z_diff
            );
        }
    }

    #[test]
    fn constrained_layer_respects_its_ics() {
        let ics = crate::tasks::table_ix_input_constraints();
        let plan = BoardPlan::new(vec![
            LayerRequirement::new("breakout", TaskId::T1).with_input_constraints(ics.clone())
        ]);
        let space = crate::spaces::s1_prime();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let layers = plan.solve(&space, &surrogate, &simulator, &fast_config(), 9);
        let d = layers[0].design.as_ref().expect("design");
        for c in &ics {
            assert!(
                c.violation(&d.values) < 1.0,
                "constraint '{}' badly violated",
                c.label
            );
        }
    }

    #[test]
    fn report_has_one_row_per_layer() {
        let plan = BoardPlan::new(vec![
            LayerRequirement::new("a", TaskId::T1),
            LayerRequirement::new("b", TaskId::T4),
        ]);
        let space = crate::spaces::s1();
        let surrogate = OracleSurrogate::new(AnalyticalSolver::new());
        let simulator = AnalyticalSolver::new();
        let layers = plan.solve(&space, &surrogate, &simulator, &fast_config(), 5);
        let table = BoardPlan::report(&layers);
        assert_eq!(table.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_plan_panics() {
        let _ = BoardPlan::new(vec![]);
    }
}
