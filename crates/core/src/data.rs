//! Surrogate-training dataset generation.
//!
//! The paper queried a commercial ICAT-based tool at 90 k random points of
//! the Table III training ranges; this module performs the same protocol
//! against the in-crate simulator: uniform random grid levels per parameter,
//! one simulation per sample, targets `[Z, L, NEXT]`.

use crate::params::ParamSpace;
use isop_em::simulator::EmSimulator;
use isop_em::stackup::DiffStripline;
use isop_ml::dataset::Dataset;
use isop_ml::linalg::Matrix;
use isop_ml::MlError;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Generates `n` random samples of `space` evaluated through `sim`.
///
/// Physically invalid combinations (e.g. an etch factor that pinches off a
/// narrow trace at the extreme training ranges) are resampled, so the result
/// always holds exactly `n` rows.
///
/// # Errors
///
/// Returns [`MlError::EmptyDataset`] when `n == 0`.
pub fn generate_dataset(
    space: &ParamSpace,
    n: usize,
    sim: &dyn EmSimulator,
    seed: u64,
) -> Result<Dataset, MlError> {
    if n == 0 {
        return Err(MlError::EmptyDataset);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let d = space.n_params();
    let mut x = Matrix::zeros(n, d);
    let mut y = Matrix::zeros(n, 3);
    let cards = space.cardinalities();
    let mut row = 0usize;
    let mut guard = 0usize;
    while row < n {
        guard += 1;
        assert!(
            guard < n * 1000 + 1000,
            "could not draw enough valid samples; space too hostile"
        );
        let levels: Vec<usize> = cards.iter().map(|&c| rng.gen_range(0..c)).collect();
        let values = space.values_of_levels(&levels);
        let Ok(layer) = DiffStripline::from_vector(&values) else {
            continue;
        };
        let Ok(result) = sim.simulate(&layer) else {
            continue;
        };
        x.row_mut(row).copy_from_slice(&values);
        y.row_mut(row).copy_from_slice(&result.to_array());
        row += 1;
    }
    Dataset::new(x, y)
}

/// Generates a mixed dataset: `n * (1 - focus_fraction)` samples from the
/// wide `base` ranges plus `n * focus_fraction` from the `focus` region.
///
/// The paper trains on 90 k uniform samples of the wide ranges and reaches
/// sub-ohm accuracy with a 16384-wide CNN; at laptop scale the same uniform
/// protocol leaves the optimization region (Z around 85–100 ohm) underfit.
/// Mixing in samples from the actual search region recovers local accuracy
/// while preserving global coverage — a documented substitution (DESIGN.md).
///
/// # Errors
///
/// Returns [`MlError::EmptyDataset`] when `n == 0`.
///
/// # Panics
///
/// Panics if `focus_fraction` is outside `[0, 1]`.
pub fn generate_mixed_dataset(
    base: &ParamSpace,
    focus: &ParamSpace,
    n: usize,
    focus_fraction: f64,
    sim: &dyn EmSimulator,
    seed: u64,
) -> Result<Dataset, MlError> {
    assert!((0.0..=1.0).contains(&focus_fraction), "fraction in [0, 1]");
    let n_focus = (n as f64 * focus_fraction).round() as usize;
    let n_base = n - n_focus;
    if n == 0 {
        return Err(MlError::EmptyDataset);
    }
    if n_base == 0 {
        return generate_dataset(focus, n, sim, seed);
    }
    if n_focus == 0 {
        return generate_dataset(base, n, sim, seed);
    }
    let wide = generate_dataset(base, n_base, sim, seed)?;
    let local = generate_dataset(focus, n_focus, sim, seed ^ 0x9E37_79B9)?;
    let d = base.n_params();
    let mut x = Matrix::zeros(n, d);
    let mut y = Matrix::zeros(n, 3);
    for r in 0..n_base {
        x.row_mut(r).copy_from_slice(wide.x.row(r));
        y.row_mut(r).copy_from_slice(wide.y.row(r));
    }
    for r in 0..n_focus {
        x.row_mut(n_base + r).copy_from_slice(local.x.row(r));
        y.row_mut(n_base + r).copy_from_slice(local.y.row(r));
    }
    Dataset::new(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::{s1, training_space};
    use isop_em::simulator::AnalyticalSolver;

    #[test]
    fn generates_requested_count() {
        let d = generate_dataset(&s1(), 50, &AnalyticalSolver::new(), 0).expect("ok");
        assert_eq!(d.len(), 50);
        assert_eq!(d.n_features(), 15);
        assert_eq!(d.n_outputs(), 3);
    }

    #[test]
    fn samples_lie_on_the_grid() {
        let space = s1();
        let d = generate_dataset(&space, 30, &AnalyticalSolver::new(), 1).expect("ok");
        for r in 0..d.len() {
            assert!(space.contains(d.x.row(r)), "row {r} off-grid");
        }
    }

    #[test]
    fn targets_are_physical() {
        let d = generate_dataset(&training_space(), 60, &AnalyticalSolver::new(), 2).expect("ok");
        for r in 0..d.len() {
            let y = d.y.row(r);
            assert!(
                y[0] > 5.0 && y[0] < 400.0,
                "Z out of physical range: {}",
                y[0]
            );
            assert!(y[1] < 0.0, "L must be negative: {}", y[1]);
            assert!(y[2] <= 0.0, "NEXT must be non-positive: {}", y[2]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let sim = AnalyticalSolver::new();
        let a = generate_dataset(&s1(), 20, &sim, 9).expect("ok");
        let b = generate_dataset(&s1(), 20, &sim, 9).expect("ok");
        assert_eq!(a, b);
        let c = generate_dataset(&s1(), 20, &sim, 10).expect("ok");
        assert_ne!(a, c);
    }

    #[test]
    fn mixed_dataset_has_requested_composition() {
        let base = training_space();
        let focus = crate::spaces::s2();
        let sim = AnalyticalSolver::new();
        let d = generate_mixed_dataset(&base, &focus, 100, 0.3, &sim, 5).expect("ok");
        assert_eq!(d.len(), 100);
        // The last 30 rows must lie inside the focus space.
        let mut in_focus = 0;
        for r in 70..100 {
            if focus.contains(d.x.row(r)) {
                in_focus += 1;
            }
        }
        assert_eq!(
            in_focus, 30,
            "focus rows must be members of the focus space"
        );
    }

    #[test]
    fn mixed_dataset_degenerate_fractions() {
        let base = training_space();
        let focus = crate::spaces::s1();
        let sim = AnalyticalSolver::new();
        let all_base = generate_mixed_dataset(&base, &focus, 20, 0.0, &sim, 1).expect("ok");
        let all_focus = generate_mixed_dataset(&base, &focus, 20, 1.0, &sim, 1).expect("ok");
        assert_eq!(all_base.len(), 20);
        assert_eq!(all_focus.len(), 20);
        for r in 0..20 {
            assert!(focus.contains(all_focus.x.row(r)));
        }
    }

    #[test]
    fn zero_samples_is_an_error() {
        assert!(matches!(
            generate_dataset(&s1(), 0, &AnalyticalSolver::new(), 0),
            Err(MlError::EmptyDataset)
        ));
    }
}
