//! Published reference designs from the paper's Table IX.
//!
//! The expert ("manual") stack-up and the ISOP-generated designs are printed
//! in full in the paper, which lets the reproduction evaluate the *identical*
//! design vectors through its own simulator and compare like-for-like.

use isop_em::stackup::{DiffStripline, PARAM_COUNT};

/// The expert designer's manual stack-up (Table IX, `T1 Manual` row).
///
/// The designer targeted `Z = 85 +- 1` ohm while minimizing loss; the paper
/// reports `Z = 85.69`, `L = -0.434`, `NEXT = -2.77` for it. Note that
/// `D_t = 20` lies *outside* `S_1` (30–40): the expert traded crosstalk for
/// density, which is exactly the nonintuitive margin ISOP exploits.
pub fn manual_design() -> DiffStripline {
    DiffStripline::from_vector(&MANUAL_VECTOR).expect("published design is valid")
}

/// The manual design as a parameter vector in `PARAM_NAMES` order.
pub const MANUAL_VECTOR: [f64; PARAM_COUNT] = [
    5.0,   // W_t
    6.0,   // S_t
    20.0,  // D_t
    0.0,   // E_t
    1.5,   // H_t
    8.0,   // H_c
    8.0,   // H_p
    5.8e7, // sigma_t
    -14.5, // R_t
    4.30,  // Dk_t
    4.30,  // Dk_c
    4.30,  // Dk_p
    0.001, // Df_t
    0.001, // Df_c
    0.001, // Df_p
];

/// The ISOP design for T1 on `S_1` without input constraints (Table IX).
pub const ISOP_T1_S1_VECTOR: [f64; PARAM_COUNT] = [
    5.0, 6.5, 30.0, 0.0, 1.5, 6.2, 8.0, 5.8e7, -14.5, 4.50, 4.50, 3.55, 0.001, 0.001, 0.001,
];

/// The ISOP design for T1 on `S_1'` with input constraints (Table IX).
pub const ISOP_T1_S1P_VECTOR: [f64; PARAM_COUNT] = [
    7.2, 5.5, 35.0, 0.0, 1.5, 8.6, 9.4, 5.8e7, -14.5, 4.10, 4.00, 2.50, 0.001, 0.001, 0.001,
];

/// The ISOP design for T3 on `S_1` without input constraints (Table IX).
pub const ISOP_T3_S1_VECTOR: [f64; PARAM_COUNT] = [
    5.0, 5.0, 35.0, 0.0, 1.5, 5.0, 5.0, 5.8e7, -14.5, 4.50, 2.85, 2.55, 0.001, 0.001, 0.001,
];

/// The ISOP design for T4 on `S_1` without input constraints (Table IX).
pub const ISOP_T4_S1_VECTOR: [f64; PARAM_COUNT] = [
    5.0, 6.0, 40.0, 0.0, 1.5, 4.6, 6.4, 5.8e7, -14.5, 2.50, 4.50, 2.50, 0.001, 0.001, 0.001,
];

#[cfg(test)]
mod tests {
    use super::*;
    use isop_em::simulator::{AnalyticalSolver, EmSimulator};

    #[test]
    fn manual_design_builds() {
        let d = manual_design();
        assert_eq!(d.trace_width, 5.0);
        assert_eq!(d.pair_distance, 20.0);
    }

    #[test]
    fn published_designs_are_valid_geometries() {
        for v in [
            &MANUAL_VECTOR,
            &ISOP_T1_S1_VECTOR,
            &ISOP_T1_S1P_VECTOR,
            &ISOP_T3_S1_VECTOR,
            &ISOP_T4_S1_VECTOR,
        ] {
            assert!(DiffStripline::from_vector(v).is_ok());
        }
    }

    /// All four published ISOP rows and the manual row must reproduce their
    /// Table IX metrics through our simulator to calibration tolerance.
    #[test]
    fn published_designs_match_table_ix_metrics() {
        let sim = AnalyticalSolver::new();
        // (vector, paper Z, paper L, paper NEXT)
        let rows: [(&[f64; PARAM_COUNT], f64, f64, f64); 4] = [
            (&MANUAL_VECTOR, 85.69, -0.434, -2.77),
            (&ISOP_T1_S1_VECTOR, 85.70, -0.434, -0.49),
            (&ISOP_T3_S1_VECTOR, 85.72, -0.439, -0.01),
            (&ISOP_T4_S1_VECTOR, 85.74, -0.441, 0.00),
        ];
        for (v, z, l, next) in rows {
            let layer = DiffStripline::from_vector(v).expect("valid");
            let r = sim.simulate(&layer).expect("simulates");
            assert!(
                (r.z_diff - z).abs() < 4.0,
                "Z: ours {} vs paper {z}",
                r.z_diff
            );
            assert!(
                (r.insertion_loss - l).abs() < 0.12,
                "L: ours {} vs paper {l}",
                r.insertion_loss
            );
            assert!(
                (r.next - next).abs() < 1.0,
                "NEXT: ours {} vs paper {next}",
                r.next
            );
        }
    }
}
