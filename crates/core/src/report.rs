//! Table formatting: markdown and CSV writers for experiment results.
//!
//! Every bench binary renders its table through these helpers so the
//! regenerated artifacts look like the paper's tables and diff cleanly run
//! to run.

use std::fmt::Write as _;

/// A simple column-aligned table accumulated row by row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn push_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let widths: Vec<usize> = (0..self.header.len())
            .map(|c| {
                self.rows
                    .iter()
                    .map(|r| r[c].len())
                    .chain(std::iter::once(self.header[c].len()))
                    .max()
                    .unwrap_or(1)
            })
            .collect();
        let render = |cells: &[String], out: &mut String| {
            out.push('|');
            for (cell, w) in cells.iter().zip(&widths) {
                let _ = write!(out, " {cell:w$} |");
            }
            out.push('\n');
        };
        render(&self.header, &mut out);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            render(row, &mut out);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let line = |cells: &[String]| cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",");
        out.push_str(&line(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `prec` decimals.
pub fn fmt(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats `mean (std)` pairs the way the paper's tables print them.
pub fn fmt_mean_std(mean: f64, std: f64, prec: usize) -> String {
    format!("{mean:.prec$} / {std:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["Method", "FoM"]);
        t.push_row(vec!["SA-1", "0.446"]);
        t.push_row(vec!["ISOP+", "0.436"]);
        t
    }

    #[test]
    fn markdown_is_aligned_and_complete() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Method"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[3].contains("ISOP+"));
        // All lines the same width (aligned).
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt(0.43649, 3), "0.436");
        assert_eq!(fmt_mean_std(0.57, 0.03, 2), "0.57 / 0.03");
    }
}
