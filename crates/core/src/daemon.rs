//! The live optimization daemon: streaming epoch admission, cancellation
//! and deadlines, tenant quotas, and a crash-safe job journal.
//!
//! The [`Daemon`] wraps the batch [`Engine`] in a long-running service.
//! Requests arrive as newline-delimited JSON over a TCP socket
//! (`isop daemon --listen ADDR`) or directly through
//! [`Daemon::handle_request`]; submissions accumulate into the **next
//! epoch's** [`JobQueue`] while the current epoch's waves execute, and the
//! scheduler freezes one epoch at a time and hands it to the engine.
//!
//! ## Epoch-based streaming admission, and why it stays deterministic
//!
//! The engine's bit-identity argument (see [`engine`](crate::engine)) is a
//! statement about a *frozen* queue: wave composition is a pure function
//! of the queue, jobs observe the store only at serial wave-admission
//! points, and the store's content at those points is a pure function of
//! completed waves. The daemon never runs the engine over a queue that can
//! still change — a submission lands in epoch `e+1` while epoch `e`
//! executes — so each epoch reuses that argument verbatim: an epoch's
//! results depend only on its frozen queue and the store state left by
//! completed epochs (and completed waves of itself). Streaming four jobs
//! across two epochs therefore reproduces a one-shot batch of the same
//! four jobs whenever the epoch boundaries coincide with wave boundaries.
//!
//! ## The job journal
//!
//! Every state transition is journaled in the shared [`Store`] as a
//! checksummed `Job` frame ([`JobRecord`]): `Submitted` carries the full
//! spec, `Started` marks epoch freeze, `Finished` carries the complete
//! [`JobResult`] — candidates, both EM ledgers, and the tagged report,
//! bit-exact under the store codec. Journal flushes happen only at *safe
//! points* (epoch freeze and wave boundaries, after the engine's own eval
//! flush), so the disk never holds a partial wave: on restart,
//! [`Daemon::recover`] replays the journal, returns `Finished` results
//! verbatim without re-running them, and re-runs the unfinished jobs of
//! interrupted epochs in their original wave positions against the exact
//! store view the first attempt saw — reproducing the uninterrupted run
//! bit for bit, and never double-charging an EM second (a wave whose evals
//! reached disk has its `Finished` frames on disk too).
//!
//! ## Quotas
//!
//! Tenant quotas are enforced over time: a submission is refused with a
//! typed `quota_exceeded` error when the tenant's charged EM seconds over
//! the last [`DaemonConfig::quota_window_epochs`] epochs already meet
//! [`DaemonConfig::quota_em_seconds`]. Refusals never affect queued or
//! running jobs.

use crate::engine::JobResult;
use crate::engine::{aggregate_by_tenant, Engine, EngineConfig, EngineReport, JobControls};
use crate::exec::RunControl;
use crate::jobs::{JobQueue, JobSpec};
use isop_store::{JobRecord, JobState, Store};
use isop_telemetry::{Counter, Telemetry};
use serde::json::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Sizing and policy knobs of the daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Engine sizing every epoch runs with.
    pub engine: EngineConfig,
    /// Rolling per-tenant budget of charged EM seconds (0 = unlimited). A
    /// submission is refused when the tenant's charges over the window
    /// already meet this.
    pub quota_em_seconds: f64,
    /// Epochs the quota window spans (the current accumulating epoch and
    /// its `quota_window_epochs - 1` predecessors).
    pub quota_window_epochs: u64,
    /// Test/chaos knob: abort epoch execution after this many completed
    /// waves (0 = never), *after* the wave-boundary journal flush. The
    /// store is then byte-for-byte what a daemon killed mid-epoch at a
    /// safe point leaves behind — the state crash-recovery tests and the
    /// bench gate's daemon smoke restart from.
    pub chaos_crash_after_waves: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            quota_em_seconds: 0.0,
            quota_window_epochs: 4,
            chaos_crash_after_waves: 0,
        }
    }
}

/// A parsed daemon request (one JSON line on the wire).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `{"op":"submit","job":{...}}` — queue a job into the next epoch.
    Submit(JobSpec),
    /// `{"op":"cancel","id":"..."}` — cooperatively stop a job.
    Cancel(String),
    /// `{"op":"status"}` / `{"op":"status","id":"..."}`.
    Status(Option<String>),
    /// `{"op":"report"}` — per-tenant aggregation of finished jobs.
    Report,
    /// `{"op":"shutdown"}` — drain pending epochs and exit.
    Shutdown,
}

impl Request {
    /// Parses one request line. Anything malformed — bad JSON, a missing
    /// or unknown `op`, a wrong payload shape — is a typed `bad_request`
    /// [`Response`]; it never touches daemon state, so a garbage line
    /// cannot perturb in-flight jobs.
    ///
    /// # Errors
    ///
    /// Returns the error [`Response`] to write back to the client.
    pub fn parse(line: &str) -> Result<Self, Response> {
        let value = Value::parse(line)
            .map_err(|e| Response::error("bad_request", format!("malformed JSON: {e}")))?;
        let obj = value
            .as_obj()
            .ok_or_else(|| Response::error("bad_request", "request must be a JSON object"))?;
        let op = Value::field(obj, "op")
            .as_str()
            .ok_or_else(|| Response::error("bad_request", "missing string field 'op'"))?;
        match op {
            "submit" => {
                let job = Value::field(obj, "job");
                if job.as_obj().is_none() {
                    return Err(Response::error(
                        "bad_request",
                        "submit needs an object field 'job'",
                    ));
                }
                let spec = JobSpec::from_value(job)
                    .map_err(|e| Response::error("bad_request", format!("bad job spec: {e}")))?;
                Ok(Request::Submit(spec))
            }
            "cancel" => match Value::field(obj, "id").as_str() {
                Some(id) => Ok(Request::Cancel(id.to_string())),
                None => Err(Response::error(
                    "bad_request",
                    "cancel needs a string field 'id'",
                )),
            },
            "status" => Ok(Request::Status(
                Value::field(obj, "id").as_str().map(str::to_string),
            )),
            "report" => Ok(Request::Report),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(Response::error(
                "bad_request",
                format!("unknown op '{other}'"),
            )),
        }
    }
}

/// A daemon reply (one JSON line on the wire): `{"ok":true,...}` on
/// success, `{"ok":false,"error":KIND,"message":...}` on a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success; the payload's fields are merged after `"ok":true`.
    Ok(Vec<(String, Value)>),
    /// Typed refusal: `bad_request`, `duplicate_id`, `unknown_task`,
    /// `unknown_space`, `quota_exceeded`, or `not_found`.
    Error {
        /// Stable machine-readable error kind.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    fn ok(fields: Vec<(String, Value)>) -> Self {
        Response::Ok(fields)
    }

    fn error(kind: &str, message: impl Into<String>) -> Self {
        Response::Error {
            kind: kind.to_string(),
            message: message.into(),
        }
    }

    /// The stable error kind, when this is an error.
    #[must_use]
    pub fn error_kind(&self) -> Option<&str> {
        match self {
            Response::Error { kind, .. } => Some(kind),
            Response::Ok(_) => None,
        }
    }

    /// Serializes the response as one compact JSON line (no newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let fields = match self {
            Response::Ok(fields) => {
                let mut all = vec![("ok".to_string(), Value::Bool(true))];
                all.extend(fields.iter().cloned());
                all
            }
            Response::Error { kind, message } => vec![
                ("ok".to_string(), Value::Bool(false)),
                ("error".to_string(), Value::Str(kind.clone())),
                ("message".to_string(), Value::Str(message.clone())),
            ],
        };
        Value::Obj(fields).to_json_string()
    }
}

/// What [`Daemon::recover`] found in the journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Epochs with at least one unfinished job, queued for re-run.
    pub epochs_pending: u64,
    /// Finished jobs whose results replay verbatim from the journal.
    pub jobs_replayed: u64,
    /// Unfinished jobs that will re-run in their original wave positions.
    pub jobs_resumed: u64,
}

/// Mutable daemon state, all behind one mutex.
#[derive(Default)]
struct DaemonState {
    /// Epochs not yet executed: specs in submission order. New
    /// submissions land in `next_epoch`; recovery re-queues interrupted
    /// epochs under their original numbers (lower keys run first).
    epochs: BTreeMap<u64, Vec<JobSpec>>,
    /// The epoch currently accumulating submissions.
    next_epoch: u64,
    /// Epoch each known job id was submitted into (doubles as the
    /// duplicate-id check).
    job_epoch: BTreeMap<String, u64>,
    /// Lifecycle phase by id: `queued`, `running`, or a disposition.
    phase: BTreeMap<String, String>,
    /// Live cancellation tokens by id.
    tokens: BTreeMap<String, RunControl>,
    /// Finished results by id (journal-replayed or produced this run).
    completed: BTreeMap<String, JobResult>,
    /// Charged EM seconds per epoch per tenant — the quota ledger.
    charges: BTreeMap<u64, BTreeMap<String, f64>>,
    /// Auto-assigned id counter for submissions with an empty id.
    auto_id: u64,
    /// True while an epoch is executing (journal flushes from the request
    /// path must wait for a safe point — see `flush_journal_if_idle`).
    executing: bool,
}

/// The live optimization daemon. Construct with [`Daemon::new`], attach
/// the shared persistent store ([`Daemon::with_store`] — required for the
/// journal), [`Daemon::recover`] after a restart, then either drive it
/// synchronously ([`Daemon::handle_request`] + [`Daemon::run_next_epoch`],
/// the deterministic path tests use) or [`Daemon::serve`] a TCP listener.
pub struct Daemon {
    config: DaemonConfig,
    store: Option<Arc<Store>>,
    telemetry: Telemetry,
    state: Mutex<DaemonState>,
    shutdown: AtomicBool,
}

impl Daemon {
    /// A daemon with the given policy; no store, no telemetry.
    #[must_use]
    pub fn new(config: DaemonConfig) -> Self {
        Self {
            config,
            store: None,
            telemetry: Telemetry::disabled(),
            state: Mutex::new(DaemonState::default()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Attaches the shared persistent store: the job journal lives in it,
    /// and every epoch's engine warm-starts from it.
    #[must_use]
    pub fn with_store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches a telemetry handle for the `daemon.*` / `quota.*` counters
    /// (plus the engine-level `engine.*` counters of every epoch).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// A poisoned state lock is recovered, not propagated: every field is
    /// kept self-consistent under the lock, and the journal is the source
    /// of truth after a crash anyway.
    fn lock_state(&self) -> MutexGuard<'_, DaemonState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// True once a shutdown was requested.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Pending (frozen-to-be) epochs, including the accumulating one.
    #[must_use]
    pub fn pending_epochs(&self) -> usize {
        self.lock_state().epochs.len()
    }

    /// Replays the job journal after a restart: finished jobs' results are
    /// restored verbatim (never re-run), interrupted epochs are re-queued
    /// under their original numbers with their original submission order,
    /// and the quota ledger is rebuilt from `Finished` frames.
    ///
    /// # Errors
    ///
    /// Returns a message when no store is attached, the journal cannot be
    /// read, or a frame's payload does not decode.
    pub fn recover(&self) -> Result<RecoveryReport, String> {
        let store = self
            .store
            .as_ref()
            .ok_or("daemon: recover requires a store")?;
        let frames = store
            .load_jobs()
            .map_err(|e| format!("daemon: journal read: {e}"))?;
        let mut state = self.lock_state();
        for frame in &frames {
            match frame.state {
                JobState::Submitted => {
                    if state.job_epoch.contains_key(&frame.job_id) {
                        continue; // duplicated frame (pre-compaction)
                    }
                    let spec = JobSpec::from_value(&frame.payload)
                        .map_err(|e| format!("daemon: journal spec for '{}': {e}", frame.job_id))?;
                    state.job_epoch.insert(frame.job_id.clone(), frame.epoch);
                    state
                        .phase
                        .insert(frame.job_id.clone(), "queued".to_string());
                    state
                        .tokens
                        .insert(frame.job_id.clone(), RunControl::none());
                    state.epochs.entry(frame.epoch).or_default().push(spec);
                    state.next_epoch = state.next_epoch.max(frame.epoch + 1);
                }
                JobState::Started => {}
                JobState::Finished => {
                    let result = JobResult::from_value(&frame.payload).map_err(|e| {
                        format!("daemon: journal result for '{}': {e}", frame.job_id)
                    })?;
                    state
                        .phase
                        .insert(frame.job_id.clone(), result.disposition.clone());
                    *state
                        .charges
                        .entry(frame.epoch)
                        .or_default()
                        .entry(result.tenant.clone())
                        .or_insert(0.0) += result.em_seconds_charged;
                    state.completed.insert(frame.job_id.clone(), result);
                    self.telemetry.incr(Counter::DaemonJobsReplayed);
                }
            }
        }
        // Epochs whose every job finished are done — only their charges
        // remain relevant.
        let done: Vec<u64> = state
            .epochs
            .iter()
            .filter(|(_, specs)| specs.iter().all(|s| state.completed.contains_key(&s.id)))
            .map(|(&e, _)| e)
            .collect();
        for e in &done {
            state.epochs.remove(e);
        }
        let jobs_replayed = state.completed.len() as u64;
        let jobs_resumed = state
            .epochs
            .values()
            .flatten()
            .filter(|s| !state.completed.contains_key(&s.id))
            .count() as u64;
        Ok(RecoveryReport {
            epochs_pending: state.epochs.len() as u64,
            jobs_replayed,
            jobs_resumed,
        })
    }

    /// Handles one request against current state. Submissions are
    /// validated individually — a refused or malformed request never
    /// touches queued or running neighbors.
    pub fn handle_request(&self, request: Request) -> Response {
        self.telemetry.incr(Counter::DaemonRequests);
        match request {
            Request::Submit(spec) => self.submit(spec),
            Request::Cancel(id) => self.cancel(&id),
            Request::Status(id) => self.status(id.as_deref()),
            Request::Report => self.report(),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::Relaxed);
                Response::ok(vec![(
                    "shutdown".to_string(),
                    Value::Str("draining".to_string()),
                )])
            }
        }
    }

    /// Parses and handles one raw request line.
    pub fn handle_line(&self, line: &str) -> Response {
        match Request::parse(line) {
            Ok(request) => self.handle_request(request),
            Err(error) => {
                self.telemetry.incr(Counter::DaemonRequests);
                error
            }
        }
    }

    fn submit(&self, mut spec: JobSpec) -> Response {
        if spec.task_id().is_none() {
            return Response::error(
                "unknown_task",
                format!("job '{}': unknown task '{}'", spec.id, spec.task),
            );
        }
        if spec.param_space().is_none() {
            return Response::error(
                "unknown_space",
                format!("job '{}': unknown space '{}'", spec.id, spec.space),
            );
        }
        let mut state = self.lock_state();
        if spec.id.is_empty() {
            spec.id = format!("job-{}", state.auto_id);
            state.auto_id += 1;
        }
        if state.job_epoch.contains_key(&spec.id) {
            return Response::error(
                "duplicate_id",
                format!("job id '{}' already known", spec.id),
            );
        }
        // Rolling quota: charged EM seconds of this tenant over the
        // window ending at the accumulating epoch.
        if self.config.quota_em_seconds > 0.0 {
            let window_start = state
                .next_epoch
                .saturating_sub(self.config.quota_window_epochs.saturating_sub(1));
            let charged: f64 = state
                .charges
                .range(window_start..)
                .filter_map(|(_, by_tenant)| by_tenant.get(&spec.tenant))
                .sum();
            if charged >= self.config.quota_em_seconds {
                self.telemetry.incr(Counter::QuotaRefusals);
                return Response::error(
                    "quota_exceeded",
                    format!(
                        "tenant '{}' charged {:.3} EM seconds over the last {} epochs \
                         (quota {:.3})",
                        spec.tenant,
                        charged,
                        self.config.quota_window_epochs,
                        self.config.quota_em_seconds
                    ),
                );
            }
        }
        let epoch = state.next_epoch;
        let id = spec.id.clone();
        state.job_epoch.insert(id.clone(), epoch);
        state.phase.insert(id.clone(), "queued".to_string());
        state.tokens.insert(id.clone(), RunControl::none());
        if let Some(store) = &self.store {
            store.append_job(&JobRecord {
                epoch,
                state: JobState::Submitted,
                job_id: id.clone(),
                payload: spec.to_value(),
            });
        }
        state.epochs.entry(epoch).or_default().push(spec);
        self.telemetry.incr(Counter::DaemonJobsSubmitted);
        self.flush_journal_if_idle(&mut state);
        drop(state);
        Response::ok(vec![
            ("id".to_string(), Value::Str(id)),
            ("epoch".to_string(), Value::Num(epoch as f64)),
        ])
    }

    /// Flushes pending journal frames when no epoch is executing. While
    /// one *is* executing, a flush here could persist a running wave's
    /// partial evaluations — which a post-crash re-run would see as cache
    /// hits, breaking replay bit-identity — so the frames stay pending
    /// until the scheduler's next safe point (wave boundary or epoch end).
    fn flush_journal_if_idle(&self, state: &mut DaemonState) {
        if state.executing {
            return;
        }
        if let Some(store) = &self.store {
            if let Err(e) = store.flush() {
                eprintln!("daemon: journal flush: {e}");
            }
        }
    }

    fn cancel(&self, id: &str) -> Response {
        let state = self.lock_state();
        let Some(token) = state.tokens.get(id) else {
            return Response::error("not_found", format!("no job '{id}'"));
        };
        if state.completed.contains_key(id) {
            return Response::ok(vec![
                ("id".to_string(), Value::Str(id.to_string())),
                (
                    "status".to_string(),
                    Value::Str("already_finished".to_string()),
                ),
            ]);
        }
        token.cancel();
        self.telemetry.incr(Counter::DaemonJobsCancelled);
        Response::ok(vec![
            ("id".to_string(), Value::Str(id.to_string())),
            ("status".to_string(), Value::Str("cancelling".to_string())),
        ])
    }

    fn status(&self, id: Option<&str>) -> Response {
        let state = self.lock_state();
        match id {
            Some(id) => {
                let Some(&epoch) = state.job_epoch.get(id) else {
                    return Response::error("not_found", format!("no job '{id}'"));
                };
                let phase = state.phase.get(id).cloned().unwrap_or_default();
                let mut fields = vec![
                    ("id".to_string(), Value::Str(id.to_string())),
                    ("epoch".to_string(), Value::Num(epoch as f64)),
                    ("phase".to_string(), Value::Str(phase)),
                ];
                if let Some(result) = state.completed.get(id) {
                    fields.push((
                        "disposition".to_string(),
                        Value::Str(result.disposition.clone()),
                    ));
                    fields.push(("success".to_string(), Value::Bool(result.success)));
                    fields.push((
                        "em_seconds_charged".to_string(),
                        Value::Num(result.em_seconds_charged),
                    ));
                    fields.push((
                        "candidates".to_string(),
                        Value::Num(result.candidates.len() as f64),
                    ));
                }
                Response::ok(fields)
            }
            None => {
                let queued = state.phase.values().filter(|p| *p == "queued").count();
                let running = state.phase.values().filter(|p| *p == "running").count();
                Response::ok(vec![
                    ("epoch".to_string(), Value::Num(state.next_epoch as f64)),
                    (
                        "pending_epochs".to_string(),
                        Value::Num(state.epochs.len() as f64),
                    ),
                    ("executing".to_string(), Value::Bool(state.executing)),
                    ("queued".to_string(), Value::Num(queued as f64)),
                    ("running".to_string(), Value::Num(running as f64)),
                    (
                        "finished".to_string(),
                        Value::Num(state.completed.len() as f64),
                    ),
                ])
            }
        }
    }

    fn report(&self) -> Response {
        let state = self.lock_state();
        let reports: Vec<isop_telemetry::RunReport> =
            state.completed.values().map(|r| r.report.clone()).collect();
        drop(state);
        let rows = aggregate_by_tenant(&reports);
        Response::ok(vec![("tenants".to_string(), rows.to_value())])
    }

    /// Freezes and executes the lowest pending epoch, if any. Requests
    /// arriving while it runs accumulate into later epochs. Returns the
    /// epoch number and its engine report, or `None` when nothing is
    /// pending.
    ///
    /// # Errors
    ///
    /// Returns a message when the engine fails (store flush error); the
    /// journal still holds every affected job for the next recovery.
    pub fn run_next_epoch(&self) -> Result<Option<(u64, EngineReport)>, String> {
        let (epoch, specs, controls) = {
            let mut state = self.lock_state();
            let Some((&epoch, _)) = state.epochs.iter().next() else {
                // Idle safe point: persist any journal frames that arrived
                // during the previous epoch's execution.
                self.flush_journal_if_idle(&mut state);
                return Ok(None);
            };
            let specs = state.epochs.remove(&epoch).expect("key from iter");
            if epoch == state.next_epoch {
                state.next_epoch += 1;
            }
            state.executing = true;
            let mut controls = JobControls::default();
            for spec in &specs {
                if let Some(done) = state.completed.get(&spec.id) {
                    controls.completed.insert(spec.id.clone(), done.clone());
                    continue;
                }
                let token = state.tokens.get(&spec.id).cloned().unwrap_or_default();
                controls.tokens.insert(spec.id.clone(), token);
                state.phase.insert(spec.id.clone(), "running".to_string());
                if let Some(store) = &self.store {
                    store.append_job(&JobRecord {
                        epoch,
                        state: JobState::Started,
                        job_id: spec.id.clone(),
                        payload: Value::Null,
                    });
                }
            }
            // Epoch-freeze safe point: no wave is running, so the flush
            // persists exactly whole-epoch history plus these frames.
            if let Some(store) = &self.store {
                store
                    .flush()
                    .map_err(|e| format!("daemon: journal flush at epoch {epoch} freeze: {e}"))?;
            }
            (epoch, specs, controls)
        };

        let mut engine =
            Engine::new(self.config.engine.clone()).with_telemetry(self.telemetry.clone());
        if let Some(store) = &self.store {
            engine = engine.with_store(Arc::clone(store));
        }
        let queue = JobQueue::from_specs(specs);
        let run = engine.run_with(&queue, Some(&controls), |wave, fresh| {
            // Wave-boundary safe point: the engine flushed this wave's
            // evaluations just before calling us, so journaling +
            // flushing the Finished frames here guarantees the invariant
            // "evals on disk => Finished frame on disk" that makes a
            // post-crash re-run charge-identical.
            let mut state = self.lock_state();
            for result in fresh {
                if result.disposition == "deadline_expired" {
                    self.telemetry.incr(Counter::DaemonJobsExpired);
                }
                state
                    .phase
                    .insert(result.id.clone(), result.disposition.clone());
                *state
                    .charges
                    .entry(epoch)
                    .or_default()
                    .entry(result.tenant.clone())
                    .or_insert(0.0) += result.em_seconds_charged;
                if let Some(store) = &self.store {
                    store.append_job(&JobRecord {
                        epoch,
                        state: JobState::Finished,
                        job_id: result.id.clone(),
                        payload: result.to_value(),
                    });
                }
                state.completed.insert(result.id.clone(), result.clone());
            }
            if let Some(store) = &self.store {
                store
                    .flush()
                    .map_err(|e| format!("daemon: journal flush in epoch {epoch}: {e}"))?;
            }
            let chaos = self.config.chaos_crash_after_waves;
            if chaos != 0 && (wave as u64) + 1 >= chaos {
                return Err(format!(
                    "chaos: simulated crash after wave {wave} of epoch {epoch}"
                ));
            }
            Ok(())
        });
        let mut state = self.lock_state();
        state.executing = false;
        match run {
            Ok(report) => {
                self.telemetry.incr(Counter::DaemonEpochs);
                // Persist submissions that streamed in mid-epoch.
                self.flush_journal_if_idle(&mut state);
                Ok(Some((epoch, report)))
            }
            Err(e) => Err(e),
        }
    }

    /// Serves requests on `listener` until a `shutdown` request drains the
    /// queue: a scheduler thread executes epochs as they accumulate while
    /// connection threads stream NDJSON requests/responses.
    ///
    /// # Errors
    ///
    /// Returns the listener's I/O error, or the first epoch error.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            let daemon = Arc::clone(self);
            scope.spawn(move || loop {
                match daemon.run_next_epoch() {
                    Ok(Some(_)) => {}
                    Ok(None) => {
                        if daemon.shutdown_requested() {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => eprintln!("daemon: epoch failed: {e}"),
                }
            });
            loop {
                if self.shutdown_requested() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let daemon = Arc::clone(self);
                        scope.spawn(move || daemon.handle_connection(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => {
                        eprintln!("daemon: accept: {e}");
                        break;
                    }
                }
            }
        });
        Ok(())
    }

    /// One NDJSON connection: request line in, response line out.
    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    if !line.trim().is_empty() {
                        let response = self.handle_line(line.trim());
                        let mut out = response.to_json_line();
                        out.push('\n');
                        if writer.write_all(out.as_bytes()).is_err() {
                            break;
                        }
                    }
                    line.clear();
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Partial lines survive in `line`; just poll shutdown.
                    if self.shutdown_requested() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use isop_hpo::harmonica::HarmonicaConfig;
    use isop_hpo::hyperband::HyperbandConfig;

    fn tiny_engine() -> EngineConfig {
        EngineConfig {
            cores: 2,
            wave_slots: 2,
            pipeline: crate::pipeline::IsopConfig {
                harmonica: HarmonicaConfig {
                    stages: 1,
                    samples_per_stage: 40,
                    top_monomials: 4,
                    bits_per_stage: 6,
                    ..HarmonicaConfig::default()
                },
                hyperband: HyperbandConfig {
                    max_resource: 2.0,
                    eta: 2.0,
                },
                gd_candidates: 2,
                gd_epochs: 5,
                cand_num: 2,
                ..crate::pipeline::IsopConfig::default()
            },
        }
    }

    fn submit_line(id: &str, tenant: &str, seed: u64) -> String {
        format!(
            r#"{{"op":"submit","job":{{"id":"{id}","tenant":"{tenant}","seed":{seed},"threads":1}}}}"#
        )
    }

    #[test]
    fn protocol_parses_and_types_errors() {
        assert_eq!(
            Request::parse(r#"{"op":"report"}"#).unwrap(),
            Request::Report
        );
        assert_eq!(
            Request::parse(r#"{"op":"cancel","id":"a"}"#).unwrap(),
            Request::Cancel("a".to_string())
        );
        assert_eq!(
            Request::parse(r#"{"op":"status"}"#).unwrap(),
            Request::Status(None)
        );
        for bad in [
            "not json",
            r#"{"no_op":1}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"cancel"}"#,
            r#"{"op":"submit"}"#,
            r#"{"op":"submit","job":{"seed":"NaN-ish"}}"#,
        ] {
            let err = Request::parse(bad).expect_err(bad);
            assert_eq!(err.error_kind(), Some("bad_request"), "{bad}");
        }
        let ok = Response::ok(vec![("id".to_string(), Value::Str("a".to_string()))]);
        assert_eq!(ok.to_json_line(), r#"{"ok":true,"id":"a"}"#);
    }

    #[test]
    fn submission_validation_is_per_request() {
        let daemon = Daemon::new(DaemonConfig {
            engine: tiny_engine(),
            ..DaemonConfig::default()
        });
        let ok = daemon.handle_line(&submit_line("a", "acme", 1));
        assert_eq!(ok.error_kind(), None);
        // Duplicate, unknown task, unknown space: each refused with its
        // own kind, and the queued job is untouched.
        let dup = daemon.handle_line(&submit_line("a", "acme", 2));
        assert_eq!(dup.error_kind(), Some("duplicate_id"));
        let task = daemon.handle_line(r#"{"op":"submit","job":{"id":"b","task":"t9"}}"#);
        assert_eq!(task.error_kind(), Some("unknown_task"));
        let space = daemon.handle_line(r#"{"op":"submit","job":{"id":"c","space":"mars"}}"#);
        assert_eq!(space.error_kind(), Some("unknown_space"));
        let garbage = daemon.handle_line("}{");
        assert_eq!(garbage.error_kind(), Some("bad_request"));
        assert_eq!(daemon.pending_epochs(), 1);
        let status = daemon.handle_request(Request::Status(Some("a".to_string())));
        let Response::Ok(fields) = &status else {
            panic!("status failed: {status:?}")
        };
        assert_eq!(
            Value::field(fields, "phase").as_str(),
            Some("queued"),
            "refusals must not touch the queued job"
        );
        assert_eq!(
            daemon
                .handle_request(Request::Status(Some("zzz".to_string())))
                .error_kind(),
            Some("not_found")
        );
    }

    #[test]
    fn quota_refuses_over_budget_tenants_and_relaxes_as_the_window_slides() {
        let daemon = Daemon::new(DaemonConfig {
            engine: tiny_engine(),
            quota_em_seconds: 5.0,
            quota_window_epochs: 2,
            ..DaemonConfig::default()
        });
        // Seed the ledger directly: tenant 'hog' charged 9.0 in epoch 0.
        {
            let mut state = daemon.lock_state();
            state
                .charges
                .entry(0)
                .or_default()
                .insert("hog".to_string(), 9.0);
            state.next_epoch = 1;
        }
        let refused = daemon.handle_line(&submit_line("h1", "hog", 1));
        assert_eq!(refused.error_kind(), Some("quota_exceeded"));
        // A different tenant is unaffected.
        let ok = daemon.handle_line(&submit_line("l1", "light", 1));
        assert_eq!(ok.error_kind(), None);
        // Two epochs later the window has slid past epoch 0.
        daemon.lock_state().next_epoch = 2;
        let ok_again = daemon.handle_line(&submit_line("h2", "hog", 2));
        assert_eq!(ok_again.error_kind(), None);
    }
}
