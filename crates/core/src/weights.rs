//! Adaptive weight adjustment (paper Algorithm 2).
//!
//! Each Harmonica stage yields a batch of random samples; their statistics
//! steer the constraint weights. When a constraint is satisfied by at least
//! a `beta` fraction of the batch, its weight has done its job and is decayed
//! by `(1 - beta)` — but never below a floor tied to the FoM scale,
//! `min(w_FoM * FoM) / C_max`, so the constraint can never vanish from the
//! objective entirely.

use crate::objective::Objective;
use serde::{Deserialize, Serialize};

/// One sample's record used for weight adaptation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// Predicted `[Z, L, NEXT]`.
    pub metrics: [f64; 3],
    /// Decoded design vector.
    pub values: Vec<f64>,
}

/// Adaptive-weight controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightAdapter {
    /// The satisfaction-ratio threshold and decay factor `beta`
    /// (the paper uses 0.2).
    pub beta: f64,
}

impl Default for WeightAdapter {
    fn default() -> Self {
        Self { beta: 0.2 }
    }
}

impl WeightAdapter {
    /// Applies one round of Algorithm 2 to `objective` using the latest
    /// sample batch. No-op on an empty batch.
    pub fn update(&self, objective: &mut Objective, batch: &[SampleRecord]) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as f64;
        // Floor: min over the batch of w_FoM * FoM(x).
        let min_fom_term = batch
            .iter()
            .map(|s| objective.weights.fom * objective.fom.value(&s.metrics))
            .fold(f64::INFINITY, f64::min);

        // Output constraints: ratio of samples inside the band.
        for j in 0..objective.output_constraints.len() {
            let c = objective.output_constraints[j];
            let ratio = batch.iter().filter(|s| c.satisfied(&s.metrics)).count() as f64 / n;
            if ratio >= self.beta {
                let c_max = c.boundary_penalty(objective.gamma(&c)).max(1e-9);
                let floor = min_fom_term / c_max;
                let w = &mut objective.weights.oc[j];
                *w = ((1.0 - self.beta) * *w).max(floor.min(*w));
            }
        }

        // Input constraints: ratio of samples satisfying the linear bound.
        // The smoothed boundary value of a clip is 0, so the floor uses a
        // unit-violation scale (C_max = 1) to stay finite.
        for j in 0..objective.input_constraints.len() {
            let ratio = batch
                .iter()
                .filter(|s| objective.input_constraints[j].satisfied(&s.values))
                .count() as f64
                / n;
            if ratio >= self.beta {
                let floor = min_fom_term;
                let w = &mut objective.weights.ic[j];
                *w = ((1.0 - self.beta) * *w).max(floor.min(*w));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{FomSpec, InputConstraint, Metric, OutputConstraint};

    fn objective_with_ic() -> Objective {
        let mut obj = Objective::new(
            FomSpec {
                terms: vec![(Metric::L, 1.0)],
            },
            vec![OutputConstraint::band(Metric::Z, 85.0, 1.0)],
            vec![InputConstraint::new(vec![(0, 1.0)], 10.0, "x0<=10")],
        );
        obj.weights.oc[0] = 1.0;
        obj.weights.ic[0] = 1.0;
        obj
    }

    fn record(z: f64, l: f64, x0: f64) -> SampleRecord {
        SampleRecord {
            metrics: [z, l, 0.0],
            values: vec![x0],
        }
    }

    #[test]
    fn satisfied_constraint_weight_decays() {
        let mut obj = objective_with_ic();
        let adapter = WeightAdapter::default();
        // All samples satisfy both constraints.
        let batch: Vec<SampleRecord> = (0..10).map(|_| record(85.0, -0.4, 5.0)).collect();
        let w_before = obj.weights.oc[0];
        adapter.update(&mut obj, &batch);
        assert!(obj.weights.oc[0] < w_before, "weight must decay");
        assert!((obj.weights.oc[0] - 0.8 * w_before).abs() < 0.3);
    }

    #[test]
    fn unsatisfied_constraint_weight_holds() {
        let mut obj = objective_with_ic();
        let adapter = WeightAdapter::default();
        // Only 1 of 10 samples in band: ratio 0.1 < beta 0.2.
        let mut batch: Vec<SampleRecord> = (0..9).map(|_| record(95.0, -0.4, 5.0)).collect();
        batch.push(record(85.0, -0.4, 5.0));
        let w_before = obj.weights.oc[0];
        adapter.update(&mut obj, &batch);
        assert_eq!(obj.weights.oc[0], w_before);
    }

    #[test]
    fn weight_never_below_fom_floor() {
        let mut obj = objective_with_ic();
        let adapter = WeightAdapter { beta: 0.2 };
        let batch: Vec<SampleRecord> = (0..10).map(|_| record(85.0, -0.5, 5.0)).collect();
        for _ in 0..100 {
            adapter.update(&mut obj, &batch);
        }
        // Floor for OC: min(w_fom |L|) / C_max ~= 0.5 / ~0.56.
        let c = obj.output_constraints[0];
        let floor = 0.5 / c.boundary_penalty(obj.gamma(&c));
        assert!(
            obj.weights.oc[0] >= floor - 1e-9,
            "w = {} < floor {floor}",
            obj.weights.oc[0]
        );
        // IC floor: min(w_fom |L|) = 0.5.
        assert!(obj.weights.ic[0] >= 0.5 - 1e-9);
    }

    #[test]
    fn ic_weight_decays_independently() {
        let mut obj = objective_with_ic();
        let adapter = WeightAdapter::default();
        // IC satisfied everywhere, OC nowhere.
        let batch: Vec<SampleRecord> = (0..10).map(|_| record(95.0, -0.4, 5.0)).collect();
        let oc_before = obj.weights.oc[0];
        let ic_before = obj.weights.ic[0];
        adapter.update(&mut obj, &batch);
        assert_eq!(obj.weights.oc[0], oc_before);
        assert!(obj.weights.ic[0] < ic_before);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut obj = objective_with_ic();
        let before = obj.weights.clone();
        WeightAdapter::default().update(&mut obj, &[]);
        assert_eq!(obj.weights, before);
    }
}
