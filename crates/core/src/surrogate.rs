//! Surrogate performance models: fast stand-ins for the EM simulator during
//! search-space exploration.
//!
//! Three implementations mirror the paper's comparisons:
//!
//! * [`NeuralSurrogate`] — one multi-output differentiable network (MLP or
//!   1D-CNN). This is ISOP+'s surrogate; its input Jacobian feeds the
//!   gradient-descent stage.
//! * [`MlpXgbSurrogate`] — the DATE'23 ISOP configuration: an MLP for `Z`
//!   and `L` plus an XGBoost model for `NEXT`. Not differentiable (the tree
//!   part is piecewise-constant), exactly the incompatibility the paper notes
//!   for `H_GD + MLP_XGB`.
//! * [`OracleSurrogate`] — wraps the real simulator; useful in tests and for
//!   isolating search-algorithm behaviour from surrogate error.

use isop_em::simulator::EmSimulator;
use isop_em::stackup::DiffStripline;
use isop_exec::Parallelism;
use isop_ml::dataset::Dataset;
use isop_ml::linalg::Matrix;
use isop_ml::models::{Cnn1d, Mlp, XgbRegressor};
use isop_ml::registry::{self, ModelRegistry};
use isop_ml::train::TrainContext;
use isop_ml::{Differentiable, MlError, Regressor};
use isop_telemetry::{Counter, Telemetry};
use serde::{Deserialize, Serialize};

/// Data-parallel training front end for the surrogate model zoo.
///
/// Holds the [`TrainContext`] (worker-thread knob + telemetry sink) that
/// every model's `fit_with` receives, so call sites pick their parallelism
/// once instead of threading it through each training call. Training is
/// bit-identical at any thread count for a fixed seed — the zoo only
/// changes wall-clock, never results.
/// With a [`ModelRegistry`] attached ([`ModelZoo::with_registry`]), the
/// `*_registered` fits consult the persistent store first: a registry hit
/// returns the previously trained model **without training** — zero
/// `ml.fit.*` spans, zero `train.chunks` — and, thanks to the exact-f64
/// store codec, predicts bit-identically to the cold-trained zoo.
#[derive(Debug, Clone, Default)]
pub struct ModelZoo {
    ctx: TrainContext,
    registry: Option<ModelRegistry>,
}

impl ModelZoo {
    /// A zoo training on `parallelism` worker threads, telemetry disabled.
    #[must_use]
    pub fn new(parallelism: Parallelism) -> Self {
        Self {
            ctx: TrainContext::new(parallelism),
            registry: None,
        }
    }

    /// A zoo honoring the `THREADS` environment variable.
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(Parallelism::from_env())
    }

    /// Routes `ml.fit.*` spans and the `train.chunks` counter to
    /// `telemetry`.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.ctx = self.ctx.with_telemetry(telemetry);
        self
    }

    /// Attaches a persistent trained-model registry: the `*_registered`
    /// fits then reuse previously stored models instead of retraining.
    #[must_use]
    pub fn with_registry(mut self, registry: ModelRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// The attached registry, if any.
    #[must_use]
    pub fn registry(&self) -> Option<&ModelRegistry> {
        self.registry.as_ref()
    }

    /// The training context handed to every fit.
    pub fn context(&self) -> &TrainContext {
        &self.ctx
    }

    /// Trains any regressor under the zoo's context.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn fit(&self, model: &mut dyn Regressor, data: &Dataset) -> Result<(), MlError> {
        model.fit_with(data, &self.ctx)
    }

    /// Trains a differentiable model and wraps it as a [`NeuralSurrogate`].
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn fit_neural<M: Differentiable>(
        &self,
        model: M,
        data: &Dataset,
    ) -> Result<NeuralSurrogate<M>, MlError> {
        NeuralSurrogate::fit_with(model, data, &self.ctx)
    }

    /// Trains the DATE'23 [`MlpXgbSurrogate`] pair.
    ///
    /// # Errors
    ///
    /// Propagates training failures from either part.
    pub fn fit_mlp_xgb(
        &self,
        mlp: Mlp,
        xgb: XgbRegressor,
        data: &Dataset,
    ) -> Result<MlpXgbSurrogate, MlError> {
        MlpXgbSurrogate::fit_with(mlp, xgb, data, &self.ctx)
    }

    /// [`ModelZoo::fit_neural`] through the registry, keyed by the space
    /// fingerprint the surrogate will serve. Returns the surrogate plus
    /// whether it was served from the store (`true` = no training
    /// happened). Without an attached registry this is a plain cold fit.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn fit_neural_registered<M>(
        &self,
        space_id: u64,
        model: M,
        data: &Dataset,
    ) -> Result<(NeuralSurrogate<M>, bool), MlError>
    where
        M: Differentiable + Serialize + Deserialize,
    {
        let Some(reg) = &self.registry else {
            return Ok((self.fit_neural(model, data)?, false));
        };
        let config_fp = registry::config_fingerprint(&model);
        let name = model.name();
        let (fitted, hit) = reg.fit_or_load(space_id, name, config_fp, data, move || {
            let mut m = model;
            m.fit_with(data, &self.ctx)?;
            Ok(m)
        })?;
        Ok((NeuralSurrogate::new(fitted), hit))
    }

    /// [`ModelZoo::fit_mlp_xgb`] through the registry; the pair is keyed by
    /// the combined fingerprint of both unfitted parts.
    ///
    /// # Errors
    ///
    /// Propagates training failures from either part.
    pub fn fit_mlp_xgb_registered(
        &self,
        space_id: u64,
        mlp: Mlp,
        xgb: XgbRegressor,
        data: &Dataset,
    ) -> Result<(MlpXgbSurrogate, bool), MlError> {
        let Some(reg) = &self.registry else {
            return Ok((self.fit_mlp_xgb(mlp, xgb, data)?, false));
        };
        let config_fp = registry::combine_fingerprints(&[
            registry::config_fingerprint(&mlp),
            registry::config_fingerprint(&xgb),
        ]);
        reg.fit_or_load(space_id, "MLP_XGB", config_fp, data, move || {
            MlpXgbSurrogate::fit_with(mlp, xgb, data, &self.ctx)
        })
    }
}

/// A surrogate predicting `[Z, L, NEXT]` from the 15-parameter design vector.
pub trait Surrogate: Send + Sync {
    /// Predicts the metric vector for one design.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] if the model is unfitted or the width mismatches.
    fn predict(&self, x: &[f64]) -> Result<[f64; 3], MlError>;

    /// Input Jacobian (`3 x d`), or `None` when the surrogate is not
    /// differentiable (tree-based models).
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] if the model is unfitted or the width mismatches.
    fn jacobian(&self, x: &[f64]) -> Option<Result<Matrix, MlError>>;

    /// Predicts the metric vector for a batch of designs, one result per
    /// row so a single invalid design does not poison the batch.
    ///
    /// The default loops over [`Surrogate::predict`]; neural surrogates
    /// override it with a single batched matrix forward pass.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Result<[f64; 3], MlError>> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Input Jacobians for a batch of designs (per-row results; see
    /// [`Surrogate::jacobian`] for the `None` convention).
    fn jacobian_batch(&self, xs: &[Vec<f64>]) -> Vec<Option<Result<Matrix, MlError>>> {
        xs.iter().map(|x| self.jacobian(x)).collect()
    }

    /// Surrogate name for reports (e.g. `"1D-CNN"`).
    fn name(&self) -> String;
}

fn row_to_metrics(row: &[f64]) -> [f64; 3] {
    [row[0], row[1], row[2]]
}

/// A differentiable multi-output neural surrogate (MLP or 1D-CNN).
#[derive(Debug, Clone)]
pub struct NeuralSurrogate<M> {
    model: M,
}

impl<M: Differentiable> NeuralSurrogate<M> {
    /// Wraps a *fitted* differentiable model with 3 outputs.
    pub fn new(model: M) -> Self {
        Self { model }
    }

    /// Trains `model` on `data` (targets must be `[Z, L, NEXT]`) and wraps
    /// it.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn fit(model: M, data: &Dataset) -> Result<Self, MlError> {
        Self::fit_with(model, data, &TrainContext::serial())
    }

    /// [`NeuralSurrogate::fit`] under an explicit training context (thread
    /// knob + telemetry) — what [`ModelZoo::fit_neural`] calls.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn fit_with(mut model: M, data: &Dataset, ctx: &TrainContext) -> Result<Self, MlError> {
        model.fit_with(data, ctx)?;
        Ok(Self { model })
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: Differentiable> Surrogate for NeuralSurrogate<M> {
    fn predict(&self, x: &[f64]) -> Result<[f64; 3], MlError> {
        let out = isop_ml::predict_row(&self.model, x)?;
        Ok(row_to_metrics(&out))
    }

    fn jacobian(&self, x: &[f64]) -> Option<Result<Matrix, MlError>> {
        Some(self.model.input_jacobian(x))
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Result<[f64; 3], MlError>> {
        if xs.is_empty() {
            return Vec::new();
        }
        // One matrix forward pass over the whole batch instead of one
        // single-row pass per design.
        let batch = Matrix::from_rows(xs);
        match self.model.predict(&batch) {
            Ok(out) => (0..out.rows())
                .map(|r| Ok(row_to_metrics(out.row(r))))
                .collect(),
            // A whole-batch failure (unfitted model, width mismatch)
            // applies to every row equally.
            Err(e) => xs.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    fn jacobian_batch(&self, xs: &[Vec<f64>]) -> Vec<Option<Result<Matrix, MlError>>> {
        self.model
            .input_jacobian_batch(xs)
            .into_iter()
            .map(Some)
            .collect()
    }

    fn name(&self) -> String {
        self.model.name().to_string()
    }
}

/// Convenience alias for the paper's headline surrogate.
pub type CnnSurrogate = NeuralSurrogate<Cnn1d>;

/// Convenience alias for the MLP surrogate.
pub type MlpSurrogate = NeuralSurrogate<Mlp>;

/// The DATE'23 ISOP surrogate: MLP for `Z`/`L`, XGBoost for `NEXT`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MlpXgbSurrogate {
    mlp: Mlp,
    xgb: XgbRegressor,
}

impl MlpXgbSurrogate {
    /// Trains both parts on `data` (targets `[Z, L, NEXT]`).
    ///
    /// # Errors
    ///
    /// Propagates training failures from either part.
    pub fn fit(mlp: Mlp, xgb: XgbRegressor, data: &Dataset) -> Result<Self, MlError> {
        Self::fit_with(mlp, xgb, data, &TrainContext::serial())
    }

    /// [`MlpXgbSurrogate::fit`] under an explicit training context — what
    /// [`ModelZoo::fit_mlp_xgb`] calls.
    ///
    /// # Errors
    ///
    /// Propagates training failures from either part.
    pub fn fit_with(
        mut mlp: Mlp,
        mut xgb: XgbRegressor,
        data: &Dataset,
        ctx: &TrainContext,
    ) -> Result<Self, MlError> {
        // Split targets: MLP gets [Z, L], XGB gets [NEXT].
        let n = data.len();
        let mut y_zl = Matrix::zeros(n, 2);
        let mut y_next = Matrix::zeros(n, 1);
        for r in 0..n {
            y_zl[(r, 0)] = data.y[(r, 0)];
            y_zl[(r, 1)] = data.y[(r, 1)];
            y_next[(r, 0)] = data.y[(r, 2)];
        }
        mlp.fit_with(&Dataset::new(data.x.clone(), y_zl)?, ctx)?;
        xgb.fit_with(&Dataset::new(data.x.clone(), y_next)?, ctx)?;
        Ok(Self { mlp, xgb })
    }
}

impl Surrogate for MlpXgbSurrogate {
    fn predict(&self, x: &[f64]) -> Result<[f64; 3], MlError> {
        let zl = isop_ml::predict_row(&self.mlp, x)?;
        let next = isop_ml::predict_row(&self.xgb, x)?;
        Ok([zl[0], zl[1], next[0]])
    }

    fn jacobian(&self, _x: &[f64]) -> Option<Result<Matrix, MlError>> {
        // The XGBoost part is piecewise-constant: no usable gradient.
        None
    }

    fn name(&self) -> String {
        "MLP_XGB".to_string()
    }
}

/// A counting decorator over any [`Surrogate`]: forwards every call to the
/// wrapped model while ticking the typed telemetry counters the run report
/// accounts surrogate cost by (`predict` / `predict_batch` calls, batch
/// rows, Jacobian evaluations).
///
/// Counter increments are commutative, so totals are identical at any
/// worker-thread width; with a disabled handle each call adds one branch.
/// The pipeline wraps its surrogate in this decorator internally — wrap
/// manually only when driving a surrogate outside [`IsopOptimizer`]
/// (e.g. the CI bench gate).
///
/// [`IsopOptimizer`]: crate::pipeline::IsopOptimizer
pub struct InstrumentedSurrogate<'a> {
    inner: &'a dyn Surrogate,
    telemetry: Telemetry,
}

impl<'a> InstrumentedSurrogate<'a> {
    /// Wraps `inner`, recording onto `telemetry`.
    pub fn new(inner: &'a dyn Surrogate, telemetry: Telemetry) -> Self {
        Self { inner, telemetry }
    }
}

impl Surrogate for InstrumentedSurrogate<'_> {
    fn predict(&self, x: &[f64]) -> Result<[f64; 3], MlError> {
        self.telemetry.incr(Counter::SurrogatePredict);
        self.inner.predict(x)
    }

    fn jacobian(&self, x: &[f64]) -> Option<Result<Matrix, MlError>> {
        self.telemetry.incr(Counter::SurrogateJacobian);
        self.inner.jacobian(x)
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Result<[f64; 3], MlError>> {
        self.telemetry.incr(Counter::SurrogatePredictBatch);
        self.telemetry
            .add(Counter::SurrogatePredictBatchRows, xs.len() as u64);
        self.inner.predict_batch(xs)
    }

    fn jacobian_batch(&self, xs: &[Vec<f64>]) -> Vec<Option<Result<Matrix, MlError>>> {
        self.telemetry.incr(Counter::SurrogateJacobianBatch);
        self.telemetry
            .add(Counter::SurrogateJacobianBatchRows, xs.len() as u64);
        self.inner.jacobian_batch(xs)
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

/// A "perfect" surrogate that queries the real simulator (with optional
/// finite-difference gradients). Used in tests and algorithm ablations.
pub struct OracleSurrogate<S> {
    sim: S,
    fd_step: f64,
}

impl<S: EmSimulator> OracleSurrogate<S> {
    /// Wraps a simulator; gradients use central differences with `fd_step`
    /// relative to each parameter's magnitude.
    pub fn new(sim: S) -> Self {
        Self { sim, fd_step: 1e-4 }
    }

    fn eval(&self, x: &[f64]) -> Result<[f64; 3], MlError> {
        let layer = DiffStripline::from_vector(x).map_err(|_| MlError::Diverged)?;
        let r = self.sim.simulate(&layer).map_err(|_| MlError::Diverged)?;
        Ok(r.to_array())
    }
}

impl<S: EmSimulator> Surrogate for OracleSurrogate<S> {
    fn predict(&self, x: &[f64]) -> Result<[f64; 3], MlError> {
        self.eval(x)
    }

    fn jacobian(&self, x: &[f64]) -> Option<Result<Matrix, MlError>> {
        let base = match self.eval(x) {
            Ok(b) => b,
            Err(e) => return Some(Err(e)),
        };
        let mut jac = Matrix::zeros(3, x.len());
        for c in 0..x.len() {
            let h = self.fd_step * x[c].abs().max(1e-3);
            let mut hi = x.to_vec();
            let mut lo = x.to_vec();
            hi[c] += h;
            lo[c] -= h;
            // Central difference where both sides are valid; fall back to a
            // one-sided difference at geometry boundaries (e.g. E_t = 0).
            let (ph, pl, span) = match (self.eval(&hi), self.eval(&lo)) {
                (Ok(a), Ok(b)) => (a, b, 2.0 * h),
                (Ok(a), Err(_)) => (a, base, h),
                (Err(_), Ok(b)) => (base, b, h),
                (Err(e), Err(_)) => return Some(Err(e)),
            };
            for r in 0..3 {
                jac[(r, c)] = (ph[r] - pl[r]) / span;
            }
        }
        Some(Ok(jac))
    }

    fn name(&self) -> String {
        format!("oracle({})", self.sim.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate_dataset;
    use crate::spaces;
    use isop_em::simulator::AnalyticalSolver;
    use isop_ml::models::MlpConfig;

    fn tiny_dataset(n: usize) -> Dataset {
        generate_dataset(&spaces::s1(), n, &AnalyticalSolver::new(), 42).expect("dataset")
    }

    fn tiny_mlp() -> Mlp {
        Mlp::new(MlpConfig {
            hidden: vec![24, 24],
            epochs: 60,
            batch_size: 32,
            lr: 2e-3,
            dropout: 0.0,
            ..MlpConfig::default()
        })
    }

    #[test]
    fn neural_surrogate_learns_simulator_shape() {
        let data = tiny_dataset(400);
        let s = NeuralSurrogate::fit(tiny_mlp(), &data).expect("trains");
        // Predictions on a training row should land in the right regime.
        let row = data.x.row(0);
        let pred = s.predict(row).expect("predicts");
        let truth = data.y.row(0);
        assert!(
            (pred[0] - truth[0]).abs() < 12.0,
            "Z: {} vs {}",
            pred[0],
            truth[0]
        );
        assert!(pred[1] < 0.1, "L must be ~negative: {}", pred[1]);
    }

    #[test]
    fn neural_surrogate_exposes_jacobian() {
        let data = tiny_dataset(200);
        let s = NeuralSurrogate::fit(tiny_mlp(), &data).expect("trains");
        let jac = s
            .jacobian(data.x.row(0))
            .expect("differentiable")
            .expect("ok");
        assert_eq!((jac.rows(), jac.cols()), (3, 15));
    }

    #[test]
    fn mlp_xgb_predicts_but_has_no_jacobian() {
        let data = tiny_dataset(200);
        let s = MlpXgbSurrogate::fit(tiny_mlp(), XgbRegressor::new(30, 0.2, 4, 1.0, 0.0), &data)
            .expect("trains");
        let pred = s.predict(data.x.row(0)).expect("predicts");
        assert!(pred.iter().all(|v| v.is_finite()));
        assert!(
            s.jacobian(data.x.row(0)).is_none(),
            "tree part is not differentiable"
        );
        assert_eq!(s.name(), "MLP_XGB");
    }

    #[test]
    fn oracle_surrogate_matches_simulator_exactly() {
        let s = OracleSurrogate::new(AnalyticalSolver::new());
        let x = crate::manual::MANUAL_VECTOR;
        let pred = s.predict(&x).expect("valid design");
        let direct = AnalyticalSolver::new()
            .simulate(&DiffStripline::from_vector(&x).unwrap())
            .unwrap();
        assert_eq!(pred, direct.to_array());
    }

    #[test]
    fn oracle_jacobian_has_physical_signs() {
        let s = OracleSurrogate::new(AnalyticalSolver::new());
        let x = crate::manual::MANUAL_VECTOR;
        let jac = s.jacobian(&x).expect("fd").expect("ok");
        // Wider trace lowers Z.
        assert!(jac[(0, 0)] < 0.0, "dZ/dW = {}", jac[(0, 0)]);
        // Larger pair distance reduces |NEXT| (NEXT is negative, so dNEXT/dD > 0).
        assert!(jac[(2, 2)] > 0.0, "dNEXT/dD = {}", jac[(2, 2)]);
    }

    #[test]
    fn instrumented_surrogate_counts_without_changing_predictions() {
        let inner = OracleSurrogate::new(AnalyticalSolver::new());
        let tele = Telemetry::enabled();
        let wrapped = InstrumentedSurrogate::new(&inner, tele.clone());
        let x = crate::manual::MANUAL_VECTOR;
        assert_eq!(wrapped.predict(&x).unwrap(), inner.predict(&x).unwrap());
        let batch = vec![x.to_vec(), x.to_vec(), x.to_vec()];
        let _ = wrapped.predict_batch(&batch);
        let _ = wrapped.jacobian(&x);
        let _ = wrapped.jacobian_batch(&batch[..2]);
        assert_eq!(wrapped.name(), inner.name());
        assert_eq!(tele.counter(Counter::SurrogatePredict), 1);
        assert_eq!(tele.counter(Counter::SurrogatePredictBatch), 1);
        assert_eq!(tele.counter(Counter::SurrogatePredictBatchRows), 3);
        assert_eq!(tele.counter(Counter::SurrogateJacobian), 1);
        assert_eq!(tele.counter(Counter::SurrogateJacobianBatch), 1);
        assert_eq!(tele.counter(Counter::SurrogateJacobianBatchRows), 2);
    }

    #[test]
    fn zoo_registry_elides_training_and_replays_bits() {
        use isop_ml::registry::ModelRegistry;
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!("isop-zoo-reg-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let data = tiny_dataset(120);
        let space_id = 0x1234;
        let x = crate::manual::MANUAL_VECTOR;

        // Cold: trains and records; without a registry the same zoo call is
        // a plain fit.
        let plain = ModelZoo::new(isop_exec::Parallelism::serial());
        let (_, hit) = plain
            .fit_neural_registered(space_id, tiny_mlp(), &data)
            .expect("trains");
        assert!(!hit, "no registry attached");

        let cold_pred;
        {
            let store = Arc::new(isop_store::Store::open(&dir).expect("opens"));
            let zoo = ModelZoo::new(isop_exec::Parallelism::serial())
                .with_registry(ModelRegistry::new(Arc::clone(&store)));
            let (s, hit) = zoo
                .fit_neural_registered(space_id, tiny_mlp(), &data)
                .expect("trains");
            assert!(!hit, "cold run trains");
            cold_pred = s.predict(&x).expect("predicts");
            zoo.registry()
                .expect("attached")
                .persist()
                .expect("flushes");
        }

        // Warm "process": training must be skipped entirely (no ml.fit.*
        // span, no train.chunks) and predictions must replay bit-exactly.
        let tele = Telemetry::enabled();
        let store = Arc::new(isop_store::Store::open(&dir).expect("reopens"));
        let zoo = ModelZoo::new(isop_exec::Parallelism::serial())
            .with_telemetry(tele.clone())
            .with_registry(ModelRegistry::new(store).with_telemetry(tele.clone()));
        let (s, hit) = zoo
            .fit_neural_registered(space_id, tiny_mlp(), &data)
            .expect("loads");
        assert!(hit, "warm run is served from the store");
        let warm_pred = s.predict(&x).expect("predicts");
        for (a, b) in cold_pred.iter().zip(&warm_pred) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-identical warm surrogate");
        }
        let report = tele.run_report();
        assert_eq!(report.counter("store.model_hits"), 1);
        assert_eq!(report.counter("train.chunks"), 0, "zero training work");
        assert!(
            report.spans.iter().all(|s| !s.name.starts_with("ml.fit.")),
            "warm run must record no ml.fit.* span"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oracle_rejects_invalid_designs() {
        let s = OracleSurrogate::new(AnalyticalSolver::new());
        let mut x = crate::manual::MANUAL_VECTOR;
        x[0] = -5.0;
        assert!(s.predict(&x).is_err());
    }
}
